//! Seeded mutation fuzzing of every parser that faces untrusted
//! bytes: the HTTP request reader, the JSON codec, and the
//! persistence decoders (WAL segment scan, snapshot decode, and the
//! `.tgraph` compressed-graph container).
//!
//! Each corpus starts from valid seeds and applies 128 deterministic
//! mutations per seed — truncations, byte flips, random splices,
//! header splits, depth bombs — and asserts the uniform robustness
//! contract: **no panic, no abort, only clean typed errors** (for the
//! HTTP layer: only 4xx statuses or connection-level conditions).
//! The same harness doubles as the decoder fuzz entry for the
//! crash-safety suite: a WAL or snapshot decoder that panics on
//! garbage would turn a torn tail into a crash loop at boot.

use std::io::BufReader;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc::persist::snapshot::{decode_snapshot, encode_snapshot};
use tesc::persist::wal::{encode_record, scan_segment, WAL_MAGIC};
use tesc::persist::WalRecord;
use tesc::serve::http::{read_request, HttpError};
use tesc::serve::json::Json;
use tesc_events::EventStore;
use tesc_graph::generators::grid;

const CASES_PER_SEED: u64 = 128;

/// Mutate `seed` deterministically: truncate, flip bytes, splice
/// random bytes, or duplicate a chunk.
fn mutate(bytes: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.gen_range(0..4u32) {
        0 => {
            // Truncate at a random point.
            let k = rng.gen_range(0..=out.len());
            out.truncate(k);
        }
        1 => {
            // Flip 1–4 random bytes.
            for _ in 0..rng.gen_range(1..=4usize) {
                if out.is_empty() {
                    break;
                }
                let k = rng.gen_range(0..out.len());
                out[k] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        2 => {
            // Splice a short run of random bytes at a random offset.
            let at = rng.gen_range(0..=out.len());
            let run: Vec<u8> = (0..rng.gen_range(1..16usize))
                .map(|_| rng.gen_range(0..=255u32) as u8)
                .collect();
            out.splice(at..at, run);
        }
        _ => {
            // Duplicate a chunk somewhere else (reordered frames).
            if !out.is_empty() {
                let start = rng.gen_range(0..out.len());
                let end = rng.gen_range(start..out.len().min(start + 64));
                let chunk = out[start..=end.min(out.len() - 1)].to_vec();
                let at = rng.gen_range(0..=out.len());
                out.splice(at..at, chunk);
            }
        }
    }
    out
}

// --- HTTP request parser -------------------------------------------------

fn http_seeds() -> Vec<Vec<u8>> {
    vec![
        b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
        b"POST /test HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 24\r\n\r\n{\"a\":\"alpha\",\"b\":\"beta\"}".to_vec(),
        b"POST /commit HTTP/1.1\r\nAccept: application/json\r\nContent-Length: 0\r\n\r\n".to_vec(),
        b"POST /rank HTTP/1.0\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}".to_vec(),
    ]
}

/// The only acceptable parse outcomes: a request, or an error mapping
/// to a 4xx (or a connection-level condition with no status at all).
fn assert_http_contract(bytes: &[u8], case: &str) {
    let mut reader = BufReader::new(bytes);
    match read_request(&mut reader, 1 << 20, std::time::Duration::from_secs(5)) {
        Ok(_) => {}
        Err(e) => {
            if let Some((status, _)) = e.status() {
                assert!(
                    (400..500).contains(&status),
                    "{case}: parser answered {status}, not a 4xx"
                );
            } else {
                assert!(
                    matches!(
                        e,
                        HttpError::ConnectionClosed | HttpError::IdleTimeout | HttpError::Io(_)
                    ),
                    "{case}: status-less error must be connection-level"
                );
            }
        }
    }
}

#[test]
fn http_parser_survives_mutation_fuzzing() {
    for (s, seed) in http_seeds().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0x11EAD ^ s as u64);
        for case in 0..CASES_PER_SEED {
            let mutated = mutate(seed, &mut rng);
            assert_http_contract(&mutated, &format!("http seed {s} case {case}"));
        }
    }
}

#[test]
fn http_parser_survives_header_splits_and_head_bombs() {
    // Header splits: inject CRLFs at every position of a valid head.
    let seed =
        b"POST /test HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
    for at in 0..seed.len() {
        let mut split = seed[..at].to_vec();
        split.extend_from_slice(b"\r\n");
        split.extend_from_slice(&seed[at..]);
        assert_http_contract(&split, &format!("header split at {at}"));
    }
    // An endless header section must die at the head cap, not OOM.
    let mut bomb = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..4000 {
        bomb.extend_from_slice(format!("X-{i}: y\r\n").as_bytes());
    }
    assert_http_contract(&bomb, "header bomb");
    // A single unterminated line longer than the cap.
    let mut line = b"GET / HTTP/1.1\r\nX: ".to_vec();
    line.extend(std::iter::repeat_n(b'a', 64 * 1024));
    assert_http_contract(&line, "oversized header line");
}

// --- JSON codec ----------------------------------------------------------

fn json_seeds() -> Vec<String> {
    vec![
        r#"{"edges":[[0,7],[1,8]],"seed":42}"#.to_string(),
        r#"{"name":"alpha","nodes":[1,2,3],"nested":{"a":[true,false,null]}}"#.to_string(),
        r#"[1,-2.5e10,"é\n\"x\"",{},[]]"#.to_string(),
    ]
}

#[test]
fn json_parser_survives_mutation_fuzzing() {
    for (s, seed) in json_seeds().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0x750_u64.wrapping_add(s as u64));
        for _case in 0..CASES_PER_SEED {
            let mutated = mutate(seed.as_bytes(), &mut rng);
            // Mutations may break UTF-8; the HTTP layer hands the
            // codec strings, so fuzz through a lossy conversion.
            let text = String::from_utf8_lossy(&mutated);
            let _ = Json::parse(&text); // must return, never panic
        }
    }
}

#[test]
fn json_parser_rejects_depth_bombs_without_overflowing() {
    // Deep nesting must be answered with an error, not a stack
    // overflow (an overflow aborts the process — the test would not
    // fail, it would die).
    for bomb in [
        "[".repeat(100_000),
        "{\"a\":".repeat(50_000),
        format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000)),
    ] {
        assert!(
            Json::parse(&bomb).is_err(),
            "depth bomb must be rejected cleanly"
        );
    }
}

// --- Persistence decoders ------------------------------------------------

fn wal_seed() -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(WAL_MAGIC);
    bytes.extend_from_slice(&7u64.to_le_bytes());
    for (seq, rec) in [
        (
            8u64,
            WalRecord::AddEdges {
                edges: vec![(0, 7), (1, 8)],
            },
        ),
        (
            9,
            WalRecord::AddEvent {
                name: "alpha".into(),
                nodes: vec![3, 4, 5],
            },
        ),
        (
            10,
            WalRecord::AddOccurrences {
                event: 0,
                nodes: vec![20, 21],
            },
        ),
    ] {
        bytes.extend_from_slice(&encode_record(seq, &rec));
    }
    bytes
}

#[test]
fn wal_scan_survives_mutation_fuzzing() {
    let seed = wal_seed();
    let mut rng = StdRng::seed_from_u64(0x3A1);
    for _case in 0..4 * CASES_PER_SEED {
        let mutated = mutate(&seed, &mut rng);
        // Must return — Ok with a clean record prefix, or a typed
        // header error — never panic or over-allocate.
        let _ = scan_segment(&mutated);
    }
}

#[test]
fn tgraph_decode_survives_mutation_fuzzing() {
    use tesc_graph::{decode_tgraph, encode_tgraph, CompressedCsr, Relabeling};
    let graph = grid(7, 5);
    let compressed = CompressedCsr::from_graph(&graph);
    let perm = Relabeling::locality_order(&graph);
    // Fuzz both container shapes: bare, and with the optional
    // embedded locality permutation section.
    for (s, seed) in [
        encode_tgraph(&compressed, None),
        encode_tgraph(&compressed, Some(&perm)),
    ]
    .iter()
    .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(0x7064 ^ s as u64);
        for _case in 0..4 * CASES_PER_SEED {
            let mutated = mutate(seed, &mut rng);
            // Typed error or a faithful decode — never a panic. The
            // section CRCs plus the structural fingerprint make an
            // accepted mutant decode to the seed graph.
            if let Ok(t) = decode_tgraph(&mutated) {
                assert_eq!(t.graph, compressed);
            }
        }
        // Every truncation point, exhaustively.
        for k in 0..seed.len() {
            assert!(
                decode_tgraph(&seed[..k]).is_err(),
                "tgraph shape {s} truncated at {k} must not decode"
            );
        }
    }
}

#[test]
fn snapshot_decode_survives_mutation_fuzzing() {
    let mut events = EventStore::new();
    events.add_event("alpha", (0..12).collect());
    events.add_event("beta", vec![20, 21, 22]);
    let seed = encode_snapshot(9, &grid(6, 6), &events);
    let mut rng = StdRng::seed_from_u64(0x54A9);
    for _case in 0..4 * CASES_PER_SEED {
        let mutated = mutate(&seed, &mut rng);
        if let Ok((version, graph, events)) = decode_snapshot(&mutated) {
            // The CRC makes accidental acceptance of a mutated image
            // effectively impossible; anything accepted must decode
            // back to the seed's content.
            assert_eq!(version, 9);
            assert_eq!(graph.num_edges(), grid(6, 6).num_edges());
            assert_eq!(events.num_events(), 2);
        }
    }
}
