//! Fault-injected crash-recovery equivalence suite for `tesc::persist`.
//!
//! The durability contract under test: every ingest is appended and
//! fsync'd to the WAL *before* its snapshot is published, so for any
//! crash point the on-disk state is a clean prefix of the commit
//! history. These tests make that literal — they run a deterministic
//! ingestion script twice (once durable, once purely in memory,
//! recording a fingerprint per version), then corrupt copies of the
//! data directory at every byte offset (truncation, bit flips, torn
//! sector writes) and assert the recovered context is bit-identical
//! to the never-crashed context at the recovered version:
//!
//! * truncating the WAL at byte `k` recovers exactly the record
//!   prefix that fits in `k` bytes — never a panic, never a
//!   partial application;
//! * flipping any single bit stops replay at the damaged frame with
//!   every earlier record intact;
//! * a corrupted newest snapshot falls back to the previous valid
//!   one plus a longer WAL replay, reaching the same final state;
//! * recovery is read-only and idempotent — recovering twice (or
//!   crashing between recovery and the first new commit) changes
//!   nothing;
//! * random interleavings of commits, checkpoint rotations and crash
//!   points (seeded) always recover onto the golden fingerprint
//!   timeline, and the recovered context accepts further commits.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc::context::{Snapshot, TescContext};
use tesc::persist::{corrupt_file, scan_segment_file, Fault, StoreOptions};
use tesc_events::EventStore;
use tesc_graph::generators::grid;
use tesc_graph::NodeId;

/// A fresh scratch directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "tesc-recovery-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Copy every regular file in `src` into a fresh directory.
fn copy_dir(src: &Path, tag: &str) -> PathBuf {
    let dst = temp_dir(tag);
    for entry in std::fs::read_dir(src).expect("read src dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
        }
    }
    dst
}

/// Paths of the WAL segments in `dir`, ascending by base version.
fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tlog"))
        .collect();
    segs.sort();
    segs
}

/// Paths of the snapshots in `dir`, ascending by version.
fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tsnap"))
        .collect();
    snaps.sort();
    snaps
}

/// One step of the deterministic ingestion script.
enum Op {
    Edges(Vec<(NodeId, NodeId)>),
    Event(&'static str, Vec<NodeId>),
    Occurrences(&'static str, Vec<NodeId>),
}

/// Apply one op through the public writer API.
fn apply(ctx: &TescContext, op: &Op) -> Arc<Snapshot> {
    match op {
        Op::Edges(edges) => ctx.add_edges(edges).expect("add_edges"),
        Op::Event(name, nodes) => ctx.add_event(*name, nodes.clone()).expect("add_event").1,
        Op::Occurrences(name, nodes) => {
            let id = ctx
                .snapshot()
                .events()
                .id_by_name(name)
                .expect("event registered earlier in the script");
            ctx.add_event_occurrences(id, nodes)
                .expect("add_event_occurrences")
        }
    }
}

/// The base state: a 6×6 grid with one pre-registered event.
fn base_state() -> (tesc_graph::CsrGraph, EventStore) {
    let mut events = EventStore::new();
    events.add_event("seeded", (0..12).collect());
    (grid(6, 6), events)
}

/// A 12-commit script over the 6×6 grid (36 nodes; diagonals like
/// `(u, u + 7)` are not grid edges, so every edge delta is new).
fn script() -> Vec<Op> {
    vec![
        Op::Edges(vec![(0, 7), (1, 8)]),
        Op::Event("alpha", vec![3, 4, 5, 9, 10]),
        Op::Occurrences("seeded", vec![20, 21, 22]),
        Op::Edges(vec![(2, 9), (14, 21)]),
        Op::Event("beta", vec![30, 31, 32, 33]),
        Op::Occurrences("alpha", vec![11, 15, 16]),
        Op::Edges(vec![(15, 22), (16, 23), (3, 10)]),
        Op::Occurrences("beta", vec![24, 25]),
        Op::Event("gamma", vec![0, 6, 12, 18]),
        Op::Edges(vec![(4, 11)]),
        Op::Occurrences("gamma", vec![24, 30]),
        Op::Edges(vec![(17, 24), (5, 12)]),
    ]
}

/// Fingerprint-per-version timeline from a never-crashed, purely
/// in-memory run of `ops`. A context's first snapshot is version 1,
/// so `golden[i]` is the fingerprint at version `1 + i`; index with
/// [`fp_at`].
fn golden_timeline(ops: &[Op]) -> Vec<u64> {
    let (graph, events) = base_state();
    let ctx = TescContext::new(graph, events, 1);
    let mut golden = vec![ctx.snapshot().fingerprint()];
    for op in ops {
        golden.push(apply(&ctx, op).fingerprint());
    }
    golden
}

/// The never-crashed fingerprint at `version` (versions start at 1).
fn fp_at(golden: &[u64], version: u64) -> u64 {
    golden[(version - 1) as usize]
}

/// Run the script durably into a fresh data directory and return it.
fn durable_run(ops: &[Op], options: StoreOptions, tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let (graph, events) = base_state();
    let ctx = TescContext::new(graph, events, 1)
        .with_durability(&dir, options)
        .expect("attach durability");
    for op in ops {
        apply(&ctx, op);
    }
    dir
}

fn single_segment_options() -> StoreOptions {
    StoreOptions {
        snapshot_every: 10_000, // never auto-checkpoint: one WAL segment
        ..StoreOptions::default()
    }
}

/// Recover `dir` and return `(version, fingerprint)`.
fn recover(dir: &Path) -> (u64, u64) {
    let ctx = TescContext::open_dir(dir, 1, 1, StoreOptions::default())
        .expect("recovery must not error")
        .expect("directory holds data");
    let snap = ctx.snapshot();
    (snap.version(), snap.fingerprint())
}

#[test]
fn every_wal_truncation_point_recovers_the_clean_prefix() {
    let ops = script();
    let golden = golden_timeline(&ops);
    let dir = durable_run(&ops, single_segment_options(), "trunc-src");

    let segments = wal_segments(&dir);
    assert_eq!(segments.len(), 1, "script must fit one segment");
    let wal = &segments[0];
    let scan = scan_segment_file(wal).expect("scan intact segment");
    assert_eq!(scan.ends.len(), ops.len(), "one WAL record per commit");
    let len = std::fs::metadata(wal).expect("wal metadata").len();
    assert_eq!(len, *scan.ends.last().unwrap(), "intact file is clean");

    for k in 0..=len {
        let crash = copy_dir(&dir, "trunc");
        corrupt_file(&crash.join(wal.file_name().unwrap()), Fault::CrashAt(k))
            .expect("truncate wal");
        let (version, fingerprint) = recover(&crash);
        // Exactly the records whose frames fit in `k` bytes survive
        // (on top of the version-1 base snapshot).
        let expect = 1 + scan.ends.iter().filter(|&&e| e <= k).count() as u64;
        assert_eq!(version, expect, "crash at byte {k}");
        assert_eq!(
            fingerprint,
            fp_at(&golden, version),
            "crash at byte {k}: recovered v{version} must be bit-identical to never-crashed"
        );
        std::fs::remove_dir_all(&crash).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_wal_bit_flip_stops_replay_at_the_damaged_frame() {
    let ops = script();
    let golden = golden_timeline(&ops);
    let dir = durable_run(&ops, single_segment_options(), "flip-src");

    let wal = wal_segments(&dir).remove(0);
    let scan = scan_segment_file(&wal).expect("scan intact segment");
    let len = std::fs::metadata(&wal).expect("wal metadata").len();

    for k in 0..len {
        let crash = copy_dir(&dir, "flip");
        corrupt_file(&crash.join(wal.file_name().unwrap()), Fault::BitFlip(k, 3))
            .expect("flip bit");
        let (version, fingerprint) = recover(&crash);
        // The flip damages the frame containing byte `k` (or the
        // segment header, for k < 16); every earlier record is intact
        // and replay stops cleanly before the damage.
        let expect = 1 + scan.ends.iter().filter(|&&e| e <= k).count() as u64;
        assert_eq!(version, expect, "bit flip at byte {k}");
        assert_eq!(
            fingerprint,
            fp_at(&golden, version),
            "bit flip at byte {k}: recovered v{version} diverges from never-crashed"
        );
        std::fs::remove_dir_all(&crash).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_newest_snapshot_falls_back_to_previous_plus_longer_replay() {
    let ops = script();
    let golden = golden_timeline(&ops);
    let final_version = ops.len() as u64 + 1;

    // Checkpoint mid-script so the directory holds two snapshots
    // (initial v0 + forced) and two segments.
    let dir = temp_dir("fallback-src");
    let (graph, events) = base_state();
    let ctx = TescContext::new(graph, events, 1)
        .with_durability(&dir, single_segment_options())
        .expect("attach durability");
    for (i, op) in ops.iter().enumerate() {
        apply(&ctx, op);
        if i == 6 {
            assert!(ctx.checkpoint().expect("forced checkpoint"));
        }
    }
    drop(ctx);
    let snaps = snapshot_files(&dir);
    assert_eq!(snaps.len(), 2, "initial + forced checkpoint");

    // Intact directory recovers to the final version first.
    let (v, f) = recover(&dir);
    assert_eq!((v, f), (final_version, fp_at(&golden, final_version)));

    // Newest snapshot torn mid-file → fall back to snapshot v0 and
    // replay both segments end to end; same final state.
    for fault in [Fault::TearAt(40), Fault::BitFlip(100, 5), Fault::CrashAt(9)] {
        let crash = copy_dir(&dir, "fallback");
        corrupt_file(&crash.join(snaps[1].file_name().unwrap()), fault)
            .expect("corrupt newest snapshot");
        let (v, f) = recover(&crash);
        assert_eq!(
            (v, f),
            (final_version, fp_at(&golden, final_version)),
            "{fault:?} on the newest snapshot must fall back, not diverge"
        );
        std::fs::remove_dir_all(&crash).ok();
    }

    // Every snapshot corrupted → a clean hard error, not a panic and
    // not a silently empty context.
    let crash = copy_dir(&dir, "all-bad");
    for snap in snapshot_files(&crash) {
        corrupt_file(&snap, Fault::BitFlip(20, 1)).expect("corrupt snapshot");
    }
    let err = TescContext::open_dir(&crash, 1, 1, StoreOptions::default());
    assert!(
        err.is_err(),
        "recovery with no valid snapshot must surface an error"
    );
    std::fs::remove_dir_all(&crash).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_is_idempotent_and_survives_a_crash_during_cleanup() {
    let ops = script();
    let golden = golden_timeline(&ops);
    let dir = durable_run(&ops, single_segment_options(), "idem-src");

    // Tear the WAL tail mid-record so recovery has cleanup to do:
    // 8 clean records on top of the version-1 base → version 9.
    let wal = wal_segments(&dir).remove(0);
    let scan = scan_segment_file(&wal).expect("scan");
    let mid_record = (scan.ends[7] + scan.ends[8]) / 2;
    corrupt_file(&wal, Fault::CrashAt(mid_record)).expect("tear tail");

    // First recovery truncates the torn tail at attach time …
    let (v1, f1) = recover(&dir);
    assert_eq!((v1, f1), (9, fp_at(&golden, 9)));
    // … and a second recovery of the now-cleaned directory agrees.
    let (v2, f2) = recover(&dir);
    assert_eq!((v1, f1), (v2, f2), "double recovery must be a no-op");

    // A crash *between* recovery and the first new commit (simulated
    // by attach + drop with no writes) changes nothing either.
    let (v3, f3) = recover(&dir);
    assert_eq!((v1, f1), (v3, f3));

    // The recovered context keeps working: further commits append to
    // the truncated WAL and land on the golden timeline.
    let ctx = TescContext::open_dir(&dir, 1, 1, StoreOptions::default())
        .expect("recover")
        .expect("has data");
    apply(&ctx, &ops[8]);
    assert_eq!(ctx.snapshot().fingerprint(), fp_at(&golden, 10));
    drop(ctx);
    let (v4, f4) = recover(&dir);
    assert_eq!((v4, f4), (10, fp_at(&golden, 10)));
    std::fs::remove_dir_all(&dir).ok();
}

/// Draw a random (but valid w.r.t. the current state) writer op.
fn random_op(rng: &mut StdRng, snap: &Snapshot, next_event: &mut u32) -> Op {
    let num_nodes = snap.graph().num_nodes() as NodeId;
    match rng.gen_range(0..3u32) {
        0 => {
            // A handful of random candidate edges; `add_edges` ignores
            // duplicates, and an all-duplicate delta would not bump the
            // version, so keep drawing until one edge is genuinely new.
            loop {
                let u = rng.gen_range(0..num_nodes - 1);
                let v = rng.gen_range(u + 1..num_nodes);
                if !snap.graph().has_edge(u, v) {
                    return Op::Edges(vec![(u, v)]);
                }
            }
        }
        1 => {
            let names: &[&'static str] = &[
                "ev-a", "ev-b", "ev-c", "ev-d", "ev-e", "ev-f", "ev-g", "ev-h",
            ];
            let name = names[(*next_event as usize).min(names.len() - 1)];
            *next_event += 1;
            let nodes: Vec<NodeId> = (0..rng.gen_range(1..6))
                .map(|_| rng.gen_range(0..num_nodes))
                .collect();
            if snap.events().id_by_name(name).is_some() {
                Op::Occurrences(name, nodes)
            } else {
                Op::Event(name, nodes)
            }
        }
        _ => {
            let nodes: Vec<NodeId> = (0..rng.gen_range(1..5))
                .map(|_| rng.gen_range(0..num_nodes))
                .collect();
            Op::Occurrences("seeded", nodes)
        }
    }
}

#[test]
fn random_interleavings_of_commits_rotations_and_crashes_recover_exactly() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        // Small snapshot_every so automatic checkpoint rotation
        // interleaves with the commits themselves.
        let options = StoreOptions {
            snapshot_every: rng.gen_range(2..5),
            ..StoreOptions::default()
        };
        let dir = temp_dir(&format!("interleave-{seed}"));
        let (graph, events) = base_state();
        let ctx = TescContext::new(graph, events, 1)
            .with_durability(&dir, options)
            .expect("attach durability");

        let mut golden = vec![ctx.snapshot().fingerprint()];
        let mut next_event = 0u32;
        for _ in 0..rng.gen_range(8..16) {
            let op = random_op(&mut rng, &ctx.snapshot(), &mut next_event);
            golden.push(apply(&ctx, &op).fingerprint());
            if rng.gen_bool(0.15) {
                ctx.checkpoint().expect("forced checkpoint");
            }
        }
        let final_version = golden.len() as u64; // versions start at 1
        drop(ctx);

        // Crash points: truncate the *active* (highest-base) segment
        // at random offsets, sometimes tearing the newest snapshot too.
        let active = wal_segments(&dir).pop().expect("active segment");
        let active_len = std::fs::metadata(&active).expect("meta").len();
        for _ in 0..8 {
            let crash = copy_dir(&dir, &format!("interleave-{seed}-crash"));
            let k = rng.gen_range(0..=active_len);
            corrupt_file(&crash.join(active.file_name().unwrap()), Fault::CrashAt(k))
                .expect("truncate active segment");
            let snaps = snapshot_files(&crash);
            if snaps.len() > 1 && rng.gen_bool(0.4) {
                let newest = snaps.last().unwrap();
                let len = std::fs::metadata(newest).expect("meta").len();
                corrupt_file(newest, Fault::TearAt(rng.gen_range(0..len)))
                    .expect("tear newest snapshot");
            }
            let (version, fingerprint) = recover(&crash);
            assert!(
                version <= final_version,
                "seed {seed}: recovered v{version} past the commit history"
            );
            assert_eq!(
                fingerprint,
                fp_at(&golden, version),
                "seed {seed}: recovered v{version} diverges from never-crashed"
            );
            std::fs::remove_dir_all(&crash).ok();
        }

        // The uncorrupted directory recovers the full history.
        let (v, f) = recover(&dir);
        assert_eq!((v, f), (final_version, fp_at(&golden, final_version)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
