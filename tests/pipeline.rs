//! End-to-end integration tests: the full TESC pipeline over the
//! scenario crates, crossing every workspace member.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::batch::{pair_seed, run_batch, run_batch_serial, BatchRequest, EventPair};
use tesc::{SamplerKind, Tail, TescConfig, TescEngine, VicinityIndex};
use tesc_baselines::transaction_correlation;
use tesc_datasets::{DblpConfig, DblpScenario, IntrusionConfig, IntrusionScenario};
use tesc_events::simulate::{apply_positive_noise, independent_pair, negative_pair, positive_pair};
use tesc_graph::BfsScratch;
use tesc_stats::significance::Verdict;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn dblp_scenario_full_pipeline_positive_all_samplers() {
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(1));
    let idx = VicinityIndex::build(&s.graph, 2);
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(2));
    let engine = TescEngine::with_vicinity_index(&s.graph, &idx);
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::Importance { batch_size: 1 },
        SamplerKind::Importance { batch_size: 3 },
        SamplerKind::WholeGraph,
    ] {
        for h in [1u32, 2] {
            let cfg = TescConfig::new(h)
                .with_sample_size(400)
                .with_tail(Tail::Upper)
                .with_sampler(sampler);
            let r = engine.test(&va, &vb, &cfg, &mut rng(3)).unwrap();
            assert_eq!(
                r.outcome.verdict,
                Verdict::PositiveCorrelation,
                "{sampler} at h={h}: z = {}",
                r.z()
            );
        }
    }
}

#[test]
fn noise_degrades_recall_monotonically_in_expectation() {
    // The Fig. 5 mechanism in miniature: mean z over a few pairs
    // decreases as noise increases.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(4));
    let engine = TescEngine::new(&s.graph);
    let mut scratch = BfsScratch::new(s.graph.num_nodes());
    let h = 2u32;
    let mut mean_z = Vec::new();
    for &noise in &[0.0, 0.3, 0.8] {
        let mut acc = 0.0;
        let trials = 6;
        for t in 0..trials {
            let lp = positive_pair(&s.graph, &mut scratch, 40, h, &mut rng(10 + t)).unwrap();
            let pair =
                apply_positive_noise(&s.graph, &mut scratch, &lp, noise, &mut rng(20 + t)).unwrap();
            let cfg = TescConfig::new(h)
                .with_sample_size(300)
                .with_tail(Tail::Upper);
            let r = engine
                .test(&pair.a, &pair.b, &cfg, &mut rng(30 + t))
                .unwrap();
            acc += r.z();
        }
        mean_z.push(acc / trials as f64);
    }
    assert!(
        mean_z[0] > mean_z[1] && mean_z[1] > mean_z[2],
        "mean z should fall with noise: {mean_z:?}"
    );
}

#[test]
fn intrusion_scenario_tesc_vs_tc_disagreement() {
    // The paper's headline qualitative finding: pairs can be strongly
    // positive under TESC while (weakly) negative under TC.
    let s = IntrusionScenario::build(IntrusionConfig::small(), &mut rng(5));
    let (va, vb) = s.plant_alternating_alert_pair(14, 10, &mut rng(6));
    let engine = TescEngine::new(&s.graph);
    let cfg = TescConfig::new(1)
        .with_sample_size(400)
        .with_tail(Tail::Upper);
    let tesc_res = engine.test(&va, &vb, &cfg, &mut rng(7)).unwrap();
    let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
    assert!(tesc_res.z() > 2.33, "TESC z = {}", tesc_res.z());
    assert!(tc.z < 1.0, "TC z = {} should be ~0 or negative", tc.z);
}

#[test]
fn negative_pair_verdicts_across_h() {
    let s = IntrusionScenario::build(IntrusionConfig::small(), &mut rng(8));
    let (va, vb) = s.plant_separated_alert_pair(10, 10, &mut rng(9));
    let engine = TescEngine::new(&s.graph);
    for h in [1u32, 2] {
        let cfg = TescConfig::new(h)
            .with_sample_size(400)
            .with_tail(Tail::Lower);
        let r = engine.test(&va, &vb, &cfg, &mut rng(10)).unwrap();
        assert_eq!(r.outcome.verdict, Verdict::NegativeCorrelation, "h={h}");
    }
}

#[test]
fn independent_pairs_control_false_attraction_rate() {
    // Calibration note (triaged from the failing seed): at h = 2 on
    // this small, strongly clustered scenario the null z distribution
    // is wider than N(0,1) — the reference sample (n = 300) is a large
    // fraction of the small population and community structure
    // correlates the two density vectors — so the nominal 5% level
    // exceeds at roughly 13–30% depending on the seed family (measured
    // over 4 × 30 trials; mean z stays ≤ 0). The paper's regime is
    // n = 900 ≪ N ≈ 965k, where the asymptotics hold. We therefore
    // bound the empirical rate at 25% over 60 trials and additionally
    // require no systematic attraction bias (mean z < 0.5).
    let trials_per_scenario = 30u64;
    let mut false_pos = 0usize;
    let mut z_sum = 0.0f64;
    for scenario_seed in [11u64, 1011] {
        let s = DblpScenario::build(DblpConfig::small(), &mut rng(scenario_seed));
        let engine = TescEngine::new(&s.graph);
        for t in 0..trials_per_scenario {
            let pair =
                independent_pair(&s.graph, 60, 60, &mut rng(scenario_seed + 100 + t)).unwrap();
            let cfg = TescConfig::new(2)
                .with_sample_size(300)
                .with_tail(Tail::Upper);
            let r = engine
                .test(&pair.a, &pair.b, &cfg, &mut rng(scenario_seed + 200 + t))
                .unwrap();
            false_pos += r.outcome.is_significant() as usize;
            z_sum += r.z();
        }
    }
    let trials = 2 * trials_per_scenario as usize;
    assert!(
        false_pos <= trials / 4,
        "false attractions: {false_pos}/{trials}"
    );
    let mean_z = z_sum / trials as f64;
    assert!(
        mean_z < 0.5,
        "systematic attraction bias: mean z = {mean_z:.2}"
    );
}

#[test]
fn importance_and_batch_agree_on_verdicts() {
    // Over a batch of planted pairs (positive AND negative), the two
    // main samplers must reach the same verdicts nearly always.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(12));
    let idx = VicinityIndex::build(&s.graph, 2);
    let engine = TescEngine::with_vicinity_index(&s.graph, &idx);
    let mut scratch = BfsScratch::new(s.graph.num_nodes());
    let mut disagreements = 0;
    let trials = 10;
    for t in 0..trials {
        let (pair, tail) = if t % 2 == 0 {
            (
                positive_pair(&s.graph, &mut scratch, 40, 2, &mut rng(300 + t))
                    .unwrap()
                    .to_pair(),
                Tail::Upper,
            )
        } else {
            (
                negative_pair(&s.graph, &mut scratch, 40, 40, 2, &mut rng(300 + t)).unwrap(),
                Tail::Lower,
            )
        };
        let base = TescConfig::new(2).with_sample_size(400).with_tail(tail);
        let r1 = engine
            .test(&pair.a, &pair.b, &base, &mut rng(400 + t))
            .unwrap();
        let r2 = engine
            .test(
                &pair.a,
                &pair.b,
                &base.with_sampler(SamplerKind::Importance { batch_size: 3 }),
                &mut rng(500 + t),
            )
            .unwrap();
        disagreements += (r1.outcome.verdict != r2.outcome.verdict) as usize;
    }
    assert!(
        disagreements <= 1,
        "{disagreements}/{trials} verdict disagreements"
    );
}

#[test]
fn batch_engine_bit_identical_to_serial_engine() {
    // The batch engine's central contract: for the same master seed,
    // every z-score (indeed the whole TescResult) is bit-identical
    // whether the pairs run through TescEngine::test one by one, the
    // serial batch runner, or the parallel fan-out at any thread
    // count — and for every sampler.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(40));
    let idx = VicinityIndex::build(&s.graph, 2);
    let engine = TescEngine::with_vicinity_index(&s.graph, &idx);
    let mut scratch = BfsScratch::new(s.graph.num_nodes());
    let pairs: Vec<EventPair> = (0..8)
        .map(|t| {
            let p = if t % 2 == 0 {
                positive_pair(&s.graph, &mut scratch, 40, 2, &mut rng(600 + t))
                    .unwrap()
                    .to_pair()
            } else {
                negative_pair(&s.graph, &mut scratch, 40, 40, 2, &mut rng(600 + t)).unwrap()
            };
            EventPair::new(format!("pair{t}"), p.a, p.b)
        })
        .collect();
    let master_seed = 777u64;
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::Importance { batch_size: 3 },
        SamplerKind::WholeGraph,
    ] {
        let cfg = TescConfig::new(2)
            .with_sample_size(200)
            .with_sampler(sampler);
        let req = BatchRequest::new(cfg)
            .with_seed(master_seed)
            .with_pairs(pairs.clone());
        let serial = run_batch_serial(&engine, &req);
        // Reference: direct engine calls with the same derived seeds.
        for (i, pair) in pairs.iter().enumerate() {
            let direct = engine.test(
                &pair.a,
                &pair.b,
                &cfg,
                &mut StdRng::seed_from_u64(pair_seed(master_seed, i)),
            );
            assert_eq!(serial.outcomes[i].result, direct, "{sampler}: pair {i}");
        }
        for threads in [2usize, 4, 8] {
            let par = run_batch(&engine, &req.clone().with_threads(threads));
            for (sr, pr) in serial.outcomes.iter().zip(&par.outcomes) {
                assert_eq!(sr, pr, "{sampler} at {threads} threads");
                if let (Ok(a), Ok(b)) = (&sr.result, &pr.result) {
                    assert_eq!(
                        a.z().to_bits(),
                        b.z().to_bits(),
                        "{sampler} at {threads} threads: z-score bits differ"
                    );
                }
            }
        }
    }
}

#[test]
fn within_test_density_parallelism_is_bit_identical() {
    // The other parallel axis: fanning the per-reference-node density
    // loop of ONE test out over threads must not change anything
    // either (density BFS consumes no randomness).
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(50));
    let idx = VicinityIndex::build(&s.graph, 2);
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(51));
    // Every sampler family routes its density loop through the pooled
    // fan-out, so all must be thread-count invariant.
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Importance { batch_size: 3 },
    ] {
        let cfg = TescConfig::new(2)
            .with_sample_size(300)
            .with_tail(Tail::Upper)
            .with_sampler(sampler);
        let serial_engine = TescEngine::with_vicinity_index(&s.graph, &idx);
        let reference = serial_engine.test(&va, &vb, &cfg, &mut rng(52)).unwrap();
        for threads in [2usize, 3, 8] {
            let engine =
                TescEngine::with_vicinity_index(&s.graph, &idx).with_density_threads(threads);
            let got = engine.test(&va, &vb, &cfg, &mut rng(52)).unwrap();
            assert_eq!(reference, got, "{sampler}: density_threads = {threads}");
            assert_eq!(reference.z().to_bits(), got.z().to_bits());
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic_given_seeds() {
    let s = IntrusionScenario::build(IntrusionConfig::small(), &mut rng(13));
    let (va, vb) = s.plant_alternating_alert_pair(10, 8, &mut rng(14));
    let engine = TescEngine::new(&s.graph);
    let cfg = TescConfig::new(1)
        .with_sample_size(300)
        .with_tail(Tail::Upper);
    let a = engine.test(&va, &vb, &cfg, &mut rng(15)).unwrap();
    let b = engine.test(&va, &vb, &cfg, &mut rng(15)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn density_cache_bit_identical_to_uncached_serial_for_every_sampler() {
    // The cache acceptance contract: batch outcomes with the
    // cross-pair density cache attached are bit-identical to the
    // uncached serial reference, for every sampler, at 1 and many
    // worker threads. The pair list shares events (one base keyword
    // against several partners plus a repeat) — the cache's target
    // shape.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(60));
    let idx = VicinityIndex::build(&s.graph, 2);
    let (base_a, base_b) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(61));
    let mut pairs = vec![EventPair::new("base", base_a.clone(), base_b.clone())];
    for i in 0..4 {
        let (_, partner) = s.plant_positive_keyword_pair(12, 10, 0.4, &mut rng(62 + i));
        pairs.push(EventPair::new(
            format!("base×p{i}"),
            base_a.clone(),
            partner,
        ));
    }
    pairs.push(EventPair::new("base_again", base_a.clone(), base_b.clone()));
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::Importance { batch_size: 1 },
        SamplerKind::Importance { batch_size: 3 },
        SamplerKind::WholeGraph,
    ] {
        let cfg = TescConfig::new(2)
            .with_sample_size(200)
            .with_tail(Tail::Upper)
            .with_sampler(sampler);
        let req = BatchRequest::new(cfg)
            .with_seed(77)
            .with_pairs(pairs.clone());
        let plain = TescEngine::with_vicinity_index(&s.graph, &idx);
        let reference = run_batch_serial(&plain, &req);
        let cache = std::sync::Arc::new(tesc::DensityCache::for_graph(&s.graph));
        let cached_engine =
            TescEngine::with_vicinity_index(&s.graph, &idx).with_density_cache(cache.clone());
        for threads in [1usize, 4] {
            let got = run_batch(&cached_engine, &req.clone().with_threads(threads));
            for (r, g) in reference.outcomes.iter().zip(&got.outcomes) {
                assert_eq!(r, g, "{sampler} at {threads} threads");
                if let (Ok(a), Ok(b)) = (&r.result, &g.result) {
                    assert_eq!(
                        a.z().to_bits(),
                        b.z().to_bits(),
                        "{sampler} at {threads} threads: z bits differ with cache"
                    );
                }
            }
        }
        if sampler == SamplerKind::BatchBfs {
            assert!(
                cache.hits() > 0,
                "shared events and a repeated pair must produce cache hits"
            );
        }
    }
}

#[test]
fn shared_event_density_bfs_runs_once_per_reference_node() {
    // The headline accounting guarantee: in a batch where k pairs
    // share one event, that event's per-reference-node vicinity counts
    // are measured by exactly one BFS per distinct reference node —
    // not once per pair. Exhaustive Batch BFS sampling (n ≥ N) makes
    // the per-pair reference sets reproducible, so the expected count
    // is the size of the union of the pairs' reference populations.
    let g = tesc_graph::generators::grid(14, 14);
    let h = 1u32;
    let shared: Vec<u32> = vec![0, 1, 14, 15];
    let partners: Vec<Vec<u32>> = vec![
        vec![2, 3, 16],
        vec![30, 31, 44],
        vec![100, 101, 114],
        vec![2, 3, 16], // repeat of partner 0: fully redundant pair
    ];
    let mut pairs = Vec::new();
    for (i, b) in partners.iter().enumerate() {
        pairs.push(EventPair::new(
            format!("shared×{i}"),
            shared.clone(),
            b.clone(),
        ));
    }
    let cfg = TescConfig::new(h).with_sample_size(100_000); // ≫ N: exhaustive
    let req = BatchRequest::new(cfg)
        .with_seed(5)
        .with_threads(1)
        .with_pairs(pairs);

    let cache = std::sync::Arc::new(tesc::DensityCache::for_graph(&g));
    let engine = TescEngine::new(&g).with_density_cache(cache.clone());
    let report = run_batch(&engine, &req);
    let per_pair_refs: Vec<usize> = report
        .outcomes
        .iter()
        .map(|o| o.result.as_ref().unwrap().n_refs)
        .collect();

    // Expected distinct reference nodes for the shared event: the
    // union of every pair's reference population V^h_{a∪b_i}.
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut union_refs: Vec<u32> = Vec::new();
    for b in &partners {
        let mut sources = shared.clone();
        sources.extend(b);
        let mut pop = Vec::new();
        scratch.h_vicinity_into(&g, &sources, h, &mut pop);
        union_refs.extend(pop);
    }
    union_refs.sort_unstable();
    union_refs.dedup();

    let key_shared = tesc::EventKey::new(&shared);
    assert_eq!(
        cache.fresh_computes(&key_shared),
        union_refs.len() as u64,
        "shared event must be measured exactly once per distinct reference node"
    );
    // Total BFS accounting: pairs 0–2 each pay one BFS per reference
    // node (their partner event is new even where the shared event is
    // cached), while the repeated pair 3 finds both events fully
    // memoized and pays zero — so the spend is exactly the uncached
    // cost minus the whole redundant pair.
    let uncached_cost: usize = per_pair_refs.iter().sum();
    assert_eq!(
        cache.bfs_invocations() as usize,
        uncached_cost - per_pair_refs[3],
        "the fully redundant repeat pair must cost zero BFS"
    );
    assert!((cache.bfs_invocations() as usize) < uncached_cost);
}

#[test]
fn versioned_context_serves_batches_across_ingestion() {
    // End-to-end tentpole check on a real scenario: pin a snapshot,
    // ingest edges + occurrences, and verify (a) the old snapshot
    // reproduces its numbers bit-for-bit, (b) the new snapshot's
    // index matches a rebuild, (c) batches run on both.
    use tesc::context::TescContext;
    use tesc::EventStore;

    let s = DblpScenario::build(DblpConfig::small(), &mut rng(70));
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(71));
    let mut events = EventStore::new();
    let a = events.add_event("kw_a", va);
    let b = events.add_event("kw_b", vb);
    let ctx = TescContext::new(s.graph.clone(), events, 2);

    let old = ctx.snapshot();
    let cfg = TescConfig::new(2)
        .with_sample_size(150)
        .with_tail(Tail::Upper);
    let req_old = BatchRequest::new(cfg)
        .with_seed(9)
        .with_pair(old.event_pair(a, b));
    let before = old.run_batch(&req_old);

    let n = old.graph().num_nodes() as u32;
    ctx.add_edges(&[(0, n - 1), (1, n - 2), (2, n - 3)])
        .unwrap();
    ctx.add_event_occurrences(b, &[n - 1, n - 2]).unwrap();
    let new = ctx.snapshot();
    assert_eq!(new.version(), 3);
    assert_eq!(*new.vicinity(), VicinityIndex::build(new.graph(), 2));

    // (a) old snapshot is pinned: same request, same bits.
    let again = old.run_batch(&req_old);
    assert_eq!(before.outcomes, again.outcomes);
    // (b) the new snapshot sees the grown event.
    assert_eq!(new.events().size(b), old.events().size(b) + 2);
    // (c) and serves its own batches.
    let after = new.run_batch(
        &BatchRequest::new(cfg)
            .with_seed(9)
            .with_pair(new.event_pair(a, b)),
    );
    assert!(after.outcomes[0].result.is_ok());
}
