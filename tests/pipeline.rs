//! End-to-end integration tests: the full TESC pipeline over the
//! scenario crates, crossing every workspace member.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::batch::{pair_seed, run_batch, run_batch_serial, BatchRequest, EventPair};
use tesc::{SamplerKind, Tail, TescConfig, TescEngine, VicinityIndex};
use tesc_baselines::transaction_correlation;
use tesc_datasets::{DblpConfig, DblpScenario, IntrusionConfig, IntrusionScenario};
use tesc_events::simulate::{apply_positive_noise, independent_pair, negative_pair, positive_pair};
use tesc_graph::BfsScratch;
use tesc_stats::significance::Verdict;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn dblp_scenario_full_pipeline_positive_all_samplers() {
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(1));
    let idx = VicinityIndex::build(&s.graph, 2);
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(2));
    let engine = TescEngine::with_vicinity_index(&s.graph, &idx);
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::Importance { batch_size: 1 },
        SamplerKind::Importance { batch_size: 3 },
        SamplerKind::WholeGraph,
    ] {
        for h in [1u32, 2] {
            let cfg = TescConfig::new(h)
                .with_sample_size(400)
                .with_tail(Tail::Upper)
                .with_sampler(sampler);
            let r = engine.test(&va, &vb, &cfg, &mut rng(3)).unwrap();
            assert_eq!(
                r.outcome.verdict,
                Verdict::PositiveCorrelation,
                "{sampler} at h={h}: z = {}",
                r.z()
            );
        }
    }
}

#[test]
fn noise_degrades_recall_monotonically_in_expectation() {
    // The Fig. 5 mechanism in miniature: mean z over a few pairs
    // decreases as noise increases.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(4));
    let engine = TescEngine::new(&s.graph);
    let mut scratch = BfsScratch::new(s.graph.num_nodes());
    let h = 2u32;
    let mut mean_z = Vec::new();
    for &noise in &[0.0, 0.3, 0.8] {
        let mut acc = 0.0;
        let trials = 6;
        for t in 0..trials {
            let lp = positive_pair(&s.graph, &mut scratch, 40, h, &mut rng(10 + t)).unwrap();
            let pair =
                apply_positive_noise(&s.graph, &mut scratch, &lp, noise, &mut rng(20 + t)).unwrap();
            let cfg = TescConfig::new(h)
                .with_sample_size(300)
                .with_tail(Tail::Upper);
            let r = engine
                .test(&pair.a, &pair.b, &cfg, &mut rng(30 + t))
                .unwrap();
            acc += r.z();
        }
        mean_z.push(acc / trials as f64);
    }
    assert!(
        mean_z[0] > mean_z[1] && mean_z[1] > mean_z[2],
        "mean z should fall with noise: {mean_z:?}"
    );
}

#[test]
fn intrusion_scenario_tesc_vs_tc_disagreement() {
    // The paper's headline qualitative finding: pairs can be strongly
    // positive under TESC while (weakly) negative under TC.
    let s = IntrusionScenario::build(IntrusionConfig::small(), &mut rng(5));
    let (va, vb) = s.plant_alternating_alert_pair(14, 10, &mut rng(6));
    let engine = TescEngine::new(&s.graph);
    let cfg = TescConfig::new(1)
        .with_sample_size(400)
        .with_tail(Tail::Upper);
    let tesc_res = engine.test(&va, &vb, &cfg, &mut rng(7)).unwrap();
    let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
    assert!(tesc_res.z() > 2.33, "TESC z = {}", tesc_res.z());
    assert!(tc.z < 1.0, "TC z = {} should be ~0 or negative", tc.z);
}

#[test]
fn negative_pair_verdicts_across_h() {
    let s = IntrusionScenario::build(IntrusionConfig::small(), &mut rng(8));
    let (va, vb) = s.plant_separated_alert_pair(10, 10, &mut rng(9));
    let engine = TescEngine::new(&s.graph);
    for h in [1u32, 2] {
        let cfg = TescConfig::new(h)
            .with_sample_size(400)
            .with_tail(Tail::Lower);
        let r = engine.test(&va, &vb, &cfg, &mut rng(10)).unwrap();
        assert_eq!(r.outcome.verdict, Verdict::NegativeCorrelation, "h={h}");
    }
}

#[test]
fn independent_pairs_control_false_attraction_rate() {
    // Calibration note (triaged from the failing seed): at h = 2 on
    // this small, strongly clustered scenario the null z distribution
    // is wider than N(0,1) — the reference sample (n = 300) is a large
    // fraction of the small population and community structure
    // correlates the two density vectors — so the nominal 5% level
    // exceeds at roughly 13–30% depending on the seed family (measured
    // over 4 × 30 trials; mean z stays ≤ 0). The paper's regime is
    // n = 900 ≪ N ≈ 965k, where the asymptotics hold. We therefore
    // bound the empirical rate at 25% over 60 trials and additionally
    // require no systematic attraction bias (mean z < 0.5).
    let trials_per_scenario = 30u64;
    let mut false_pos = 0usize;
    let mut z_sum = 0.0f64;
    for scenario_seed in [11u64, 1011] {
        let s = DblpScenario::build(DblpConfig::small(), &mut rng(scenario_seed));
        let engine = TescEngine::new(&s.graph);
        for t in 0..trials_per_scenario {
            let pair =
                independent_pair(&s.graph, 60, 60, &mut rng(scenario_seed + 100 + t)).unwrap();
            let cfg = TescConfig::new(2)
                .with_sample_size(300)
                .with_tail(Tail::Upper);
            let r = engine
                .test(&pair.a, &pair.b, &cfg, &mut rng(scenario_seed + 200 + t))
                .unwrap();
            false_pos += r.outcome.is_significant() as usize;
            z_sum += r.z();
        }
    }
    let trials = 2 * trials_per_scenario as usize;
    assert!(
        false_pos <= trials / 4,
        "false attractions: {false_pos}/{trials}"
    );
    let mean_z = z_sum / trials as f64;
    assert!(
        mean_z < 0.5,
        "systematic attraction bias: mean z = {mean_z:.2}"
    );
}

#[test]
fn importance_and_batch_agree_on_verdicts() {
    // Over a batch of planted pairs (positive AND negative), the two
    // main samplers must reach the same verdicts nearly always.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(12));
    let idx = VicinityIndex::build(&s.graph, 2);
    let engine = TescEngine::with_vicinity_index(&s.graph, &idx);
    let mut scratch = BfsScratch::new(s.graph.num_nodes());
    let mut disagreements = 0;
    let trials = 10;
    for t in 0..trials {
        let (pair, tail) = if t % 2 == 0 {
            (
                positive_pair(&s.graph, &mut scratch, 40, 2, &mut rng(300 + t))
                    .unwrap()
                    .to_pair(),
                Tail::Upper,
            )
        } else {
            (
                negative_pair(&s.graph, &mut scratch, 40, 40, 2, &mut rng(300 + t)).unwrap(),
                Tail::Lower,
            )
        };
        let base = TescConfig::new(2).with_sample_size(400).with_tail(tail);
        let r1 = engine
            .test(&pair.a, &pair.b, &base, &mut rng(400 + t))
            .unwrap();
        let r2 = engine
            .test(
                &pair.a,
                &pair.b,
                &base.with_sampler(SamplerKind::Importance { batch_size: 3 }),
                &mut rng(500 + t),
            )
            .unwrap();
        disagreements += (r1.outcome.verdict != r2.outcome.verdict) as usize;
    }
    assert!(
        disagreements <= 1,
        "{disagreements}/{trials} verdict disagreements"
    );
}

#[test]
fn batch_engine_bit_identical_to_serial_engine() {
    // The batch engine's central contract: for the same master seed,
    // every z-score (indeed the whole TescResult) is bit-identical
    // whether the pairs run through TescEngine::test one by one, the
    // serial batch runner, or the parallel fan-out at any thread
    // count — and for every sampler.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(40));
    let idx = VicinityIndex::build(&s.graph, 2);
    let engine = TescEngine::with_vicinity_index(&s.graph, &idx);
    let mut scratch = BfsScratch::new(s.graph.num_nodes());
    let pairs: Vec<EventPair> = (0..8)
        .map(|t| {
            let p = if t % 2 == 0 {
                positive_pair(&s.graph, &mut scratch, 40, 2, &mut rng(600 + t))
                    .unwrap()
                    .to_pair()
            } else {
                negative_pair(&s.graph, &mut scratch, 40, 40, 2, &mut rng(600 + t)).unwrap()
            };
            EventPair::new(format!("pair{t}"), p.a, p.b)
        })
        .collect();
    let master_seed = 777u64;
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::Importance { batch_size: 3 },
        SamplerKind::WholeGraph,
    ] {
        let cfg = TescConfig::new(2)
            .with_sample_size(200)
            .with_sampler(sampler);
        let req = BatchRequest::new(cfg)
            .with_seed(master_seed)
            .with_pairs(pairs.clone());
        let serial = run_batch_serial(&engine, &req);
        // Reference: direct engine calls with the same derived seeds.
        for (i, pair) in pairs.iter().enumerate() {
            let direct = engine.test(
                &pair.a,
                &pair.b,
                &cfg,
                &mut StdRng::seed_from_u64(pair_seed(master_seed, i)),
            );
            assert_eq!(serial.outcomes[i].result, direct, "{sampler}: pair {i}");
        }
        for threads in [2usize, 4, 8] {
            let par = run_batch(&engine, &req.clone().with_threads(threads));
            for (sr, pr) in serial.outcomes.iter().zip(&par.outcomes) {
                assert_eq!(sr, pr, "{sampler} at {threads} threads");
                if let (Ok(a), Ok(b)) = (&sr.result, &pr.result) {
                    assert_eq!(
                        a.z().to_bits(),
                        b.z().to_bits(),
                        "{sampler} at {threads} threads: z-score bits differ"
                    );
                }
            }
        }
    }
}

#[test]
fn within_test_density_parallelism_is_bit_identical() {
    // The other parallel axis: fanning the per-reference-node density
    // loop of ONE test out over threads must not change anything
    // either (density BFS consumes no randomness).
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(50));
    let idx = VicinityIndex::build(&s.graph, 2);
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(51));
    // Every sampler family routes its density loop through the pooled
    // fan-out, so all must be thread-count invariant.
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Importance { batch_size: 3 },
    ] {
        let cfg = TescConfig::new(2)
            .with_sample_size(300)
            .with_tail(Tail::Upper)
            .with_sampler(sampler);
        let serial_engine = TescEngine::with_vicinity_index(&s.graph, &idx);
        let reference = serial_engine.test(&va, &vb, &cfg, &mut rng(52)).unwrap();
        for threads in [2usize, 3, 8] {
            let engine =
                TescEngine::with_vicinity_index(&s.graph, &idx).with_density_threads(threads);
            let got = engine.test(&va, &vb, &cfg, &mut rng(52)).unwrap();
            assert_eq!(reference, got, "{sampler}: density_threads = {threads}");
            assert_eq!(reference.z().to_bits(), got.z().to_bits());
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic_given_seeds() {
    let s = IntrusionScenario::build(IntrusionConfig::small(), &mut rng(13));
    let (va, vb) = s.plant_alternating_alert_pair(10, 8, &mut rng(14));
    let engine = TescEngine::new(&s.graph);
    let cfg = TescConfig::new(1)
        .with_sample_size(300)
        .with_tail(Tail::Upper);
    let a = engine.test(&va, &vb, &cfg, &mut rng(15)).unwrap();
    let b = engine.test(&va, &vb, &cfg, &mut rng(15)).unwrap();
    assert_eq!(a, b);
}
