//! Bounded-cache acceptance suite: the second-chance eviction policy
//! of `DensityCache` must be *invisible* in results. Eviction may
//! only change hit rates — every cached count is a deterministic
//! integer recomputed identically after eviction, so z-scores stay
//! bit-identical across any byte budget, kernel and relabeling
//! configuration. The suite also locks down the bookkeeping
//! invariants (`fresh_inserts == entries + evictions`, resident
//! bytes under budget) and the `tesc-cli stream`-shaped regression:
//! 100+ event commits against one graph version stay under budget,
//! where the unbounded cache provably leaks past it.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::cache::SLOT_BYTES;
use tesc::context::TescContext;
use tesc::{DensityCache, EventStore, SamplerKind, TescConfig, TescEngine};
use tesc_graph::generators::grid;
use tesc_graph::{BfsKernel, NodeId, RelabeledGraph, VicinityIndex};

/// Deterministic event pairs with distinct content (so they occupy
/// distinct cache slabs) and enough overlap to exercise the pair
/// lookup path.
fn pairs() -> Vec<(Vec<NodeId>, Vec<NodeId>)> {
    (0..6u32)
        .map(|i| {
            let a: Vec<NodeId> = (i * 13..i * 13 + 30).collect();
            let b: Vec<NodeId> = (i * 13 + 15..i * 13 + 45).collect();
            (a, b)
        })
        .collect()
}

/// Run every pair twice back to back — the repeat hits the slabs the
/// first run just populated (even under a tiny budget), while moving
/// across pairs forces evictions — and return the z-bit trace.
fn run_workload(engine: &TescEngine<'_>, cfg: &TescConfig) -> Vec<u64> {
    let mut trace = Vec::new();
    for (i, (a, b)) in pairs().iter().enumerate() {
        for round in 0..2 {
            let seed = (round * 100 + i) as u64;
            let r = engine
                .test(a, b, cfg, &mut StdRng::seed_from_u64(seed))
                .expect("test");
            trace.push(r.z().to_bits());
        }
    }
    trace
}

/// A budget small enough to force evictions under the workload above
/// but large enough to keep several entries per shard resident.
const TINY_BUDGET: usize = 16 * (SLOT_BYTES * 4 + 400);

#[test]
fn evicted_then_recomputed_results_are_bit_identical_across_kernel_x_relabel() {
    let g = grid(24, 24);
    let vicinity = Arc::new(VicinityIndex::build(&g, 2));
    let relabeled = Arc::new(RelabeledGraph::build(&g));
    let cfg = TescConfig::new(2)
        .with_sample_size(120)
        .with_sampler(SamplerKind::BatchBfs);

    for kernel in [
        BfsKernel::Auto,
        BfsKernel::Scalar,
        BfsKernel::Bitset,
        BfsKernel::Multi,
    ] {
        for relabel in [false, true] {
            let build = |cache: Arc<DensityCache>| {
                let mut e = TescEngine::with_vicinity_arc(&g, vicinity.clone())
                    .with_density_cache(cache)
                    .with_density_kernel(kernel);
                if relabel {
                    e = e.with_relabeled_arc(relabeled.clone());
                }
                e
            };
            let unbounded = Arc::new(DensityCache::for_graph(&g));
            let bounded = Arc::new(DensityCache::for_graph_bounded(&g, TINY_BUDGET));
            let baseline = run_workload(&build(unbounded.clone()), &cfg);
            let evicting = run_workload(&build(bounded.clone()), &cfg);
            assert_eq!(
                baseline, evicting,
                "kernel {kernel:?}, relabel {relabel}: eviction changed results"
            );
            assert_eq!(unbounded.evictions(), 0);
            assert!(
                bounded.evictions() > 0,
                "kernel {kernel:?}, relabel {relabel}: the tiny budget must actually evict \
                 (resident {} of {TINY_BUDGET})",
                bounded.resident_bytes(),
            );
        }
    }
}

#[test]
fn eviction_counters_reconcile_and_respect_the_budget() {
    let g = grid(24, 24);
    let vicinity = Arc::new(VicinityIndex::build(&g, 2));
    let cfg = TescConfig::new(2).with_sample_size(120);
    let cache = Arc::new(DensityCache::for_graph_bounded(&g, TINY_BUDGET));
    let engine = TescEngine::with_vicinity_arc(&g, vicinity).with_density_cache(cache.clone());
    run_workload(&engine, &cfg);

    assert!(cache.evictions() > 0, "workload must trigger eviction");
    assert!(cache.hits() > 0, "surviving entries must still serve hits");
    assert!(cache.misses() > 0);
    assert_eq!(
        cache.fresh_inserts(),
        cache.len() as u64 + cache.evictions(),
        "every fresh insert is either resident or was evicted"
    );
    assert!(
        cache.resident_bytes() <= TINY_BUDGET,
        "resident {} exceeds budget {TINY_BUDGET}",
        cache.resident_bytes()
    );
    assert_eq!(cache.byte_budget(), Some(TINY_BUDGET));
}

#[test]
fn infinite_budget_reproduces_the_append_only_cache_exactly() {
    let g = grid(20, 20);
    let vicinity = Arc::new(VicinityIndex::build(&g, 2));
    let cfg = TescConfig::new(2).with_sample_size(100);

    let append_only = Arc::new(DensityCache::for_graph(&g));
    let engine =
        TescEngine::with_vicinity_arc(&g, vicinity.clone()).with_density_cache(append_only.clone());
    let baseline = run_workload(&engine, &cfg);

    // `with_cache_budget(None)` is the same unbounded policy through
    // the context path.
    let mut events = EventStore::new();
    let a = events.add_event("a", Vec::new());
    let _ = a;
    let ctx = TescContext::new(grid(20, 20), events, 2).with_cache_budget(None);
    let snap = ctx.snapshot();
    let unbounded = run_workload(&snap.engine(), &cfg);

    assert_eq!(baseline, unbounded, "budget=∞ must match today's behavior");
    let cache = snap.density_cache();
    assert_eq!(cache.byte_budget(), None);
    assert_eq!(cache.evictions(), 0, "unbounded caches never evict");
    assert_eq!(append_only.evictions(), 0);
    assert_eq!(
        cache.len(),
        append_only.len(),
        "identical workloads populate identical entry counts"
    );
    assert_eq!(cache.resident_bytes(), append_only.resident_bytes());
    assert_eq!(cache.fresh_inserts(), cache.len() as u64);
}

/// Satellite regression for the `tesc-cli stream` leak: a long replay
/// (100+ commits of event occurrences against one graph version, each
/// followed by fresh tests) keeps riding one snapshot cache. Bounded,
/// resident bytes must stay under budget at every commit; the same
/// replay on an unbounded context is the control that proves the
/// workload really leaks past the budget — and that eviction never
/// changes a single bit of the answers.
#[test]
fn stream_replay_stays_under_budget_across_100_plus_commits() {
    const COMMITS: usize = 110;
    const BUDGET: usize = 48 * 1024;

    let build_ctx = || {
        let mut events = EventStore::new();
        let probe = events.add_event("probe", (0..40).collect());
        let grow = events.add_event("grow", vec![200, 201]);
        (TescContext::new(grid(24, 24), events, 2), probe, grow)
    };
    let (bounded_ctx, probe_b, grow_b) = build_ctx();
    let bounded_ctx = bounded_ctx.with_cache_budget(Some(BUDGET));
    let (control_ctx, probe_c, grow_c) = build_ctx();

    let cfg = TescConfig::new(2).with_sample_size(80);
    let mut peak_control = 0usize;
    for i in 0..COMMITS {
        // Each commit adds occurrences, shifting the `grow` event's
        // content key — every round's densities are fresh cache slabs.
        let nodes = [(300 + i) as NodeId % 576, (i * 5) as NodeId % 576];
        let sb = bounded_ctx
            .add_event_occurrences(grow_b, &nodes)
            .expect("bounded ingest");
        let sc = control_ctx
            .add_event_occurrences(grow_c, &nodes)
            .expect("control ingest");
        assert_eq!(sb.version(), sc.version());

        let seed = i as u64;
        let rb = sb
            .engine()
            .test(
                sb.events().nodes(probe_b),
                sb.events().nodes(grow_b),
                &cfg,
                &mut StdRng::seed_from_u64(seed),
            )
            .expect("bounded test");
        let rc = sc
            .engine()
            .test(
                sc.events().nodes(probe_c),
                sc.events().nodes(grow_c),
                &cfg,
                &mut StdRng::seed_from_u64(seed),
            )
            .expect("control test");
        assert_eq!(
            rb.z().to_bits(),
            rc.z().to_bits(),
            "commit {i}: bounded replay diverged from unbounded control"
        );

        assert!(
            sb.density_cache().resident_bytes() <= BUDGET,
            "commit {i}: resident {} exceeds budget {BUDGET}",
            sb.density_cache().resident_bytes()
        );
        peak_control = peak_control.max(sc.density_cache().resident_bytes());
    }

    let bounded_cache = bounded_ctx.snapshot().density_cache().clone();
    assert!(
        peak_control > BUDGET,
        "control stayed at {peak_control} ≤ {BUDGET}: the workload no longer \
         exercises the leak this test is guarding against"
    );
    assert!(bounded_cache.evictions() > 0);
    assert_eq!(
        bounded_cache.fresh_inserts(),
        bounded_cache.len() as u64 + bounded_cache.evictions()
    );
}
