//! Ranking determinism and bit-identity: seeded property tests for the
//! pair-set planner and the top-K ranking subsystem.
//!
//! The contracts under test:
//!
//! * **Bit-identity.** Ranking a pair set through the fused planner
//!   produces per-pair scores bit-identical to independent
//!   `TescEngine::test` runs seeded with each pair's content seed —
//!   for all five samplers — and `run_batch` (planner-backed at > 1
//!   thread) stays bit-identical to the per-pair executors.
//! * **Permutation invariance.** Seeds are content-addressed, so
//!   shuffling the candidate list must not change a single ranked bit.
//! * **Schedule invariance.** Thread count (1 vs 4) and the
//!   kernel × relabel × cache engine configuration are pure
//!   performance knobs: identical rankings everywhere.
//! * **Top-K soundness.** `with_top_k(k)` returns exactly the first k
//!   entries of the full ranking — the significance-budget early exit
//!   never prunes a true top-K member.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tesc::batch::{run_batch, run_batch_per_pair, run_batch_serial, BatchRequest, EventPair};
use tesc::rank::{content_seed, rank_pairs, RankRequest};
use tesc::{BfsKernel, DensityCache, SamplerKind, Tail, TescConfig, TescEngine, VicinityIndex};
use tesc_datasets::{DblpConfig, DblpScenario};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn all_samplers() -> Vec<SamplerKind> {
    vec![
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::Importance { batch_size: 1 },
        SamplerKind::Importance { batch_size: 3 },
        SamplerKind::WholeGraph,
    ]
}

/// A shared-event candidate list: one base keyword against several
/// partners plus an extra cross pair, the planner's target shape.
fn candidate_pairs(s: &DblpScenario, seed: u64) -> Vec<EventPair> {
    let (base_a, base_b) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(seed));
    let mut pairs = vec![EventPair::new("base", base_a.clone(), base_b.clone())];
    for i in 0..3 {
        let (_, partner) = s.plant_positive_keyword_pair(12, 10, 0.4, &mut rng(seed + 1 + i));
        pairs.push(EventPair::new(
            format!("base×p{i}"),
            base_a.clone(),
            partner,
        ));
    }
    pairs.push(EventPair::new("cross", base_b, pairs[1].b.clone()));
    pairs
}

/// (label, score bits, z bits) fingerprint of a ranking.
fn fingerprint(report: &tesc::RankReport) -> Vec<(String, u64, u64)> {
    report
        .ranked
        .iter()
        .map(|e| (e.label.clone(), e.score.to_bits(), e.result.z().to_bits()))
        .collect()
}

#[test]
fn rank_scores_bit_identical_to_per_pair_engine_for_every_sampler() {
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(1));
    let idx = VicinityIndex::build(&s.graph, 2);
    let engine = TescEngine::with_vicinity_index(&s.graph, &idx);
    let pairs = candidate_pairs(&s, 2);
    let master = 99u64;
    for sampler in all_samplers() {
        let cfg = TescConfig::new(2)
            .with_sample_size(150)
            .with_tail(Tail::Upper)
            .with_sampler(sampler);
        let req = RankRequest::new(cfg)
            .with_seed(master)
            .with_pairs(pairs.clone());
        for threads in [1usize, 4] {
            let report = rank_pairs(&engine, &req.clone().with_threads(threads));
            assert_eq!(report.ranked.len(), pairs.len(), "{sampler}");
            for e in &report.ranked {
                let p = &pairs[e.index];
                let direct = engine
                    .test(
                        &p.a,
                        &p.b,
                        &cfg,
                        &mut StdRng::seed_from_u64(content_seed(master, &p.a, &p.b)),
                    )
                    .unwrap();
                assert_eq!(
                    direct.z().to_bits(),
                    e.result.z().to_bits(),
                    "{sampler} @ {threads}t: {} diverged from the engine path",
                    e.label
                );
                assert_eq!(&direct, &e.result, "{sampler} @ {threads}t: {}", e.label);
            }
        }
    }
}

#[test]
fn ranking_invariant_under_pair_list_permutation() {
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(10));
    let engine = TescEngine::new(&s.graph);
    let pairs = candidate_pairs(&s, 11);
    let cfg = TescConfig::new(2)
        .with_sample_size(150)
        .with_tail(Tail::Upper);
    let reference = fingerprint(&rank_pairs(
        &engine,
        &RankRequest::new(cfg).with_seed(3).with_pairs(pairs.clone()),
    ));
    for shuffle_seed in 0..4u64 {
        let mut shuffled = pairs.clone();
        shuffled.shuffle(&mut rng(100 + shuffle_seed));
        let got = fingerprint(&rank_pairs(
            &engine,
            &RankRequest::new(cfg)
                .with_seed(3)
                .with_pairs(shuffled.clone()),
        ));
        assert_eq!(
            reference, got,
            "permutation {shuffle_seed} changed the ranking"
        );
        // Top-K through the early exit must also be order-free.
        let top = rank_pairs(
            &engine,
            &RankRequest::new(cfg)
                .with_seed(3)
                .with_top_k(2)
                .with_pairs(shuffled),
        );
        assert_eq!(
            fingerprint(&top),
            reference[..2].to_vec(),
            "permutation {shuffle_seed} changed the top-2"
        );
    }
}

#[test]
fn ranking_invariant_under_threads_kernel_relabel_and_cache() {
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(20));
    let pairs = candidate_pairs(&s, 21);
    let cfg = TescConfig::new(2)
        .with_sample_size(150)
        .with_tail(Tail::Upper);
    let req = RankRequest::new(cfg).with_seed(5).with_pairs(pairs);
    let plain = TescEngine::new(&s.graph);
    let reference = fingerprint(&rank_pairs(&plain, &req.clone().with_threads(1)));
    let cache = std::sync::Arc::new(DensityCache::for_graph(&s.graph));
    let configurations: Vec<(&str, TescEngine<'_>)> = vec![
        (
            "scalar kernel",
            TescEngine::new(&s.graph).with_density_kernel(BfsKernel::Scalar),
        ),
        (
            "bitset kernel",
            TescEngine::new(&s.graph).with_density_kernel(BfsKernel::Bitset),
        ),
        (
            "bitset+relabel",
            TescEngine::new(&s.graph)
                .with_density_kernel(BfsKernel::Bitset)
                .with_relabeling(true),
        ),
        (
            "cache cold",
            TescEngine::new(&s.graph).with_density_cache(cache.clone()),
        ),
        (
            "cache warm",
            TescEngine::new(&s.graph).with_density_cache(cache),
        ),
    ];
    for (name, engine) in &configurations {
        for threads in [1usize, 4] {
            let got = fingerprint(&rank_pairs(engine, &req.clone().with_threads(threads)));
            assert_eq!(
                &reference, &got,
                "{name} @ {threads} threads changed the ranking"
            );
        }
    }
}

#[test]
fn top_k_prefix_property_holds_across_seeds() {
    // Seeded mini-property test: for a spread of master seeds, the
    // top-K ranking equals the truncated full ranking, scores are
    // descending, and ranks are 1..=len.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(30));
    let engine = TescEngine::new(&s.graph);
    let pairs = candidate_pairs(&s, 31);
    let cfg = TescConfig::new(1)
        .with_sample_size(120)
        .with_tail(Tail::Upper);
    for master in 0..8u64 {
        let req = RankRequest::new(cfg)
            .with_seed(master)
            .with_pairs(pairs.clone());
        let full = rank_pairs(&engine, &req);
        assert_eq!(full.pruned, 0);
        for (i, e) in full.ranked.iter().enumerate() {
            assert_eq!(e.rank, i + 1, "ranks are 1-based and dense");
        }
        for w in full.ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "seed {master}: descending scores");
        }
        for k in [1usize, 2, full.ranked.len()] {
            let top = rank_pairs(&engine, &req.clone().with_top_k(k));
            assert_eq!(
                fingerprint(&top),
                fingerprint(&full)[..k].to_vec(),
                "seed {master}: top-{k} is not the full prefix"
            );
        }
    }
}

#[test]
fn batch_executors_agree_on_shared_event_lists() {
    // The planner-backed run_batch, the legacy per-pair queue and the
    // serial reference must agree bit-for-bit on the ranking bench's
    // workload shape (index-derived seeds here — the batch contract).
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(40));
    let engine = TescEngine::new(&s.graph);
    let req = BatchRequest::new(TescConfig::new(2).with_sample_size(150))
        .with_seed(77)
        .with_pairs(candidate_pairs(&s, 41));
    let serial = run_batch_serial(&engine, &req);
    for threads in [2usize, 4] {
        let fused = run_batch(&engine, &req.clone().with_threads(threads));
        let queued = run_batch_per_pair(&engine, &req.clone().with_threads(threads));
        assert_eq!(serial.outcomes, fused.outcomes, "planner path @ {threads}t");
        assert_eq!(
            serial.outcomes, queued.outcomes,
            "per-pair path @ {threads}t"
        );
    }
}

#[test]
fn content_seeds_are_stable_across_label_and_representation() {
    // The ranking seed depends on occurrence *content* only: labels,
    // duplicates and ordering are irrelevant, so equal-content pairs
    // rank identically even under different names.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(50));
    let engine = TescEngine::new(&s.graph);
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(51));
    let mut shuffled_a = va.clone();
    shuffled_a.shuffle(&mut rng(52));
    shuffled_a.extend(va.iter().copied().take(5)); // duplicates
    let cfg = TescConfig::new(2)
        .with_sample_size(150)
        .with_tail(Tail::Upper);
    let report = rank_pairs(
        &engine,
        &RankRequest::new(cfg)
            .with_seed(9)
            .with_pair(EventPair::new("canonical", va, vb.clone()))
            .with_pair(EventPair::new("aliased", shuffled_a, vb)),
    );
    assert_eq!(report.ranked.len(), 2);
    assert_eq!(
        report.ranked[0].result, report.ranked[1].result,
        "equal content ⇒ equal sample ⇒ equal result"
    );
    // And randomized pair sets never produce NaN/absurd scores.
    let mut r = rng(53);
    for _ in 0..8 {
        let n = s.graph.num_nodes() as u32;
        let a: Vec<u32> = (0..30).map(|_| r.gen_range(0..n)).collect();
        let b: Vec<u32> = (0..30).map(|_| r.gen_range(0..n)).collect();
        let rep = rank_pairs(
            &engine,
            &RankRequest::new(cfg)
                .with_seed(9)
                .with_pair(EventPair::new("rand", a, b)),
        );
        for e in &rep.ranked {
            assert!(e.score.is_finite());
        }
    }
}

#[test]
fn doomed_budget_storm_never_poisons_shared_caches() {
    // Satellite (robustness PR): interrupted runs must unwind without
    // publishing partial state. A storm of budget-doomed rankings —
    // deadlines from "already expired" to "dies mid-run", exact and
    // anytime, all sharing one density cache — must leave that cache
    // exactly as consistent as before: the same request re-run without
    // a budget afterwards is bit-identical to a clean engine that
    // never saw an interruption.
    use std::time::Duration;
    use tesc::rank::{rank_pairs_budgeted, RankMode};
    use tesc::{Budget, DensityCache, TescError};

    let s = DblpScenario::build(DblpConfig::small(), &mut rng(70));
    let idx = VicinityIndex::build(&s.graph, 2);
    let cache = std::sync::Arc::new(DensityCache::for_graph(&s.graph));
    let pairs = candidate_pairs(&s, 71);
    let cfg = TescConfig::new(2)
        .with_sample_size(400)
        .with_tail(Tail::Upper);
    let exact_req = RankRequest::new(cfg)
        .with_seed(13)
        .with_threads(2)
        .with_pairs(pairs.clone());
    let anytime_req = exact_req
        .clone()
        .with_mode(RankMode::Anytime { eps: 0.2 })
        .with_top_k(2);

    // The storm: escalating deadlines so interruptions land at every
    // depth (before the first tier, mid-density, mid-scoring), plus an
    // explicit cancellation.
    for round in 0..10u64 {
        let doomed = TescEngine::with_vicinity_index(&s.graph, &idx)
            .with_density_cache(cache.clone())
            .with_budget(Budget::with_deadline(Duration::from_micros(round * 150)));
        for req in [&exact_req, &anytime_req] {
            if let Err(i) = rank_pairs_budgeted(&doomed, req) {
                assert!(!i.cancelled, "deadline exhaustion, not cancellation");
            }
        }
    }
    let cancel = Budget::cancellable();
    cancel.cancel();
    let cancelled_engine = TescEngine::with_vicinity_index(&s.graph, &idx)
        .with_density_cache(cache.clone())
        .with_budget(cancel);
    let err = rank_pairs_budgeted(&cancelled_engine, &exact_req)
        .expect_err("a cancelled budget must interrupt");
    assert!(err.cancelled);

    // The infallible wrapper surfaces the same interruption as typed
    // per-pair failures instead of panicking or returning junk.
    let wrapped = rank_pairs(&cancelled_engine, &exact_req);
    assert!(wrapped.ranked.is_empty());
    assert_eq!(wrapped.failed.len(), pairs.len());
    assert!(wrapped
        .failed
        .iter()
        .all(|f| matches!(f.result, Err(TescError::Interrupted(i)) if i.cancelled)));

    // After the storm: bit-identical to an engine that never saw it.
    let survivor = TescEngine::with_vicinity_index(&s.graph, &idx).with_density_cache(cache);
    let clean = TescEngine::with_vicinity_index(&s.graph, &idx)
        .with_density_cache(std::sync::Arc::new(DensityCache::for_graph(&s.graph)));
    assert_eq!(
        fingerprint(&rank_pairs(&survivor, &exact_req)),
        fingerprint(&rank_pairs(&clean, &exact_req)),
        "storm-surviving cache must replay the exact ranking bit for bit"
    );
    assert_eq!(
        fingerprint(&rank_pairs(&survivor, &anytime_req)),
        fingerprint(&rank_pairs(&clean, &anytime_req)),
        "storm-surviving cache must replay the anytime ranking bit for bit"
    );
}

#[test]
fn unlimited_budget_rankings_never_degrade() {
    // `degraded` is a deadline-only phenomenon: without a budget the
    // report must come back complete, whatever the mode.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(80));
    let engine = TescEngine::new(&s.graph);
    let cfg = TescConfig::new(2)
        .with_sample_size(200)
        .with_tail(Tail::Upper);
    let req = RankRequest::new(cfg)
        .with_seed(3)
        .with_pairs(candidate_pairs(&s, 81));
    use tesc::rank::RankMode;
    for mode in [RankMode::Exact, RankMode::Anytime { eps: 0.0 }] {
        let report = rank_pairs(&engine, &req.clone().with_mode(mode).with_top_k(3));
        assert!(!report.degraded, "{mode:?} degraded without a deadline");
        assert_eq!(report.ranked.len(), 3);
    }
}
