//! Black-box integration suite for the `tesc-serve` daemon.
//!
//! Every test drives a real server over real `std::net::TcpStream`
//! sockets — no handler is called directly. The suite locks down the
//! serving contract that later PRs (persistence, anytime queries,
//! windowed monitoring) will regression-test against:
//!
//! * happy path for every endpoint, with snapshot versions echoed;
//! * malformed requests are 4xx, never a panic, never a wedged server;
//! * oversized payloads are rejected before being buffered;
//! * admission control answers 503 at the door when saturated;
//! * graceful shutdown drains in-flight requests;
//! * concurrent mixed read/write load stays snapshot-consistent and
//!   bit-identical to offline engine runs on the echoed versions.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::context::TescContext;
use tesc::serve::json::Json;
use tesc::serve::{Server, ServerConfig};
use tesc::{EventStore, TescConfig};
use tesc_graph::generators::grid;
use tesc_graph::NodeId;

/// A minimal HTTP/1.1 client over one keep-alive connection.
struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { reader, stream }
    }

    /// Send a request and parse the response: `(status, body)`.
    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Json) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).expect("write head");
        self.stream.write_all(body.as_bytes()).expect("write body");
        self.read_response()
    }

    /// Write raw bytes (for malformed-request tests) and read whatever
    /// status comes back.
    fn raw(addr: SocketAddr, bytes: &[u8]) -> u16 {
        let mut client = Client::connect(addr);
        client.stream.write_all(bytes).expect("write raw");
        client.read_response().0
    }

    fn read_response(&mut self) -> (u16, Json) {
        let (status, _, body) = self.read_response_full();
        (status, body)
    }

    /// Like [`read_response`], but also returns the response headers
    /// with lowercased names (for `Retry-After` assertions).
    fn read_response_full(&mut self) -> (u16, HashMap<String, String>, Json) {
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("read status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        let mut headers = HashMap::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content length");
                }
                headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        let body = String::from_utf8(body).expect("utf8 body");
        (status, headers, Json::parse(&body).expect("json body"))
    }
}

/// A small deterministic context: 16×16 grid, two overlapping events.
fn test_context() -> TescContext {
    let mut events = EventStore::new();
    events.add_event("alpha", (0..40).collect());
    events.add_event("beta", (20..60).collect());
    events.add_event("gamma", (100..140).collect());
    TescContext::new(grid(16, 16), events, 2)
}

fn spawn(cfg: ServerConfig) -> Server {
    Server::spawn(test_context(), cfg).expect("spawn server")
}

fn default_cfg() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 16,
        max_body_bytes: 1 << 20,
        debug_endpoints: true,
        access_log: None,
        ..ServerConfig::default()
    }
}

fn get_i64(json: &Json, key: &str) -> i64 {
    json.get(key)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("missing integer `{key}` in {json:?}"))
}

fn get_str<'j>(json: &'j Json, key: &str) -> &'j str {
    json.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}` in {json:?}"))
}

#[test]
fn happy_path_covers_every_endpoint() {
    let server = spawn(default_cfg());
    let mut client = Client::connect(server.addr());

    // /test against registered events, server-side bit-identity check
    // against an offline engine run on the same (echoed) version.
    let (status, body) = client.request(
        "POST",
        "/test",
        r#"{"events":["alpha","beta"],"h":2,"n":80,"seed":11}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(get_i64(&body, "version"), 1);
    let result = body.get("result").expect("result");
    let server_z_bits = get_str(result, "z_bits").to_string();
    assert!(get_i64(result, "n_refs") > 0);
    let offline_ctx = test_context();
    let snap = offline_ctx.snapshot();
    let events = snap.events();
    let cfg = TescConfig::new(2).with_sample_size(80);
    let offline = snap
        .engine()
        .test(
            events.nodes(events.id_by_name("alpha").unwrap()),
            events.nodes(events.id_by_name("beta").unwrap()),
            &cfg,
            &mut StdRng::seed_from_u64(11),
        )
        .expect("offline test");
    assert_eq!(
        server_z_bits,
        format!("{:016x}", offline.z().to_bits()),
        "server z must be bit-identical to the offline engine"
    );

    // /test with explicit occurrence lists.
    let (status, body) = client.request(
        "POST",
        "/test",
        r#"{"a":[0,1,2,3,4,5,6,7],"b":[4,5,6,7,8,9,10,11],"n":50}"#,
    );
    assert_eq!(status, 200, "{body:?}");

    // /batch over name pairs and an explicit pair.
    let (status, body) = client.request(
        "POST",
        "/batch",
        r#"{"pairs":[["alpha","beta"],{"label":"adhoc","a":[0,1,2,3],"b":[10,11,12,13]}],"n":60,"seed":5}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    let outcomes = body.get("outcomes").and_then(Json::as_array).unwrap();
    assert_eq!(outcomes.len(), 2);
    assert_eq!(get_str(&outcomes[0], "label"), "alpha×beta");
    assert_eq!(outcomes[1].get("ok"), Some(&Json::Bool(true)));

    // /rank over all registered pairs.
    let (status, body) = client.request("POST", "/rank", r#"{"n":60,"seed":3}"#);
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(get_i64(&body, "candidates"), 3);
    let ranked = body.get("ranked").and_then(Json::as_array).unwrap();
    assert!(!ranked.is_empty());

    // /top-k with a focus event.
    let (status, body) = client.request(
        "POST",
        "/top-k",
        r#"{"focus":"alpha","k":1,"n":60,"seed":3}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(get_i64(&body, "candidates"), 2);
    assert_eq!(
        body.get("ranked").and_then(Json::as_array).unwrap().len(),
        1
    );

    // /top-k in anytime mode: mode and tier count are echoed, every
    // entry carries decided_at_n, and eps = 0 reproduces the exact
    // ranking bit for bit (z_bits).
    let (status, exact) = client.request("POST", "/top-k", r#"{"k":2,"n":200,"seed":3}"#);
    assert_eq!(status, 200, "{exact:?}");
    assert_eq!(get_str(&exact, "mode"), "exact");
    assert_eq!(get_i64(&exact, "rounds"), 1);
    let (status, zero) = client.request(
        "POST",
        "/top-k",
        r#"{"k":2,"n":200,"seed":3,"mode":"anytime:0"}"#,
    );
    assert_eq!(status, 200, "{zero:?}");
    assert_eq!(get_str(&zero, "mode"), "anytime:0");
    assert!(get_i64(&zero, "rounds") > 1, "n = 200 has several tiers");
    let exact_ranked = exact.get("ranked").and_then(Json::as_array).unwrap();
    let zero_ranked = zero.get("ranked").and_then(Json::as_array).unwrap();
    assert_eq!(exact_ranked.len(), zero_ranked.len());
    for (e, z) in exact_ranked.iter().zip(zero_ranked) {
        assert_eq!(get_str(e, "label"), get_str(z, "label"));
        assert_eq!(
            e.get("result").and_then(|r| r.get("z_bits")),
            z.get("result").and_then(|r| r.get("z_bits")),
            "anytime:0 must be bit-identical to exact"
        );
        assert_eq!(get_i64(e, "decided_at_n"), 200);
        assert_eq!(
            get_i64(z, "decided_at_n"),
            200,
            "eps = 0 never decides early"
        );
    }

    // Ingestion: stage edges + a new event, then commit.
    let (status, body) = client.request("POST", "/edges", r#"{"edges":[[0,17],[1,18]]}"#);
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(get_i64(&body, "staged_edges"), 2);
    let (status, body) = client.request(
        "POST",
        "/events",
        r#"{"name":"delta","nodes":[7,8,9,200,201]}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(get_i64(&body, "staged_events"), 1);
    let (status, body) = client.request("POST", "/commit", "");
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("committed"), Some(&Json::Bool(true)));
    // One edge batch (v2) + one event registration (v3).
    assert_eq!(get_i64(&body, "version"), 3);

    // The committed event is immediately queryable.
    let (status, body) = client.request(
        "POST",
        "/test",
        r#"{"events":["alpha","delta"],"n":50,"seed":2}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(get_i64(&body, "version"), 3);

    // An empty commit is a no-op.
    let (status, body) = client.request("POST", "/commit", "");
    assert_eq!(status, 200);
    assert_eq!(body.get("committed"), Some(&Json::Bool(false)));

    // /stats reconciles with what we just did.
    let (status, stats) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(get_i64(&stats, "version"), 3);
    let endpoints = stats.get("endpoints").expect("endpoints");
    assert_eq!(get_i64(endpoints.get("test").unwrap(), "requests"), 3);
    assert_eq!(get_i64(endpoints.get("commit").unwrap(), "requests"), 2);
    let cache = stats.get("cache").expect("cache");
    assert_eq!(
        get_i64(cache, "fresh_inserts"),
        get_i64(cache, "entries") + get_i64(cache, "evictions"),
        "cache books must balance"
    );
    let memory = stats.get("memory").expect("memory");
    assert!(get_i64(memory, "graph_plain_bytes") > 0);
    assert!(get_i64(memory, "graph_compressed_bytes") > 0);
    assert!(
        get_i64(memory, "graph_compressed_bytes") < get_i64(memory, "graph_plain_bytes"),
        "delta/varint encoding must undercut plain CSR"
    );
    assert!(get_i64(memory, "event_bytes") > 0);
    assert_eq!(
        get_i64(memory, "cache_resident_bytes"),
        get_i64(cache, "resident_bytes"),
        "memory section mirrors the cache's live figure"
    );
    for (name, ep) in match endpoints {
        Json::Obj(members) => members.iter(),
        _ => panic!("endpoints must be an object"),
    } {
        assert_eq!(
            get_i64(ep, "server_errors"),
            0,
            "endpoint {name} reported a 5xx"
        );
        // Every request lands in exactly one log₂-µs latency bucket.
        let hist = ep
            .get("latency_us_log2")
            .and_then(Json::as_array)
            .expect("latency histogram");
        assert_eq!(hist.len(), tesc::serve::metrics::LATENCY_BUCKETS);
        let mass: i64 = hist
            .iter()
            .map(|b| match b {
                Json::Int(v) => *v,
                other => panic!("histogram bucket {other:?}"),
            })
            .sum();
        assert_eq!(
            mass,
            get_i64(ep, "requests"),
            "endpoint {name}: histogram mass must equal its request count"
        );
    }

    server.shutdown_and_join();
}

#[test]
fn malformed_requests_get_4xx_and_never_wedge_the_server() {
    let server = spawn(default_cfg());
    let addr = server.addr();

    // Raw protocol garbage (each on a fresh connection).
    for (raw, expect) in [
        (&b"GARBAGE\r\n\r\n"[..], 405u16),
        (&b"DELETE /stats HTTP/1.1\r\n\r\n"[..], 405),
        (&b"GET /stats HTTP/9.9\r\n\r\n"[..], 400),
        (&b"GET /stats HTTP/1.1 extra\r\n\r\n"[..], 400),
        (
            &b"GET /stats HTTP/1.1\r\nbroken header line\r\n\r\n"[..],
            400,
        ),
        (
            &b"POST /test HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            400,
        ),
        (
            &b"POST /test HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
            400,
        ),
    ] {
        assert_eq!(
            Client::raw(addr, raw),
            expect,
            "{:?}",
            String::from_utf8_lossy(raw)
        );
    }

    // Well-formed HTTP, malformed or invalid bodies.
    let mut client = Client::connect(addr);
    for (path, body, expect) in [
        ("/test", "this is not json", 400),
        ("/test", "[1,2,3]", 400),
        ("/test", "{}", 400),
        ("/test", r#"{"a":[0],"b":[1],"h":99}"#, 400),
        ("/test", r#"{"a":[0],"b":[99999]}"#, 400),
        ("/test", r#"{"a":[0],"b":[1],"n":1}"#, 400),
        ("/test", r#"{"events":["alpha"]}"#, 400),
        ("/test", r#"{"events":["alpha","nope"]}"#, 400),
        ("/test", r#"{"a":[0],"b":[1],"sampler":"psychic"}"#, 400),
        ("/test", r#"{"a":[0],"b":[1],"alpha":7.0}"#, 400),
        ("/test", r#"{"a":[0],"b":[1],"seed":-4}"#, 400),
        ("/batch", r#"{"pairs":[]}"#, 400),
        ("/batch", r#"{"pairs":[["alpha"]]}"#, 400),
        ("/test", r#"{"a":[0],"b":[1],"deadline_ms":0}"#, 400),
        ("/test", r#"{"a":[0],"b":[1],"deadline_ms":"soon"}"#, 400),
        ("/rank", r#"{"deadline_ms":-5}"#, 400),
        ("/rank", r#"{"focus":"nope"}"#, 400),
        ("/rank", r#"{"mode":7}"#, 400),
        ("/rank", r#"{"mode":"psychic"}"#, 400),
        ("/top-k", r#"{"k":0}"#, 400),
        ("/top-k", r#"{"k":1,"mode":"anytime:1.5"}"#, 400),
        ("/top-k", r#"{"k":1,"mode":"anytime:"}"#, 400),
        ("/edges", r#"{"edges":[[0]]}"#, 400),
        ("/edges", r#"{"edges":[[0,"x"]]}"#, 400),
        ("/events", r#"{"name":"","nodes":[1]}"#, 400),
        ("/events", r#"{"name":"x"}"#, 400),
        ("/nope", "", 404),
    ] {
        let (status, _) = client.request("POST", path, body);
        assert_eq!(status, expect, "POST {path} {body}");
    }

    // Tests that *run* but cannot produce a statistic are 422.
    let (status, _) = client.request("POST", "/test", r#"{"a":[],"b":[]}"#);
    assert_eq!(status, 422);

    // A commit whose staged edges are invalid is rejected and
    // publishes nothing.
    let (status, _) = client.request("POST", "/edges", r#"{"edges":[[5,5]]}"#);
    assert_eq!(status, 200, "staging does not validate self-loops yet");
    let (status, _) = client.request("POST", "/commit", "");
    assert_eq!(status, 400);
    let (status, stats) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(get_i64(&stats, "version"), 1, "rejected commit published");

    // After all of that the server still serves correct queries, and
    // has recorded zero 5xx.
    let (status, body) = client.request("POST", "/test", r#"{"events":["alpha","beta"],"n":50}"#);
    assert_eq!(status, 200, "{body:?}");
    let (_, stats) = client.request("GET", "/stats", "");
    let endpoints = stats.get("endpoints").unwrap();
    let total_5xx: i64 = match endpoints {
        Json::Obj(members) => members
            .iter()
            .map(|(_, ep)| get_i64(ep, "server_errors"))
            .sum(),
        _ => panic!(),
    };
    assert_eq!(total_5xx, 0, "malformed input must never 5xx");

    server.shutdown_and_join();
}

#[test]
fn oversized_payloads_are_rejected_up_front() {
    let mut cfg = default_cfg();
    cfg.max_body_bytes = 256;
    let server = spawn(cfg);

    let big = format!(r#"{{"a":[{}],"b":[1]}}"#, "0,".repeat(400) + "0");
    assert!(big.len() > 256);
    let mut client = Client::connect(server.addr());
    let (status, body) = client.request("POST", "/test", &big);
    assert_eq!(status, 413, "{body:?}");

    // The connection is closed after a 413, but the server keeps
    // serving fresh connections.
    let mut client = Client::connect(server.addr());
    let (status, _) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);

    server.shutdown_and_join();
}

#[test]
fn saturated_server_answers_503_at_the_door() {
    let mut cfg = default_cfg();
    cfg.workers = 1;
    cfg.queue_depth = 1;
    let server = spawn(cfg);
    let addr = server.addr();

    // Occupy the only worker deterministically.
    let blocker = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        client.request("POST", "/sleep", r#"{"ms":700}"#)
    });
    std::thread::sleep(Duration::from_millis(150));

    // The worker is busy; the queue holds one connection; the next
    // connections must be turned away with 503.
    let parked = TcpStream::connect(addr).expect("parked connection");
    std::thread::sleep(Duration::from_millis(100));
    let mut saw_503 = false;
    for _ in 0..5 {
        let mut client = Client::connect(addr);
        let head = "GET /stats HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n";
        client.stream.write_all(head.as_bytes()).expect("write");
        let (status, headers, _) = client.read_response_full();
        if status == 503 {
            // Satellite: at-the-door 503s tell the client when to come
            // back instead of leaving them to guess.
            assert_eq!(
                headers.get("retry-after").map(String::as_str),
                Some("1"),
                "503 must carry Retry-After"
            );
            saw_503 = true;
            break;
        }
    }
    assert!(saw_503, "admission control never answered 503");

    // The blocked request still completes fine.
    let (status, body) = blocker.join().expect("blocker thread");
    assert_eq!(status, 200, "{body:?}");
    drop(parked);

    // Once drained, the same server accepts again and reports the
    // rejections (503s at the door are connection-level, not 5xx).
    std::thread::sleep(Duration::from_millis(200));
    let mut client = Client::connect(addr);
    let (status, stats) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    let queue = stats.get("queue").unwrap();
    assert!(get_i64(queue, "rejected_connections") >= 1);
    assert!(
        get_i64(queue, "rejected_queue_full") >= 1,
        "the 503s above were queue-full rejections: {queue:?}"
    );
    assert_eq!(
        get_i64(queue, "rejected_queue_full") + get_i64(queue, "rejected_shutdown"),
        get_i64(queue, "rejected_connections"),
        "per-cause rejection counters must sum to the total"
    );
    let wait_hist = queue
        .get("wait_us_log2")
        .and_then(Json::as_array)
        .expect("queue wait histogram");
    assert_eq!(wait_hist.len(), tesc::serve::metrics::LATENCY_BUCKETS);
    let wait_mass: i64 = wait_hist
        .iter()
        .map(|b| b.as_i64().expect("bucket count"))
        .sum();
    assert!(
        wait_mass >= 1,
        "every dequeued connection lands in the wait histogram"
    );
    let endpoints = stats.get("endpoints").unwrap();
    let total_5xx: i64 = match endpoints {
        Json::Obj(members) => members
            .iter()
            .map(|(_, ep)| get_i64(ep, "server_errors"))
            .sum(),
        _ => panic!(),
    };
    assert_eq!(total_5xx, 0);

    server.shutdown_and_join();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let mut cfg = default_cfg();
    cfg.workers = 2;
    let server = spawn(cfg);
    let addr = server.addr();

    // A slow request in flight on worker 1...
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        client.request("POST", "/sleep", r#"{"ms":400}"#)
    });
    std::thread::sleep(Duration::from_millis(100));

    // ... while /shutdown arrives on worker 2.
    let mut client = Client::connect(addr);
    let (status, body) = client.request("POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(body.get("shutting_down"), Some(&Json::Bool(true)));

    // The in-flight request must complete with a full response.
    let (status, body) = in_flight.join().expect("in-flight thread");
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(get_i64(&body, "slept_ms"), 400);

    // And the server winds down completely.
    server.join();
}

#[test]
fn real_binary_serves_over_a_real_socket() {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tesc-serve"))
        .args([
            "--demo",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--h",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn tesc-serve");
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("stdout"))
        .read_line(&mut line)
        .expect("read listen line");
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .parse()
        .expect("socket addr");

    let mut client = Client::connect(addr);
    let (status, body) = client.request(
        "POST",
        "/test",
        r#"{"events":["wireless","sensor"],"h":1,"n":120,"seed":9}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(
        get_str(body.get("result").unwrap(), "verdict"),
        "positive",
        "the demo scenario plants an attracting pair"
    );
    let (status, _) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    let (status, _) = client.request("POST", "/shutdown", "");
    assert_eq!(status, 200);
    let status = child.wait().expect("wait for child");
    assert!(status.success(), "server exited with {status:?}");
}

/// Satellite 2: N reader threads fire `/test` queries while a writer
/// streams edge commits. Every response must be internally consistent
/// with exactly one snapshot version (the echoed one), and replaying
/// each logged query offline against a reconstruction of that version
/// must reproduce the z-score bit for bit.
#[test]
fn concurrent_reads_and_writes_stay_snapshot_consistent_and_bit_identical() {
    const READERS: usize = 4;
    const QUERIES: usize = 6;
    const COMMITS: usize = 5;
    /// Batch `i` adds these (diagonal, not-in-grid, distinct) edges.
    fn edge_batch(i: usize) -> Vec<(NodeId, NodeId)> {
        let base = (4 * i) as NodeId;
        vec![(base, base + 17), (base + 1, base + 18)]
    }

    let server = spawn(default_cfg());
    let addr = server.addr();

    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        for i in 0..COMMITS {
            let edges: Vec<String> = edge_batch(i)
                .iter()
                .map(|(u, v)| format!("[{u},{v}]"))
                .collect();
            let (status, _) = client.request(
                "POST",
                "/edges",
                &format!(r#"{{"edges":[{}]}}"#, edges.join(",")),
            );
            assert_eq!(status, 200);
            let (status, body) = client.request("POST", "/commit", "");
            assert_eq!(status, 200, "{body:?}");
            assert_eq!(get_i64(&body, "version"), (i + 2) as i64);
            std::thread::sleep(Duration::from_millis(40));
        }
    });

    // Each reader logs (version, request params, z_bits, statistic).
    struct Logged {
        version: u64,
        reader: usize,
        query: usize,
        z_bits: String,
        statistic_bits: u64,
    }
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut log = Vec::with_capacity(QUERIES);
                for q in 0..QUERIES {
                    let (a0, b0) = ((r * 7) as u64, (r * 7 + 12) as u64);
                    let body = format!(
                        r#"{{"a":[{}],"b":[{}],"h":2,"n":60,"seed":{}}}"#,
                        (a0..a0 + 24)
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                        (b0..b0 + 24)
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                        r * 1000 + q
                    );
                    let (status, resp) = client.request("POST", "/test", &body);
                    assert_eq!(status, 200, "{resp:?}");
                    let result = resp.get("result").expect("result");
                    log.push(Logged {
                        version: get_i64(&resp, "version") as u64,
                        reader: r,
                        query: q,
                        z_bits: get_str(result, "z_bits").to_string(),
                        statistic_bits: result
                            .get("statistic")
                            .and_then(Json::as_f64)
                            .expect("statistic")
                            .to_bits(),
                    });
                    std::thread::sleep(Duration::from_millis(15));
                }
                log
            })
        })
        .collect();

    writer.join().expect("writer");
    let logs: Vec<Logged> = readers
        .into_iter()
        .flat_map(|h| h.join().expect("reader"))
        .collect();
    server.shutdown_and_join();

    // Offline replay: rebuild every version the server can have
    // published, then re-run each logged query against its version.
    let ctx = test_context();
    let mut snapshots = HashMap::new();
    snapshots.insert(1u64, ctx.snapshot());
    for i in 0..COMMITS {
        let snap = ctx.add_edges(&edge_batch(i)).expect("offline ingest");
        snapshots.insert(snap.version(), snap);
    }
    assert_eq!(snapshots.len(), COMMITS + 1);

    for entry in &logs {
        assert!(
            (1..=(COMMITS as u64 + 1)).contains(&entry.version),
            "response echoed impossible version {}",
            entry.version
        );
        let snap = &snapshots[&entry.version];
        let (a0, b0) = (
            (entry.reader * 7) as NodeId,
            (entry.reader * 7 + 12) as NodeId,
        );
        let a: Vec<NodeId> = (a0..a0 + 24).collect();
        let b: Vec<NodeId> = (b0..b0 + 24).collect();
        let cfg = TescConfig::new(2).with_sample_size(60);
        let offline = snap
            .engine()
            .test(
                &a,
                &b,
                &cfg,
                &mut StdRng::seed_from_u64((entry.reader * 1000 + entry.query) as u64),
            )
            .expect("offline replay");
        assert_eq!(
            entry.z_bits,
            format!("{:016x}", offline.z().to_bits()),
            "reader {} query {} on v{}: z not bit-identical",
            entry.reader,
            entry.query,
            entry.version
        );
        assert_eq!(
            entry.statistic_bits,
            offline.statistic().to_bits(),
            "reader {} query {} on v{}: statistic not bit-identical",
            entry.reader,
            entry.query,
            entry.version
        );
    }
}

/// Send a request with explicit extra headers (for content
/// negotiation tests) and parse the response.
fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, Json) {
    let mut client = Client::connect(addr);
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    client
        .stream
        .write_all(head.as_bytes())
        .expect("write head");
    client
        .stream
        .write_all(body.as_bytes())
        .expect("write body");
    client.read_response()
}

#[test]
fn content_negotiation_enforces_json_in_and_json_out() {
    let server = spawn(default_cfg());
    let addr = server.addr();
    let body = r#"{"edges":[[0,17]]}"#;

    // A POST body explicitly declared as something other than JSON is
    // refused up front with 415 — before any handler touches it.
    let (status, resp) = request_with_headers(
        addr,
        "POST",
        "/edges",
        &[("Content-Type", "text/plain")],
        body,
    );
    assert_eq!(status, 415, "non-JSON body must be 415, got {resp:?}");
    assert!(
        get_str(&resp, "error").contains("text/plain"),
        "the 415 should name the offending media type: {resp:?}"
    );

    // Declared JSON — with or without parameters — is accepted.
    for declared in ["application/json", "application/JSON; charset=utf-8"] {
        let (status, _) =
            request_with_headers(addr, "POST", "/edges", &[("Content-Type", declared)], body);
        assert_eq!(status, 200, "`{declared}` must be accepted");
    }

    // A bodyless POST may declare whatever it likes (a curl quirk):
    // there is nothing to misinterpret.
    let (status, _) = request_with_headers(
        addr,
        "POST",
        "/commit",
        &[("Content-Type", "text/plain")],
        "",
    );
    assert_eq!(status, 200, "empty body: Content-Type is irrelevant");

    // Every endpoint answers JSON only: an Accept that cannot take
    // JSON is refused with 406.
    let (status, resp) =
        request_with_headers(addr, "GET", "/stats", &[("Accept", "text/html")], "");
    assert_eq!(status, 406, "Accept: text/html must be 406, got {resp:?}");

    // ... while JSON-compatible Accept headers all pass.
    for accept in [
        "application/json",
        "*/*",
        "application/*",
        "text/html, application/json;q=0.8",
    ] {
        let (status, _) = request_with_headers(addr, "GET", "/stats", &[("Accept", accept)], "");
        assert_eq!(status, 200, "Accept `{accept}` must be acceptable");
    }

    // The 4xx responses left the connection healthy for real work.
    let mut client = Client::connect(addr);
    let (status, _) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    server.shutdown_and_join();
}

#[test]
fn access_log_appends_one_json_line_per_request() {
    let log_path = std::env::temp_dir().join(format!(
        "tesc-access-{}-{}.jsonl",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let cfg = ServerConfig {
        access_log: Some(log_path.clone()),
        ..default_cfg()
    };
    let server = spawn(cfg);
    let mut client = Client::connect(server.addr());
    let (status, _) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    let (status, _) = client.request("POST", "/edges", r#"{"edges":[[0,17]]}"#);
    assert_eq!(status, 200);
    let (status, _) = client.request("POST", "/nope", "");
    assert_eq!(status, 404);
    server.shutdown_and_join();

    let log = std::fs::read_to_string(&log_path).expect("access log file");
    std::fs::remove_file(&log_path).ok();
    // stats + edges + the 404 (shutdown_and_join bypasses HTTP).
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 3, "one line per request, got:\n{log}");
    let mut statuses = Vec::new();
    for line in &lines {
        let entry = Json::parse(line).unwrap_or_else(|e| panic!("bad log line {line}: {e:?}"));
        assert!(get_i64(&entry, "ts_us") > 0, "{line}");
        assert!(get_i64(&entry, "us") >= 0, "{line}");
        assert!(get_i64(&entry, "bytes") > 0, "{line}");
        assert!(get_i64(&entry, "version") >= 1, "{line}");
        get_str(&entry, "endpoint");
        statuses.push(get_i64(&entry, "status"));
    }
    assert!(statuses.contains(&200) && statuses.contains(&404), "{log}");
}

/// Spawn the real `tesc-serve` binary and scrape the bound address
/// from its `listening on ADDR` stdout line.
fn spawn_serve_binary(args: &[&str]) -> (std::process::Child, SocketAddr) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tesc-serve"))
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn tesc-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

#[test]
fn data_dir_round_trip_survives_kill_nine() {
    let scratch = std::env::temp_dir().join(format!(
        "tesc-serve-roundtrip-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let data_dir = scratch.join("data");

    // Initial state files: a 10×10 grid and two events.
    let graph_path = scratch.join("graph.txt");
    let events_path = scratch.join("events.txt");
    let graph = grid(10, 10);
    let mut edges = format!("{} {}\n", graph.num_nodes(), graph.num_edges());
    for (u, v) in graph.edges() {
        edges.push_str(&format!("{u} {v}\n"));
    }
    std::fs::write(&graph_path, edges).expect("write graph");
    std::fs::write(
        &events_path,
        "alpha 0,1,2,3,4,11,12,13\nbeta 2,3,4,5,6,14,15,16\n",
    )
    .expect("write events");
    let graph_arg = graph_path.to_str().unwrap().to_string();
    let events_arg = events_path.to_str().unwrap().to_string();
    let data_arg = data_dir.to_str().unwrap().to_string();

    // Boot with an empty data dir, ingest a batch, query.
    let (mut child, addr) = spawn_serve_binary(&[
        "--graph",
        &graph_arg,
        "--events",
        &events_arg,
        "--data-dir",
        &data_arg,
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--h",
        "1",
    ]);
    let mut client = Client::connect(addr);
    let (status, _) = client.request("POST", "/edges", r#"{"edges":[[0,11],[1,12]]}"#);
    assert_eq!(status, 200);
    let (status, _) = client.request(
        "POST",
        "/events",
        r#"{"name":"gamma","nodes":[50,51,52,60,61,62]}"#,
    );
    assert_eq!(status, 200);
    let (status, commit) = client.request("POST", "/commit", "");
    assert_eq!(status, 200);
    let committed_version = get_i64(&commit, "version");
    assert!(committed_version > 1);

    let rank_body = r#"{"seed":7,"n":80,"h":1}"#;
    let (status, before) = client.request("POST", "/rank", rank_body);
    assert_eq!(status, 200, "pre-crash rank failed: {before:?}");
    assert_eq!(get_i64(&before, "version"), committed_version);

    // SIGKILL — no shutdown hook runs, exactly like a power cut. The
    // WAL was fsync'd before each commit was acknowledged, so nothing
    // acknowledged may be lost.
    child.kill().expect("kill -9 the server");
    child.wait().expect("reap");

    // Reboot from the data dir alone (initial-state flags ignored).
    let (mut child, addr) = spawn_serve_binary(&[
        "--data-dir",
        &data_arg,
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--h",
        "1",
    ]);
    let mut client = Client::connect(addr);
    let (status, stats) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(
        get_i64(&stats, "version"),
        committed_version,
        "rebooted server must resume at the acknowledged version"
    );
    let (status, after) = client.request("POST", "/rank", rank_body);
    assert_eq!(status, 200);
    assert_eq!(
        before.encode(),
        after.encode(),
        "post-recovery /rank must be bit-identical to the pre-crash response"
    );

    // The recovered server keeps accepting durable commits.
    let (status, _) = client.request("POST", "/edges", r#"{"edges":[[5,16]]}"#);
    assert_eq!(status, 200);
    let (status, commit2) = client.request("POST", "/commit", "");
    assert_eq!(status, 200);
    assert_eq!(get_i64(&commit2, "version"), committed_version + 1);

    let (status, _) = client.request("POST", "/shutdown", "");
    assert_eq!(status, 200);
    child.wait().expect("clean shutdown");
    std::fs::remove_dir_all(&scratch).ok();
}

/// Satellite 1 (slowloris guard): a client that opens a connection and
/// then stalls — or trickles a request forever — is cut off with 408
/// once the *total* head+body read budget is spent, instead of pinning
/// a worker for as long as it cares to keep the socket open.
#[test]
fn slowloris_clients_get_408_within_the_read_budget() {
    let mut cfg = default_cfg();
    cfg.max_request_read = Duration::from_millis(300);
    let server = spawn(cfg);
    let addr = server.addr();

    // Partial request head, then silence. The read clock starts at the
    // first byte, so the 408 lands shortly after the 300 ms budget —
    // not after the 5 s default, and not never.
    let start = std::time::Instant::now();
    let mut client = Client::connect(addr);
    client
        .stream
        .write_all(b"POST /test HTTP/1.1\r\nHost: slow")
        .expect("partial head");
    let (status, body) = client.read_response();
    assert_eq!(status, 408, "{body:?}");
    let waited = start.elapsed();
    assert!(
        waited >= Duration::from_millis(250),
        "408 fired after {waited:?}, before the budget was spent"
    );
    assert!(
        waited < Duration::from_millis(2000),
        "408 took {waited:?}; the guard must track the configured budget"
    );

    // A declared body that never arrives is the same attack one layer
    // down; the body read shares the one budget with the head.
    let mut client = Client::connect(addr);
    client
        .stream
        .write_all(b"POST /test HTTP/1.1\r\nHost: slow\r\nContent-Length: 64\r\n\r\n{\"a\"")
        .expect("partial body");
    let (status, _) = client.read_response();
    assert_eq!(status, 408);

    // Trickling one byte at a time does not reset the clock.
    let mut client = Client::connect(addr);
    for byte in b"POST /test HTTP/1.1\r\nHost: t\r\nContent-Length: 2000\r\n" {
        if client.stream.write_all(&[*byte]).is_err() {
            break; // server already gave up on us — that's the point
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, _) = client.read_response();
    assert_eq!(status, 408, "trickled bytes must not extend the budget");

    // None of that wedged the server for honest clients.
    let mut client = Client::connect(addr);
    let (status, _) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    server.shutdown_and_join();
}

/// The tentpole acceptance test: a `/rank` that would run for many
/// seconds uncapped, sent with a small `deadline_ms`, must come back
/// within deadline + slack — either as a 504 or as a degraded 200
/// carrying the best ranking decided in time — while a concurrent
/// no-deadline `/test` on another connection stays bit-identical to an
/// offline engine run. Deadlines shed load; they never bend results.
#[test]
fn doomed_rank_answers_within_deadline_while_healthy_queries_stay_exact() {
    // Big enough that this /rank (6 pairs, n = 5M) takes many seconds
    // uncapped: the deadline is what brings it back in milliseconds.
    // A preferential-attachment graph puts hubs in every 2-hop
    // vicinity, so the reference population is tens of thousands of
    // nodes with expensive BFS each — a grid would saturate at a
    // few hundred refs and finish honestly under any deadline.
    fn heavy_context() -> TescContext {
        let graph =
            tesc_graph::generators::barabasi_albert(20_000, 5, &mut StdRng::seed_from_u64(1234));
        let mut events = EventStore::new();
        events.add_event("alpha", (0..400).collect());
        events.add_event("beta", (200..600).collect());
        events.add_event("gamma", (500..900).collect());
        events.add_event("delta", (800..1200).collect());
        TescContext::new(graph, events, 2)
    }
    let server = Server::spawn(heavy_context(), default_cfg()).expect("spawn server");
    let addr = server.addr();

    const DEADLINE_MS: u64 = 300;
    const SLACK_MS: u64 = 250;
    let doomed = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        let start = std::time::Instant::now();
        let (status, body) = client.request(
            "POST",
            "/rank",
            &format!(r#"{{"n":5000000,"seed":3,"deadline_ms":{DEADLINE_MS}}}"#),
        );
        (status, body, start.elapsed())
    });

    // Concurrent healthy query, no deadline: exact answer, exact bits.
    let mut client = Client::connect(addr);
    let (status, resp) = client.request(
        "POST",
        "/test",
        r#"{"events":["alpha","beta"],"h":2,"n":80,"seed":11}"#,
    );
    assert_eq!(status, 200, "{resp:?}");
    let offline_ctx = heavy_context();
    let snap = offline_ctx.snapshot();
    let events = snap.events();
    let offline = snap
        .engine()
        .test(
            events.nodes(events.id_by_name("alpha").unwrap()),
            events.nodes(events.id_by_name("beta").unwrap()),
            &TescConfig::new(2).with_sample_size(80),
            &mut StdRng::seed_from_u64(11),
        )
        .expect("offline test");
    assert_eq!(
        get_str(resp.get("result").unwrap(), "z_bits"),
        format!("{:016x}", offline.z().to_bits()),
        "a deadline elsewhere must not bend a healthy query's bits"
    );

    let (status, body, elapsed) = doomed.join().expect("doomed thread");
    assert!(
        elapsed <= Duration::from_millis(DEADLINE_MS + SLACK_MS),
        "doomed /rank took {elapsed:?}, budget was {DEADLINE_MS} ms + {SLACK_MS} ms slack"
    );
    match status {
        // Graceful degradation: the anytime executor got at least one
        // tier through and answers with what it decided in time.
        200 => {
            assert_eq!(
                body.get("degraded"),
                Some(&Json::Bool(true)),
                "an uncapped-many-seconds rank cannot finish honestly in {DEADLINE_MS} ms: {body:?}"
            );
            assert_eq!(get_i64(&body, "deadline_ms"), DEADLINE_MS as i64);
            let ranked = body.get("ranked").and_then(Json::as_array).expect("ranked");
            assert!(!ranked.is_empty(), "degraded 200 must carry a ranking");
            for entry in ranked {
                assert!(
                    get_i64(entry, "decided_at_n") >= 1,
                    "degraded entries still expose their evidence level: {entry:?}"
                );
            }
        }
        // Or the budget died before anything was decided: a typed 504
        // with the elapsed/limit pair surfaced for resizing.
        504 => {
            assert!(get_i64(&body, "elapsed_ms") >= 0);
            assert_eq!(get_i64(&body, "deadline_ms"), DEADLINE_MS as i64);
            assert_eq!(body.get("cancelled"), Some(&Json::Bool(false)));
        }
        other => panic!("doomed /rank answered {other}: {body:?}"),
    }

    // The accounting shows up in /stats either way (a degraded 200
    // bumps both the degraded and timeout counters).
    let (status, stats) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    let deadlines = stats.get("deadlines").expect("deadlines section");
    assert!(get_i64(deadlines, "timeouts") >= 1, "{deadlines:?}");
    assert_eq!(get_i64(deadlines, "cancelled"), 0);
    server.shutdown_and_join();
}

/// Satellite 3 (cancellation storm): doomed queries hammering the
/// server while a writer streams commits must leave it fully
/// serviceable, with every published snapshot — and every shared
/// cache — exactly as consistent as if the storm never happened:
/// identical post-storm queries are bit-identical to offline replay
/// and to a twin server that never saw a deadline.
#[test]
fn cancellation_storm_keeps_server_serviceable_and_state_consistent() {
    const STORMERS: usize = 4;
    const DOOMED: usize = 5;
    const COMMITS: usize = 4;
    fn edge_batch(i: usize) -> Vec<(NodeId, NodeId)> {
        let base = (4 * i) as NodeId;
        vec![(base, base + 17), (base + 1, base + 18)]
    }

    let server = spawn(default_cfg());
    let addr = server.addr();

    // Ingestion races the storm: acknowledged commits must publish
    // no matter how many queries around them are being torn down.
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        for i in 0..COMMITS {
            let edges: Vec<String> = edge_batch(i)
                .iter()
                .map(|(u, v)| format!("[{u},{v}]"))
                .collect();
            let (status, _) = client.request(
                "POST",
                "/edges",
                &format!(r#"{{"edges":[{}]}}"#, edges.join(",")),
            );
            assert_eq!(status, 200);
            let (status, body) = client.request("POST", "/commit", "");
            assert_eq!(status, 200, "{body:?}");
            std::thread::sleep(Duration::from_millis(25));
        }
    });
    let stormers: Vec<_> = (0..STORMERS)
        .map(|s| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut timed_out = 0i64;
                for q in 0..DOOMED {
                    let (status, body) = client.request(
                        "POST",
                        "/rank",
                        &format!(r#"{{"n":2000000,"seed":{},"deadline_ms":1}}"#, s * 100 + q),
                    );
                    match status {
                        // A degraded best-effort answer (counted as a
                        // timeout), the rare full finish inside 1 ms,
                        // or a clean typed 504 — never a wedge, never
                        // a malformed response.
                        200 => match body.get("degraded") {
                            Some(&Json::Bool(true)) => timed_out += 1,
                            Some(&Json::Bool(false)) => {}
                            other => panic!("deadline'd 200 without a degraded marker: {other:?}"),
                        },
                        504 => {
                            assert_eq!(get_i64(&body, "deadline_ms"), 1);
                            timed_out += 1;
                        }
                        other => panic!("doomed rank answered {other}: {body:?}"),
                    }
                }
                timed_out
            })
        })
        .collect();
    writer.join().expect("writer");
    let timed_out: i64 = stormers
        .into_iter()
        .map(|s| s.join().expect("stormer"))
        .sum();
    assert!(timed_out >= 1, "the storm never produced a single timeout");

    // Serviceable, and bit-identical to offline replay: rebuild the
    // final version offline and replay a fresh query against it.
    let mut client = Client::connect(addr);
    let (status, resp) = client.request(
        "POST",
        "/test",
        r#"{"events":["alpha","beta"],"h":2,"n":80,"seed":21}"#,
    );
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(get_i64(&resp, "version"), (COMMITS + 1) as i64);
    let offline_ctx = test_context();
    let mut final_snap = offline_ctx.snapshot();
    for i in 0..COMMITS {
        final_snap = offline_ctx
            .add_edges(&edge_batch(i))
            .expect("offline ingest");
    }
    let events = final_snap.events();
    let offline = final_snap
        .engine()
        .test(
            events.nodes(events.id_by_name("alpha").unwrap()),
            events.nodes(events.id_by_name("beta").unwrap()),
            &TescConfig::new(2).with_sample_size(80),
            &mut StdRng::seed_from_u64(21),
        )
        .expect("offline replay");
    assert_eq!(
        get_str(resp.get("result").unwrap(), "z_bits"),
        format!("{:016x}", offline.z().to_bits()),
        "post-storm query must replay offline bit for bit"
    );

    // And to a twin server that never saw the storm: same commits,
    // same no-deadline /rank, byte-identical response.
    let rank_body = r#"{"n":300,"seed":5}"#;
    let (status, after_storm) = client.request("POST", "/rank", rank_body);
    assert_eq!(status, 200);
    let twin = spawn(default_cfg());
    let mut twin_client = Client::connect(twin.addr());
    for i in 0..COMMITS {
        let edges: Vec<String> = edge_batch(i)
            .iter()
            .map(|(u, v)| format!("[{u},{v}]"))
            .collect();
        let (status, _) = twin_client.request(
            "POST",
            "/edges",
            &format!(r#"{{"edges":[{}]}}"#, edges.join(",")),
        );
        assert_eq!(status, 200);
        let (status, _) = twin_client.request("POST", "/commit", "");
        assert_eq!(status, 200);
    }
    let (status, pristine) = twin_client.request("POST", "/rank", rank_body);
    assert_eq!(status, 200);
    assert_eq!(
        after_storm.encode(),
        pristine.encode(),
        "the storm must not leave a single divergent bit in serving state"
    );
    twin.shutdown_and_join();

    // The storm is visible in the books: every doomed request landed
    // in the timeout accounting, none of them as an unexplained 5xx
    // elsewhere.
    let (status, stats) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    let deadlines = stats.get("deadlines").expect("deadlines section");
    assert_eq!(get_i64(deadlines, "timeouts"), timed_out, "{deadlines:?}");
    assert_eq!(get_i64(deadlines, "cancelled"), 0);
    let rank_stats = stats.get("endpoints").unwrap().get("rank").unwrap();
    assert_eq!(
        get_i64(rank_stats, "requests"),
        (STORMERS * DOOMED + 1) as i64
    );
    server.shutdown_and_join();
}
