//! Cross-validation tests: independent implementations of the same
//! quantity must agree (DESIGN.md §8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc::density::density_counts;
use tesc::{SamplerKind, TescConfig, TescEngine};
use tesc_baselines::transaction_correlation;
use tesc_events::NodeMask;
use tesc_graph::generators::{barabasi_albert, erdos_renyi_gnm, grid};
use tesc_graph::perturb::sample_nodes;
use tesc_graph::{BfsScratch, VicinityIndex};
use tesc_stats::kendall::{kendall_tau, KendallMethod};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn tc_closed_form_agrees_with_generic_kendall_on_random_events() {
    let mut r = rng(1);
    for trial in 0..20 {
        let n = r.gen_range(10..200);
        let ka = r.gen_range(0..n);
        let kb = r.gen_range(0..n);
        let va: Vec<u32> = (0..ka as u32).filter(|_| r.gen_bool(0.5)).collect();
        let vb: Vec<u32> = (0..kb as u32).filter(|_| r.gen_bool(0.5)).collect();
        if n < 3 {
            continue;
        }
        let tc = transaction_correlation(n, &va, &vb);
        let xa: Vec<f64> = (0..n as u32)
            .map(|v| va.contains(&v) as u8 as f64)
            .collect();
        let xb: Vec<f64> = (0..n as u32)
            .map(|v| vb.contains(&v) as u8 as f64)
            .collect();
        let gen = kendall_tau(&xa, &xb, KendallMethod::MergeSort);
        assert!(
            (tc.tau_b - gen.tau_b).abs() < 1e-10,
            "trial {trial}: {} vs {}",
            tc.tau_b,
            gen.tau_b
        );
        assert!((tc.z - gen.z).abs() < 1e-9, "trial {trial}");
    }
}

#[test]
fn density_counts_agree_with_naive_set_intersection() {
    let g = erdos_renyi_gnm(300, 900, &mut rng(2));
    let va = sample_nodes(&g, 30, &mut rng(3));
    let vb = sample_nodes(&g, 25, &mut rng(4));
    let ma = NodeMask::from_nodes(300, &va);
    let mb = NodeMask::from_nodes(300, &vb);
    let mut scratch = BfsScratch::new(300);
    for h in [0u32, 1, 2] {
        for &r in &[0u32, 50, 150, 299] {
            let c = density_counts(&g, &mut scratch, r, h, &ma, &mb);
            let vicinity = scratch.h_vicinity(&g, r, h);
            let naive_a = vicinity.iter().filter(|v| va.contains(v)).count();
            let naive_b = vicinity.iter().filter(|v| vb.contains(v)).count();
            assert_eq!(c.vicinity_size, vicinity.len());
            assert_eq!(c.count_a, naive_a, "r={r} h={h}");
            assert_eq!(c.count_b, naive_b, "r={r} h={h}");
        }
    }
}

#[test]
fn sparse_vicinity_index_agrees_with_full_index() {
    let g = barabasi_albert(2000, 3, &mut rng(5));
    let nodes = sample_nodes(&g, 100, &mut rng(6));
    let full = VicinityIndex::build(&g, 2);
    let sparse = VicinityIndex::build_for_nodes(&g, &nodes, 2);
    for &v in &nodes {
        for h in 1..=2 {
            assert_eq!(sparse.size(v, h), full.size(v, h));
        }
    }
}

#[test]
fn importance_t_tilde_converges_to_exact_tau() {
    // Thm. 1 consistency check: on a small graph, sampling (almost)
    // the whole population repeatedly should track the exact τ.
    let g = grid(12, 12);
    let idx = VicinityIndex::build(&g, 1);
    let va: Vec<u32> = (0..36).collect();
    let vb: Vec<u32> = (18..54).collect();
    let engine = TescEngine::with_vicinity_index(&g, &idx);
    let exact = engine.exact_summary(&va, &vb, 1).unwrap();
    let mut estimates = Vec::new();
    for t in 0..10 {
        let cfg = TescConfig::new(1)
            .with_sample_size(exact.n)
            .with_sampler(SamplerKind::Importance { batch_size: 1 });
        let res = engine.test(&va, &vb, &cfg, &mut rng(100 + t)).unwrap();
        estimates.push(res.statistic());
    }
    let mean: f64 = estimates.iter().sum::<f64>() / estimates.len() as f64;
    assert!(
        (mean - exact.tau).abs() < 0.1,
        "mean t~ = {mean}, exact tau = {}",
        exact.tau
    );
}

#[test]
fn batch_bfs_statistic_with_full_population_equals_exact() {
    let g = barabasi_albert(800, 3, &mut rng(7));
    let va = sample_nodes(&g, 25, &mut rng(8));
    let vb = sample_nodes(&g, 25, &mut rng(9));
    let engine = TescEngine::new(&g);
    let exact = engine.exact_summary(&va, &vb, 1).unwrap();
    let cfg = TescConfig::new(1).with_sample_size(usize::MAX / 2);
    let sampled = engine.test(&va, &vb, &cfg, &mut rng(10)).unwrap();
    let k = sampled.kendall.unwrap();
    assert_eq!(k.n, exact.n);
    assert!((k.tau - exact.tau).abs() < 1e-12);
    assert!((k.z - exact.z).abs() < 1e-12);
}

#[test]
fn all_uniform_samplers_estimate_the_same_tau() {
    // With a large sample on a moderate population, Batch BFS,
    // rejection and whole-graph sampling estimate the same τ within
    // sampling error.
    let g = barabasi_albert(1500, 3, &mut rng(11));
    let idx = VicinityIndex::build(&g, 1);
    let va = sample_nodes(&g, 60, &mut rng(12));
    let vb = sample_nodes(&g, 60, &mut rng(13));
    let engine = TescEngine::with_vicinity_index(&g, &idx);
    let exact = engine.exact_summary(&va, &vb, 1).unwrap();
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::WholeGraph,
    ] {
        let cfg = TescConfig::new(1)
            .with_sample_size(500)
            .with_sampler(sampler);
        let res = engine.test(&va, &vb, &cfg, &mut rng(14)).unwrap();
        // Var(t) ≤ 2(1-τ²)/n ⇒ σ ≈ 0.06 at n = 500; allow 4σ.
        assert!(
            (res.statistic() - exact.tau).abs() < 0.25,
            "{sampler}: t = {}, tau = {}",
            res.statistic(),
            exact.tau
        );
    }
}

#[test]
fn variance_upper_bound_from_paper_holds_empirically() {
    // Sec. 3.1: Var(t) ≤ 2(1 − τ²)/n regardless of N. Estimate Var(t)
    // by repeated sampling and compare.
    let g = grid(20, 20);
    let va: Vec<u32> = (0..60).collect();
    let vb: Vec<u32> = (30..90).collect();
    let engine = TescEngine::new(&g);
    let exact = engine.exact_summary(&va, &vb, 1).unwrap();
    let n = 60usize;
    let mut samples = Vec::new();
    for t in 0..60 {
        let cfg = TescConfig::new(1).with_sample_size(n);
        let res = engine.test(&va, &vb, &cfg, &mut rng(700 + t)).unwrap();
        samples.push(res.statistic());
    }
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    let var: f64 =
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (samples.len() - 1) as f64;
    let bound = 2.0 * (1.0 - exact.tau * exact.tau) / n as f64;
    assert!(
        var <= bound * 1.5, // generous: the bound itself is loose
        "empirical Var(t) = {var:.4} vs bound {bound:.4}"
    );
}
