//! Property-based tests for the core invariants promised in
//! DESIGN.md §8.
//!
//! Originally written against `proptest`; the offline build
//! environment cannot vendor registry crates, so the same properties
//! now run over deterministic seeded case generators (128 cases each,
//! mirroring `ProptestConfig::with_cases(128)`). Shrinking is lost;
//! every failure message carries the case seed instead, so a failing
//! case can be reproduced by filtering on that seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc_events::store::merge_union;
use tesc_events::NodeMask;
use tesc_graph::csr::from_edges;
use tesc_graph::{BfsScratch, VicinityIndex};
use tesc_stats::kendall::{
    kendall_tau, pair_counts_exact, pair_counts_merge, var_s_no_ties, var_s_tie_corrected,
    weighted_tau, KendallMethod,
};
use tesc_stats::normal::StdNormal;

const CASES: u64 = 128;

/// Paired sample vectors with deliberate tie pressure (quantized).
fn paired_samples(rng: &mut StdRng) -> (Vec<f64>, Vec<f64>) {
    let n = rng.gen_range(3usize..60);
    let gen = |rng: &mut StdRng| {
        (0..n)
            .map(|_| rng.gen_range(0u8..8) as f64 / 8.0)
            .collect::<Vec<f64>>()
    };
    let x = gen(rng);
    let y = gen(rng);
    (x, y)
}

/// Random simple graph over `2..40` nodes (self-loops filtered).
fn random_graph(rng: &mut StdRng) -> (usize, tesc_graph::CsrGraph) {
    let n = rng.gen_range(2usize..40);
    let num_edges = rng.gen_range(0usize..n * 3);
    let edges: Vec<(u32, u32)> = (0..num_edges)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .filter(|(u, v)| u != v)
        .collect();
    (n, from_edges(n, &edges))
}

#[test]
fn tau_is_bounded() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let (x, y) = paired_samples(&mut rng);
        let s = kendall_tau(&x, &y, KendallMethod::MergeSort);
        assert!(
            (-1.0..=1.0).contains(&s.tau),
            "case {case}: tau = {}",
            s.tau
        );
        assert!(
            (-1.0..=1.0).contains(&s.tau_b),
            "case {case}: tau_b = {}",
            s.tau_b
        );
        assert!(s.var_s >= 0.0, "case {case}");
        assert!(s.z.is_finite(), "case {case}");
    }
}

#[test]
fn tau_antisymmetric_under_negation() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let (x, y) = paired_samples(&mut rng);
        let pos = kendall_tau(&x, &y, KendallMethod::MergeSort);
        let neg_y: Vec<f64> = y.iter().map(|v| -v).collect();
        let neg = kendall_tau(&x, &neg_y, KendallMethod::MergeSort);
        assert!((pos.tau + neg.tau).abs() < 1e-12, "case {case}");
        assert!((pos.z + neg.z).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn tau_symmetric_in_arguments() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + case);
        let (x, y) = paired_samples(&mut rng);
        let a = kendall_tau(&x, &y, KendallMethod::MergeSort);
        let b = kendall_tau(&y, &x, KendallMethod::MergeSort);
        assert_eq!(a.counts.s(), b.counts.s(), "case {case}");
        assert!((a.tau - b.tau).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn merge_sort_equals_exact() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + case);
        let (x, y) = paired_samples(&mut rng);
        assert_eq!(
            pair_counts_exact(&x, &y),
            pair_counts_merge(&x, &y),
            "case {case}"
        );
    }
}

#[test]
fn self_correlation_is_maximal() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + case);
        let (x, _) = paired_samples(&mut rng);
        let s = kendall_tau(&x, &x, KendallMethod::MergeSort);
        assert_eq!(s.counts.discordant, 0, "case {case}");
        assert!(s.tau >= 0.0, "case {case}");
        // With no ties tau(x, x) = 1 exactly.
        let distinct: Vec<f64> = (0..x.len()).map(|i| i as f64).collect();
        let d = kendall_tau(&distinct, &distinct, KendallMethod::Exact);
        assert_eq!(d.tau, 1.0, "case {case}");
    }
}

#[test]
fn tie_corrected_variance_never_exceeds_eq5() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6000 + case);
        let n = rng.gen_range(3usize..200);
        let num_groups = rng.gen_range(0usize..8);
        let sizes: Vec<usize> = (0..num_groups).map(|_| rng.gen_range(2usize..10)).collect();
        // Clamp tie groups to fit n.
        let mut used = 0usize;
        let mut groups = Vec::new();
        for s in sizes {
            if used + s <= n {
                groups.push(s);
                used += s;
            }
        }
        let v = var_s_tie_corrected(n, &groups, &[]);
        assert!(v <= var_s_no_ties(n) + 1e-9, "case {case}");
        assert!(v >= 0.0, "case {case}");
    }
}

#[test]
fn weighted_tau_bounded_and_matches_unweighted() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7000 + case);
        let (x, y) = paired_samples(&mut rng);
        let uniform = vec![1.0; x.len()];
        let wt = weighted_tau(&x, &y, &uniform);
        assert!((-1.0..=1.0).contains(&wt), "case {case}");
        let s = kendall_tau(&x, &y, KendallMethod::Exact);
        assert!((wt - s.tau).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn normal_cdf_properties() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(8000 + case);
        let x = rng.gen_range(-30.0f64..30.0);
        let c = StdNormal::cdf(x);
        assert!((0.0..=1.0).contains(&c), "case {case}: x = {x}");
        // Symmetry.
        assert!((c + StdNormal::cdf(-x) - 1.0).abs() < 1e-12, "case {case}");
        // sf complements.
        assert!((StdNormal::sf(x) - (1.0 - c)).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn bfs_vicinity_monotone_in_h() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9000 + case);
        let (n, g) = random_graph(&mut rng);
        let src = rng.gen_range(0u32..40) % n as u32;
        let h = rng.gen_range(0u32..5);
        let mut scratch = BfsScratch::new(n);
        let small = scratch.vicinity_size(&g, src, h);
        let big = scratch.vicinity_size(&g, src, h + 1);
        assert!(small <= big, "case {case}");
        assert!(
            small >= 1,
            "case {case}: vicinity always contains the source"
        );
        assert!(big <= n, "case {case}");
    }
}

#[test]
fn batch_bfs_equals_union_of_singles() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(10_000 + case);
        let (n, g) = random_graph(&mut rng);
        let h = rng.gen_range(0u32..4);
        let sources: Vec<u32> = (0..n as u32).step_by(3).collect();
        assert!(!sources.is_empty());
        let mut scratch = BfsScratch::new(n);
        let mut batch = Vec::new();
        scratch.h_vicinity_into(&g, &sources, h, &mut batch);
        batch.sort_unstable();
        let mut union: Vec<u32> = sources
            .iter()
            .flat_map(|&s| scratch.h_vicinity(&g, s, h))
            .collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(batch, union, "case {case}");
    }
}

#[test]
fn vicinity_index_matches_direct_bfs() {
    // Fewer cases: each one sweeps the whole graph at 3 levels.
    for case in 0..CASES / 4 {
        let mut rng = StdRng::seed_from_u64(11_000 + case);
        let (n, g) = random_graph(&mut rng);
        let idx = VicinityIndex::build(&g, 3);
        let mut scratch = BfsScratch::new(n);
        for v in 0..n as u32 {
            for h in 1..=3u32 {
                assert_eq!(
                    idx.size(v, h),
                    scratch.vicinity_size(&g, v, h),
                    "case {case}: v = {v}, h = {h}"
                );
            }
        }
    }
}

#[test]
fn incremental_vicinity_update_equals_rebuild_at_every_step() {
    // The ingestion invariant of the versioned TescContext: random
    // edge-insertion sequences, refreshed incrementally around the new
    // endpoints, must match a from-scratch rebuild after *every*
    // insertion (not just at the end — intermediate divergence would
    // compound silently).
    for case in 0..CASES / 8 {
        let mut rng = StdRng::seed_from_u64(12_000 + case);
        let (n, g0) = random_graph(&mut rng);
        let max_level = rng.gen_range(1u32..=3);
        let mut g = g0;
        let mut idx = VicinityIndex::build(&g, max_level);
        for step in 0..12 {
            let (u, v) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
            if u == v || g.has_edge(u, v) {
                continue;
            }
            let g_next = g.with_edges(&[(u, v)]);
            idx.refresh(&g_next, None, &[u, v]);
            assert_eq!(
                idx,
                VicinityIndex::build(&g_next, max_level),
                "case {case}, step {step}: insertion ({u},{v}) at h ≤ {max_level}"
            );
            g = g_next;
        }
    }
}

#[test]
fn snapshot_ingestion_matches_rebuild_and_preserves_old_versions() {
    // Same invariant one layer up: TescContext::add_edges must land on
    // the rebuilt index, while snapshots pinned earlier keep the index
    // of *their* graph.
    use tesc::context::TescContext;
    use tesc::EventStore;
    for case in 0..CASES / 16 {
        let mut rng = StdRng::seed_from_u64(13_000 + case);
        let (n, g) = random_graph(&mut rng);
        let ctx = TescContext::new(g, EventStore::new(), 2);
        let mut pinned = vec![ctx.snapshot()];
        for _ in 0..4 {
            let delta: Vec<(u32, u32)> = (0..rng.gen_range(1usize..4))
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .filter(|(u, v)| u != v)
                .collect();
            if delta.is_empty() {
                continue;
            }
            pinned.push(ctx.add_edges(&delta).unwrap());
        }
        for (i, snap) in pinned.iter().enumerate() {
            assert_eq!(
                *snap.vicinity(),
                VicinityIndex::build(snap.graph(), 2),
                "case {case}: pinned snapshot {i} (v{})",
                snap.version()
            );
        }
    }
}

#[test]
fn node_mask_round_trips() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(12_000 + case);
        let len = rng.gen_range(0usize..64);
        let nodes: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..500)).collect();
        let mask = NodeMask::from_nodes(500, &nodes);
        let mut expect = nodes.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(mask.to_nodes(), expect, "case {case}");
        assert_eq!(mask.len(), expect.len(), "case {case}");
        for v in expect {
            assert!(mask.contains(v), "case {case}: {v}");
        }
    }
}

#[test]
fn merge_union_is_sorted_dedup_union() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(13_000 + case);
        let gen_sorted = |rng: &mut StdRng| {
            let len = rng.gen_range(0usize..40);
            let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..100)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let a = gen_sorted(&mut rng);
        let b = gen_sorted(&mut rng);
        let u = merge_union(&a, &b);
        assert!(
            u.windows(2).all(|w| w[0] < w[1]),
            "case {case}: sorted + dedup"
        );
        for &x in a.iter().chain(&b) {
            assert!(u.binary_search(&x).is_ok(), "case {case}");
        }
        for &x in &u {
            assert!(
                a.binary_search(&x).is_ok() || b.binary_search(&x).is_ok(),
                "case {case}"
            );
        }
    }
}

#[test]
fn generated_graphs_have_consistent_degree_sums() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(14_000 + case);
        let (_, g) = random_graph(&mut rng);
        let by_nodes: u64 = g.nodes().map(|v| g.degree(v) as u64).sum();
        assert_eq!(by_nodes, g.degree_sum(), "case {case}");
        assert_eq!(g.degree_sum() as usize, 2 * g.num_edges(), "case {case}");
        // Every edge is reported once with u < v.
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges(), "case {case}");
        assert!(edges.iter().all(|&(u, v)| u < v), "case {case}");
    }
}
