//! Property-based tests (proptest) for the core invariants promised in
//! DESIGN.md §8.

use proptest::prelude::*;
use tesc_events::store::merge_union;
use tesc_events::NodeMask;
use tesc_graph::csr::from_edges;
use tesc_graph::{BfsScratch, VicinityIndex};
use tesc_stats::kendall::{
    kendall_tau, pair_counts_exact, pair_counts_merge, var_s_no_ties, var_s_tie_corrected,
    weighted_tau, KendallMethod,
};
use tesc_stats::normal::StdNormal;

/// Paired sample vectors with deliberate tie pressure (quantized).
fn paired_samples() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (3usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec((0u8..8).prop_map(|q| q as f64 / 8.0), n),
            proptest::collection::vec((0u8..8).prop_map(|q| q as f64 / 8.0), n),
        )
    })
}

/// Random simple graph as an edge list over `n` nodes.
fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        (Just(n), edges)
    })
}

fn build(n: usize, raw: &[(u32, u32)]) -> tesc_graph::CsrGraph {
    let filtered: Vec<(u32, u32)> = raw.iter().copied().filter(|(u, v)| u != v).collect();
    from_edges(n, &filtered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tau_is_bounded((x, y) in paired_samples()) {
        let s = kendall_tau(&x, &y, KendallMethod::MergeSort);
        prop_assert!((-1.0..=1.0).contains(&s.tau), "tau = {}", s.tau);
        prop_assert!((-1.0..=1.0).contains(&s.tau_b), "tau_b = {}", s.tau_b);
        prop_assert!(s.var_s >= 0.0);
        prop_assert!(s.z.is_finite());
    }

    #[test]
    fn tau_antisymmetric_under_negation((x, y) in paired_samples()) {
        let pos = kendall_tau(&x, &y, KendallMethod::MergeSort);
        let neg_y: Vec<f64> = y.iter().map(|v| -v).collect();
        let neg = kendall_tau(&x, &neg_y, KendallMethod::MergeSort);
        prop_assert!((pos.tau + neg.tau).abs() < 1e-12);
        prop_assert!((pos.z + neg.z).abs() < 1e-9);
    }

    #[test]
    fn tau_symmetric_in_arguments((x, y) in paired_samples()) {
        let a = kendall_tau(&x, &y, KendallMethod::MergeSort);
        let b = kendall_tau(&y, &x, KendallMethod::MergeSort);
        prop_assert_eq!(a.counts.s(), b.counts.s());
        prop_assert!((a.tau - b.tau).abs() < 1e-12);
    }

    #[test]
    fn merge_sort_equals_exact((x, y) in paired_samples()) {
        prop_assert_eq!(pair_counts_exact(&x, &y), pair_counts_merge(&x, &y));
    }

    #[test]
    fn self_correlation_is_maximal((x, _) in paired_samples()) {
        let s = kendall_tau(&x, &x, KendallMethod::MergeSort);
        prop_assert_eq!(s.counts.discordant, 0);
        prop_assert!(s.tau >= 0.0);
        // With no ties tau(x, x) = 1 exactly.
        let distinct: Vec<f64> = (0..x.len()).map(|i| i as f64).collect();
        let d = kendall_tau(&distinct, &distinct, KendallMethod::Exact);
        prop_assert_eq!(d.tau, 1.0);
    }

    #[test]
    fn tie_corrected_variance_never_exceeds_eq5(n in 3usize..200, sizes in proptest::collection::vec(2usize..10, 0..8)) {
        // Clamp tie groups to fit n.
        let mut used = 0usize;
        let mut groups = Vec::new();
        for s in sizes {
            if used + s <= n {
                groups.push(s);
                used += s;
            }
        }
        let v = var_s_tie_corrected(n, &groups, &[]);
        prop_assert!(v <= var_s_no_ties(n) + 1e-9);
        prop_assert!(v >= 0.0);
    }

    #[test]
    fn weighted_tau_bounded_and_matches_unweighted((x, y) in paired_samples()) {
        let uniform = vec![1.0; x.len()];
        let wt = weighted_tau(&x, &y, &uniform);
        prop_assert!((-1.0..=1.0).contains(&wt));
        let s = kendall_tau(&x, &y, KendallMethod::Exact);
        prop_assert!((wt - s.tau).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_properties(x in -30.0f64..30.0) {
        let c = StdNormal::cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        // Symmetry.
        prop_assert!((c + StdNormal::cdf(-x) - 1.0).abs() < 1e-12);
        // sf complements.
        prop_assert!((StdNormal::sf(x) - (1.0 - c)).abs() < 1e-9);
    }

    #[test]
    fn bfs_vicinity_monotone_in_h((n, raw) in random_graph(), src in 0u32..40, h in 0u32..5) {
        let g = build(n, &raw);
        let src = src % n as u32;
        let mut scratch = BfsScratch::new(n);
        let small = scratch.vicinity_size(&g, src, h);
        let big = scratch.vicinity_size(&g, src, h + 1);
        prop_assert!(small <= big);
        prop_assert!(small >= 1, "vicinity always contains the source");
        prop_assert!(big <= n);
    }

    #[test]
    fn batch_bfs_equals_union_of_singles((n, raw) in random_graph(), h in 0u32..4) {
        let g = build(n, &raw);
        let sources: Vec<u32> = (0..n as u32).step_by(3).collect();
        prop_assume!(!sources.is_empty());
        let mut scratch = BfsScratch::new(n);
        let mut batch = Vec::new();
        scratch.h_vicinity_into(&g, &sources, h, &mut batch);
        batch.sort_unstable();
        let mut union: Vec<u32> = sources
            .iter()
            .flat_map(|&s| scratch.h_vicinity(&g, s, h))
            .collect();
        union.sort_unstable();
        union.dedup();
        prop_assert_eq!(batch, union);
    }

    #[test]
    fn vicinity_index_matches_direct_bfs((n, raw) in random_graph()) {
        let g = build(n, &raw);
        let idx = VicinityIndex::build(&g, 3);
        let mut scratch = BfsScratch::new(n);
        for v in 0..n as u32 {
            for h in 1..=3u32 {
                prop_assert_eq!(idx.size(v, h), scratch.vicinity_size(&g, v, h));
            }
        }
    }

    #[test]
    fn node_mask_round_trips(nodes in proptest::collection::vec(0u32..500, 0..64)) {
        let mask = NodeMask::from_nodes(500, &nodes);
        let mut expect = nodes.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(mask.to_nodes(), expect.clone());
        prop_assert_eq!(mask.len(), expect.len());
        for v in expect {
            prop_assert!(mask.contains(v));
        }
    }

    #[test]
    fn merge_union_is_sorted_dedup_union(
        mut a in proptest::collection::vec(0u32..100, 0..40),
        mut b in proptest::collection::vec(0u32..100, 0..40),
    ) {
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let u = merge_union(&a, &b);
        prop_assert!(u.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
        for &x in a.iter().chain(&b) {
            prop_assert!(u.binary_search(&x).is_ok());
        }
        for &x in &u {
            prop_assert!(a.binary_search(&x).is_ok() || b.binary_search(&x).is_ok());
        }
    }

    #[test]
    fn generated_graphs_have_consistent_degree_sums((n, raw) in random_graph()) {
        let g = build(n, &raw);
        let by_nodes: u64 = g.nodes().map(|v| g.degree(v) as u64).sum();
        prop_assert_eq!(by_nodes, g.degree_sum());
        prop_assert_eq!(g.degree_sum() as usize, 2 * g.num_edges());
        // Every edge is reported once with u < v.
        let edges: Vec<_> = g.edges().collect();
        prop_assert_eq!(edges.len(), g.num_edges());
        prop_assert!(edges.iter().all(|&(u, v)| u < v));
    }
}
