//! Peak-heap guardrail for the large-scale generator.
//!
//! `TwitterConfig::peak_build_bytes` documents the streaming-build
//! bound (~16 B/edge + ~16 B/node + 1 MiB slack); this test holds
//! `TwitterScenario::build` to it with a counting global allocator,
//! so a regression to buffered generation (e.g. routing the generator
//! back through the sort + dedup `GraphBuilder`, ~24 B/edge) fails
//! here instead of OOMing at the million-node configuration.
//!
//! This file intentionally contains a single test: integration tests
//! in one binary run on concurrent threads, and any neighbor's
//! allocations would pollute the peak measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc_datasets::twitter_like::{TwitterConfig, TwitterScenario};

/// System allocator wrapper tracking live bytes and their high-water
/// mark. Relaxed ordering is fine: the test is single-threaded and
/// only reads the counters after the build returns.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(p, layout);
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            if new_size >= layout.size() {
                note_alloc(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        q
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn twitter_build_respects_documented_peak_heap_bound() {
    // 200k nodes × m = 8 ≈ 1.6M edges: large enough that the O(E)
    // arrays dominate the 1 MiB slack, small enough for CI.
    let cfg = TwitterConfig {
        num_nodes: 200_000,
        ..TwitterConfig::default()
    };
    let bound = cfg.peak_build_bytes();

    let mut rng = StdRng::seed_from_u64(42);
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let scenario = TwitterScenario::build(cfg, &mut rng);
    let peak = PEAK.load(Ordering::Relaxed) - baseline;

    assert_eq!(scenario.graph.num_edges(), cfg.num_edges());
    assert!(
        peak <= bound,
        "build peaked at {peak} B over baseline, documented bound is {bound} B \
         ({} edges)",
        cfg.num_edges()
    );
    // And the bound is tight enough to mean something: a buffered
    // edge-list build (+8 B/edge for the pair copy) would exceed it.
    assert!(
        bound < peak + 8 * cfg.num_edges(),
        "bound {bound} B is slack enough to hide an extra edge-list copy \
         (peak {peak} B)"
    );
}
