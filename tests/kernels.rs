//! Density-kernel and relabeling equivalence suite — the acceptance
//! contract of the bitset kernel rebuild: every kernel/relabeling
//! configuration produces **bit-identical** `DensityCounts` and
//! downstream `TestOutcome`s, for every sampler, with and without the
//! density cache, at 1 and 4 density threads.
//!
//! Seeded 128-case loops in the style of `tests/properties.rs`
//! (shrinking is traded for reproducible per-case seeds in every
//! failure message).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc::density::{
    density_counts, density_counts_bitset, density_vectors, density_vectors_group_plan,
    density_vectors_plan, translate_mask, GroupKernelPlan, KernelPlan,
};
use tesc::{
    BfsKernel, DensityCache, NodeMask, SamplerKind, Tail, TescConfig, TescEngine, TescResult,
};
use tesc_datasets::{DblpConfig, DblpScenario};
use tesc_graph::perturb::{add_random_edges, remove_random_edges};
use tesc_graph::relabel::{RelabeledGraph, Relabeling};
use tesc_graph::{BfsScratch, CsrGraph, MsBfsScratch, NodeId, ScratchPool, VicinityIndex};

const CASES: u64 = 128;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Random simple graph over `2..60` nodes (straddling the one-word /
/// two-word bitmap boundary in both directions).
fn random_graph(rng: &mut StdRng) -> (usize, CsrGraph) {
    let n = rng.gen_range(2usize..100);
    let num_edges = rng.gen_range(0usize..n * 3);
    let edges: Vec<(u32, u32)> = (0..num_edges)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .filter(|(u, v)| u != v)
        .collect();
    (n, tesc_graph::csr::from_edges(n, &edges))
}

fn random_mask(rng: &mut StdRng, n: usize) -> NodeMask {
    let k = rng.gen_range(0usize..n.max(1));
    let nodes: Vec<NodeId> = (0..k).map(|_| rng.gen_range(0..n as u32)).collect();
    NodeMask::from_nodes(n, &nodes)
}

fn all_samplers() -> Vec<SamplerKind> {
    vec![
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::Importance { batch_size: 1 },
        SamplerKind::Importance { batch_size: 3 },
        SamplerKind::WholeGraph,
    ]
}

#[test]
fn bitset_bfs_equals_scalar_on_random_graphs() {
    for case in 0..CASES {
        let mut r = rng(20_000 + case);
        let (n, g) = random_graph(&mut r);
        let h = r.gen_range(0u32..5);
        // 1–3 sources, sometimes duplicated.
        let mut sources: Vec<NodeId> = (0..r.gen_range(1usize..4))
            .map(|_| r.gen_range(0..n as u32))
            .collect();
        if r.gen_range(0u32..3) == 0 {
            sources.push(sources[0]);
        }
        let mut s = BfsScratch::new(n);
        let mut scalar_nodes = Vec::new();
        let mut scalar_levels = vec![0u32; h as usize + 1];
        let scalar_n = s.visit_h_vicinity(&g, &sources, h, |v, d| {
            scalar_nodes.push(v);
            scalar_levels[d as usize] += 1;
        });
        scalar_nodes.sort_unstable();
        let bitset_n = s.visit_h_vicinity_bitset(&g, &sources, h);
        assert_eq!(scalar_n, bitset_n, "case {case}: visited count");
        let mut bitset_nodes = Vec::new();
        for (w, &word) in s.visited_words().iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                bitset_nodes.push((w * 64) as NodeId + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        assert_eq!(scalar_nodes, bitset_nodes, "case {case}: visited set");
        for (d, &c) in s.level_counts().iter().enumerate() {
            assert_eq!(scalar_levels[d], c, "case {case}: depth {d}");
        }
    }
}

#[test]
fn kernel_counts_equal_on_perturbed_generator_graphs() {
    // Generator substrate + count-neutral perturbations: the exact
    // workload `fig8_graph_density` sweeps. Kernel equality must
    // survive arbitrary rewiring.
    let base = tesc_graph::generators::barabasi_albert(400, 3, &mut rng(1));
    for case in 0..CASES / 4 {
        let mut r = rng(21_000 + case);
        let (shrunk, _) = remove_random_edges(&base, 30, &mut r);
        let (g, _) = add_random_edges(&shrunk, 30, &mut r);
        let n = g.num_nodes();
        let (ma, mb) = (random_mask(&mut r, n), random_mask(&mut r, n));
        let mut s = BfsScratch::new(n);
        for _ in 0..6 {
            let v = r.gen_range(0..n as u32);
            let h = r.gen_range(0u32..4);
            let scalar = density_counts(&g, &mut s, v, h, &ma, &mb);
            let bitset = density_counts_bitset(&g, &mut s, v, h, &ma, &mb);
            assert_eq!(scalar, bitset, "case {case}: v = {v}, h = {h}");
        }
    }
}

#[test]
fn hybrid_switch_point_edge_cases() {
    let mut s = BfsScratch::new(256);
    // Frontier = whole graph at h = 1 (star hub).
    let star = tesc_graph::generators::star(200);
    assert_eq!(s.visit_h_vicinity_bitset(&star, &[0], 1), 200);
    assert_eq!(s.level_counts(), &[1, 199]);
    // Isolated sources, duplicate sources, h = 0.
    let sparse = tesc_graph::csr::from_edges(130, &[(0, 1)]);
    assert_eq!(s.visit_h_vicinity_bitset(&sparse, &[129], 3), 1);
    assert_eq!(s.visit_h_vicinity_bitset(&sparse, &[0, 0, 1], 2), 2);
    assert_eq!(s.visit_h_vicinity_bitset(&sparse, &[5], 0), 1);
    // Dense blob reached through a tail: bottom-up mid-level, then a
    // final level — compared against scalar.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..40u32 {
        for v in 40..80u32 {
            edges.push((u, v));
        }
    }
    edges.push((0, 80));
    edges.push((80, 81));
    let blob = tesc_graph::csr::from_edges(82, &edges);
    for h in 0..5u32 {
        let mut scalar = 0usize;
        let want = s.visit_h_vicinity(&blob, &[81], h, |_, _| scalar += 1);
        assert_eq!(s.visit_h_vicinity_bitset(&blob, &[81], h), want);
    }
}

/// The full engine matrix: sampler × kernel/relabel plan × cache ×
/// density threads, all bit-identical to the scalar serial reference.
#[test]
fn engine_outcomes_bit_identical_across_kernel_relabel_cache_threads() {
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(80));
    let idx = VicinityIndex::build(&s.graph, 2);
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(81));
    let run = |engine: &TescEngine<'_>, sampler: SamplerKind, seed: u64| -> TescResult {
        let cfg = TescConfig::new(2)
            .with_sample_size(200)
            .with_tail(Tail::Upper)
            .with_sampler(sampler);
        engine.test(&va, &vb, &cfg, &mut rng(seed)).unwrap()
    };
    for sampler in all_samplers() {
        let reference = {
            let engine = TescEngine::with_vicinity_index(&s.graph, &idx)
                .with_density_kernel(BfsKernel::Scalar);
            run(&engine, sampler, 82)
        };
        for kernel in [BfsKernel::Bitset, BfsKernel::Multi] {
            for relabel in [false, true] {
                for cached in [false, true] {
                    for threads in [1usize, 4] {
                        let mut engine = TescEngine::with_vicinity_index(&s.graph, &idx)
                            .with_density_kernel(kernel)
                            .with_relabeling(relabel)
                            .with_density_threads(threads);
                        let cache = std::sync::Arc::new(DensityCache::for_graph(&s.graph));
                        if cached {
                            engine = engine.with_density_cache(cache.clone());
                        }
                        let got = run(&engine, sampler, 82);
                        assert_eq!(
                            reference, got,
                            "{sampler}: kernel={kernel} relabel={relabel} cache={cached} threads={threads}"
                        );
                        assert_eq!(
                            reference.z().to_bits(),
                            got.z().to_bits(),
                            "{sampler}: z bits differ (kernel={kernel} relabel={relabel} cache={cached} threads={threads})"
                        );
                        // Warm-cache re-run stays identical too. (The
                        // importance sampler documentedly bypasses the
                        // cache — its per-node quantities are
                        // pair-specific — so only uniform samplers must
                        // show hits.)
                        if cached {
                            let again = run(&engine, sampler, 82);
                            assert_eq!(reference, again, "{sampler}: warm cache");
                            if !matches!(sampler, SamplerKind::Importance { .. }) {
                                assert!(cache.hits() > 0, "{sampler}: cache engaged");
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The same matrix on the compressed-CSR substrate: an engine whose
/// adjacency streams from the delta/varint rows must be bit-identical
/// to the plain-CSR scalar reference for every sampler × kernel ×
/// relabel × cache × thread-count combination.
#[test]
fn compressed_csr_outcomes_bit_identical_to_plain_across_matrix() {
    use tesc_graph::CompressedCsr;
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(80));
    let compressed = CompressedCsr::from_graph(&s.graph);
    assert_eq!(compressed.fingerprint(), s.graph.fingerprint());
    let idx = VicinityIndex::build(&s.graph, 2);
    let cidx = VicinityIndex::build(&compressed, 2);
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(81));
    let cfg_for = |sampler| {
        TescConfig::new(2)
            .with_sample_size(200)
            .with_tail(Tail::Upper)
            .with_sampler(sampler)
    };
    for sampler in all_samplers() {
        let reference = TescEngine::with_vicinity_index(&s.graph, &idx)
            .with_density_kernel(BfsKernel::Scalar)
            .test(&va, &vb, &cfg_for(sampler), &mut rng(82))
            .unwrap();
        for kernel in [BfsKernel::Scalar, BfsKernel::Bitset, BfsKernel::Multi] {
            for relabel in [false, true] {
                for cached in [false, true] {
                    for threads in [1usize, 4] {
                        let mut engine = TescEngine::with_vicinity_index(&compressed, &cidx)
                            .with_density_kernel(kernel)
                            .with_relabeling(relabel)
                            .with_density_threads(threads);
                        if cached {
                            engine = engine.with_density_cache(std::sync::Arc::new(
                                DensityCache::for_graph(&compressed),
                            ));
                        }
                        let got = engine
                            .test(&va, &vb, &cfg_for(sampler), &mut rng(82))
                            .unwrap();
                        assert_eq!(
                            reference, got,
                            "{sampler}: compressed kernel={kernel} relabel={relabel} cache={cached} threads={threads}"
                        );
                        assert_eq!(
                            reference.z().to_bits(),
                            got.z().to_bits(),
                            "{sampler}: compressed z bits differ (kernel={kernel} relabel={relabel} cache={cached} threads={threads})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn relabel_round_trip_identity_on_random_graphs() {
    for case in 0..CASES {
        let mut r = rng(22_000 + case);
        let (n, g) = random_graph(&mut r);
        let map = Relabeling::locality_order(&g);
        // Bijection.
        for v in 0..n as u32 {
            assert_eq!(map.to_old(map.to_new(v)), v, "case {case}");
        }
        // Isomorphism: edges and degrees carry over.
        let rg = g.relabeled(&map);
        assert_eq!(rg.num_edges(), g.num_edges(), "case {case}");
        for (u, v) in g.edges() {
            assert!(
                rg.has_edge(map.to_new(u), map.to_new(v)),
                "case {case}: edge ({u},{v})"
            );
        }
        // Vicinity counts carry over at a random (v, h).
        let v = r.gen_range(0..n as u32);
        let h = r.gen_range(0u32..4);
        let mut s = BfsScratch::new(n);
        assert_eq!(
            s.vicinity_size(&g, v, h),
            s.vicinity_size(&rg, map.to_new(v), h),
            "case {case}: v = {v}, h = {h}"
        );
    }
}

#[test]
fn plan_density_vectors_equal_for_random_masks() {
    for case in 0..CASES / 4 {
        let mut r = rng(23_000 + case);
        let (n, g) = random_graph(&mut r);
        let (ma, mb) = (random_mask(&mut r, n), random_mask(&mut r, n));
        let h = r.gen_range(0u32..4);
        let refs: Vec<NodeId> = (0..n as u32).step_by(3).collect();
        let pool = ScratchPool::for_graph(&g);
        let scalar = KernelPlan::scalar(&g, &ma, &mb, h);
        let reference = density_vectors_plan(&scalar, &pool, &refs, 1);
        let bitset = KernelPlan {
            use_bitset: true,
            ..scalar
        };
        let rel = RelabeledGraph::build(&g);
        let (ta, tb) = (
            translate_mask(rel.map(), &ma),
            translate_mask(rel.map(), &mb),
        );
        let relabeled = KernelPlan {
            graph: rel.graph(),
            mask_a: &ta,
            mask_b: &tb,
            translate: Some(rel.map()),
            use_bitset: true,
            h,
        };
        for (label, plan) in [("bitset", &bitset), ("bitset+relabel", &relabeled)] {
            let got = density_vectors_plan(plan, &pool, &refs, 2);
            assert_eq!(reference, got, "case {case}: {label}");
        }
    }
}

/// The nodes each lane of the most recent multi-source traversal
/// reached, ascending.
fn lane_sets(ms: &MsBfsScratch, lanes: usize) -> Vec<Vec<NodeId>> {
    let mut out = vec![Vec::new(); lanes];
    for (v, &word) in ms.lane_words().iter().enumerate() {
        let mut w = word;
        while w != 0 {
            out[w.trailing_zeros() as usize].push(v as NodeId);
            w &= w - 1;
        }
    }
    out
}

#[test]
fn multi_source_level_sets_equal_independent_scalar_on_random_graphs() {
    // 128 seeded cases on random graphs: every lane's *level sets*
    // (nodes first reached at each depth) must equal an independent
    // single-source scalar BFS — verified by diffing the lane's
    // reached set between consecutive depths.
    for case in 0..CASES {
        let mut r = rng(25_000 + case);
        let (n, g) = random_graph(&mut r);
        let h = r.gen_range(0u32..4);
        // Group sizes straddling interesting shapes: singleton, a few,
        // word-boundary-1, full word — with occasional duplicates.
        let k = [1usize, 3, 63, 64][r.gen_range(0usize..4)];
        let mut sources: Vec<NodeId> = (0..k).map(|_| r.gen_range(0..n as u32)).collect();
        if r.gen_range(0u32..3) == 0 && sources.len() > 1 {
            sources[1] = sources[0]; // duplicate lanes evolve identically
        }
        let mut ms = MsBfsScratch::new(n);
        let mut s = BfsScratch::new(n);
        let mut prev: Vec<Vec<NodeId>> = vec![Vec::new(); sources.len()];
        for depth in 0..=h {
            ms.visit_h_vicinity_multi(&g, &sources, depth);
            let sets = lane_sets(&ms, sources.len());
            let mut sizes = vec![0u32; sources.len()];
            ms.lane_sizes(&mut sizes);
            for (lane, &src) in sources.iter().enumerate() {
                let mut want = Vec::new();
                let mut want_level = Vec::new();
                s.visit_h_vicinity(&g, &[src], depth, |v, d| {
                    want.push(v);
                    if d == depth {
                        want_level.push(v);
                    }
                });
                want.sort_unstable();
                want_level.sort_unstable();
                assert_eq!(
                    sets[lane], want,
                    "case {case}: lane {lane} reached set at depth {depth}"
                );
                assert_eq!(sizes[lane] as usize, want.len(), "case {case}: lane size");
                // Level set = reached(depth) \ reached(depth − 1).
                let level: Vec<NodeId> = sets[lane]
                    .iter()
                    .copied()
                    .filter(|v| prev[lane].binary_search(v).is_err())
                    .collect();
                assert_eq!(
                    level, want_level,
                    "case {case}: lane {lane} level set at depth {depth}"
                );
            }
            prev = sets;
        }
    }
}

#[test]
fn multi_source_lanes_equal_scalar_on_perturbed_generator_graphs() {
    let base = tesc_graph::generators::barabasi_albert(400, 3, &mut rng(2));
    for case in 0..CASES / 4 {
        let mut r = rng(26_000 + case);
        let (shrunk, _) = remove_random_edges(&base, 30, &mut r);
        let (g, _) = add_random_edges(&shrunk, 30, &mut r);
        let n = g.num_nodes();
        let h = r.gen_range(0u32..4);
        let sources: Vec<NodeId> = (0..r.gen_range(1usize..65))
            .map(|_| r.gen_range(0..n as u32))
            .collect();
        let mut ms = MsBfsScratch::new(n);
        let mut s = BfsScratch::new(n);
        ms.visit_h_vicinity_multi(&g, &sources, h);
        let sets = lane_sets(&ms, sources.len());
        for (lane, &src) in sources.iter().enumerate() {
            let mut want = s.h_vicinity(&g, src, h);
            want.sort_unstable();
            assert_eq!(sets[lane], want, "case {case}: lane {lane} h={h}");
        }
    }
}

#[test]
fn grouped_density_vectors_for_worksets_straddling_the_word_boundary() {
    // Workset sizes 1, 63, 64, 65, 127 — partitioned into groups by
    // the executor — must all reproduce the scalar reference,
    // including sources sharing a vicinity (dense community) and
    // duplicate-adjacent sources after relabeling.
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(90));
    let g = &s.graph;
    let n = g.num_nodes();
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(91));
    let norm = |v: &[NodeId]| {
        let mut v = v.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (a, b) = (norm(&va), norm(&vb));
    let (ma, mb) = (NodeMask::from_nodes(n, &a), NodeMask::from_nodes(n, &b));
    let pool = ScratchPool::for_graph(g);
    let mut scratch = BfsScratch::new(n);
    let slot_nodes = vec![a.clone(), b.clone()];
    let plain = GroupKernelPlan {
        graph: g,
        slot_nodes: &slot_nodes,
        translate: None,
        h: 2,
    };
    let rel = RelabeledGraph::build(g);
    let translated = vec![rel.map().map_to_new(&a), rel.map().map_to_new(&b)];
    let relabeled = GroupKernelPlan {
        graph: rel.graph(),
        slot_nodes: &translated,
        translate: Some(rel.map()),
        h: 2,
    };
    let mut r = rng(92);
    for workset in [1usize, 63, 64, 65, 127] {
        // Half clustered (shared vicinities), half uniform; a repeated
        // node makes two lanes duplicate-adjacent after relabeling.
        let base = r.gen_range(0..(n as u32) / 2);
        let mut refs: Vec<NodeId> = (0..workset as u32 / 2).map(|i| base + i % 40).collect();
        refs.extend((refs.len()..workset).map(|_| r.gen_range(0..n as u32)));
        if workset > 1 {
            let dup = refs[0];
            refs[workset / 2] = dup;
        }
        let reference = density_vectors(g, &mut scratch, &refs, 2, &ma, &mb);
        for group_size in [1usize, 63, 64] {
            for (label, plan) in [("plain", &plain), ("relabeled", &relabeled)] {
                let got = density_vectors_group_plan(plan, &pool, &refs, 2, group_size);
                assert_eq!(
                    reference, got,
                    "workset={workset} group_size={group_size} {label}"
                );
            }
        }
    }
}

#[test]
fn partially_memoized_groups_mix_cache_hits_and_bfs_lanes() {
    // Some lanes of a fused workset are fully memoized (they skip the
    // traversal), some hit one slot of two, some miss everything — the
    // grouped pass must blend all three bit-identically and only BFS
    // the pending lanes.
    use tesc::batch::{run_batch_serial, BatchRequest, EventPair};
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(95));
    let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(96));
    let (vc, vd) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(97));
    let cfg = TescConfig::new(2).with_sample_size(150);
    let cache = std::sync::Arc::new(DensityCache::for_graph(&s.graph));
    let engine = TescEngine::new(&s.graph)
        .with_density_kernel(BfsKernel::Multi)
        .with_density_cache(cache.clone());
    // Warm the cache with the (a, b) pair only: a later batch naming
    // (a, c), (b, d) and (a, b) then sees full hits, half hits and
    // misses across its deduplicated workset.
    let warm = BatchRequest::new(cfg)
        .with_seed(5)
        .with_pair(EventPair::new("ab", va.clone(), vb.clone()));
    let _ = run_batch_serial(&engine, &warm);
    let bfs_after_warm = cache.bfs_invocations();
    let req = BatchRequest::new(cfg)
        .with_seed(5)
        .with_threads(1)
        .with_pair(EventPair::new("ab", va.clone(), vb.clone()))
        .with_pair(EventPair::new("ac", va.clone(), vc.clone()))
        .with_pair(EventPair::new("bd", vb.clone(), vd.clone()));
    let reference = {
        let plain = TescEngine::new(&s.graph).with_density_kernel(BfsKernel::Scalar);
        run_batch_serial(&plain, &req)
    };
    let got = run_batch_serial(&engine, &req);
    for (a, b) in reference.outcomes.iter().zip(&got.outcomes) {
        assert_eq!(a, b, "partially memoized grouped batch");
    }
    assert!(
        cache.bfs_invocations() > bfs_after_warm,
        "new events force fresh lanes"
    );
    assert!(cache.hits() > 0, "warmed slots are reused");
}

#[test]
fn vicinity_index_identical_across_kernels_on_random_graphs() {
    for case in 0..CASES / 8 {
        let mut r = rng(24_000 + case);
        let (_, g) = random_graph(&mut r);
        let scalar = VicinityIndex::build_with_kernel(&g, 3, BfsKernel::Scalar);
        let bitset = VicinityIndex::build_with_kernel(&g, 3, BfsKernel::Bitset);
        assert_eq!(scalar, bitset, "case {case}");
    }
}
