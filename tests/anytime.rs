//! Anytime ranking property suite: the progressive executor's three
//! contracts, asserted on seeded scenarios.
//!
//! * **eps = 0 is exact, bit for bit.** With an infinite confidence
//!   interval nothing is decided early, every pair reaches the full
//!   sample size, and the anytime top-K must be bit-identical to the
//!   exact ranking — across the kernel × relabel × cache × thread
//!   matrix and across every sampler (importance bypasses the
//!   progressive tiers entirely).
//! * **Monotonicity.** Shrinking eps widens the intervals, postpones
//!   decisions and can only move the output *toward* exact: on a fixed
//!   seed set, recall@K against the exact top-K never decreases as eps
//!   shrinks.
//! * **Sample-prefix contract.** Escalation extends a pair's sample
//!   rather than resampling: for every escalation tier m of the
//!   schedule, the m-prefix of the full-n reference sample drawn from
//!   the pair's content seed is bit-identical to the tier-m sample.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::batch::EventPair;
use tesc::rank::{content_seed, rank_pairs, RankMode, RankRequest};
use tesc::sampler::{batch_bfs_sample, whole_graph_sample};
use tesc::{
    escalation_schedule, BfsKernel, DensityCache, NodeMask, SamplerKind, Tail, TescConfig,
    TescEngine, VicinityIndex,
};
use tesc_graph::{BfsScratch, NodeId};

use tesc_datasets::{DblpConfig, DblpScenario, TwitterConfig, TwitterScenario};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A shared-event candidate list on the DBLP scenario (the planner's
/// target shape, mirroring tests/ranking.rs).
fn candidate_pairs(s: &DblpScenario, seed: u64) -> Vec<EventPair> {
    let (base_a, base_b) = s.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(seed));
    let mut pairs = vec![EventPair::new("base", base_a.clone(), base_b.clone())];
    for i in 0..5 {
        let (_, partner) = s.plant_positive_keyword_pair(12, 10, 0.4, &mut rng(seed + 1 + i));
        pairs.push(EventPair::new(
            format!("base×p{i}"),
            base_a.clone(),
            partner,
        ));
    }
    for i in 0..4 {
        let a = s.plant_uniform_keyword(60, &mut rng(seed + 10 + i));
        let b = s.plant_uniform_keyword(60, &mut rng(seed + 20 + i));
        pairs.push(EventPair::new(format!("bg{i}"), a, b));
    }
    pairs
}

/// (label, score bits, z bits) fingerprint of a ranking.
fn fingerprint(report: &tesc::RankReport) -> Vec<(String, u64, u64)> {
    report
        .ranked
        .iter()
        .map(|e| (e.label.clone(), e.score.to_bits(), e.result.z().to_bits()))
        .collect()
}

#[test]
fn eps_zero_bit_identical_across_kernel_relabel_cache_threads() {
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(60));
    let pairs = candidate_pairs(&s, 61);
    let cfg = TescConfig::new(2)
        .with_sample_size(300)
        .with_tail(Tail::Upper);
    let req = RankRequest::new(cfg)
        .with_seed(8)
        .with_top_k(4)
        .with_pairs(pairs);
    let plain = TescEngine::new(&s.graph);
    let reference = fingerprint(&rank_pairs(&plain, &req.clone().with_threads(1)));
    assert_eq!(reference.len(), 4);
    let cache = std::sync::Arc::new(DensityCache::for_graph(&s.graph));
    let configurations: Vec<(&str, TescEngine<'_>)> = vec![
        ("plain", TescEngine::new(&s.graph)),
        (
            "scalar kernel",
            TescEngine::new(&s.graph).with_density_kernel(BfsKernel::Scalar),
        ),
        (
            "bitset kernel",
            TescEngine::new(&s.graph).with_density_kernel(BfsKernel::Bitset),
        ),
        (
            "multi kernel",
            TescEngine::new(&s.graph).with_density_kernel(BfsKernel::Multi),
        ),
        (
            "bitset+relabel",
            TescEngine::new(&s.graph)
                .with_density_kernel(BfsKernel::Bitset)
                .with_relabeling(true),
        ),
        (
            "cache cold",
            TescEngine::new(&s.graph).with_density_cache(cache.clone()),
        ),
        (
            "cache warm",
            TescEngine::new(&s.graph).with_density_cache(cache),
        ),
    ];
    let anytime = req.clone().with_mode(RankMode::anytime(0.0));
    for (name, engine) in &configurations {
        for threads in [1usize, 4] {
            let report = rank_pairs(engine, &anytime.clone().with_threads(threads));
            assert_eq!(
                &reference,
                &fingerprint(&report),
                "{name} @ {threads} threads: anytime(0) diverged from exact"
            );
            assert!(report.rounds > 1, "{name}: progressive tiers must run");
            for e in &report.ranked {
                assert_eq!(
                    e.decided_at_n, 300,
                    "{name}: eps = 0 must never decide early"
                );
            }
        }
    }
}

#[test]
fn eps_zero_bit_identical_for_every_sampler() {
    let s = DblpScenario::build(DblpConfig::small(), &mut rng(70));
    let idx = VicinityIndex::build(&s.graph, 2);
    let engine = TescEngine::with_vicinity_index(&s.graph, &idx);
    let pairs = candidate_pairs(&s, 71);
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::Importance { batch_size: 3 },
        SamplerKind::WholeGraph,
    ] {
        let cfg = TescConfig::new(2)
            .with_sample_size(200)
            .with_tail(Tail::Upper)
            .with_sampler(sampler);
        let req = RankRequest::new(cfg)
            .with_seed(5)
            .with_threads(1)
            .with_top_k(3)
            .with_pairs(pairs.clone());
        let exact = rank_pairs(&engine, &req);
        let zero = rank_pairs(&engine, &req.clone().with_mode(RankMode::anytime(0.0)));
        assert_eq!(
            fingerprint(&exact),
            fingerprint(&zero),
            "{sampler}: anytime(0) diverged from exact"
        );
        if matches!(sampler, SamplerKind::Importance { .. }) {
            assert_eq!(zero.rounds, 1, "{sampler}: importance bypasses the tiers");
        }
    }
}

/// Recall@K of a candidate ranking against the exact top-K label set.
fn recall_vs_exact(exact: &tesc::RankReport, candidate: &tesc::RankReport, k: usize) -> f64 {
    let top: Vec<&str> = exact
        .ranked
        .iter()
        .take(k)
        .map(|e| e.label.as_str())
        .collect();
    let hit = candidate
        .ranked
        .iter()
        .take(k)
        .filter(|e| top.contains(&e.label.as_str()))
        .count();
    hit as f64 / k.min(top.len()).max(1) as f64
}

#[test]
fn shrinking_eps_never_lowers_recall() {
    // Twitter-like all-pairs workload: a few planted strong pairs in a
    // sea of background pairs — the shape where escalation skew and
    // therefore eps actually matter.
    let s = TwitterScenario::build(TwitterConfig::small(), &mut rng(80));
    let mut pairs = Vec::new();
    for i in 0..5u64 {
        let (a, b) = s.plant_correlated_pair(40, 1, &mut rng(81 + i));
        pairs.push(EventPair::new(format!("hot{i}"), a, b));
    }
    for i in 0..20u64 {
        let (a, b) = s.plant_background_pair(40, &mut rng(90 + i));
        pairs.push(EventPair::new(format!("bg{i:02}"), a, b));
    }
    let cfg = TescConfig::new(1)
        .with_sample_size(400)
        .with_tail(Tail::Upper);
    let req = RankRequest::new(cfg)
        .with_seed(17)
        .with_threads(1)
        .with_top_k(10)
        .with_pairs(pairs);
    let exact = rank_pairs(&TescEngine::new(&s.graph), &req);
    let engine = TescEngine::new(&s.graph);
    // eps from permissive to zero: recall must be non-decreasing.
    let mut last = -1.0f64;
    for eps in [0.5, 0.2, 0.05, 0.0] {
        let report = rank_pairs(&engine, &req.clone().with_mode(RankMode::anytime(eps)));
        let recall = recall_vs_exact(&exact, &report, 10);
        assert!(
            recall >= last,
            "recall dropped from {last} to {recall} when eps shrank to {eps}"
        );
        last = recall;
    }
    assert_eq!(last, 1.0, "eps = 0 must reproduce the exact top-K");
}

#[test]
fn escalation_extends_the_sample_prefix() {
    // For every tier m of the escalation schedule, the reference
    // sample a pair draws at tier m is the m-prefix of the sample the
    // exact run draws at full n — from the pair's own content seed,
    // exactly as the planner replays it.
    let s = TwitterScenario::build(TwitterConfig::small(), &mut rng(100));
    let g = &s.graph;
    let mut scratch = BfsScratch::new(g.num_nodes());
    let n = 400usize;
    let h = 1u32;
    let master = 33u64;
    let schedule = escalation_schedule(n, SamplerKind::BatchBfs);
    assert_eq!(*schedule.last().unwrap(), n);
    assert!(schedule.len() >= 3, "n = 400 must yield several tiers");
    for i in 0..6u64 {
        let (a, b) = if i % 2 == 0 {
            s.plant_correlated_pair(40, 1, &mut rng(101 + i))
        } else {
            s.plant_background_pair(40, &mut rng(101 + i))
        };
        let mut union: Vec<NodeId> = a.iter().chain(&b).copied().collect();
        union.sort_unstable();
        union.dedup();
        let seed = content_seed(master, &a, &b);
        let full = batch_bfs_sample(g, &mut scratch, &union, h, n, &mut rng(seed));
        for &m in &schedule {
            let tier = batch_bfs_sample(g, &mut scratch, &union, h, m, &mut rng(seed));
            let len = tier.nodes.len().min(full.nodes.len());
            assert_eq!(
                tier.nodes[..len],
                full.nodes[..len],
                "pair {i}: tier {m} is not a prefix of the full sample"
            );
        }
        // Whole-graph sampling obeys the same contract.
        let mask = NodeMask::from_nodes(g.num_nodes(), &union);
        let full = whole_graph_sample(g, &mut scratch, &mask, h, n, &mut rng(seed));
        for &m in &schedule {
            let tier = whole_graph_sample(g, &mut scratch, &mask, h, m, &mut rng(seed));
            let len = tier.nodes.len().min(full.nodes.len());
            assert_eq!(
                tier.nodes[..len],
                full.nodes[..len],
                "pair {i}: whole-graph tier {m} is not a prefix"
            );
        }
    }
}

#[test]
fn anytime_speedup_mechanics_on_allpairs() {
    // At a practical eps the progressive run must sample measurably
    // fewer reference nodes than exact while keeping the podium.
    let s = TwitterScenario::build(TwitterConfig::small(), &mut rng(110));
    let mut pairs = Vec::new();
    for i in 0..3u64 {
        let (a, b) = s.plant_correlated_pair(40, 1, &mut rng(111 + i));
        pairs.push(EventPair::new(format!("hot{i}"), a, b));
    }
    for i in 0..17u64 {
        let (a, b) = s.plant_background_pair(40, &mut rng(120 + i));
        pairs.push(EventPair::new(format!("bg{i:02}"), a, b));
    }
    let cfg = TescConfig::new(1)
        .with_sample_size(400)
        .with_tail(Tail::Upper);
    let req = RankRequest::new(cfg)
        .with_seed(23)
        .with_threads(1)
        .with_top_k(3)
        .with_pairs(pairs);
    let engine = TescEngine::new(&s.graph);
    let exact = rank_pairs(&engine, &req);
    let fast = rank_pairs(&engine, &req.clone().with_mode(RankMode::anytime(0.1)));
    assert!(
        (fast.mean_samples_per_pair()) < 0.7 * exact.mean_samples_per_pair(),
        "anytime sampled {:.0}/pair, exact {:.0}/pair",
        fast.mean_samples_per_pair(),
        exact.mean_samples_per_pair()
    );
    assert!(fast.rounds > 1);
    assert!(
        fast.ranked.iter().any(|e| e.decided_at_n < 400) || fast.pruned > 0,
        "some decision must land before the full tier"
    );
    // The strong pairs stay on the podium.
    let exact_top: Vec<&str> = exact.ranked.iter().map(|e| e.label.as_str()).collect();
    for e in &fast.ranked {
        assert!(
            exact_top.contains(&e.label.as_str()),
            "{} not in the exact top-3",
            e.label
        );
    }
}
