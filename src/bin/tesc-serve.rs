//! `tesc-serve` — serve TESC queries and ingestion over HTTP.
//!
//! A thin launcher around [`tesc::serve::Server`]: build a
//! [`TescContext`] (from edge-list/event files or the built-in demo
//! scenario), wrap it in the daemon, print the bound address, and
//! block until `POST /shutdown`.
//!
//! ```text
//! tesc-serve --demo
//! tesc-serve --graph G.txt --events EVENTS.txt --h 2 --cache-budget 64M
//! tesc-serve --demo --data-dir ./data      # crash-safe: WAL + snapshots
//! ```
//!
//! See `docs/SERVING.md` for the endpoint reference and
//! `docs/PERSISTENCE.md` for the `--data-dir` durability contract.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::context::TescContext;
use tesc::persist::StoreOptions;
use tesc::serve::{Server, ServerConfig};
use tesc_datasets::dblp_like::{DblpConfig, DblpScenario};
use tesc_events::EventStore;
use tesc_repro::parse_byte_size;

const USAGE: &str = "\
tesc-serve — HTTP daemon for two-event structural correlation queries

USAGE:
  tesc-serve --demo [OPTIONS]
  tesc-serve --graph G.txt --events EVENTS.txt [OPTIONS]

DATA:
  --demo                 serve a built-in DBLP-like scenario (~2k nodes)
                         with planted `wireless`/`sensor` (attracting),
                         `texture`/`java` (repulsing) and `random` events
  --graph FILE           edge-list file (`num_nodes num_edges` header,
                         then one `u v` pair per line) or a `.tgraph`
                         container from `tesc-cli convert`
  --events FILE          named events file (`name v1,v2,...` per line)

OPTIONS:
  --listen ADDR          bind address          [default: 127.0.0.1:7878]
  --workers N            worker threads        [default: available cores]
  --queue N              connection backlog before 503   [default: 64]
  --max-body BYTES       request body cap      [default: 1M]
  --cache-budget SIZE    density-cache byte budget per snapshot
                         (e.g. 64M, 1G, inf)   [default: 64M]
  --h LEVEL              vicinity index depth  [default: 2]
  --relabel on|off       locality-relabeled substrate    [default: off]
  --seed N               demo-scenario RNG seed          [default: 42]
  --debug-endpoints      enable the test-only POST /sleep endpoint

DEADLINES:
  --default-deadline MS  deadline applied to query requests that do not
                         send their own `deadline_ms`  [default: none]
  --max-deadline MS      clamp client `deadline_ms` values to at most
                         this many milliseconds        [default: none]
  --read-timeout MS      slowloris guard: total time a client gets to
                         deliver one request (head + body)
                                                       [default: 5000]

DURABILITY:
  --data-dir DIR         persist ingestion to DIR (snapshots + WAL).
                         A non-empty DIR is recovered on boot and
                         --graph/--events/--demo are ignored; an empty
                         DIR is initialized from them. Every ingest is
                         fsync'd to the WAL before it is acknowledged.
  --snapshot-every N     checkpoint (snapshot + WAL rotation) after N
                         WAL records              [default: 1024]
  --access-log FILE      append one JSON line per request (ts_us,
                         endpoint, status, bytes, us, version)

The server prints `listening on ADDR` once ready. Stop it with
POST /shutdown (in-flight and queued requests drain first).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Parse `--flag value` pairs (plus bare `--demo`/`--debug-endpoints`).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let name = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {:?}", args[i]))?;
        if name == "demo" || name == "debug-endpoints" {
            map.insert(name.to_string(), "on".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{name} needs a value"))?;
        map.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn get<'m>(flags: &'m HashMap<String, String>, key: &str, default: &'m str) -> &'m str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let h: u32 = get(&flags, "h", "2")
        .parse()
        .map_err(|_| "--h must be an integer ≥ 1".to_string())?;
    if h == 0 {
        return Err("--h must be ≥ 1".into());
    }
    let seed: u64 = get(&flags, "seed", "42")
        .parse()
        .map_err(|_| "--seed must be an integer".to_string())?;
    let relabel = match get(&flags, "relabel", "off") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--relabel must be on|off, got {other:?}")),
    };
    let cache_budget = parse_byte_size(get(&flags, "cache-budget", "64M"))?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers: usize = match flags.get("workers") {
        None => cores,
        Some(w) => w
            .parse()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or("--workers must be an integer ≥ 1")?,
    };
    let queue_depth: usize = match flags.get("queue") {
        None => 64,
        Some(q) => q
            .parse()
            .ok()
            .filter(|&q| q >= 1)
            .ok_or("--queue must be an integer ≥ 1")?,
    };
    let max_body_bytes = parse_byte_size(get(&flags, "max-body", "1M"))?
        .ok_or("--max-body must be a finite size")?;
    let snapshot_every: u64 = get(&flags, "snapshot-every", "1024")
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or("--snapshot-every must be an integer ≥ 1")?;
    let store_opts = StoreOptions {
        snapshot_every,
        ..StoreOptions::default()
    };
    let data_dir = flags.get("data-dir").map(PathBuf::from);

    // With a non-empty --data-dir, the persisted state wins and the
    // initial-state flags are ignored; an empty (or absent) directory
    // boots from --demo / --graph + --events as before.
    let recovered = match &data_dir {
        Some(dir) => TescContext::open_dir(dir, h, cores, store_opts)
            .map_err(|e| format!("recovering {}: {e}", dir.display()))?,
        None => None,
    };
    let ctx = match recovered {
        Some(ctx) => {
            let snap = ctx.snapshot();
            eprintln!(
                "recovered version {} from {}: {} nodes, {} edges, {} events",
                snap.version(),
                data_dir.as_deref().unwrap_or(Path::new("?")).display(),
                snap.graph().num_nodes(),
                snap.graph().num_edges(),
                snap.events().num_events(),
            );
            ctx.with_relabeling(relabel).with_cache_budget(cache_budget)
        }
        None => {
            let (graph, events) = if flags.contains_key("demo") {
                demo_scenario(seed)
            } else {
                let graph_path = flags
                    .get("graph")
                    .ok_or("pass --demo, or --graph and --events")?;
                let events_path = flags
                    .get("events")
                    .ok_or("pass --demo, or --graph and --events")?;
                let graph = tesc_repro::load_graph(graph_path)?.into_csr();
                let events = tesc_events::io::read_named_events(&mut open(events_path)?)
                    .map_err(|e| format!("reading {events_path}: {e}"))?;
                (graph, events)
            };
            eprintln!(
                "graph: {} nodes, {} edges; {} events; building |V^h_v| index (h = {h}, {cores} threads)...",
                graph.num_nodes(),
                graph.num_edges(),
                events.num_events(),
            );
            let ctx = TescContext::try_with_threads(graph, events, h, cores)
                .map_err(|e| format!("invalid initial state: {e}"))?
                .with_relabeling(relabel)
                .with_cache_budget(cache_budget);
            match &data_dir {
                Some(dir) => ctx
                    .with_durability(dir, store_opts)
                    .map_err(|e| format!("initializing {}: {e}", dir.display()))?,
                None => ctx,
            }
        }
    };

    let parse_ms = |key: &str| -> Result<Option<std::time::Duration>, String> {
        match flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .ok()
                .filter(|&ms| ms >= 1)
                .map(|ms| Some(std::time::Duration::from_millis(ms)))
                .ok_or(format!("--{key} must be an integer ≥ 1 (milliseconds)")),
        }
    };
    let default_deadline = parse_ms("default-deadline")?;
    let max_deadline = parse_ms("max-deadline")?;
    let max_request_read =
        parse_ms("read-timeout")?.unwrap_or(std::time::Duration::from_millis(5000));

    let cfg = ServerConfig {
        addr: get(&flags, "listen", "127.0.0.1:7878").to_string(),
        workers,
        queue_depth,
        max_body_bytes,
        debug_endpoints: flags.contains_key("debug-endpoints"),
        access_log: flags.get("access-log").map(PathBuf::from),
        default_deadline,
        max_deadline,
        max_request_read,
    };
    let server = Server::spawn(ctx, cfg).map_err(|e| format!("binding listener: {e}"))?;
    // Scripts (and the integration suite) key on this exact line to
    // discover the ephemeral port — keep it stable.
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    eprintln!("shut down cleanly");
    Ok(())
}

fn open(path: &str) -> Result<std::io::BufReader<std::fs::File>, String> {
    std::fs::File::open(path)
        .map(std::io::BufReader::new)
        .map_err(|e| format!("opening {path}: {e}"))
}

/// The built-in scenario: a small DBLP-like co-author graph with one
/// attracting pair, one repulsing pair and one independent keyword —
/// enough to exercise every endpoint out of the box.
fn demo_scenario(seed: u64) -> (tesc_graph::CsrGraph, EventStore) {
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = DblpScenario::build(DblpConfig::small(), &mut rng);
    let (wireless, sensor) = scenario.plant_positive_keyword_pair(6, 10, 0.3, &mut rng);
    let (texture, java) = scenario.plant_negative_keyword_pair(5, 10, 2, &mut rng);
    let random = scenario.plant_uniform_keyword(60, &mut rng);
    let mut events = EventStore::new();
    events.add_event("wireless", wireless);
    events.add_event("sensor", sensor);
    events.add_event("texture", texture);
    events.add_event("java", java);
    events.add_event("random", random);
    (scenario.graph, events)
}
