//! `tesc-cli` — run the TESC test from the command line.
//!
//! ```text
//! tesc-cli demo --dir DIR
//!     Write a demo scenario (graph, two correlated event files and a
//!     pair-list file for `batch`).
//!
//! tesc-cli convert --graph G.txt --out G.tgraph [--relabel on|off]
//!     Re-encode a graph as a `.tgraph` container: delta-encoded,
//!     varint-packed adjacency with CRC-checked sections (see
//!     `tesc_graph::container`). `--relabel on` additionally embeds
//!     the locality permutation so later runs skip recomputing it.
//!     Every command's --graph flag accepts either encoding (sniffed
//!     by magic); containers load in near-zero-parse time and hold
//!     the compressed rows resident, streaming neighbors straight
//!     into the BFS kernels.
//!
//! tesc-cli test --graph G.txt --event-a A.txt --event-b B.txt
//!               [--h 1] [--n 900] [--tail upper|lower|two]
//!               [--alpha 0.05] [--sampler batch|reject|importance|whole]
//!               [--statistic kendall|spearman] [--seed 42]
//!               [--kernel auto|scalar|bitset|multi] [--relabel on|off]
//!     Run the TESC significance test and the transaction-correlation
//!     baseline, print both. --kernel picks the density BFS kernel
//!     (default auto: expected-density heuristic, batching reference
//!     nodes into 64-way multi-source traversals on big samples;
//!     multi forces the batching); --relabel on runs density BFS on a
//!     locality-relabeled substrate. Both knobs are pure performance
//!     switches — results are bit-identical.
//!
//! tesc-cli batch --graph G.txt --pairs PAIRS.txt [--threads 0]
//!                [--h 1] [--n 900] [--tail upper|lower|two]
//!                [--alpha 0.05] [--sampler batch|reject|importance|whole]
//!                [--statistic kendall|spearman] [--seed 42] [--cache on]
//!     Run every pair of PAIRS.txt through the parallel batch engine
//!     (tesc::batch) and print one row per pair plus a summary.
//!     --threads 0 uses every core; results are bit-identical at any
//!     thread count. --cache on (default) shares per-(event, node, h)
//!     density counts across pairs; off disables (results identical).
//!
//! tesc-cli rank --graph G.txt --events EVENTS.txt
//!               [--pairs NPAIRS.txt | --focus EVENT] [--top-k K]
//!               [--mode exact|anytime:EPS] [--deadline DUR]
//!               [--threads 0] [--h 1] [--n 900] [--tail upper|lower|two]
//!               [--alpha 0.05] [--sampler batch|reject|importance|whole]
//!               [--statistic kendall|spearman] [--seed 42] [--cache on]
//!               [--kernel auto|scalar|bitset|multi] [--relabel on|off]
//!     Rank event pairs by TESC evidence through the fused pair-set
//!     planner (tesc::rank): all pairs of EVENTS.txt by default,
//!     `--focus EVENT` for one event against every partner, or an
//!     explicit candidate list via --pairs. --top-k keeps the best K
//!     and prunes candidates whose significance budget cannot reach
//!     the cutoff. Scores are content-seeded: a pair ranks the same
//!     wherever it appears in the candidate list. With
//!     `--mode anytime:EPS` (and a --top-k cutoff) pairs start at a
//!     small sample and only escalate while their `1−EPS` confidence
//!     interval straddles the K-th score; the table then shows the
//!     sample tier each pair was decided at (`anytime:0` is
//!     bit-identical to exact). `--deadline DUR` (e.g. 500ms, 2s)
//!     bounds the whole run with a cooperative budget: anytime runs
//!     degrade to the best ranking decided in time, exact runs stop
//!     with the typed `Interrupted` error.
//!
//! tesc-cli stream --graph G.txt --events EVENTS.txt --pairs NPAIRS.txt
//!                 --updates U.txt [--threads 0] [--h 1] [--n 900]
//!                 [--tail ...] [--alpha ...] [--sampler ...]
//!                 [--statistic ...] [--seed 42]
//!     Load the graph and named events into a versioned TescContext,
//!     test every pair at version 1, then ingest the update script and
//!     re-test the affected pairs after every commit.
//! ```
//!
//! Graph format: `tesc_graph::io` edge list (`num_nodes num_edges`
//! header, one `u v` pair per line). Event format: one node id per
//! line (`tesc_events::io`). Pair-list format: one pair per line,
//! `label a1,a2,a3 b1,b2,b3` (comma-separated node ids; `#` starts a
//! comment).
//!
//! `stream` formats: EVENTS.txt holds `name v1,v2,v3` per line
//! (`tesc_events::io::read_named_events`); NPAIRS.txt holds
//! `label eventA eventB` per line referencing event *names*; U.txt is
//! an update script of
//!
//! ```text
//! edge U V              # stage one edge addition
//! event NAME v1,v2,...  # stage occurrence additions (creates NAME if new)
//! commit                # publish the staged deltas as the next version
//! ```
//!
//! with an implicit trailing `commit`. After each commit the tool
//! re-tests only the *affected* pairs: those whose events changed,
//! plus those with an event occurrence within `2h` hops (in the new
//! graph) of an added edge's endpoint — any reference node whose
//! density could have moved lies within `h` of both an event node and
//! a touched endpoint, so the `2h` ball is a sound over-approximation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use tesc::batch::{run_batch, BatchRequest, EventPair};
use tesc::context::TescContext;
use tesc::{
    BfsKernel, DensityCache, SamplerKind, SignificanceLevel, Statistic, Tail, TescConfig,
    TescEngine,
};
use tesc_baselines::{lift, transaction_correlation};
use tesc_events::NodeMask;
use tesc_graph::{
    encode_tgraph, Adjacency, BfsScratch, CompressedCsr, NodeId, RelabeledGraph, Relabeling,
    VicinityIndex,
};
use tesc_repro::{load_graph, LoadedGraph};

const USAGE: &str = "usage:
  tesc-cli demo --dir DIR
  tesc-cli convert --graph G.txt --out G.tgraph [--relabel on|off]
  tesc-cli test --graph G.txt --event-a A.txt --event-b B.txt
                [--h 1] [--n 900] [--tail upper|lower|two] [--alpha 0.05]
                [--sampler batch|reject|importance|whole]
                [--statistic kendall|spearman] [--seed 42]
                [--kernel auto|scalar|bitset|multi] [--relabel on|off]
  tesc-cli batch --graph G.txt --pairs PAIRS.txt [--threads 0]
                [--h 1] [--n 900] [--tail upper|lower|two] [--alpha 0.05]
                [--sampler batch|reject|importance|whole]
                [--statistic kendall|spearman] [--seed 42] [--cache on|off]
                [--kernel auto|scalar|bitset|multi] [--relabel on|off]
  tesc-cli rank --graph G.txt --events EVENTS.txt
                [--pairs NPAIRS.txt | --focus EVENT] [--top-k K]
                [--mode exact|anytime:EPS] [--deadline DUR] [--threads 0]
                [--h 1] [--n 900] [--tail upper|lower|two] [--alpha 0.05]
                [--sampler batch|reject|importance|whole]
                [--statistic kendall|spearman] [--seed 42] [--cache on|off]
                [--kernel auto|scalar|bitset|multi] [--relabel on|off]
  tesc-cli stream --graph G.txt --events EVENTS.txt --pairs NPAIRS.txt
                --updates U.txt [--threads 0]
                [--h 1] [--n 900] [--tail upper|lower|two] [--alpha 0.05]
                [--sampler batch|reject|importance|whole]
                [--statistic kendall|spearman] [--seed 42]
                [--kernel auto|scalar|bitset|multi] [--relabel on|off]
                [--cache-budget 64M|1G|inf]   (default 64M: long replays
                 run under the bounded, second-chance-evicting cache)

Every --graph flag accepts a text edge list or a `.tgraph` compressed
container (sniffed by magic); `convert` produces the latter.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "demo" => run_demo(&flags),
        "convert" => run_convert(&flags),
        "test" => run_test(&flags),
        "batch" => run_batch_cmd(&flags),
        "rank" => run_rank_cmd(&flags),
        "stream" => run_stream_cmd(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let name = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        map.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn get<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("could not parse --{name} {v:?}")),
        None => Ok(default),
    }
}

/// Write a small demo scenario into `--dir`: a community graph plus two
/// positively correlated events, ready for `tesc-cli test`.
fn run_demo(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = get(flags, "dir")?;
    let seed: u64 = parse(flags, "seed", 7u64)?;
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let (graph, _) = tesc_graph::generators::planted_partition(100, 20, 0.4, 0.002, &mut rng);
    let va: Vec<u32> = (0..25u32)
        .flat_map(|c| (0..4).map(move |i| c * 20 + i))
        .collect();
    let vb: Vec<u32> = (0..25u32)
        .flat_map(|c| (4..8).map(move |i| c * 20 + i))
        .collect();

    let write = |name: &str, f: &dyn Fn(&mut BufWriter<File>) -> std::io::Result<()>| {
        let path = Path::new(dir).join(name);
        let file = File::create(&path).map_err(|e| format!("creating {}: {e}", path.display()))?;
        let mut w = BufWriter::new(file);
        f(&mut w).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("graph.txt", &|w| tesc_graph::io::write_edge_list(&graph, w))?;
    write("event_a.txt", &|w| tesc_events::io::write_node_list(&va, w))?;
    write("event_b.txt", &|w| tesc_events::io::write_node_list(&vb, w))?;
    // A pair list for `tesc-cli batch`: the planted positive pair plus
    // pairs placed in disjoint, far-apart communities — structurally
    // *separated*, so TESC reads them as strongly negative (repulsion);
    // under the suggested `--tail upper` they report Independent.
    write("pairs.txt", &|w| {
        writeln!(w, "# label a_nodes b_nodes (comma-separated)")?;
        let fmt = |v: &[u32]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        writeln!(w, "planted_positive {} {}", fmt(&va), fmt(&vb))?;
        for c in 0..4u32 {
            let xa: Vec<u32> = (0..5u32).map(|i| c * 20 + 2 * i).collect();
            let xb: Vec<u32> = (0..5u32).map(|i| (c + 10) * 20 + 2 * i + 1).collect();
            writeln!(w, "separated_communities_{c} {} {}", fmt(&xa), fmt(&xb))?;
        }
        Ok(())
    })?;
    println!("wrote {dir}/graph.txt, {dir}/event_a.txt, {dir}/event_b.txt, {dir}/pairs.txt");
    println!("try: tesc-cli test --graph {dir}/graph.txt --event-a {dir}/event_a.txt --event-b {dir}/event_b.txt --tail upper --n 300");
    println!(
        "or:  tesc-cli batch --graph {dir}/graph.txt --pairs {dir}/pairs.txt --tail upper --n 300"
    );
    Ok(())
}

/// Re-encode a graph file (either encoding) as a `.tgraph` container.
fn run_convert(flags: &HashMap<String, String>) -> Result<(), String> {
    let graph_path = get(flags, "graph")?;
    let out_path = get(flags, "out")?;
    let relabel = match flags.get("relabel").map(String::as_str) {
        None | Some("off") => false,
        Some("on") => true,
        Some(other) => return Err(format!("--relabel must be on|off, got {other:?}")),
    };
    let input_bytes = std::fs::metadata(graph_path)
        .map_err(|e| format!("reading {graph_path}: {e}"))?
        .len();
    let loaded = load_graph(graph_path)?;
    let encoding = loaded.encoding();
    let (compressed, perm) = match loaded {
        LoadedGraph::Plain(g) => {
            let c = CompressedCsr::from_graph(&g);
            let perm = relabel.then(|| Relabeling::locality_order(&g));
            (c, perm)
        }
        // Converting a container is a no-op re-encode, except that
        // --relabel on computes and embeds a permutation if the input
        // carried none (an embedded one is preserved either way — it
        // cost a BFS to compute and loses nothing to keep).
        LoadedGraph::Compressed(c, existing) => {
            let perm = if relabel && existing.is_none() {
                Some(Relabeling::locality_order(&c))
            } else {
                existing
            };
            (c, perm)
        }
    };
    let bytes = encode_tgraph(&compressed, perm.as_ref());
    std::fs::write(out_path, &bytes).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!(
        "{graph_path} ({encoding}): {} nodes, {} edges",
        compressed.num_nodes(),
        compressed.num_edges()
    );
    println!("  input:     {input_bytes} B");
    println!(
        "  container: {} B on disk ({:.2}x smaller), locality permutation: {}",
        bytes.len(),
        input_bytes as f64 / bytes.len() as f64,
        if perm.is_some() { "embedded" } else { "none" }
    );
    println!(
        "  resident:  {} B (packed adjacency + directory)",
        compressed.resident_bytes()
    );
    Ok(())
}

/// Apply the `--relabel` knob to an engine: reuse the permutation a
/// `.tgraph` container embedded (skipping the locality-order BFS),
/// otherwise let the engine compute it. Results are bit-identical
/// either way — which permutation runs underneath is invisible.
fn with_relabel_choice<'a, G: Adjacency>(
    engine: TescEngine<'a, G>,
    graph: &'a G,
    relabel: bool,
    embedded: Option<Relabeling>,
) -> TescEngine<'a, G> {
    match (relabel, embedded) {
        (true, Some(map)) => {
            engine.with_relabeled_arc(Arc::new(RelabeledGraph::with_map(graph, map)))
        }
        (true, None) => engine.with_relabeling(true),
        (false, _) => engine,
    }
}

/// Build the [`TescConfig`] shared by `test` and `batch` from flags.
fn config_from_flags(flags: &HashMap<String, String>) -> Result<TescConfig, String> {
    let h: u32 = parse(flags, "h", 1u32)?;
    let n: usize = parse(flags, "n", 900usize)?;
    let alpha: f64 = parse(flags, "alpha", 0.05f64)?;
    let tail = match flags.get("tail").map(String::as_str) {
        None | Some("two") => Tail::TwoSided,
        Some("upper") => Tail::Upper,
        Some("lower") => Tail::Lower,
        Some(other) => return Err(format!("--tail must be upper|lower|two, got {other:?}")),
    };
    let sampler = match flags.get("sampler").map(String::as_str) {
        None | Some("batch") => SamplerKind::BatchBfs,
        Some("reject") => SamplerKind::Rejection,
        Some("importance") => SamplerKind::Importance {
            batch_size: match h {
                1 => 1,
                2 => 3,
                _ => 6,
            },
        },
        Some("whole") => SamplerKind::WholeGraph,
        Some(other) => {
            return Err(format!(
                "--sampler must be batch|reject|importance|whole, got {other:?}"
            ))
        }
    };
    let statistic = match flags.get("statistic").map(String::as_str) {
        None | Some("kendall") => Statistic::KendallTau,
        Some("spearman") => Statistic::SpearmanRho,
        Some(other) => {
            return Err(format!(
                "--statistic must be kendall|spearman, got {other:?}"
            ))
        }
    };
    Ok(TescConfig::new(h)
        .with_sample_size(n)
        .with_tail(tail)
        .with_alpha(SignificanceLevel::new(alpha))
        .with_sampler(sampler)
        .with_statistic(statistic))
}

/// Parse the density-kernel performance knobs shared by `test`,
/// `batch` and `stream` (results are bit-identical for every choice).
fn kernel_flags(flags: &HashMap<String, String>) -> Result<(BfsKernel, bool), String> {
    let kernel = match flags.get("kernel").map(String::as_str) {
        None | Some("auto") => BfsKernel::Auto,
        Some("scalar") => BfsKernel::Scalar,
        Some("bitset") => BfsKernel::Bitset,
        Some("multi") => BfsKernel::Multi,
        Some(other) => {
            return Err(format!(
                "--kernel must be auto|scalar|bitset|multi, got {other:?}"
            ))
        }
    };
    let relabel = match flags.get("relabel").map(String::as_str) {
        None | Some("off") => false,
        Some("on") => true,
        Some(other) => return Err(format!("--relabel must be on|off, got {other:?}")),
    };
    Ok((kernel, relabel))
}

fn open(p: &str) -> Result<BufReader<File>, String> {
    File::open(p)
        .map(BufReader::new)
        .map_err(|e| format!("opening {p}: {e}"))
}

fn run_test(flags: &HashMap<String, String>) -> Result<(), String> {
    match load_graph(get(flags, "graph")?)? {
        LoadedGraph::Plain(g) => run_test_on(&g, None, flags),
        LoadedGraph::Compressed(c, perm) => run_test_on(&c, perm, flags),
    }
}

fn run_test_on<G: Adjacency>(
    graph: &G,
    embedded: Option<Relabeling>,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    let a_path = get(flags, "event-a")?;
    let b_path = get(flags, "event-b")?;
    let seed: u64 = parse(flags, "seed", 42u64)?;
    let cfg = config_from_flags(flags)?;
    let (h, alpha, sampler) = (cfg.h, cfg.alpha.alpha(), cfg.sampler);

    let va = tesc_events::io::read_node_list(&mut open(a_path)?)
        .map_err(|e| format!("reading {a_path}: {e}"))?;
    let vb = tesc_events::io::read_node_list(&mut open(b_path)?)
        .map_err(|e| format!("reading {b_path}: {e}"))?;
    for (name, nodes) in [(a_path, &va), (b_path, &vb)] {
        if let Some(&v) = nodes.iter().find(|&&v| v as usize >= graph.num_nodes()) {
            return Err(format!(
                "{name}: node {v} out of range, the graph has only {} nodes",
                graph.num_nodes()
            ));
        }
    }

    eprintln!(
        "graph: {} nodes, {} edges; |V_a| = {}, |V_b| = {}",
        graph.num_nodes(),
        graph.num_edges(),
        va.len(),
        vb.len()
    );

    let mut rng = StdRng::seed_from_u64(seed);

    // Rejection/importance need the vicinity index over the event nodes.
    let needs_index = matches!(
        sampler,
        SamplerKind::Rejection | SamplerKind::Importance { .. }
    );
    let (kernel, relabel) = kernel_flags(flags)?;
    let index;
    let engine = if needs_index {
        let mut union = va.clone();
        union.extend(&vb);
        union.sort_unstable();
        union.dedup();
        eprintln!("building |V^h_v| index for {} event nodes...", union.len());
        index = VicinityIndex::build_for_nodes(graph, &union, h);
        TescEngine::with_vicinity_index(graph, &index)
    } else {
        TescEngine::new(graph)
    }
    .with_density_kernel(kernel);
    let engine = with_relabel_choice(engine, graph, relabel, embedded);

    let result = engine
        .test(&va, &vb, &cfg, &mut rng)
        .map_err(|e| format!("TESC test failed: {e}"))?;
    println!("TESC (h = {h}, n = {}, {sampler}):", result.n_refs);
    println!("  statistic = {:+.4}", result.statistic());
    println!("  z-score   = {:+.3}", result.z());
    println!("  p-value   = {:.3e}", result.outcome.p_value);
    println!(
        "  verdict   = {:?} (alpha = {alpha})",
        result.outcome.verdict
    );

    let tc = transaction_correlation(graph.num_nodes(), &va, &vb);
    println!("Transaction correlation baseline:");
    println!("  tau_b     = {:+.4}", tc.tau_b);
    println!("  z-score   = {:+.3}", tc.z);
    if let Some(l) = lift(graph.num_nodes(), &va, &vb) {
        println!("  lift      = {l:.3}");
    }
    Ok(())
}

/// Parse a pair-list file: one pair per line,
/// `label a1,a2,a3 b1,b2,b3`; blank lines and `#` comments skipped.
fn parse_pairs(text: &str, path: &str) -> Result<Vec<EventPair>, String> {
    let parse_ids = |field: &str, line_no: usize| -> Result<Vec<NodeId>, String> {
        field
            .split(',')
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse::<NodeId>()
                    .map_err(|_| format!("{path}:{line_no}: bad node id {t:?}"))
            })
            .collect()
    };
    let mut pairs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(label), Some(a), Some(b), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(format!(
                "{path}:{}: expected `label a1,a2,... b1,b2,...`, got {line:?}",
                i + 1
            ));
        };
        pairs.push(EventPair::new(
            label,
            parse_ids(a, i + 1)?,
            parse_ids(b, i + 1)?,
        ));
    }
    if pairs.is_empty() {
        return Err(format!("{path}: no pairs found"));
    }
    Ok(pairs)
}

/// Run a whole pair list through the parallel batch engine.
fn run_batch_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    match load_graph(get(flags, "graph")?)? {
        LoadedGraph::Plain(g) => run_batch_on(&g, None, flags),
        LoadedGraph::Compressed(c, perm) => run_batch_on(&c, perm, flags),
    }
}

fn run_batch_on<G: Adjacency>(
    graph: &G,
    embedded: Option<Relabeling>,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    let pairs_path = get(flags, "pairs")?;
    let seed: u64 = parse(flags, "seed", 42u64)?;
    let threads: usize = parse(flags, "threads", 0usize)?;
    let cfg = config_from_flags(flags)?;

    let text =
        std::fs::read_to_string(pairs_path).map_err(|e| format!("reading {pairs_path}: {e}"))?;
    let pairs = parse_pairs(&text, pairs_path)?;
    for p in &pairs {
        if let Some(&v) =
            p.a.iter()
                .chain(&p.b)
                .find(|&&v| v as usize >= graph.num_nodes())
        {
            return Err(format!(
                "{pairs_path}: pair {:?} names node {v}, but the graph has only {} nodes",
                p.label,
                graph.num_nodes()
            ));
        }
    }

    eprintln!(
        "graph: {} nodes, {} edges; {} pairs from {pairs_path}",
        graph.num_nodes(),
        graph.num_edges(),
        pairs.len()
    );

    // Rejection/importance need the vicinity index over every event
    // node that occurs anywhere in the batch — built once, shared by
    // all worker threads.
    let needs_index = matches!(
        cfg.sampler,
        SamplerKind::Rejection | SamplerKind::Importance { .. }
    );
    let (kernel, relabel) = kernel_flags(flags)?;
    let index;
    let engine = if needs_index {
        let mut union: Vec<NodeId> = pairs
            .iter()
            .flat_map(|p| p.a.iter().chain(&p.b).copied())
            .collect();
        union.sort_unstable();
        union.dedup();
        eprintln!("building |V^h_v| index for {} event nodes...", union.len());
        index = VicinityIndex::build_for_nodes(graph, &union, cfg.h);
        TescEngine::with_vicinity_index(graph, &index)
    } else {
        TescEngine::new(graph)
    }
    .with_density_kernel(kernel);
    let mut engine = with_relabel_choice(engine, graph, relabel, embedded);
    let cache = match flags.get("cache").map(String::as_str) {
        None | Some("on") => {
            let cache = Arc::new(DensityCache::for_graph(graph));
            engine = engine.with_density_cache(cache.clone());
            Some(cache)
        }
        Some("off") => None,
        Some(other) => return Err(format!("--cache must be on|off, got {other:?}")),
    };

    let req = BatchRequest::new(cfg)
        .with_seed(seed)
        .with_threads(threads)
        .with_pairs(pairs);
    let report = run_batch(&engine, &req);
    if let Some(cache) = cache {
        eprintln!(
            "density cache: {} BFS run, {} reused from {} memoized counts",
            cache.bfs_invocations(),
            cache.hits(),
            cache.len()
        );
    }

    print_outcome_rows(&report);
    println!("summary: {}", report.summary());
    Ok(())
}

/// Print the per-pair result table shared by `batch` and `stream`.
fn print_outcome_rows(report: &tesc::BatchReport) {
    println!(
        "{:<24} {:>9} {:>8} {:>10} {:>9}  verdict",
        "pair", "statistic", "z", "p", "n_refs"
    );
    for o in &report.outcomes {
        match &o.result {
            Ok(r) => println!(
                "{:<24} {:>+9.4} {:>+8.3} {:>10.3e} {:>9}  {:?}",
                o.label,
                r.statistic(),
                r.z(),
                r.outcome.p_value,
                r.n_refs,
                r.outcome.verdict
            ),
            Err(e) => println!("{:<24} failed: {e}", o.label),
        }
    }
}

/// Rank event pairs by TESC evidence through the fused pair-set
/// planner (`tesc::rank`).
fn run_rank_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    match load_graph(get(flags, "graph")?)? {
        LoadedGraph::Plain(g) => run_rank_on(&g, None, flags),
        LoadedGraph::Compressed(c, perm) => run_rank_on(&c, perm, flags),
    }
}

fn run_rank_on<G: Adjacency>(
    graph: &G,
    embedded: Option<Relabeling>,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    let events_path = get(flags, "events")?;
    let seed: u64 = parse(flags, "seed", 42u64)?;
    let threads: usize = parse(flags, "threads", 0usize)?;
    let cfg = config_from_flags(flags)?;

    let store = tesc_events::io::read_named_events(&mut open(events_path)?)
        .map_err(|e| format!("reading {events_path}: {e}"))?;
    for (_, name, nodes) in store.iter() {
        if let Some(&v) = nodes.iter().find(|&&v| v as usize >= graph.num_nodes()) {
            return Err(format!(
                "{events_path}: event {name:?} names node {v}, but the graph has only {} nodes",
                graph.num_nodes()
            ));
        }
    }

    // Candidate set: explicit list > one-vs-all focus > all pairs —
    // the latter two via the store's enumeration helpers.
    let candidates: Vec<EventPair> = if let Some(pairs_path) = flags.get("pairs") {
        if flags.contains_key("focus") {
            return Err("--pairs and --focus are mutually exclusive".into());
        }
        let text = std::fs::read_to_string(pairs_path)
            .map_err(|e| format!("reading {pairs_path}: {e}"))?;
        parse_named_pairs(&text, pairs_path)?
            .into_iter()
            .map(|(label, a_name, b_name)| {
                let resolve = |name: &str| {
                    store
                        .id_by_name(name)
                        .ok_or_else(|| format!("{pairs_path}: unknown event {name:?}"))
                };
                let (a, b) = (resolve(&a_name)?, resolve(&b_name)?);
                Ok(EventPair::new(
                    label,
                    store.nodes(a).to_vec(),
                    store.nodes(b).to_vec(),
                ))
            })
            .collect::<Result<_, String>>()?
    } else {
        let id_pairs = match flags.get("focus") {
            Some(name) => {
                let id = store
                    .id_by_name(name)
                    .ok_or_else(|| format!("--focus: unknown event {name:?}"))?;
                store.pairs_with(id)
            }
            None => store.event_pairs(),
        };
        id_pairs
            .into_iter()
            .map(|(a, b)| {
                EventPair::new(
                    format!("{}×{}", store.name(a), store.name(b)),
                    store.nodes(a).to_vec(),
                    store.nodes(b).to_vec(),
                )
            })
            .collect()
    };
    if candidates.is_empty() {
        return Err(format!(
            "{events_path}: {} event(s) yield no candidate pairs",
            store.num_events()
        ));
    }

    eprintln!(
        "graph: {} nodes, {} edges; {} events, {} candidate pairs",
        graph.num_nodes(),
        graph.num_edges(),
        store.num_events(),
        candidates.len()
    );

    let needs_index = matches!(
        cfg.sampler,
        SamplerKind::Rejection | SamplerKind::Importance { .. }
    );
    let (kernel, relabel) = kernel_flags(flags)?;
    let index;
    let engine = if needs_index {
        let mut union: Vec<NodeId> = candidates
            .iter()
            .flat_map(|p| p.a.iter().chain(&p.b).copied())
            .collect();
        union.sort_unstable();
        union.dedup();
        eprintln!("building |V^h_v| index for {} event nodes...", union.len());
        index = VicinityIndex::build_for_nodes(graph, &union, cfg.h);
        TescEngine::with_vicinity_index(graph, &index)
    } else {
        TescEngine::new(graph)
    }
    .with_density_kernel(kernel);
    let mut engine = with_relabel_choice(engine, graph, relabel, embedded);
    match flags.get("cache").map(String::as_str) {
        None | Some("on") => {
            engine = engine.with_density_cache(Arc::new(DensityCache::for_graph(graph)));
        }
        Some("off") => {}
        Some(other) => return Err(format!("--cache must be on|off, got {other:?}")),
    }

    let mut req = tesc::RankRequest::new(cfg)
        .with_seed(seed)
        .with_threads(threads)
        .with_pairs(candidates);
    if let Some(k) = flags.get("top-k") {
        let k: usize = k
            .parse()
            .map_err(|_| format!("could not parse --top-k {k:?}"))?;
        if k == 0 {
            return Err("--top-k must be at least 1".into());
        }
        req = req.with_top_k(k);
    }
    let mode = parse_mode_flag(flags)?;
    let anytime = matches!(mode, tesc::RankMode::Anytime { .. });
    if anytime && req.top_k.is_none() {
        eprintln!("note: --mode anytime needs --top-k; running exact");
    }
    req = req.with_mode(mode);
    let deadline = parse_deadline_flag(flags)?;
    if let Some(d) = deadline {
        engine = engine.with_budget(tesc::Budget::with_deadline(d));
    }
    // The budgeted entry point surfaces the typed `Interrupted` error;
    // under anytime + top-k an exhausted budget degrades to the best
    // ranking decided in time instead (marked below the table).
    let report = match tesc::rank_pairs_budgeted(&engine, &req) {
        Ok(report) => report,
        Err(i) => return Err(format!("interrupted: {i}")),
    };
    if report.degraded {
        eprintln!(
            "note: deadline of {:?} exhausted after {} round(s); showing the best ranking decided in time",
            deadline.unwrap_or_default(),
            report.rounds
        );
    }

    if anytime {
        println!(
            "{:>4}  {:<24} {:>8} {:>8} {:>10} {:>9} {:>9}  verdict",
            "rank", "pair", "score", "z", "p", "n_refs", "decided@n"
        );
    } else {
        println!(
            "{:>4}  {:<24} {:>8} {:>8} {:>10} {:>9}  verdict",
            "rank", "pair", "score", "z", "p", "n_refs"
        );
    }
    for e in &report.ranked {
        if anytime {
            println!(
                "{:>4}  {:<24} {:>+8.3} {:>+8.3} {:>10.3e} {:>9} {:>9}  {:?}",
                e.rank,
                e.label,
                e.score,
                e.result.z(),
                e.result.outcome.p_value,
                e.result.n_refs,
                e.decided_at_n,
                e.result.outcome.verdict
            );
        } else {
            println!(
                "{:>4}  {:<24} {:>+8.3} {:>+8.3} {:>10.3e} {:>9}  {:?}",
                e.rank,
                e.label,
                e.score,
                e.result.z(),
                e.result.outcome.p_value,
                e.result.n_refs,
                e.result.outcome.verdict
            );
        }
    }
    for f in &report.failed {
        if let Err(e) = &f.result {
            println!("   -  {:<24} failed: {e}", f.label);
        }
    }
    println!("summary: {}", report.summary());
    Ok(())
}

/// Parse `--deadline DUR` where DUR is `500ms`, `2s`, or a bare
/// millisecond count (default: no deadline).
fn parse_deadline_flag(flags: &HashMap<String, String>) -> Result<Option<Duration>, String> {
    let Some(s) = flags.get("deadline") else {
        return Ok(None);
    };
    let (digits, unit_ms) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1000)
    } else {
        (s.as_str(), 1)
    };
    digits
        .parse::<u64>()
        .ok()
        .filter(|&v| v >= 1)
        .map(|v| Some(Duration::from_millis(v.saturating_mul(unit_ms))))
        .ok_or_else(|| format!("--deadline must be a duration like 500ms or 2s, got {s:?}"))
}

/// Parse `--mode exact|anytime:EPS` (default exact).
fn parse_mode_flag(flags: &HashMap<String, String>) -> Result<tesc::RankMode, String> {
    match flags.get("mode").map(String::as_str) {
        None | Some("exact") => Ok(tesc::RankMode::Exact),
        Some("anytime") => Err("--mode anytime needs an EPS, e.g. --mode anytime:0.05".into()),
        Some(s) => {
            let Some(eps) = s.strip_prefix("anytime:") else {
                return Err(format!("--mode must be exact|anytime:EPS, got {s:?}"));
            };
            let eps: f64 = eps
                .parse()
                .map_err(|_| format!("could not parse --mode eps {eps:?}"))?;
            if !(0.0..1.0).contains(&eps) {
                return Err(format!("--mode anytime EPS must be in [0, 1), got {eps}"));
            }
            Ok(tesc::RankMode::Anytime { eps })
        }
    }
}

/// Parse the `stream` pair list: `label eventA eventB` per line,
/// referencing event *names*; blank lines and `#` comments skipped.
fn parse_named_pairs(text: &str, path: &str) -> Result<Vec<(String, String, String)>, String> {
    let mut pairs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(label), Some(a), Some(b), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(format!(
                "{path}:{}: expected `label eventA eventB`, got {line:?}",
                i + 1
            ));
        };
        pairs.push((label.to_string(), a.to_string(), b.to_string()));
    }
    if pairs.is_empty() {
        return Err(format!("{path}: no pairs found"));
    }
    Ok(pairs)
}

/// One staged operation of a `stream` update script.
enum UpdateOp {
    Edge(NodeId, NodeId),
    Event(String, Vec<NodeId>),
    Commit,
}

/// Parse an update script (`edge U V` / `event NAME ids` / `commit`).
fn parse_updates(text: &str, path: &str) -> Result<Vec<UpdateOp>, String> {
    let mut ops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let at = |msg: String| format!("{path}:{}: {msg}", i + 1);
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let op = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some("edge"), Some(u), Some(v), None) => {
                let parse_id = |t: &str| {
                    t.parse::<NodeId>()
                        .map_err(|_| at(format!("bad node id {t:?}")))
                };
                UpdateOp::Edge(parse_id(u)?, parse_id(v)?)
            }
            (Some("event"), Some(name), Some(ids), None) => UpdateOp::Event(
                name.to_string(),
                tesc_events::io::parse_id_list(ids).map_err(at)?,
            ),
            (Some("commit"), None, None, None) => UpdateOp::Commit,
            _ => {
                return Err(at(format!(
                    "expected `edge U V`, `event NAME v1,v2,...` or `commit`, got {line:?}"
                )))
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Resolve the named pairs against a snapshot's event store and run
/// the selected subset through the snapshot's cache-wired batch
/// engine. Pairs naming a not-yet-registered event are skipped with a
/// note (a stream may define events late).
#[allow(clippy::too_many_arguments)] // mirrors the stream command's knobs
fn stream_round(
    snap: &tesc::Snapshot,
    named_pairs: &[(String, String, String)],
    select: impl Fn(&str, &str) -> bool,
    cfg: TescConfig,
    seed: u64,
    threads: usize,
    kernel: BfsKernel,
) -> usize {
    let mut pairs = Vec::new();
    for (label, a_name, b_name) in named_pairs {
        if !select(a_name, b_name) {
            continue;
        }
        match (
            snap.events().id_by_name(a_name),
            snap.events().id_by_name(b_name),
        ) {
            (Some(a), Some(b)) => {
                let mut pair = snap.event_pair(a, b);
                pair.label = label.clone();
                pairs.push(pair);
            }
            _ => eprintln!("  (skipping {label}: event not registered yet)"),
        }
    }
    if pairs.is_empty() {
        println!("  no testable pairs affected");
        return 0;
    }
    let count = pairs.len();
    let req = BatchRequest::new(cfg)
        .with_seed(seed)
        .with_threads(threads)
        .with_pairs(pairs);
    // The snapshot's engine comes cache- (and, with --relabel on,
    // substrate-) wired; the kernel knob rides on top.
    let report = run_batch(&snap.engine().with_density_kernel(kernel), &req);
    print_outcome_rows(&report);
    println!("summary: {}", report.summary());
    count
}

/// Ingest an update script into a versioned [`TescContext`],
/// re-testing affected pairs after every commit.
fn run_stream_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let graph_path = get(flags, "graph")?;
    let events_path = get(flags, "events")?;
    let pairs_path = get(flags, "pairs")?;
    let updates_path = get(flags, "updates")?;
    let seed: u64 = parse(flags, "seed", 42u64)?;
    let threads: usize = parse(flags, "threads", 0usize)?;
    let cfg = config_from_flags(flags)?;

    let loaded = load_graph(graph_path)?;
    if let LoadedGraph::Compressed(..) = &loaded {
        // The versioned ingestion context mutates its graph, so a
        // container input is materialized as plain CSR up front; the
        // near-zero-parse load still beats re-reading the text form.
        eprintln!("({graph_path} is a .tgraph container; materializing plain CSR for ingestion)");
    }
    let graph = loaded.into_csr();
    let events = tesc_events::io::read_named_events(&mut open(events_path)?)
        .map_err(|e| format!("reading {events_path}: {e}"))?;
    for (_, name, nodes) in events.iter() {
        if let Some(&v) = nodes.iter().find(|&&v| v as usize >= graph.num_nodes()) {
            return Err(format!(
                "{events_path}: event {name:?} names node {v}, but the graph has only {} nodes",
                graph.num_nodes()
            ));
        }
    }
    let named_pairs = parse_named_pairs(
        &std::fs::read_to_string(pairs_path).map_err(|e| format!("reading {pairs_path}: {e}"))?,
        pairs_path,
    )?;
    let updates = parse_updates(
        &std::fs::read_to_string(updates_path)
            .map_err(|e| format!("reading {updates_path}: {e}"))?,
        updates_path,
    )?;

    let build_threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    eprintln!(
        "graph: {} nodes, {} edges; {} events, {} pairs; building |V^h_v| index (h = {}, {} threads)...",
        graph.num_nodes(),
        graph.num_edges(),
        events.num_events(),
        named_pairs.len(),
        cfg.h,
        build_threads
    );
    let (kernel, relabel) = kernel_flags(flags)?;
    // Long replays leak without a cap: every graph version starts a
    // fresh append-only cache, and event streams never stop growing
    // it. Default to the bounded second-chance cache (bit-identical
    // results; pass `--cache-budget inf` to restore unbounded).
    let cache_budget = tesc_repro::parse_byte_size(
        flags
            .get("cache-budget")
            .map(String::as_str)
            .unwrap_or("64M"),
    )?;
    let ctx = TescContext::with_threads(graph, events, cfg.h.max(1), build_threads)
        .with_relabeling(relabel)
        .with_cache_budget(cache_budget);
    // Optional crash-safety: with --data-dir every committed delta is
    // WAL-logged (fsync before publish) and periodically snapshotted,
    // so an interrupted replay resumes via `tesc-serve --data-dir` or
    // `TescContext::open_dir` instead of starting over.
    let ctx = match flags.get("data-dir") {
        Some(dir) => {
            let snapshot_every: u64 = parse(flags, "snapshot-every", 1024u64)?;
            let opts = tesc::persist::StoreOptions {
                snapshot_every: snapshot_every.max(1),
                ..tesc::persist::StoreOptions::default()
            };
            let ctx = ctx
                .with_durability(std::path::Path::new(dir), opts)
                .map_err(|e| format!("attaching data dir {dir}: {e}"))?;
            eprintln!(
                "durable: logging commits to {dir} (snapshot every {snapshot_every} records)"
            );
            ctx
        }
        None => ctx,
    };

    println!("== v{}: initial snapshot, testing all pairs", ctx.version());
    stream_round(
        &ctx.snapshot(),
        &named_pairs,
        |_, _| true,
        cfg,
        seed,
        threads,
        kernel,
    );

    let mut pending_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut pending_events: Vec<(String, Vec<NodeId>)> = Vec::new();
    for op in updates {
        match op {
            UpdateOp::Edge(u, v) => pending_edges.push((u, v)),
            UpdateOp::Event(name, nodes) => pending_events.push((name, nodes)),
            UpdateOp::Commit => stream_commit(
                &ctx,
                &mut pending_edges,
                &mut pending_events,
                &named_pairs,
                cfg,
                seed,
                threads,
                kernel,
            )?,
        }
    }
    if !pending_edges.is_empty() || !pending_events.is_empty() {
        // Implicit trailing commit.
        stream_commit(
            &ctx,
            &mut pending_edges,
            &mut pending_events,
            &named_pairs,
            cfg,
            seed,
            threads,
            kernel,
        )?;
    }
    Ok(())
}

/// Publish staged deltas as the next snapshot(s) and re-test the
/// affected pairs: those whose events changed, plus those with an
/// event occurrence within `2h` hops of an added edge endpoint.
#[allow(clippy::too_many_arguments)] // mirrors the stream command's knobs
fn stream_commit(
    ctx: &TescContext,
    pending_edges: &mut Vec<(NodeId, NodeId)>,
    pending_events: &mut Vec<(String, Vec<NodeId>)>,
    named_pairs: &[(String, String, String)],
    cfg: TescConfig,
    seed: u64,
    threads: usize,
    kernel: BfsKernel,
) -> Result<(), String> {
    if pending_edges.is_empty() && pending_events.is_empty() {
        eprintln!("  (empty commit: nothing staged)");
        return Ok(());
    }
    // Remember the genuinely new edges before the graph moves on;
    // their endpoints seed the affected-region BFS afterwards.
    // Validate the delta first — `has_edge` on an out-of-range
    // endpoint would panic.
    let before = ctx.snapshot();
    before
        .graph()
        .check_edges(pending_edges)
        .map_err(|e| format!("ingesting edge delta: bad edge delta: {e}"))?;
    let mut new_edges: Vec<(NodeId, NodeId)> = pending_edges
        .iter()
        .map(|&(u, v)| (u.min(v), u.max(v)))
        .filter(|&(u, v)| !before.graph().has_edge(u, v))
        .collect();
    new_edges.sort_unstable();
    new_edges.dedup();
    let mut touched: Vec<NodeId> = new_edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    touched.sort_unstable();
    touched.dedup();

    if !pending_edges.is_empty() {
        ctx.add_edges(pending_edges)
            .map_err(|e| format!("ingesting edge delta: {e}"))?;
    }
    let mut changed_events: Vec<String> = Vec::new();
    for (name, nodes) in pending_events.drain(..) {
        match ctx.snapshot().events().id_by_name(&name) {
            Some(id) => {
                ctx.add_event_occurrences(id, &nodes)
                    .map_err(|e| format!("ingesting occurrences for {name:?}: {e}"))?;
            }
            None => {
                ctx.add_event(name.clone(), nodes)
                    .map_err(|e| format!("registering event {name:?}: {e}"))?;
            }
        }
        changed_events.push(name);
    }
    // Only genuinely new edges publish a version; a commit whose edge
    // delta was entirely already-present (and carried no event delta)
    // published nothing and must not print a `== v{N}` block.
    let n_dup_edges = pending_edges.len() - new_edges.len();
    pending_edges.clear();
    if new_edges.is_empty() && changed_events.is_empty() {
        eprintln!(
            "  (no-op commit: all {n_dup_edges} staged edge(s) already present; still at v{})",
            ctx.version()
        );
        return Ok(());
    }

    let snap = ctx.snapshot();
    // Affected region of the edge delta: any reference node whose
    // density could move lies within h of a touched endpoint AND
    // within h of an event node, so an event with an occurrence inside
    // the 2h-ball around the touched endpoints may test differently.
    let dirty = (!touched.is_empty()).then(|| {
        let mut mask = NodeMask::new(snap.graph().num_nodes());
        let mut scratch = BfsScratch::new(snap.graph().num_nodes());
        scratch.visit_h_vicinity(snap.graph(), &touched, 2 * cfg.h, |v, _| {
            mask.insert(v);
        });
        mask
    });
    let event_in_dirty = |name: &str| -> bool {
        let (Some(dirty), Some(id)) = (dirty.as_ref(), snap.events().id_by_name(name)) else {
            return false;
        };
        snap.events().nodes(id).iter().any(|&v| dirty.contains(v))
    };
    println!(
        "== v{}: committed {} new edge(s), {} event delta(s); re-testing affected pairs",
        snap.version(),
        new_edges.len(),
        changed_events.len()
    );
    stream_round(
        &snap,
        named_pairs,
        |a, b| {
            changed_events.iter().any(|e| e == a || e == b)
                || event_in_dirty(a)
                || event_in_dirty(b)
        },
        cfg,
        seed,
        threads,
        kernel,
    );
    Ok(())
}
