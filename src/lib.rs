//! Umbrella crate for the TESC reproduction workspace.
//!
//! This crate exists to host the repository-level examples
//! (`examples/`) and the cross-crate integration tests (`tests/`);
//! it simply re-exports the workspace members:
//!
//! * [`tesc`] — the TESC measure and testing framework (the paper's
//!   contribution).
//! * [`tesc_graph`] — CSR graphs, BFS toolkit, vicinity index,
//!   generators.
//! * [`tesc_stats`] — Kendall's τ, tie-corrected variance, normal
//!   distribution.
//! * [`tesc_events`] — event stores and the Sec. 5.2 event simulator.
//! * [`tesc_baselines`] — transaction correlation, proximity pattern
//!   mining, hitting time.
//! * [`tesc_datasets`] — DBLP-like / Intrusion-like / Twitter-like
//!   scenario builders.
//!
//! Start with `examples/quickstart.rs`, or see README.md.

#![warn(missing_docs)]

pub use tesc;
pub use tesc_baselines;
pub use tesc_datasets;
pub use tesc_events;
pub use tesc_graph;
pub use tesc_stats;

/// Parse a human-readable byte size as used by the `--cache-budget`
/// flags of `tesc-cli` and `tesc-serve`.
///
/// Accepts plain byte counts (`1048576`), binary-suffixed sizes
/// (`64K`, `64M`, `2G`, case-insensitive, 1024-based), and the
/// unbounded spellings `inf` / `none` / `unbounded` (returning
/// `None`).
///
/// ```
/// use tesc_repro::parse_byte_size;
/// assert_eq!(parse_byte_size("64M"), Ok(Some(64 << 20)));
/// assert_eq!(parse_byte_size("1024"), Ok(Some(1024)));
/// assert_eq!(parse_byte_size("inf"), Ok(None));
/// assert!(parse_byte_size("64Q").is_err());
/// ```
pub fn parse_byte_size(text: &str) -> Result<Option<usize>, String> {
    let text = text.trim();
    if text.eq_ignore_ascii_case("inf")
        || text.eq_ignore_ascii_case("none")
        || text.eq_ignore_ascii_case("unbounded")
    {
        return Ok(None);
    }
    let (digits, shift) = match text.chars().last() {
        Some('k') | Some('K') => (&text[..text.len() - 1], 10),
        Some('m') | Some('M') => (&text[..text.len() - 1], 20),
        Some('g') | Some('G') => (&text[..text.len() - 1], 30),
        Some(c) if c.is_ascii_digit() => (text, 0),
        _ => return Err(format!("bad byte size {text:?} (use e.g. 64M, 1G, inf)")),
    };
    let base: usize = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad byte size {text:?} (use e.g. 64M, 1G, inf)"))?;
    base.checked_shl(shift)
        .filter(|_| base.leading_zeros() >= shift)
        .map(Some)
        .ok_or_else(|| format!("byte size {text:?} overflows"))
}

/// A graph file as loaded from disk by `tesc-cli` / `tesc-serve`:
/// either a plain-text edge list parsed into a [`tesc_graph::CsrGraph`]
/// or a binary `.tgraph` container holding the delta-encoded,
/// varint-packed [`tesc_graph::CompressedCsr`] (plus an optional
/// embedded locality permutation).
///
/// Both encodings describe the same graph bit-identically — the
/// container re-validates its section CRCs, structural invariants and
/// fingerprint on decode.
#[derive(Debug)]
pub enum LoadedGraph {
    /// Parsed from a text edge list.
    Plain(tesc_graph::CsrGraph),
    /// Decoded from a `.tgraph` container; the second field is the
    /// embedded locality-relabel permutation, if the container stored
    /// one (`tesc-cli convert --relabel on`).
    Compressed(tesc_graph::CompressedCsr, Option<tesc_graph::Relabeling>),
}

impl LoadedGraph {
    /// The adjacency encoding this file used, for log lines.
    pub fn encoding(&self) -> &'static str {
        match self {
            LoadedGraph::Plain(_) => "edge-list",
            LoadedGraph::Compressed(..) => ".tgraph",
        }
    }

    /// Number of nodes, independent of the encoding.
    pub fn num_nodes(&self) -> usize {
        match self {
            LoadedGraph::Plain(g) => g.num_nodes(),
            LoadedGraph::Compressed(c, _) => c.num_nodes(),
        }
    }

    /// Number of undirected edges, independent of the encoding.
    pub fn num_edges(&self) -> usize {
        match self {
            LoadedGraph::Plain(g) => g.num_edges(),
            LoadedGraph::Compressed(c, _) => c.num_edges(),
        }
    }

    /// Materialize a plain CSR graph whichever encoding was on disk
    /// (the mutable [`tesc::context::TescContext`] ingestion path
    /// needs one; read-only commands run on the compressed rows
    /// directly).
    pub fn into_csr(self) -> tesc_graph::CsrGraph {
        match self {
            LoadedGraph::Plain(g) => g,
            LoadedGraph::Compressed(c, _) => c.to_csr(),
        }
    }
}

/// Load a graph file, sniffing the binary `.tgraph` magic and falling
/// back to the text edge-list parser.
///
/// `.tgraph` containers decode in near-zero-parse time (CRC sweep +
/// varint directory walk, no float/int text parsing); text edge lists
/// go through [`tesc_graph::io::read_edge_list`] as before. Either
/// way every failure is a descriptive `Err`, never a panic.
pub fn load_graph(path: &str) -> Result<LoadedGraph, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    if tesc_graph::is_tgraph(&bytes) {
        let t = tesc_graph::decode_tgraph(&bytes).map_err(|e| format!("decoding {path}: {e}"))?;
        Ok(LoadedGraph::Compressed(t.graph, t.relabeling))
    } else {
        let g = tesc_graph::io::read_edge_list(&mut std::io::Cursor::new(bytes))
            .map_err(|e| format!("reading {path}: {e}"))?;
        Ok(LoadedGraph::Plain(g))
    }
}

#[cfg(test)]
mod tests {
    use super::parse_byte_size;

    #[test]
    fn parses_suffixes_and_unbounded() {
        assert_eq!(parse_byte_size("0"), Ok(Some(0)));
        assert_eq!(parse_byte_size("512"), Ok(Some(512)));
        assert_eq!(parse_byte_size("4k"), Ok(Some(4096)));
        assert_eq!(parse_byte_size("64M"), Ok(Some(64 << 20)));
        assert_eq!(parse_byte_size("2G"), Ok(Some(2 << 30)));
        assert_eq!(parse_byte_size(" inf "), Ok(None));
        assert_eq!(parse_byte_size("NONE"), Ok(None));
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("12T").is_err());
        assert!(parse_byte_size("-5").is_err());
        assert!(parse_byte_size(&format!("{}G", usize::MAX)).is_err());
    }
}
