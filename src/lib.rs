//! Umbrella crate for the TESC reproduction workspace.
//!
//! This crate exists to host the repository-level examples
//! (`examples/`) and the cross-crate integration tests (`tests/`);
//! it simply re-exports the workspace members:
//!
//! * [`tesc`] — the TESC measure and testing framework (the paper's
//!   contribution).
//! * [`tesc_graph`] — CSR graphs, BFS toolkit, vicinity index,
//!   generators.
//! * [`tesc_stats`] — Kendall's τ, tie-corrected variance, normal
//!   distribution.
//! * [`tesc_events`] — event stores and the Sec. 5.2 event simulator.
//! * [`tesc_baselines`] — transaction correlation, proximity pattern
//!   mining, hitting time.
//! * [`tesc_datasets`] — DBLP-like / Intrusion-like / Twitter-like
//!   scenario builders.
//!
//! Start with `examples/quickstart.rs`, or see README.md.

#![warn(missing_docs)]

pub use tesc;
pub use tesc_baselines;
pub use tesc_datasets;
pub use tesc_events;
pub use tesc_graph;
pub use tesc_stats;

/// Parse a human-readable byte size as used by the `--cache-budget`
/// flags of `tesc-cli` and `tesc-serve`.
///
/// Accepts plain byte counts (`1048576`), binary-suffixed sizes
/// (`64K`, `64M`, `2G`, case-insensitive, 1024-based), and the
/// unbounded spellings `inf` / `none` / `unbounded` (returning
/// `None`).
///
/// ```
/// use tesc_repro::parse_byte_size;
/// assert_eq!(parse_byte_size("64M"), Ok(Some(64 << 20)));
/// assert_eq!(parse_byte_size("1024"), Ok(Some(1024)));
/// assert_eq!(parse_byte_size("inf"), Ok(None));
/// assert!(parse_byte_size("64Q").is_err());
/// ```
pub fn parse_byte_size(text: &str) -> Result<Option<usize>, String> {
    let text = text.trim();
    if text.eq_ignore_ascii_case("inf")
        || text.eq_ignore_ascii_case("none")
        || text.eq_ignore_ascii_case("unbounded")
    {
        return Ok(None);
    }
    let (digits, shift) = match text.chars().last() {
        Some('k') | Some('K') => (&text[..text.len() - 1], 10),
        Some('m') | Some('M') => (&text[..text.len() - 1], 20),
        Some('g') | Some('G') => (&text[..text.len() - 1], 30),
        Some(c) if c.is_ascii_digit() => (text, 0),
        _ => return Err(format!("bad byte size {text:?} (use e.g. 64M, 1G, inf)")),
    };
    let base: usize = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad byte size {text:?} (use e.g. 64M, 1G, inf)"))?;
    base.checked_shl(shift)
        .filter(|_| base.leading_zeros() >= shift)
        .map(Some)
        .ok_or_else(|| format!("byte size {text:?} overflows"))
}

#[cfg(test)]
mod tests {
    use super::parse_byte_size;

    #[test]
    fn parses_suffixes_and_unbounded() {
        assert_eq!(parse_byte_size("0"), Ok(Some(0)));
        assert_eq!(parse_byte_size("512"), Ok(Some(512)));
        assert_eq!(parse_byte_size("4k"), Ok(Some(4096)));
        assert_eq!(parse_byte_size("64M"), Ok(Some(64 << 20)));
        assert_eq!(parse_byte_size("2G"), Ok(Some(2 << 30)));
        assert_eq!(parse_byte_size(" inf "), Ok(None));
        assert_eq!(parse_byte_size("NONE"), Ok(None));
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("12T").is_err());
        assert!(parse_byte_size("-5").is_err());
        assert!(parse_byte_size(&format!("{}G", usize::MAX)).is_err());
    }
}
