//! Umbrella crate for the TESC reproduction workspace.
//!
//! This crate exists to host the repository-level examples
//! (`examples/`) and the cross-crate integration tests (`tests/`);
//! it simply re-exports the workspace members:
//!
//! * [`tesc`] — the TESC measure and testing framework (the paper's
//!   contribution).
//! * [`tesc_graph`] — CSR graphs, BFS toolkit, vicinity index,
//!   generators.
//! * [`tesc_stats`] — Kendall's τ, tie-corrected variance, normal
//!   distribution.
//! * [`tesc_events`] — event stores and the Sec. 5.2 event simulator.
//! * [`tesc_baselines`] — transaction correlation, proximity pattern
//!   mining, hitting time.
//! * [`tesc_datasets`] — DBLP-like / Intrusion-like / Twitter-like
//!   scenario builders.
//!
//! Start with `examples/quickstart.rs`, or see README.md.

#![warn(missing_docs)]

pub use tesc;
pub use tesc_baselines;
pub use tesc_datasets;
pub use tesc_events;
pub use tesc_graph;
pub use tesc_stats;
