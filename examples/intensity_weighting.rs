//! Intensity-weighted TESC (the paper's Sec. 6 extension): when both
//! events occur *everywhere* but with different strengths, presence
//! densities are blind and only the intensity view exposes the
//! correlation. Also demonstrates Spearman's ρ as the alternative
//! statistic (Sec. 8).
//!
//! Run: `cargo run --release --example intensity_weighting`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::intensity::Intensities;
use tesc::{Statistic, Tail, TescConfig, TescEngine};
use tesc_graph::generators::planted_partition;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let (graph, _) = planted_partition(200, 10, 0.8, 0.001, &mut rng);
    let n = graph.num_nodes();
    println!("graph: {} nodes, {} edges", n, graph.num_edges());

    // Two "keyword usage" events: every author used both keywords at
    // least once (presence is uninformative), but communities 0..40
    // use both heavily — say, the hot topic of those communities.
    let background: Vec<(u32, f64)> = (0..n as u32).map(|v| (v, 1.0)).collect();
    let mut usage_a = background.clone();
    let mut usage_b = background;
    for c in 0..40u32 {
        for i in 0..5 {
            usage_a.push((c * 10 + i, 40.0));
            usage_b.push((c * 10 + 5 + i, 40.0));
        }
    }
    let ia = Intensities::from_pairs(n, &usage_a);
    let ib = Intensities::from_pairs(n, &usage_b);

    let engine = TescEngine::new(&graph);
    let cfg = TescConfig::new(1)
        .with_sample_size(400)
        .with_tail(Tail::Upper);

    // Presence view: both events on every node — pure ties, no signal.
    let all: Vec<u32> = (0..n as u32).collect();
    let presence = engine.test(&all, &all, &cfg, &mut rng).unwrap();
    println!(
        "\npresence-only view:    tau = {:+.3}, z = {:+.2} ({:?})",
        presence.statistic(),
        presence.z(),
        presence.outcome.verdict
    );

    // Intensity view: hot spots co-vary.
    let weighted = engine.test_intensity(&ia, &ib, &cfg, &mut rng).unwrap();
    println!(
        "intensity view:        tau = {:+.3}, z = {:+.2} ({:?})",
        weighted.statistic(),
        weighted.z(),
        weighted.outcome.verdict
    );

    // And the same with Spearman's rho.
    let sp_cfg = cfg.with_statistic(Statistic::SpearmanRho);
    let spearman = engine.test_intensity(&ia, &ib, &sp_cfg, &mut rng).unwrap();
    println!(
        "intensity (Spearman):  rho = {:+.3}, z = {:+.2} ({:?})",
        spearman.statistic(),
        spearman.z(),
        spearman.outcome.verdict
    );
}
