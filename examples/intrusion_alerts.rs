//! Intrusion-detection case study: correlated alert types in a
//! computer network, including the rare-pair scenario where TESC
//! detects what frequent-pattern mining misses (Table 5).
//!
//! Run: `cargo run --release --example intrusion_alerts`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{BfsScratch, Tail, TescConfig, TescEngine};
use tesc_baselines::{transaction_correlation, ProximityMiner};
use tesc_datasets::{IntrusionConfig, IntrusionScenario};

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let scenario = IntrusionScenario::build(IntrusionConfig::small(), &mut rng);
    let g = &scenario.graph;
    println!(
        "network: {} hosts, {} links, max degree {} (hub)\n",
        g.num_nodes(),
        g.num_edges(),
        g.max_degree()
    );
    let engine = TescEngine::new(g);
    let mut scratch = BfsScratch::new(g.num_nodes());

    // Alternating attack techniques across shared subnets (Table 3).
    let (ping_sweep, smb_sweep) = scenario.plant_alternating_alert_pair(12, 10, &mut rng);
    let cfg = TescConfig::new(1)
        .with_sample_size(400)
        .with_tail(Tail::Upper);
    let r = engine
        .test(&ping_sweep, &smb_sweep, &cfg, &mut rng)
        .unwrap();
    let tc = transaction_correlation(g.num_nodes(), &ping_sweep, &smb_sweep);
    println!("Ping Sweep vs SMB Service Sweep (alternated across subnets):");
    println!("  TESC h=1: z = {:+.2} ({:?})", r.z(), r.outcome.verdict);
    println!("  TC:       z = {:+.2}", tc.z);
    println!("  -> disjoint host sets: invisible to market-basket measures,");
    println!("     strongly attractive in the graph structure.\n");

    // Platform-separated techniques (Table 4).
    let (tftp, ldap) = scenario.plant_separated_alert_pair(10, 10, &mut rng);
    let cfg = TescConfig::new(2)
        .with_sample_size(400)
        .with_tail(Tail::Lower);
    let r = engine.test(&tftp, &ldap, &cfg, &mut rng).unwrap();
    println!("Audit TFTP Get Filename vs LDAP Auth Failed (different platforms):");
    println!("  TESC h=2: z = {:+.2} ({:?})\n", r.z(), r.outcome.verdict);

    // The rare pair (Table 5): strongly co-located, too infrequent for
    // a support threshold.
    let (rare_a, rare_b) = scenario.plant_rare_pair(16, 12, &mut rng);
    let cfg = TescConfig::new(1)
        .with_sample_size(300)
        .with_tail(Tail::Upper);
    let r = engine.test(&rare_a, &rare_b, &cfg, &mut rng).unwrap();
    let miner = ProximityMiner::new(1, 0.05);
    let support = miner.pair_support(g, &mut scratch, &rare_a, &rare_b);
    println!(
        "Rare pair ({} + {} occurrences):",
        rare_a.len(),
        rare_b.len()
    );
    println!(
        "  TESC h=1: z = {:+.2}, p = {:.1e} ({:?})",
        r.z(),
        r.outcome.p_value,
        r.outcome.verdict
    );
    println!(
        "  proximity mining: support {:.2e} < minsup {:.2e} -> NOT mined",
        support, miner.minsup
    );
}
