//! Top-K event-pair ranking — the `tesc::rank` subsystem over the
//! fused pair-set planner, on a DBLP-style scenario.
//!
//! Registers a handful of keyword events (two planted correlated
//! pairs among them) in an [`tesc::EventStore`], enumerates **all**
//! candidate pairs with [`tesc::EventStore::event_pairs`], and ranks
//! them by upper-tail TESC evidence: the planner samples every pair,
//! runs ONE fused density BFS per distinct reference node (however
//! many pairs share it), scatters the counts back, and sorts by score.
//! The planted pairs should surface at the top. A second run with
//! `top_k(3)` shows the significance-budget early exit returning the
//! identical top 3, and a one-vs-all run uses
//! [`tesc::EventStore::pairs_with`].
//!
//! Run: `cargo run --release --example rank_events`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::batch::EventPair;
use tesc::rank::{rank_pairs, RankRequest};
use tesc::{EventStore, Tail, TescConfig, TescEngine};
use tesc_datasets::{DblpConfig, DblpScenario};

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    let scenario = DblpScenario::build(DblpConfig::small(), &mut rng);
    let g = &scenario.graph;
    println!(
        "co-author graph: {} authors, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    // Six keyword events: two planted correlated pairs + two unrelated.
    let mut store = EventStore::new();
    for (i, seed) in [(0u32, 100u64), (1, 101)] {
        let (va, vb) =
            scenario.plant_positive_keyword_pair(12, 10, 0.25, &mut StdRng::seed_from_u64(seed));
        store.add_event(format!("planted{i}_a"), va);
        store.add_event(format!("planted{i}_b"), vb);
    }
    for (name, seed) in [("noise_x", 200u64), ("noise_y", 201)] {
        let (_, nodes) =
            scenario.plant_positive_keyword_pair(12, 10, 0.6, &mut StdRng::seed_from_u64(seed));
        store.add_event(name, nodes);
    }

    let as_event_pairs = |ids: Vec<(tesc::EventId, tesc::EventId)>| -> Vec<EventPair> {
        ids.into_iter()
            .map(|(a, b)| {
                EventPair::new(
                    format!("{}×{}", store.name(a), store.name(b)),
                    store.nodes(a).to_vec(),
                    store.nodes(b).to_vec(),
                )
            })
            .collect()
    };

    // All pairs, ranked by upper-tail evidence (attraction hunt).
    let cfg = TescConfig::new(2)
        .with_sample_size(300)
        .with_tail(Tail::Upper);
    let engine = TescEngine::new(g);
    let req = RankRequest::new(cfg)
        .with_seed(7)
        .with_pairs(as_event_pairs(store.event_pairs()));
    let report = rank_pairs(&engine, &req);
    println!("\nall {} pairs, ranked:", report.ranked.len());
    for e in &report.ranked {
        println!(
            "  #{:<2} {:<24} score {:+7.2}  {:?}",
            e.rank, e.label, e.score, e.result.outcome.verdict
        );
    }
    println!("  {}", report.summary());

    // Top-3 with the significance-budget early exit: same podium.
    let top = rank_pairs(&engine, &req.clone().with_top_k(3));
    println!("\ntop-3 via early exit ({} pruned):", top.pruned);
    for (full, t) in report.ranked.iter().zip(&top.ranked) {
        assert_eq!(full.label, t.label, "top-K must be the full-ranking prefix");
        assert_eq!(full.score.to_bits(), t.score.to_bits());
        println!("  #{:<2} {:<24} score {:+7.2}", t.rank, t.label, t.score);
    }

    // One event against every partner.
    let focus = store.id_by_name("planted0_a").expect("registered");
    let vs_all = rank_pairs(
        &engine,
        &RankRequest::new(cfg)
            .with_seed(7)
            .with_pairs(as_event_pairs(store.pairs_with(focus))),
    );
    println!("\nplanted0_a against every partner:");
    for e in &vs_all.ranked {
        println!("  #{:<2} {:<24} score {:+7.2}", e.rank, e.label, e.score);
    }
}
