//! Quickstart: measure the structural correlation of two events on a
//! small social-network-like graph.
//!
//! Run: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{SamplerKind, SignificanceLevel, Tail, TescConfig, TescEngine, VicinityIndex};
use tesc_graph::generators::planted_partition;

fn main() {
    // A graph with community structure: 100 communities of 20 nodes.
    let mut rng = StdRng::seed_from_u64(7);
    let (graph, communities) = planted_partition(100, 20, 0.4, 0.002, &mut rng);
    println!(
        "graph: {} nodes, {} edges, avg degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    );

    // Event a: "buys Similac" — mothers in communities 0..20.
    // Event b: "buys Enfamil" — *different* mothers in the same
    // communities. The two brands never co-occur on a node (a mother
    // sticks to one brand), yet they attract each other structurally
    // through the shared mother communities — the paper's Fig. 1(a).
    let va: Vec<u32> = (0..20u32)
        .flat_map(|c| (0..5).map(move |i| c * 20 + i))
        .collect();
    let vb: Vec<u32> = (0..20u32)
        .flat_map(|c| (5..10).map(move |i| c * 20 + i))
        .collect();
    let _ = communities; // labels available if you want to inspect

    // The TESC test: h = 1 vicinities, 300 reference nodes, one-tailed.
    let cfg = TescConfig::new(1)
        .with_sample_size(300)
        .with_tail(Tail::Upper)
        .with_alpha(SignificanceLevel::ONE_PERCENT);
    let engine = TescEngine::new(&graph);
    let result = engine.test(&va, &vb, &cfg, &mut rng).expect("test runs");

    println!("\nTESC (Batch BFS sampling):");
    println!("  tau       = {:+.3}", result.statistic());
    println!("  z-score   = {:+.2}", result.z());
    println!("  p-value   = {:.2e}", result.outcome.p_value);
    println!("  verdict   = {:?}", result.outcome.verdict);
    println!("  reference population N = {:?}", result.population_size);

    // The same test with importance sampling (needs the |V^h_v| index).
    let idx = VicinityIndex::build(&graph, 1);
    let engine = TescEngine::with_vicinity_index(&graph, &idx);
    let cfg = cfg.with_sampler(SamplerKind::Importance { batch_size: 1 });
    let result = engine.test(&va, &vb, &cfg, &mut rng).expect("test runs");
    println!("\nTESC (importance sampling):");
    println!("  t~        = {:+.3}", result.statistic());
    println!("  z-score   = {:+.2}", result.z());
    println!("  verdict   = {:?}", result.outcome.verdict);
}
