//! Batch testing of many keyword pairs — the `tesc::batch` engine on a
//! DBLP-style scenario.
//!
//! Plants a mixed population of positive, negative and independent
//! keyword pairs on one co-authorship graph, then runs them all
//! through [`tesc::batch::run_batch`]: one shared graph, one shared
//! scratch pool, deterministic per-test RNG streams, every core busy.
//! Also demonstrates the determinism contract by re-running the batch
//! serially and comparing z-scores bit-for-bit.
//!
//! Run: `cargo run --release --example batch_pairs`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::batch::{run_batch, run_batch_serial, BatchRequest, EventPair};
use tesc::{BfsScratch, Tail, TescConfig, TescEngine};
use tesc_datasets::{DblpConfig, DblpScenario};
use tesc_events::simulate::{independent_pair, negative_pair, positive_pair};

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let scenario = DblpScenario::build(DblpConfig::small(), &mut rng);
    let g = &scenario.graph;
    let mut scratch = BfsScratch::new(g.num_nodes());
    println!(
        "co-author graph: {} authors, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    // A workload of 12 keyword pairs with known ground truth.
    let mut pairs = Vec::new();
    for t in 0..4u64 {
        let mut prng = StdRng::seed_from_u64(100 + t);
        if let Ok(lp) = positive_pair(g, &mut scratch, 40, 2, &mut prng) {
            let p = lp.to_pair();
            pairs.push(EventPair::new(format!("positive_{t}"), p.a, p.b));
        }
        if let Ok(p) = negative_pair(g, &mut scratch, 40, 40, 2, &mut prng) {
            pairs.push(EventPair::new(format!("negative_{t}"), p.a, p.b));
        }
        if let Ok(p) = independent_pair(g, 40, 40, &mut prng) {
            pairs.push(EventPair::new(format!("independent_{t}"), p.a, p.b));
        }
    }

    let cfg = TescConfig::new(2)
        .with_sample_size(300)
        .with_tail(Tail::Upper);
    let engine = TescEngine::new(g);
    let req = BatchRequest::new(cfg)
        .with_seed(7)
        .with_threads(0) // all cores
        .with_pairs(pairs);

    let report = run_batch(&engine, &req);
    println!("\n{:<16} {:>7} {:>8}   verdict", "pair", "tau", "z");
    for o in &report.outcomes {
        match &o.result {
            Ok(r) => println!(
                "{:<16} {:>+7.3} {:>+8.2}   {:?}",
                o.label,
                r.statistic(),
                r.z(),
                r.outcome.verdict
            ),
            Err(e) => println!("{:<16} failed: {e}", o.label),
        }
    }
    println!("\nparallel: {}", report.summary());

    // Determinism contract: the serial reference produces the same
    // bits, so thread count can be chosen per deployment without
    // changing a single verdict.
    let serial = run_batch_serial(&engine, &req);
    let identical = serial
        .outcomes
        .iter()
        .zip(&report.outcomes)
        .all(|(s, p)| s.result == p.result);
    println!("serial:   {}", serial.summary());
    println!("bit-identical across thread counts: {identical}");
    assert!(identical);
}
