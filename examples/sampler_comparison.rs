//! Compare the four reference-node sampling strategies on one event
//! pair: statistic agreement and wall-clock cost (Sec. 4 / Fig. 9 in
//! miniature).
//!
//! Run: `cargo run --release --example sampler_comparison`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tesc::{BfsScratch, SamplerKind, Tail, TescConfig, TescEngine, VicinityIndex};
use tesc_datasets::twitter_like;
use tesc_events::simulate::positive_pair;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    println!("building Twitter-like graph (100k nodes)...");
    let g = twitter_like(100_000, &mut rng);
    let mut scratch = BfsScratch::new(g.num_nodes());

    // Plant a positive pair at h = 2.
    let h = 2u32;
    let lp = positive_pair(&g, &mut scratch, 2000, h, &mut rng).expect("plant");
    let pair = lp.to_pair();
    println!(
        "planted positive pair: |V_a| = {}, |V_b| = {}\n",
        pair.a.len(),
        pair.b.len()
    );

    println!("building |V^h_v| index for the event nodes (offline phase)...");
    let t0 = Instant::now();
    let union: Vec<u32> = {
        let mut u = pair.a.clone();
        u.extend(&pair.b);
        u.sort_unstable();
        u.dedup();
        u
    };
    let idx = VicinityIndex::build_for_nodes(&g, &union, h);
    println!("  index built in {:.1?}\n", t0.elapsed());

    let engine = TescEngine::with_vicinity_index(&g, &idx);
    println!(
        "{:<18} {:>8} {:>8} {:>10} {:>8} {:>12}",
        "sampler", "tau/t~", "z", "p", "n_refs", "time"
    );
    for sampler in [
        SamplerKind::BatchBfs,
        SamplerKind::Rejection,
        SamplerKind::Importance { batch_size: 1 },
        SamplerKind::Importance { batch_size: 3 },
        SamplerKind::WholeGraph,
    ] {
        let cfg = TescConfig::new(h)
            .with_sample_size(900)
            .with_tail(Tail::Upper)
            .with_sampler(sampler);
        let mut trng = StdRng::seed_from_u64(7);
        let t0 = Instant::now();
        match engine.test(&pair.a, &pair.b, &cfg, &mut trng) {
            Ok(r) => println!(
                "{:<18} {:>8.3} {:>8.2} {:>10.2e} {:>8} {:>12.1?}",
                sampler.to_string(),
                r.statistic(),
                r.z(),
                r.outcome.p_value,
                r.n_refs,
                t0.elapsed()
            ),
            Err(e) => println!("{:<18} failed: {e}", sampler.to_string()),
        }
    }
    println!("\nAll samplers agree on the verdict; costs differ (Sec. 4.4).");
}
