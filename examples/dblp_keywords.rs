//! DBLP-style case study: keyword correlations in a co-authorship
//! network, reproducing the Table 1 / Table 2 phenomena — including
//! the pairs where TESC and transaction correlation *disagree*.
//!
//! Run: `cargo run --release --example dblp_keywords`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{Tail, TescConfig, TescEngine};
use tesc_baselines::{lift, transaction_correlation};
use tesc_datasets::{DblpConfig, DblpScenario};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let scenario = DblpScenario::build(DblpConfig::small(), &mut rng);
    let g = &scenario.graph;
    println!(
        "co-author graph: {} authors, {} edges, avg degree {:.1}\n",
        g.num_nodes(),
        g.num_edges(),
        g.average_degree()
    );
    let engine = TescEngine::new(g);

    // --- A Table-1-style pair: two keywords of one research area. ---
    let (wireless, sensor) = scenario.plant_positive_keyword_pair(12, 10, 0.25, &mut rng);
    report(
        "\"Wireless\" vs \"Sensor\"  (same communities, some co-authors)",
        &engine,
        g.num_nodes(),
        &wireless,
        &sensor,
        Tail::Upper,
        &mut rng,
    );

    // --- A Table-2-style pair: far-apart topics, a few generalists. --
    let (texture, java) = scenario.plant_negative_keyword_pair(10, 12, 20, &mut rng);
    report(
        "\"Texture\" vs \"Java\"    (distant communities, 20 generalists)",
        &engine,
        g.num_nodes(),
        &texture,
        &java,
        Tail::Lower,
        &mut rng,
    );

    println!(
        "Note the second pair: transaction measures see the generalist\n\
         authors and call the keywords positively associated, while TESC\n\
         sees that the occurrences live in far-apart regions of the\n\
         co-author graph — the inversion reported in Table 2 of the paper."
    );
}

fn report(
    title: &str,
    engine: &TescEngine<'_>,
    num_nodes: usize,
    va: &[u32],
    vb: &[u32],
    tail: Tail,
    rng: &mut StdRng,
) {
    println!("{title}");
    println!("  |V_a| = {}, |V_b| = {}", va.len(), vb.len());
    for h in [1u32, 2, 3] {
        let cfg = TescConfig::new(h).with_sample_size(400).with_tail(tail);
        match engine.test(va, vb, &cfg, rng) {
            Ok(r) => println!(
                "  TESC h={h}:  tau = {:+.3}  z = {:+7.2}  p = {:.2e}  -> {:?}",
                r.statistic(),
                r.z(),
                r.outcome.p_value,
                r.outcome.verdict
            ),
            Err(e) => println!("  TESC h={h}:  failed: {e}"),
        }
    }
    let tc = transaction_correlation(num_nodes, va, vb);
    let l = lift(num_nodes, va, vb).unwrap_or(f64::NAN);
    println!("  TC (tau_b): z = {:+.2}   lift = {:.2}\n", tc.z, l);
}
