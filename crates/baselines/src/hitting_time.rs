//! Truncated hitting time — the "sophisticated proximity measure" the
//! paper declines on cost grounds (Sec. 2, Sec. 5.3).
//!
//! Guan et al. (SIGMOD 2011, the paper's ref.\[11\]) measure structural
//! correlation with random-walk hitting times. The TESC paper keeps the
//! cheap BFS density instead, reporting that "one 3-hop BFS search only
//! needs 5.2 ms, which is much faster than the state-of-art hitting
//! time approximation algorithm (170 ms for 10 million nodes)". This
//! module implements the sampled truncated hitting time so the
//! benchmark suite can reproduce that cost comparison, and so users can
//! swap it in as an alternative proximity notion.

use rand::Rng;
use tesc_events::NodeMask;
use tesc_graph::csr::CsrGraph;
use tesc_graph::NodeId;

/// Estimate the truncated hitting time `h_T(source → targets)`:
/// the expected number of random-walk steps to first reach any target,
/// truncated at `t_max` (walks that never arrive count as `t_max`).
///
/// Uses `num_walks` independent walks (the standard Monte-Carlo
/// approximation; Sampling error is `O(t_max / √num_walks)`).
///
/// Walks from an isolated node (degree 0) can never move; they hit at 0
/// if the source is itself a target, else score `t_max`.
pub fn truncated_hitting_time(
    g: &CsrGraph,
    source: NodeId,
    targets: &NodeMask,
    t_max: u32,
    num_walks: u32,
    rng: &mut impl Rng,
) -> f64 {
    assert!(t_max >= 1, "t_max must be ≥ 1");
    assert!(num_walks >= 1, "need at least one walk");
    if targets.contains(source) {
        return 0.0;
    }
    let mut total = 0u64;
    for _ in 0..num_walks {
        let mut cur = source;
        let mut steps = t_max;
        for t in 1..=t_max {
            let ns = g.neighbors(cur);
            if ns.is_empty() {
                break; // stuck: counts as t_max
            }
            cur = ns[rng.gen_range(0..ns.len())];
            if targets.contains(cur) {
                steps = t;
                break;
            }
        }
        total += steps as u64;
    }
    total as f64 / num_walks as f64
}

/// Hitting-time-based affinity in `[0, 1]`: `1 − h_T/t_max`.
/// Higher = closer. The analogue of the density score for benches that
/// swap the proximity notion.
pub fn hitting_affinity(
    g: &CsrGraph,
    source: NodeId,
    targets: &NodeMask,
    t_max: u32,
    num_walks: u32,
    rng: &mut impl Rng,
) -> f64 {
    1.0 - truncated_hitting_time(g, source, targets, t_max, num_walks, rng) / t_max as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tesc_graph::generators::{complete, path};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn mask(n: usize, nodes: &[NodeId]) -> NodeMask {
        NodeMask::from_nodes(n, nodes)
    }

    #[test]
    fn source_in_targets_hits_immediately() {
        let g = path(5);
        let t = mask(5, &[2]);
        assert_eq!(truncated_hitting_time(&g, 2, &t, 10, 50, &mut rng(1)), 0.0);
    }

    #[test]
    fn adjacent_target_on_path_end_hits_in_one() {
        // From node 0 of a path the only move is to node 1.
        let g = path(5);
        let t = mask(5, &[1]);
        let h = truncated_hitting_time(&g, 0, &t, 10, 100, &mut rng(2));
        assert_eq!(h, 1.0);
    }

    #[test]
    fn unreachable_target_scores_t_max() {
        let g = tesc_graph::csr::from_edges(4, &[(0, 1), (2, 3)]);
        let t = mask(4, &[3]);
        let h = truncated_hitting_time(&g, 0, &t, 7, 64, &mut rng(3));
        assert_eq!(h, 7.0);
    }

    #[test]
    fn isolated_source_scores_t_max() {
        let g = tesc_graph::csr::from_edges(3, &[(0, 1)]);
        let t = mask(3, &[0]);
        let h = truncated_hitting_time(&g, 2, &t, 5, 16, &mut rng(4));
        assert_eq!(h, 5.0);
    }

    #[test]
    fn closer_targets_hit_sooner_on_average() {
        let g = path(30);
        let near = mask(30, &[3]);
        let far = mask(30, &[25]);
        let h_near = truncated_hitting_time(&g, 0, &near, 50, 400, &mut rng(5));
        let h_far = truncated_hitting_time(&g, 0, &far, 50, 400, &mut rng(5));
        assert!(h_near < h_far, "near {h_near} should beat far {h_far}");
    }

    #[test]
    fn complete_graph_expected_hitting_time() {
        // On K_n with one target, each step hits with prob 1/(n-1):
        // E[steps] ≈ n-1 (truncation biases down slightly). For K_5,
        // E ≈ 4; allow a Monte-Carlo band.
        let g = complete(5);
        let t = mask(5, &[4]);
        let h = truncated_hitting_time(&g, 0, &t, 200, 4000, &mut rng(6));
        assert!((h - 4.0).abs() < 0.5, "h = {h}");
    }

    #[test]
    fn affinity_is_monotone_inverse_of_hitting_time() {
        let g = path(20);
        let near = mask(20, &[2]);
        let far = mask(20, &[18]);
        let a_near = hitting_affinity(&g, 0, &near, 30, 300, &mut rng(7));
        let a_far = hitting_affinity(&g, 0, &far, 30, 300, &mut rng(7));
        assert!(a_near > a_far);
        assert!((0.0..=1.0).contains(&a_near));
        assert!((0.0..=1.0).contains(&a_far));
    }

    #[test]
    fn estimates_are_seed_reproducible() {
        let g = complete(8);
        let t = mask(8, &[7]);
        let a = truncated_hitting_time(&g, 0, &t, 50, 500, &mut rng(8));
        let b = truncated_hitting_time(&g, 0, &t, 50, 500, &mut rng(8));
        assert_eq!(a, b);
    }
}
