//! Baselines the paper compares TESC against.
//!
//! * [`transaction`] — **Transaction Correlation (TC)**: treat every
//!   node as an isolated market-basket transaction and correlate the
//!   two events' indicator vectors with Kendall's τ_b (the measure the
//!   paper reports in the TC column of Tables 1–4) plus the classic
//!   Lift. TC ignores the graph, which is precisely what the paper's
//!   case studies exploit: event pairs with strong positive TESC but
//!   zero/negative TC.
//! * [`proximity`] — a simplified **proximity pattern miner** in the
//!   spirit of Khan et al. (SIGMOD 2010, the paper's ref.\[16\]): mines
//!   event pairs that *frequently* co-occur within `h`-hop
//!   neighborhoods. Being a frequent-pattern method it misses rare but
//!   strongly correlated pairs — the Table 5 comparison.
//! * [`hitting_time`] — truncated-hitting-time proximity in the spirit
//!   of Guan et al. (SIGMOD 2011, ref.\[11\]), the "more sophisticated
//!   proximity measure" the paper rejects on cost grounds
//!   (Sec. 5.3 / Fig. 10a: 5.2 ms BFS vs 170 ms hitting time).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hitting_time;
pub mod proximity;
pub mod transaction;

pub use proximity::{ProximityMiner, ProximityPattern};
pub use transaction::{lift, transaction_correlation, TcSummary};
