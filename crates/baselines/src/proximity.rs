//! Simplified proximity-pattern mining (Khan et al., the paper's \[16\]).
//!
//! The original pFP algorithm propagates event information along edges
//! with a decay factor `α` and a cutoff `ε`, then mines frequent
//! itemsets over the resulting "neighborhood transactions". For the
//! two-event comparison of Table 5 we only need pairs, so this module
//! mines *pair* proximity patterns directly:
//!
//! * every node's neighborhood transaction is the set of events
//!   occurring within its `h`-vicinity;
//! * a pair `(a, b)` is a proximity pattern iff the fraction of nodes
//!   whose transaction contains both exceeds `minsup`.
//!
//! The essential property the paper exploits survives the
//! simplification: support is a *frequency* requirement, so rare event
//! pairs — however strongly correlated — fall below `minsup` and are
//! missed, while TESC detects them (Table 5).

use tesc_events::{EventId, EventStore, NodeMask};
use tesc_graph::bfs::BfsScratch;
use tesc_graph::csr::CsrGraph;

/// A mined pair pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProximityPattern {
    /// First event (lower id).
    pub a: EventId,
    /// Second event.
    pub b: EventId,
    /// Fraction of nodes whose `h`-vicinity contains both events.
    pub support: f64,
}

/// Pair-level proximity pattern miner.
#[derive(Debug, Clone, Copy)]
pub struct ProximityMiner {
    /// Vicinity level for neighborhood transactions.
    pub h: u32,
    /// Minimum support (fraction of nodes, e.g. `10/|V|`).
    pub minsup: f64,
}

impl ProximityMiner {
    /// Create a miner.
    pub fn new(h: u32, minsup: f64) -> Self {
        assert!((0.0..=1.0).contains(&minsup), "minsup must be in [0,1]");
        ProximityMiner { h, minsup }
    }

    /// Support of a single pair: the fraction of nodes that see both
    /// events within `h` hops.
    ///
    /// Computed with two multi-source BFS sweeps (one per event) rather
    /// than one BFS per node, so the cost is `O(|V| + |E|)`.
    pub fn pair_support(
        &self,
        g: &CsrGraph,
        scratch: &mut BfsScratch,
        va: &[u32],
        vb: &[u32],
    ) -> f64 {
        if g.num_nodes() == 0 {
            return 0.0;
        }
        // Nodes within h of an a-occurrence = nodes whose vicinity
        // contains an a-occurrence (undirected graph ⇒ symmetric).
        let mut sees_a = NodeMask::new(g.num_nodes());
        scratch.visit_h_vicinity(g, va, self.h, |v, _| {
            sees_a.insert(v);
        });
        let mut both = 0usize;
        scratch.visit_h_vicinity(g, vb, self.h, |v, _| {
            both += sees_a.contains(v) as usize;
        });
        both as f64 / g.num_nodes() as f64
    }

    /// Mine all event pairs from `store` whose support clears `minsup`,
    /// sorted by descending support.
    pub fn mine_pairs(&self, g: &CsrGraph, store: &EventStore) -> Vec<ProximityPattern> {
        let mut scratch = BfsScratch::new(g.num_nodes());
        let ids: Vec<EventId> = store.iter().map(|(id, _, _)| id).collect();
        let mut out = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                let support = self.pair_support(g, &mut scratch, store.nodes(a), store.nodes(b));
                if support >= self.minsup {
                    out.push(ProximityPattern { a, b, support });
                }
            }
        }
        out.sort_by(|x, y| {
            y.support
                .partial_cmp(&x.support)
                .expect("supports are finite")
        });
        out
    }

    /// Would the miner report this pair? (Table 5's question.)
    pub fn detects(&self, g: &CsrGraph, scratch: &mut BfsScratch, va: &[u32], vb: &[u32]) -> bool {
        self.pair_support(g, scratch, va, vb) >= self.minsup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesc_graph::generators::{grid, path};

    #[test]
    fn support_counts_co_seeing_nodes() {
        // Path 0-1-2-3-4; a on 1, b on 3, h = 1:
        // sees_a = {0,1,2}, sees_b = {2,3,4} → both = {2} → 1/5.
        let g = path(5);
        let mut s = BfsScratch::new(5);
        let m = ProximityMiner::new(1, 0.0);
        let sup = m.pair_support(&g, &mut s, &[1], &[3]);
        assert!((sup - 0.2).abs() < 1e-12, "support = {sup}");
    }

    #[test]
    fn support_one_when_events_blanket_graph() {
        let g = grid(5, 5);
        let all: Vec<u32> = (0..25).collect();
        let mut s = BfsScratch::new(25);
        let m = ProximityMiner::new(1, 0.0);
        assert_eq!(m.pair_support(&g, &mut s, &all, &all), 1.0);
    }

    #[test]
    fn support_zero_for_far_apart_events() {
        let g = path(10);
        let mut s = BfsScratch::new(10);
        let m = ProximityMiner::new(1, 0.0);
        assert_eq!(m.pair_support(&g, &mut s, &[0], &[9]), 0.0);
    }

    #[test]
    fn minsup_filters_rare_pairs() {
        // The Table 5 phenomenon in miniature: a strongly co-located
        // but *rare* pair is dropped by the frequency threshold.
        let g = grid(10, 10);
        let mut store = EventStore::new();
        // Frequent pair: blankets a stripe of the grid.
        let freq_a: Vec<u32> = (0..50).collect();
        let freq_b: Vec<u32> = (10..60).collect();
        store.add_event("frequent_a", freq_a);
        store.add_event("frequent_b", freq_b);
        // Rare pair: two adjacent nodes in a corner.
        store.add_event("rare_a", vec![99]);
        store.add_event("rare_b", vec![98]);

        let miner = ProximityMiner::new(1, 0.10);
        let patterns = miner.mine_pairs(&g, &store);
        let has = |x: &str, y: &str| {
            let (ix, iy) = (store.id_by_name(x).unwrap(), store.id_by_name(y).unwrap());
            patterns
                .iter()
                .any(|p| (p.a == ix && p.b == iy) || (p.a == iy && p.b == ix))
        };
        assert!(
            has("frequent_a", "frequent_b"),
            "frequent pair must be mined"
        );
        assert!(
            !has("rare_a", "rare_b"),
            "rare pair must fall below minsup despite perfect co-location"
        );

        // With minsup lowered, the rare pair appears too.
        let generous = ProximityMiner::new(1, 0.0 + 1e-9);
        let patterns = generous.mine_pairs(&g, &store);
        let ra = store.id_by_name("rare_a").unwrap();
        let rb = store.id_by_name("rare_b").unwrap();
        assert!(patterns
            .iter()
            .any(|p| (p.a == ra && p.b == rb) || (p.a == rb && p.b == ra)));
    }

    #[test]
    fn mined_patterns_sorted_by_support() {
        let g = grid(6, 6);
        let mut store = EventStore::new();
        store.add_event("x", (0..18).collect());
        store.add_event("y", (9..27).collect());
        store.add_event("z", vec![35]);
        let miner = ProximityMiner::new(1, 0.0);
        let ps = miner.mine_pairs(&g, &store);
        assert_eq!(ps.len(), 3);
        assert!(ps.windows(2).all(|w| w[0].support >= w[1].support));
    }

    #[test]
    fn detects_matches_pair_support() {
        let g = path(6);
        let mut s = BfsScratch::new(6);
        let m = ProximityMiner::new(1, 0.3);
        let sup = m.pair_support(&g, &mut s, &[2], &[3]);
        assert_eq!(m.detects(&g, &mut s, &[2], &[3]), sup >= 0.3);
    }

    #[test]
    #[should_panic(expected = "minsup must be in [0,1]")]
    fn invalid_minsup_panics() {
        let _ = ProximityMiner::new(1, 1.5);
    }
}
