//! Transaction Correlation: nodes as isolated market baskets.
//!
//! Tables 1–4 of the paper contrast TESC z-scores with "correlation
//! scores measured by treating nodes as isolated transactions",
//! estimated with Kendall's τ_b. For two binary indicator vectors the
//! pair counts have closed forms in the 2×2 contingency table, so the
//! whole computation is `O(|V_a| + |V_b|)` — no O(n²) pass over nodes.

use tesc_graph::NodeId;
use tesc_stats::kendall::var_s_tie_corrected;
use tesc_stats::{SignificanceLevel, Tail, TestOutcome};

/// 2×2 contingency table of two events over `n` transactions (nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contingency {
    /// Nodes with both events.
    pub n11: u64,
    /// Nodes with `a` only.
    pub n10: u64,
    /// Nodes with `b` only.
    pub n01: u64,
    /// Nodes with neither event.
    pub n00: u64,
}

impl Contingency {
    /// Build from sorted-or-not occurrence lists and the universe size.
    ///
    /// # Panics
    ///
    /// Panics if any node id is ≥ `num_nodes`.
    pub fn from_events(num_nodes: usize, va: &[NodeId], vb: &[NodeId]) -> Self {
        let mut a = va.to_vec();
        a.sort_unstable();
        a.dedup();
        let mut b = vb.to_vec();
        b.sort_unstable();
        b.dedup();
        for &v in a.iter().chain(&b) {
            assert!(
                (v as usize) < num_nodes,
                "node {v} out of range {num_nodes}"
            );
        }
        let mut n11 = 0u64;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n11 += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let n10 = a.len() as u64 - n11;
        let n01 = b.len() as u64 - n11;
        let n00 = num_nodes as u64 - n11 - n10 - n01;
        Contingency { n11, n10, n01, n00 }
    }

    /// Total transactions `n`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.n11 + self.n10 + self.n01 + self.n00
    }
}

/// Transaction-correlation summary: τ_b, its z-score and p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcSummary {
    /// The contingency table.
    pub table: Contingency,
    /// Kendall's τ_b of the two indicator vectors (equals the φ
    /// coefficient for 2×2 data).
    pub tau_b: f64,
    /// z-score of the Kendall numerator under the tie-corrected null
    /// variance (Eq. 6 of the paper with two binary tie groups).
    pub z: f64,
}

impl TcSummary {
    /// Outcome at a significance level / tail convention.
    pub fn outcome(&self, tail: Tail, alpha: SignificanceLevel) -> TestOutcome {
        TestOutcome::from_z(self.tau_b, self.z, tail, alpha)
    }
}

/// Compute Transaction Correlation between two events over a universe
/// of `num_nodes` transactions.
///
/// Closed forms for binary data: with the 2×2 table `(n11, n10, n01,
/// n00)`, concordant pairs = `n11·n00`, discordant = `n10·n01`, so
/// `S = n11·n00 − n10·n01`, and the tie groups of the two indicator
/// vectors are their zero/one blocks.
pub fn transaction_correlation(num_nodes: usize, va: &[NodeId], vb: &[NodeId]) -> TcSummary {
    let table = Contingency::from_events(num_nodes, va, vb);
    let n = table.total();
    assert!(n >= 3, "need at least 3 transactions");
    let s = table.n11 as i128 * table.n00 as i128 - table.n10 as i128 * table.n01 as i128;

    // Marginals: |x = 1| and |x = 0| are the tie-group sizes.
    let x1 = table.n11 + table.n10;
    let x0 = table.n01 + table.n00;
    let y1 = table.n11 + table.n01;
    let y0 = table.n10 + table.n00;

    let n0 = n as f64 * (n as f64 - 1.0) / 2.0;
    let pairs = |k: u64| k as f64 * (k as f64 - 1.0) / 2.0;
    let n1 = pairs(x1) + pairs(x0);
    let n2 = pairs(y1) + pairs(y0);
    let denom = ((n0 - n1) * (n0 - n2)).sqrt();
    let tau_b = if denom > 0.0 { s as f64 / denom } else { 0.0 };

    let tie_groups = |k1: u64, k0: u64| -> Vec<usize> {
        [k1, k0]
            .into_iter()
            .filter(|&k| k >= 2)
            .map(|k| k as usize)
            .collect()
    };
    let var_s = var_s_tie_corrected(n as usize, &tie_groups(x1, x0), &tie_groups(y1, y0));
    let z = if var_s > 0.0 {
        s as f64 / var_s.sqrt()
    } else {
        0.0
    };
    TcSummary { table, tau_b, z }
}

/// Lift (Han & Kamber, the paper's ref.\[12\]):
/// `P(a ∧ b) / (P(a)·P(b))`. Values > 1 mean transaction-level
/// attraction, < 1 repulsion; returns `None` when either event is
/// empty (the ratio is undefined).
pub fn lift(num_nodes: usize, va: &[NodeId], vb: &[NodeId]) -> Option<f64> {
    let table = Contingency::from_events(num_nodes, va, vb);
    let n = table.total() as f64;
    let pa = (table.n11 + table.n10) as f64 / n;
    let pb = (table.n11 + table.n01) as f64 / n;
    if pa == 0.0 || pb == 0.0 {
        return None;
    }
    Some((table.n11 as f64 / n) / (pa * pb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesc_stats::kendall::{kendall_tau, KendallMethod};

    #[test]
    fn contingency_counts() {
        let t = Contingency::from_events(10, &[0, 1, 2, 3], &[2, 3, 4]);
        assert_eq!(t.n11, 2);
        assert_eq!(t.n10, 2);
        assert_eq!(t.n01, 1);
        assert_eq!(t.n00, 5);
        assert_eq!(t.total(), 10);
    }

    #[test]
    fn closed_form_matches_generic_kendall() {
        // Cross-validate against the O(n log n) generic implementation
        // on the expanded indicator vectors.
        let num_nodes = 40;
        let va: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 20, 21];
        let vb: Vec<u32> = vec![3, 4, 5, 6, 7, 22];
        let tc = transaction_correlation(num_nodes, &va, &vb);

        let xa: Vec<f64> = (0..num_nodes as u32)
            .map(|v| va.contains(&v) as u8 as f64)
            .collect();
        let xb: Vec<f64> = (0..num_nodes as u32)
            .map(|v| vb.contains(&v) as u8 as f64)
            .collect();
        let generic = kendall_tau(&xa, &xb, KendallMethod::MergeSort);
        assert!((tc.tau_b - generic.tau_b).abs() < 1e-12);
        assert!((tc.z - generic.z).abs() < 1e-12);
    }

    #[test]
    fn identical_events_have_positive_tc() {
        let tc = transaction_correlation(100, &[1, 2, 3, 4, 5], &[1, 2, 3, 4, 5]);
        assert!((tc.tau_b - 1.0).abs() < 1e-12, "τ_b = {}", tc.tau_b);
        assert!(tc.z > 0.0);
    }

    #[test]
    fn disjoint_events_have_negative_tc() {
        let tc = transaction_correlation(20, &[0, 1, 2, 3, 4, 5, 6], &[7, 8, 9, 10, 11, 12]);
        assert!(tc.tau_b < 0.0, "τ_b = {}", tc.tau_b);
        assert!(tc.z < 0.0);
    }

    #[test]
    fn disjoint_but_sparse_events_are_weakly_negative() {
        // On a large universe, two small disjoint events are nearly
        // independent transactionally — this is the Table 3/5 scenario
        // (strong TESC, negligible TC).
        let tc = transaction_correlation(100_000, &[1, 2, 3], &[10, 11, 12]);
        assert!(tc.tau_b < 0.0);
        assert!(tc.z.abs() < 1.0, "z = {} should be insignificant", tc.z);
    }

    #[test]
    fn empty_event_gives_zero_scores() {
        let tc = transaction_correlation(50, &[], &[1, 2]);
        assert_eq!(tc.tau_b, 0.0);
        assert_eq!(tc.z, 0.0);
    }

    #[test]
    fn lift_values() {
        // Perfect co-occurrence: lift = 1/P(a).
        let l = lift(10, &[0, 1], &[0, 1]).unwrap();
        assert!((l - 5.0).abs() < 1e-12);
        // Disjoint: lift = 0.
        let l = lift(10, &[0, 1], &[2, 3]).unwrap();
        assert_eq!(l, 0.0);
        // Independent-ish: lift ≈ 1.
        let l = lift(4, &[0, 1], &[1, 2]).unwrap();
        assert!((l - 1.0).abs() < 1e-12);
        assert_eq!(lift(10, &[], &[1]), None);
    }

    #[test]
    fn outcome_respects_tail() {
        let tc = transaction_correlation(
            30,
            &(0..10).collect::<Vec<_>>(),
            &(0..10).collect::<Vec<_>>(),
        );
        let o = tc.outcome(Tail::Upper, SignificanceLevel::FIVE_PERCENT);
        assert!(o.is_significant());
        let o = tc.outcome(Tail::Lower, SignificanceLevel::FIVE_PERCENT);
        assert!(!o.is_significant());
    }

    #[test]
    fn duplicates_in_input_are_tolerated() {
        let a = transaction_correlation(20, &[1, 1, 2, 2], &[2, 3, 3]);
        let b = transaction_correlation(20, &[1, 2], &[2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let _ = transaction_correlation(5, &[7], &[1]);
    }
}
