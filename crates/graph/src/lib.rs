//! Graph substrate for the TESC reproduction.
//!
//! The paper (*Measuring Two-Event Structural Correlations on Graphs*,
//! VLDB 2012) works on large undirected, unweighted graphs stored as
//! adjacency lists (Sec. 4.4: "The major space cost is O(|E|), for
//! storing the graph as adjacency lists"). This crate provides that
//! substrate, built from scratch:
//!
//! * [`csr`] — a compact immutable CSR (compressed sparse row) graph
//!   plus a mutable [`csr::GraphBuilder`].
//! * [`adjacency`] — the [`Adjacency`] trait the BFS kernels are
//!   generic over, implemented by plain and compressed CSR.
//! * [`compressed`] — delta-encoded, varint-packed adjacency
//!   ([`compressed::CompressedCsr`]) with a streaming block-wise
//!   decoder, for the bandwidth-bound million-node tier.
//! * [`container`] — the `.tgraph` binary graph container
//!   (magic/version/LE header, CRC-32-checksummed sections).
//! * [`bfs`] — the BFS toolkit: single-source `h`-hop BFS and the
//!   multi-source **Batch BFS** of Algorithm 1, with reusable,
//!   epoch-stamped scratch space so repeated searches allocate nothing.
//! * [`budget`] — cooperative deadline/cancellation tokens
//!   ([`budget::Budget`]) the budgeted kernel variants check once per
//!   frontier level, unwinding with a typed [`budget::Interrupted`].
//! * [`vicinity`] — the offline `|V^h_v|` index of Sec. 4.2 used by
//!   rejection/importance sampling, with incremental maintenance.
//! * [`generators`] — random-graph generators (Erdős–Rényi,
//!   Barabási–Albert, Watts–Strogatz, planted partition) standing in
//!   for the paper's real datasets, plus deterministic toy graphs.
//! * [`pool`] — a thread-safe [`pool::ScratchPool`] of BFS scratches,
//!   the sharing primitive behind the parallel batch engine
//!   (`tesc::batch`).
//! * [`relabel`] — locality-aware id permutations (degree-descending +
//!   BFS discovery order) producing isomorphic graphs whose vicinities
//!   occupy contiguous id ranges, the substrate for the bitset density
//!   kernel (see `docs/PERFORMANCE.md`).
//! * [`perturb`] — random edge addition/removal (the Fig. 8 experiment).
//! * [`dist`] — bounded shortest-path helpers used by the event
//!   simulator and tests.
//! * [`io`] — plain-text edge-list serialization for the examples.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adjacency;
pub mod bfs;
pub mod budget;
pub mod codec;
pub mod compressed;
pub mod container;
pub mod crc;
pub mod csr;
pub mod dist;
pub mod generators;
pub mod io;
pub mod perturb;
pub mod pool;
pub mod relabel;
pub mod vicinity;

pub use adjacency::Adjacency;
pub use bfs::{
    multi_mask_counts, BfsKernel, BfsScratch, MsBfsScratch, MAX_GROUP_SOURCES, MULTI_MIN_SOURCES,
    SOURCE_GROUP_SIZE,
};
pub use budget::{Budget, Interrupted};
pub use compressed::CompressedCsr;
pub use container::{decode_tgraph, encode_tgraph, is_tgraph, TgraphFile, TGRAPH_MAGIC};
pub use csr::{CsrGraph, EdgeError, GraphBuilder, NodeId};
pub use pool::{PooledMultiScratch, PooledScratch, ScratchPool, PARALLEL_MIN_NODES};
pub use relabel::{RelabeledGraph, Relabeling};
pub use vicinity::VicinityIndex;
