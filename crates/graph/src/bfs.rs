//! BFS toolkit: single-source `h`-hop BFS and the paper's Batch BFS.
//!
//! Every TESC operation is BFS-shaped: event densities (Eq. 2) need an
//! `h`-hop BFS per reference node, and Batch BFS (Algorithm 1) retrieves
//! `V^h_{a∪b}` with a single multi-source sweep. Because a test run
//! performs thousands of these searches, the scratch state (visited
//! marks + frontier buffers) lives in a reusable [`BfsScratch`] with
//! **epoch-stamped** visited marks: instead of clearing an `O(|V|)`
//! bitmap per search, a search is "new" simply because its epoch is.

use crate::csr::{CsrGraph, NodeId};

/// Reusable BFS scratch space for one graph size.
///
/// Create once per thread, reuse for every search. Searches over graphs
/// with more nodes than the scratch was created for will panic.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    /// `stamp[v] == epoch` ⇔ `v` visited in the current search.
    stamp: Vec<u32>,
    epoch: u32,
    /// Flat BFS queue (level boundaries tracked by the driver loop).
    queue: Vec<NodeId>,
}

impl BfsScratch {
    /// Scratch for graphs of up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        BfsScratch {
            stamp: vec![0; num_nodes],
            epoch: 0,
            queue: Vec::new(),
        }
    }

    /// Begin a new search: bump the epoch, handling wrap-around.
    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.queue.clear();
    }

    #[inline]
    fn mark(&mut self, v: NodeId) -> bool {
        let s = &mut self.stamp[v as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// Level-synchronous BFS from `sources` out to `h` hops, invoking
    /// `visit(node, depth)` for every reached node exactly once
    /// (sources at depth 0). Duplicate sources are visited once.
    ///
    /// With a single source this is the `h`-hop BFS of Sec. 2; with all
    /// event nodes as sources it is **Batch BFS** (Algorithm 1), whose
    /// correctness the paper argues via a virtual node connected to all
    /// sources: worst case `O(|V| + |E|)` regardless of `|sources|`.
    ///
    /// Returns the number of nodes visited.
    pub fn visit_h_vicinity(
        &mut self,
        g: &CsrGraph,
        sources: &[NodeId],
        h: u32,
        mut visit: impl FnMut(NodeId, u32),
    ) -> usize {
        assert!(
            self.stamp.len() >= g.num_nodes(),
            "BfsScratch sized for {} nodes, graph has {}",
            self.stamp.len(),
            g.num_nodes()
        );
        self.begin();
        for &s in sources {
            debug_assert!((s as usize) < g.num_nodes(), "source {s} out of range");
            if self.mark(s) {
                self.queue.push(s);
                visit(s, 0);
            }
        }
        let mut visited = self.queue.len();
        let mut level_start = 0usize;
        let mut depth = 0u32;
        while depth < h {
            let level_end = self.queue.len();
            if level_start == level_end {
                break;
            }
            depth += 1;
            for qi in level_start..level_end {
                let u = self.queue[qi];
                let (lo, hi) = {
                    // Split borrows: neighbors() borrows g, not self.
                    (0, g.neighbors(u).len())
                };
                for ni in lo..hi {
                    let v = g.neighbors(u)[ni];
                    if self.mark(v) {
                        self.queue.push(v);
                        visit(v, depth);
                        visited += 1;
                    }
                }
            }
            level_start = level_end;
        }
        visited
    }

    /// Collect the node set of the `h`-vicinity of `sources` into `out`
    /// (cleared first). This is Algorithm 1's output `V_out` when
    /// `sources = V_{a∪b}`.
    pub fn h_vicinity_into(
        &mut self,
        g: &CsrGraph,
        sources: &[NodeId],
        h: u32,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        self.visit_h_vicinity(g, sources, h, |v, _| out.push(v));
    }

    /// Allocating convenience wrapper over [`Self::h_vicinity_into`].
    pub fn h_vicinity(&mut self, g: &CsrGraph, source: NodeId, h: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.h_vicinity_into(g, &[source], h, &mut out);
        out
    }

    /// `|V^h_v|` — the node count of `v`'s `h`-vicinity (including `v`).
    pub fn vicinity_size(&mut self, g: &CsrGraph, v: NodeId, h: u32) -> usize {
        self.visit_h_vicinity(g, &[v], h, |_, _| {})
    }

    /// One-pass density numerator/denominator for Eq. 2: returns
    /// `(|pred-matching nodes in V^h_r|, |V^h_r|)`.
    pub fn count_matching(
        &mut self,
        g: &CsrGraph,
        r: NodeId,
        h: u32,
        mut pred: impl FnMut(NodeId) -> bool,
    ) -> (usize, usize) {
        let mut matching = 0usize;
        let total = self.visit_h_vicinity(g, &[r], h, |v, _| {
            if pred(v) {
                matching += 1;
            }
        });
        (matching, total)
    }

    /// Does the `h`-vicinity of `v` contain any node satisfying `pred`?
    /// Used by Whole-graph sampling (Alg. 3) to test reference-node
    /// eligibility; short-circuits are not possible with a level-
    /// synchronous sweep, so this simply scans (worst case = one BFS).
    pub fn vicinity_contains(
        &mut self,
        g: &CsrGraph,
        v: NodeId,
        h: u32,
        mut pred: impl FnMut(NodeId) -> bool,
    ) -> bool {
        let mut found = false;
        self.visit_h_vicinity(g, &[v], h, |u, _| {
            if !found && pred(u) {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    /// Path 0-1-2-3-4-5.
    fn path6() -> CsrGraph {
        from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn single_source_h_limits_depth() {
        let g = path6();
        let mut s = BfsScratch::new(g.num_nodes());
        let mut v1 = s.h_vicinity(&g, 0, 1);
        v1.sort_unstable();
        assert_eq!(v1, vec![0, 1]);
        let mut v3 = s.h_vicinity(&g, 0, 3);
        v3.sort_unstable();
        assert_eq!(v3, vec![0, 1, 2, 3]);
        let mut vall = s.h_vicinity(&g, 0, 10);
        vall.sort_unstable();
        assert_eq!(vall, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn h_zero_returns_only_sources() {
        let g = path6();
        let mut s = BfsScratch::new(g.num_nodes());
        assert_eq!(s.h_vicinity(&g, 2, 0), vec![2]);
    }

    #[test]
    fn depths_are_shortest_distances() {
        // Diamond: 0-1, 0-2, 1-3, 2-3; distance(0,3) = 2 via two routes.
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut s = BfsScratch::new(4);
        let mut depths = vec![u32::MAX; 4];
        s.visit_h_vicinity(&g, &[0], 5, |v, d| depths[v as usize] = d);
        assert_eq!(depths, vec![0, 1, 1, 2]);
    }

    #[test]
    fn batch_bfs_equals_union_of_single_source() {
        let g = from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (3, 4),
            ],
        );
        let sources = [0u32, 6];
        let mut s = BfsScratch::new(9);
        for h in 0..4 {
            let mut batch = Vec::new();
            s.h_vicinity_into(&g, &sources, h, &mut batch);
            batch.sort_unstable();
            let mut union: Vec<NodeId> = sources
                .iter()
                .flat_map(|&src| s.h_vicinity(&g, src, h))
                .collect();
            union.sort_unstable();
            union.dedup();
            assert_eq!(batch, union, "h={h}");
        }
    }

    #[test]
    fn duplicate_sources_visited_once() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        let mut count = 0;
        s.visit_h_vicinity(&g, &[3, 3, 3], 0, |_, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn each_node_visited_exactly_once() {
        let g = from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let mut s = BfsScratch::new(5);
        let mut seen = vec![0u32; 5];
        s.visit_h_vicinity(&g, &[0], 10, |v, _| seen[v as usize] += 1);
        assert_eq!(seen, vec![1; 5]);
    }

    #[test]
    fn scratch_reuse_isolated_between_searches() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        let a = s.vicinity_size(&g, 0, 1);
        let b = s.vicinity_size(&g, 5, 1);
        let c = s.vicinity_size(&g, 0, 1);
        assert_eq!(a, 2);
        assert_eq!(b, 2);
        assert_eq!(a, c, "reuse must not leak visited marks");
    }

    #[test]
    fn vicinity_size_counts_self() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        assert_eq!(s.vicinity_size(&g, 2, 0), 1);
        assert_eq!(s.vicinity_size(&g, 2, 1), 3);
        assert_eq!(s.vicinity_size(&g, 2, 2), 5);
    }

    #[test]
    fn count_matching_density_pieces() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        // "Event" on odd nodes.
        let (m, t) = s.count_matching(&g, 2, 2, |v| v % 2 == 1);
        // V^2_2 = {0,1,2,3,4}; odd members = {1,3}.
        assert_eq!((m, t), (2, 5));
    }

    #[test]
    fn vicinity_contains_respects_h() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        assert!(!s.vicinity_contains(&g, 0, 2, |v| v == 4));
        assert!(s.vicinity_contains(&g, 0, 4, |v| v == 4));
    }

    #[test]
    fn disconnected_components_not_reached() {
        let g = from_edges(5, &[(0, 1), (2, 3)]);
        let mut s = BfsScratch::new(5);
        let mut v = s.h_vicinity(&g, 0, 9);
        v.sort_unstable();
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn epoch_wraparound_resets_cleanly() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        // Force the epoch to the brink, then verify searches still work.
        s.epoch = u32::MAX - 1;
        assert_eq!(s.vicinity_size(&g, 0, 1), 2); // epoch -> MAX... begin bumps to MAX
        assert_eq!(s.vicinity_size(&g, 0, 1), 2); // wraps: stamps cleared
        assert_eq!(s.vicinity_size(&g, 5, 2), 3);
    }

    #[test]
    #[should_panic(expected = "BfsScratch sized for")]
    fn undersized_scratch_panics() {
        let g = path6();
        let mut s = BfsScratch::new(3);
        let _ = s.vicinity_size(&g, 0, 1);
    }

    #[test]
    fn visited_count_matches_collected() {
        let g = from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 6)]);
        let mut s = BfsScratch::new(7);
        let mut collected = Vec::new();
        let n = s.visit_h_vicinity(&g, &[0], 2, |v, _| collected.push(v));
        assert_eq!(n, collected.len());
    }
}
