//! BFS toolkit: single-source `h`-hop BFS and the paper's Batch BFS.
//!
//! Every TESC operation is BFS-shaped: event densities (Eq. 2) need an
//! `h`-hop BFS per reference node, and Batch BFS (Algorithm 1) retrieves
//! `V^h_{a∪b}` with a single multi-source sweep. Because a test run
//! performs thousands of these searches, the scratch state (visited
//! marks + frontier buffers) lives in a reusable [`BfsScratch`] with
//! **epoch-stamped** visited marks: instead of clearing an `O(|V|)`
//! bitmap per search, a search is "new" simply because its epoch is.
//!
//! Two single-source kernels share the scratch (a third, the 64-way
//! multi-source kernel, lives in its own [`MsBfsScratch`] because its
//! state is a lane *word* per node rather than a mark or a bit):
//!
//! * [`BfsScratch::visit_h_vicinity`] — the **scalar** kernel: a flat
//!   queue plus epoch stamps, invoking a per-node closure. Best when
//!   vicinities are a tiny fraction of the graph.
//! * [`BfsScratch::visit_h_vicinity_bitset`] — the **bitset** kernel:
//!   the visited set is a `u64` bitmap, levels run top-down while the
//!   frontier is thin and switch to a bottom-up parent probe when it
//!   is fat (the classic direction-optimizing hybrid), and the *final*
//!   level — the bulk of every `h`-hop search — is expanded with
//!   branch-free idempotent OR stores, recovering counts by popcount.
//!   Downstream consumers intersect the visited bitmap against event
//!   masks word-by-word instead of probing per node. Both kernels
//!   produce the **identical visited set**, so every count derived
//!   from them is bit-identical; [`BfsKernel`] picks between them.
//! * [`MsBfsScratch::visit_h_vicinity_multi`] — the **multi-source**
//!   kernel: up to [`MAX_GROUP_SOURCES`] sources traverse together,
//!   one bit-lane each, so one edge scan advances every lane standing
//!   on a node. Per-lane counts are recovered by popcount and equal
//!   the single-source results exactly.

//!
//! All kernels are generic over [`Adjacency`], so they run unchanged
//! on the plain [`crate::CsrGraph`] (slice-iterating, identical
//! codegen to the pre-trait versions) and on the streaming
//! [`crate::compressed::CompressedCsr`] decoder.

use crate::adjacency::Adjacency;
use crate::budget::{Budget, Interrupted};
use crate::csr::NodeId;

/// Direction-optimizing switch threshold (Beamer et al.): a level runs
/// bottom-up when the frontier's degree sum exceeds the unexplored
/// degree sum divided by this factor.
const BU_ALPHA: u64 = 14;

/// Hard cap on the sources of one multi-source traversal: the lane
/// state is a single `u64` word per graph node, so a traversal carries
/// at most one bit-lane per word bit. Callers with more sources
/// partition them into groups (see [`SOURCE_GROUP_SIZE`]).
pub const MAX_GROUP_SOURCES: usize = 64;

/// Default number of reference-node sources fused into one
/// multi-source traversal ([`MsBfsScratch::visit_h_vicinity_multi`]).
///
/// The word width is the natural group size: a full group amortizes
/// every edge scan over 64 concurrent traversals at no extra per-word
/// cost, and the last, partially-occupied group of a workset is the
/// only one that pays for idle lanes. Smaller groups only make sense
/// for ablation studies (`TescEngine::with_source_group_size` in
/// `tesc`), where halving the occupancy isolates the amortization
/// effect; there is no graph shape where a deliberately half-empty
/// word wins. Shared, like [`crate::PARALLEL_MIN_NODES`], so layers
/// cannot drift apart.
pub const SOURCE_GROUP_SIZE: usize = MAX_GROUP_SOURCES;

/// [`BfsKernel::Auto`] considers multi-source batching only when a
/// density sweep has at least this many reference-node sources.
///
/// Below it, a group cannot amortize much: the fixed per-traversal
/// costs (three `O(|V|)` word-array resets plus the footprint scan)
/// are split over too few lanes, and the per-source kernels' simpler
/// inner loops win. From about a quarter-occupied word upward, one
/// shared edge scan replaces `sources` separate scans of the same CSR
/// rows, which dominates everything else. The source count is
/// necessary but not sufficient — [`BfsKernel::use_multi_source`]
/// additionally requires the sweep's expected union footprint to cover
/// the graph (see `docs/PERFORMANCE.md`).
pub const MULTI_MIN_SOURCES: usize = 16;

/// Which BFS kernel a density sweep should use.
///
/// Both kernels visit the identical node set, so every integer count
/// derived from a search is the same either way — the choice is purely
/// a performance trade-off (see `docs/PERFORMANCE.md`):
///
/// * the scalar kernel pays `O(1)` per *visited node* and nothing for
///   unvisited ones — unbeatable when vicinities are tiny;
/// * the bitset kernel pays `O(|V|/64)` per search for bitmap clears
///   and the word-level count sweep, but its branch-free final-level
///   expansion and word-wise mask intersection win as soon as
///   vicinities are a non-trivial fraction of the graph (the common
///   case at `h ≥ 2` on clustered graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BfsKernel {
    /// Pick per graph/level with [`BfsKernel::use_bitset`]'s expected
    /// vicinity-density heuristic.
    #[default]
    Auto,
    /// Always the epoch-stamped scalar kernel.
    Scalar,
    /// Always the frontier-bitmap hybrid kernel.
    Bitset,
    /// Batch reference nodes into 64-way multi-source traversals
    /// ([`MsBfsScratch`]); single-source contexts (vicinity-index
    /// builds, sampling BFS) fall back to the bitset kernel.
    Multi,
}

impl BfsKernel {
    /// Resolve the choice for `h`-hop searches on `g`.
    ///
    /// `Auto` estimates the vicinity reach as `(d̄ + 1)^h` (average
    /// degree `d̄`, capped at `|V|`) and engages the bitset kernel when
    /// that estimate is at least `|V|/32` — the point where the scalar
    /// kernel's per-visited-node probes outweigh the bitset kernel's
    /// per-word fixed costs. Explicit variants override (for tests and
    /// benches).
    pub fn use_bitset<G: Adjacency>(self, g: &G, h: u32) -> bool {
        match self {
            BfsKernel::Scalar => false,
            BfsKernel::Bitset | BfsKernel::Multi => true,
            BfsKernel::Auto => {
                let n = g.num_nodes();
                if n == 0 {
                    return false;
                }
                let branch = g.average_degree() + 1.0;
                let mut est = 1.0f64;
                for _ in 0..h {
                    est = (est * branch).min(n as f64);
                }
                est * 32.0 >= n as f64
            }
        }
    }

    /// Should a density sweep over `num_sources` reference nodes on
    /// `g` batch its sources into multi-source traversals?
    ///
    /// `Multi` always batches; the explicit per-source kernels
    /// (`Scalar`, `Bitset`) never do — they are the reference
    /// configurations every batched result must match bit for bit.
    /// `Auto` batches when two conditions hold:
    ///
    /// 1. at least [`MULTI_MIN_SOURCES`] sources, so the group's fixed
    ///    `O(|V|)` word-array costs split over a reasonably occupied
    ///    lane word, and
    /// 2. the expected **lane incidence** of a full group averages at
    ///    least 2 per node — `(d̄ + 1)^h · min(sources, 64) ≥ 2·|V|`
    ///    (reach estimate capped at `|V|`, like
    ///    [`BfsKernel::use_bitset`]). Sharing is what a multi-source
    ///    traversal sells: below ~2 lanes per visited node the group's
    ///    vicinities barely overlap, every edge scan serves mostly one
    ///    lane, and the per-source kernels' zero fixed cost wins
    ///    (measured on the `h = 1` rows of the `density_kernel`
    ///    bench — see `docs/PERFORMANCE.md`).
    ///
    /// Like every kernel choice this is purely a performance switch —
    /// the recovered counts are identical integers either way.
    pub fn use_multi_source<G: Adjacency>(self, g: &G, h: u32, num_sources: usize) -> bool {
        match self {
            BfsKernel::Multi => true,
            BfsKernel::Scalar | BfsKernel::Bitset => false,
            BfsKernel::Auto => {
                let n = g.num_nodes();
                if num_sources < MULTI_MIN_SOURCES || n == 0 {
                    return false;
                }
                let branch = g.average_degree() + 1.0;
                let mut est = 1.0f64;
                for _ in 0..h {
                    est = (est * branch).min(n as f64);
                }
                let occupancy = num_sources.min(SOURCE_GROUP_SIZE) as f64;
                est * occupancy >= 2.0 * n as f64
            }
        }
    }
}

impl std::fmt::Display for BfsKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BfsKernel::Auto => write!(f, "auto"),
            BfsKernel::Scalar => write!(f, "scalar"),
            BfsKernel::Bitset => write!(f, "bitset"),
            BfsKernel::Multi => write!(f, "multi"),
        }
    }
}

/// Reusable BFS scratch space for one graph size.
///
/// Create once per thread, reuse for every search. Searches over graphs
/// with more nodes than the scratch was created for will panic.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    /// `stamp[v] == epoch` ⇔ `v` visited in the current search.
    stamp: Vec<u32>,
    epoch: u32,
    /// Flat BFS queue (level boundaries tracked by the driver loop).
    queue: Vec<NodeId>,
    /// Bitset-kernel state (allocated lazily on first bitset search):
    /// the visited bitmap of the most recent bitset search…
    visited: Vec<u64>,
    /// …the current/next frontier bitmaps for bottom-up levels…
    front_bits: Vec<u64>,
    next_bits: Vec<u64>,
    /// …the current/next frontier node lists for top-down levels…
    front_nodes: Vec<NodeId>,
    next_nodes: Vec<NodeId>,
    /// …nodes first reached at each depth of the last bitset search…
    levels: Vec<u32>,
    /// …and how many `visited` words the last bitset search covered.
    bitset_words: usize,
}

impl BfsScratch {
    /// Scratch for graphs of up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        BfsScratch {
            stamp: vec![0; num_nodes],
            epoch: 0,
            queue: Vec::new(),
            visited: Vec::new(),
            front_bits: Vec::new(),
            next_bits: Vec::new(),
            front_nodes: Vec::new(),
            next_nodes: Vec::new(),
            levels: Vec::new(),
            bitset_words: 0,
        }
    }

    /// Begin a new search: bump the epoch, handling wrap-around.
    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.queue.clear();
    }

    #[inline]
    fn mark(&mut self, v: NodeId) -> bool {
        let s = &mut self.stamp[v as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// Level-synchronous BFS from `sources` out to `h` hops, invoking
    /// `visit(node, depth)` for every reached node exactly once
    /// (sources at depth 0). Duplicate sources are visited once.
    ///
    /// With a single source this is the `h`-hop BFS of Sec. 2; with all
    /// event nodes as sources it is **Batch BFS** (Algorithm 1), whose
    /// correctness the paper argues via a virtual node connected to all
    /// sources: worst case `O(|V| + |E|)` regardless of `|sources|`.
    ///
    /// Returns the number of nodes visited.
    pub fn visit_h_vicinity<G: Adjacency>(
        &mut self,
        g: &G,
        sources: &[NodeId],
        h: u32,
        visit: impl FnMut(NodeId, u32),
    ) -> usize {
        self.visit_h_vicinity_budgeted(g, sources, h, &Budget::unlimited(), visit)
            .expect("unlimited budget cannot exhaust")
    }

    /// [`BfsScratch::visit_h_vicinity`] under a [`Budget`], checked
    /// once per frontier level. On exhaustion the search stops where
    /// it stands and returns the typed [`Interrupted`] error; the
    /// scratch state is valid for reuse but the visited set is
    /// partial, so callers must not derive counts from it.
    pub fn visit_h_vicinity_budgeted<G: Adjacency>(
        &mut self,
        g: &G,
        sources: &[NodeId],
        h: u32,
        budget: &Budget,
        mut visit: impl FnMut(NodeId, u32),
    ) -> Result<usize, Interrupted> {
        assert!(
            self.stamp.len() >= g.num_nodes(),
            "BfsScratch sized for {} nodes, graph has {}",
            self.stamp.len(),
            g.num_nodes()
        );
        self.begin();
        for &s in sources {
            debug_assert!((s as usize) < g.num_nodes(), "source {s} out of range");
            if self.mark(s) {
                self.queue.push(s);
                visit(s, 0);
            }
        }
        let mut visited = self.queue.len();
        let mut level_start = 0usize;
        let mut depth = 0u32;
        while depth < h {
            budget.check()?;
            let level_end = self.queue.len();
            if level_start == level_end {
                break;
            }
            depth += 1;
            for qi in level_start..level_end {
                let u = self.queue[qi];
                // The row stream borrows `g`, not `self`, so marking
                // and queue pushes interleave freely with the decode.
                g.for_each_neighbor(u, |v| {
                    if self.mark(v) {
                        self.queue.push(v);
                        visit(v, depth);
                        visited += 1;
                    }
                });
            }
            level_start = level_end;
        }
        Ok(visited)
    }

    /// Level-synchronous **bitset** BFS from `sources` out to `h` hops:
    /// the hybrid top-down/bottom-up kernel. Returns the number of
    /// nodes reached; the visited *set* is left in
    /// [`BfsScratch::visited_words`] and the per-depth first-reach
    /// counts in [`BfsScratch::level_counts`].
    ///
    /// Three mechanisms make this faster than the scalar kernel on
    /// dense vicinities, none of which changes the visited set:
    ///
    /// 1. **Bitmap visited set** — membership is one AND, and
    ///    downstream mask intersections run 64 nodes per instruction.
    /// 2. **Direction optimization** — a level whose frontier degree
    ///    sum exceeds `unexplored / α` (α = 14) runs bottom-up: scan
    ///    unvisited nodes and probe their neighbors against the
    ///    frontier bitmap, breaking at the first parent.
    /// 3. **Branch-free final level** — the deepest level (the bulk of
    ///    every search) needs no frontier bookkeeping, so it is pure
    ///    idempotent `visited[w] |= bit` stores; its size is recovered
    ///    with one popcount sweep.
    ///
    /// Duplicate sources are visited once, like the scalar kernel.
    pub fn visit_h_vicinity_bitset<G: Adjacency>(
        &mut self,
        g: &G,
        sources: &[NodeId],
        h: u32,
    ) -> usize {
        self.visit_h_vicinity_bitset_budgeted(g, sources, h, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// [`BfsScratch::visit_h_vicinity_bitset`] under a [`Budget`],
    /// checked once per frontier level. On exhaustion the partial
    /// visited bitmap is abandoned (the scratch stays reusable) and
    /// the typed [`Interrupted`] error is returned.
    pub fn visit_h_vicinity_bitset_budgeted<G: Adjacency>(
        &mut self,
        g: &G,
        sources: &[NodeId],
        h: u32,
        budget: &Budget,
    ) -> Result<usize, Interrupted> {
        let n = g.num_nodes();
        assert!(
            self.stamp.len() >= n,
            "BfsScratch sized for {} nodes, graph has {}",
            self.stamp.len(),
            n
        );
        let words = n.div_ceil(64);
        if self.visited.len() < words {
            self.visited.resize(words, 0);
            self.front_bits.resize(words, 0);
            self.next_bits.resize(words, 0);
        }
        self.bitset_words = words;
        self.visited[..words].fill(0);
        self.levels.clear();
        self.front_nodes.clear();

        let mut front_deg = 0u64;
        for &s in sources {
            debug_assert!((s as usize) < n, "source {s} out of range");
            let (w, b) = (s as usize / 64, s % 64);
            if self.visited[w] & (1u64 << b) == 0 {
                self.visited[w] |= 1u64 << b;
                self.front_nodes.push(s);
                front_deg += g.degree(s) as u64;
            }
        }
        let mut visited_count = self.front_nodes.len();
        self.levels.push(self.front_nodes.len() as u32);

        let total_deg = g.degree_sum();
        let mut visited_deg = front_deg;
        let mut front_len = self.front_nodes.len();
        let mut front_is_bits = false;
        let mut depth = 0u32;
        while depth < h && front_len > 0 {
            budget.check()?;
            depth += 1;
            if depth == h {
                // Final level: no further expansion, so membership
                // writes need no test and no frontier bookkeeping.
                if front_is_bits {
                    for w in 0..words {
                        let mut bits = self.front_bits[w];
                        while bits != 0 {
                            let u = (w * 64) as NodeId + bits.trailing_zeros();
                            bits &= bits - 1;
                            g.for_each_neighbor(u, |v| {
                                self.visited[v as usize / 64] |= 1u64 << (v % 64);
                            });
                        }
                    }
                } else {
                    let front = std::mem::take(&mut self.front_nodes);
                    for &u in &front {
                        g.for_each_neighbor(u, |v| {
                            self.visited[v as usize / 64] |= 1u64 << (v % 64);
                        });
                    }
                    self.front_nodes = front;
                }
                let total: usize = self.visited[..words]
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum();
                if total > visited_count {
                    self.levels.push((total - visited_count) as u32);
                }
                visited_count = total;
                break;
            }

            let unexplored_deg = total_deg - visited_deg;
            let bottom_up = front_deg.saturating_mul(BU_ALPHA) > unexplored_deg;
            let mut new_count = 0usize;
            let mut new_deg = 0u64;
            if bottom_up {
                if !front_is_bits {
                    self.front_bits[..words].fill(0);
                    for &u in &self.front_nodes {
                        self.front_bits[u as usize / 64] |= 1u64 << (u % 64);
                    }
                }
                self.next_bits[..words].fill(0);
                for w in 0..words {
                    // Snapshot the unvisited lanes of this word; nodes
                    // claimed below join the *next* frontier, never the
                    // current one, so the snapshot stays level-correct.
                    let mut unv = !self.visited[w];
                    if w == words - 1 && !n.is_multiple_of(64) {
                        unv &= (1u64 << (n % 64)) - 1;
                    }
                    while unv != 0 {
                        let b = unv.trailing_zeros();
                        unv &= unv - 1;
                        let v = (w * 64) as NodeId + b;
                        for p in g.neighbors_iter(v) {
                            if self.front_bits[p as usize / 64] & (1u64 << (p % 64)) != 0 {
                                self.visited[w] |= 1u64 << b;
                                self.next_bits[w] |= 1u64 << b;
                                new_count += 1;
                                new_deg += g.degree(v) as u64;
                                break;
                            }
                        }
                    }
                }
                std::mem::swap(&mut self.front_bits, &mut self.next_bits);
                front_is_bits = true;
            } else {
                if front_is_bits {
                    self.front_nodes.clear();
                    for w in 0..words {
                        let mut bits = self.front_bits[w];
                        while bits != 0 {
                            self.front_nodes
                                .push((w * 64) as NodeId + bits.trailing_zeros());
                            bits &= bits - 1;
                        }
                    }
                    front_is_bits = false;
                }
                let front = std::mem::take(&mut self.front_nodes);
                self.next_nodes.clear();
                for &u in &front {
                    g.for_each_neighbor(u, |v| {
                        let (w, b) = (v as usize / 64, v % 64);
                        if self.visited[w] & (1u64 << b) == 0 {
                            self.visited[w] |= 1u64 << b;
                            self.next_nodes.push(v);
                            new_count += 1;
                            new_deg += g.degree(v) as u64;
                        }
                    });
                }
                self.front_nodes = front;
                std::mem::swap(&mut self.front_nodes, &mut self.next_nodes);
            }
            if new_count == 0 {
                break;
            }
            visited_count += new_count;
            visited_deg += new_deg;
            front_deg = new_deg;
            front_len = new_count;
            self.levels.push(new_count as u32);
        }
        Ok(visited_count)
    }

    /// The visited bitmap of the most recent
    /// [`BfsScratch::visit_h_vicinity_bitset`] search: bit `v` set ⇔
    /// node `v` reached. Length covers exactly that search's graph.
    #[inline]
    pub fn visited_words(&self) -> &[u64] {
        &self.visited[..self.bitset_words]
    }

    /// `level_counts()[d]` = nodes first reached at depth `d` by the
    /// most recent bitset search (index 0 counts the distinct
    /// sources). The slice is truncated once the search exhausts — a
    /// missing depth means 0 new nodes.
    #[inline]
    pub fn level_counts(&self) -> &[u32] {
        &self.levels
    }

    /// Multi-mask word sweep over the visited bitmap of the most
    /// recent [`BfsScratch::visit_h_vicinity_bitset`] search: one
    /// AND + popcount pass that intersects the bitmap against **M**
    /// membership masks at once — the fused generalization of the
    /// two-event sweep in `tesc::density::density_counts_bitset`. See
    /// [`multi_mask_counts`] for the word-level contract.
    #[inline]
    pub fn visited_multi_mask_counts(&self, masks: &[&[u64]], counts: &mut [u32]) {
        multi_mask_counts(self.visited_words(), masks, counts);
    }

    /// Collect the node set of the `h`-vicinity of `sources` into `out`
    /// (cleared first). This is Algorithm 1's output `V_out` when
    /// `sources = V_{a∪b}`.
    pub fn h_vicinity_into<G: Adjacency>(
        &mut self,
        g: &G,
        sources: &[NodeId],
        h: u32,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        self.visit_h_vicinity(g, sources, h, |v, _| out.push(v));
    }

    /// Allocating convenience wrapper over [`Self::h_vicinity_into`].
    pub fn h_vicinity<G: Adjacency>(&mut self, g: &G, source: NodeId, h: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.h_vicinity_into(g, &[source], h, &mut out);
        out
    }

    /// `|V^h_v|` — the node count of `v`'s `h`-vicinity (including `v`).
    pub fn vicinity_size<G: Adjacency>(&mut self, g: &G, v: NodeId, h: u32) -> usize {
        self.visit_h_vicinity(g, &[v], h, |_, _| {})
    }

    /// One-pass density numerator/denominator for Eq. 2: returns
    /// `(|pred-matching nodes in V^h_r|, |V^h_r|)`.
    pub fn count_matching<G: Adjacency>(
        &mut self,
        g: &G,
        r: NodeId,
        h: u32,
        mut pred: impl FnMut(NodeId) -> bool,
    ) -> (usize, usize) {
        let mut matching = 0usize;
        let total = self.visit_h_vicinity(g, &[r], h, |v, _| {
            if pred(v) {
                matching += 1;
            }
        });
        (matching, total)
    }

    /// Does the `h`-vicinity of `v` contain any node satisfying `pred`?
    /// Used by Whole-graph sampling (Alg. 3) to test reference-node
    /// eligibility; short-circuits are not possible with a level-
    /// synchronous sweep, so this simply scans (worst case = one BFS).
    pub fn vicinity_contains<G: Adjacency>(
        &mut self,
        g: &G,
        v: NodeId,
        h: u32,
        mut pred: impl FnMut(NodeId) -> bool,
    ) -> bool {
        let mut found = false;
        self.visit_h_vicinity(g, &[v], h, |u, _| {
            if !found && pred(u) {
                found = true;
            }
        });
        found
    }
}

/// Reusable scratch state for **64-way multi-source BFS** — one `h`-hop
/// traversal serving up to [`MAX_GROUP_SOURCES`] reference nodes at
/// once.
///
/// The visited state is one `u64` word per graph node: bit `s` of
/// `seen[v]` means "node `v` has been reached by source lane `s`".
/// Levels advance synchronously for all lanes with word-wise OR
/// propagation: expanding frontier node `u` ORs `front[u]`'s lanes
/// into each neighbor, and the lanes that were genuinely new
/// (`front[u] & !seen[v]`) join the next frontier. One scan of `u`'s
/// edge list therefore advances **every** lane currently standing on
/// `u` — the data-movement saving the single-source kernels cannot
/// reach, because adjacent reference nodes re-stream the same CSR rows
/// from memory once per source.
///
/// Two further mechanisms keep the fixed costs at bitset-kernel
/// parity *per source* rather than per traversal:
///
/// * **Branch-free final level.** The deepest level needs no frontier
///   bookkeeping or novelty test, so it degenerates to pure idempotent
///   `seen[v] |= lanes` OR stores — the PR 3 trick, generalized from
///   single bits to lane words.
/// * **Amortized `O(|V|)` resets.** The three word arrays are cleared
///   by straight `memset` per traversal — `O(|V|/64)` per *source* at
///   full occupancy, exactly the per-search fixed cost the
///   single-source bitset kernel already pays for its bitmap clear.
///
/// Counts are recovered per bit-lane afterwards:
/// [`MsBfsScratch::lane_sizes`] sweeps the lane words once through a
/// carry-save positional popcount (64 vertical binary counters held in
/// eight level words, flushed every 255 inputs — `O(1)` amortized per
/// word, however many lanes share it), and
/// [`MsBfsScratch::lane_member_counts`] reads only an event's
/// occurrence nodes to produce per-source `|V_e ∩ V^h_r|`. Every
/// recovered integer is identical to what `sources.len()` independent
/// single-source searches would produce (asserted in
/// `tests/kernels.rs` across 128 seeded cases).
#[derive(Debug, Clone)]
pub struct MsBfsScratch {
    /// `seen[v]` bit `s` ⇔ node `v` reached by source lane `s`.
    seen: Vec<u64>,
    /// Lanes that arrived at each node on the current level.
    front: Vec<u64>,
    /// Lanes arriving on the next level (swapped with `front`).
    next: Vec<u64>,
    /// Nodes with a non-zero `front` word, in discovery order.
    front_nodes: Vec<NodeId>,
    next_nodes: Vec<NodeId>,
    /// Lane count of the most recent traversal.
    num_lanes: usize,
    /// Node count of the most recent traversal's graph.
    num_nodes: usize,
}

impl MsBfsScratch {
    /// Scratch for graphs of up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        MsBfsScratch {
            seen: vec![0; num_nodes],
            front: vec![0; num_nodes],
            next: vec![0; num_nodes],
            front_nodes: Vec::new(),
            next_nodes: Vec::new(),
            num_lanes: 0,
            num_nodes: 0,
        }
    }

    /// Level-synchronous multi-source BFS: reach the `h`-vicinity of
    /// **every** source simultaneously, one bit-lane per source.
    /// Per-lane counts are recovered afterwards via
    /// [`MsBfsScratch::lane_sizes`] / [`MsBfsScratch::lane_member_counts`],
    /// and the union footprint via [`MsBfsScratch::union_footprint`] —
    /// all on demand, so the traversal itself pays for no recovery a
    /// caller does not ask for.
    ///
    /// Duplicate sources are legal: their lanes evolve identically
    /// (each lane is an independent traversal — sharing is an
    /// implementation property, never a semantic one).
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() > MAX_GROUP_SOURCES` or the scratch was
    /// created for fewer nodes than `g` has.
    pub fn visit_h_vicinity_multi<G: Adjacency>(&mut self, g: &G, sources: &[NodeId], h: u32) {
        self.visit_h_vicinity_multi_budgeted(g, sources, h, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// [`MsBfsScratch::visit_h_vicinity_multi`] under a [`Budget`],
    /// checked once per frontier level. On exhaustion the traversal
    /// stops early — the frontier invariants are restored so the
    /// scratch stays reusable, but the lane words are partial and the
    /// typed [`Interrupted`] error tells the caller to discard them.
    pub fn visit_h_vicinity_multi_budgeted<G: Adjacency>(
        &mut self,
        g: &G,
        sources: &[NodeId],
        h: u32,
        budget: &Budget,
    ) -> Result<(), Interrupted> {
        let n = g.num_nodes();
        assert!(
            sources.len() <= MAX_GROUP_SOURCES,
            "at most {MAX_GROUP_SOURCES} sources per group, got {}",
            sources.len()
        );
        assert!(
            self.seen.len() >= n,
            "MsBfsScratch sized for {} nodes, graph has {}",
            self.seen.len(),
            n
        );
        // One straight memset: O(|V|/64) per source at full
        // occupancy — the same fixed cost per search the bitset kernel
        // pays for its bitmap clear. `front` and `next` are already
        // all-zero here by invariant: every level clears the frontier
        // words it consumed, and the tail frontier is cleared on exit.
        self.seen.fill(0);
        debug_assert!(self.front.iter().all(|&w| w == 0), "front left dirty");
        debug_assert!(self.next.iter().all(|&w| w == 0), "next left dirty");
        self.front_nodes.clear();
        self.num_lanes = sources.len();
        self.num_nodes = n;

        for (lane, &s) in sources.iter().enumerate() {
            debug_assert!((s as usize) < n, "source {s} out of range");
            let bit = 1u64 << lane;
            if self.seen[s as usize] == 0 {
                self.front_nodes.push(s);
            }
            self.seen[s as usize] |= bit;
            self.front[s as usize] |= bit;
        }

        let mut depth = 0u32;
        while depth < h && !self.front_nodes.is_empty() {
            // An exhausted budget breaks here, before the level is
            // expanded: the tail-frontier cleanup below then restores
            // the all-zero `front`/`next` invariant exactly as a
            // completed traversal would.
            if budget.is_exhausted() {
                break;
            }
            depth += 1;
            let front_nodes = std::mem::take(&mut self.front_nodes);
            if depth == h {
                // Final level: no lane travels further, so the OR
                // stores need no novelty test and no frontier
                // bookkeeping — branch-free, like the single-source
                // bitset kernel's deepest level.
                for &u in &front_nodes {
                    let lanes = self.front[u as usize];
                    g.for_each_neighbor(u, |v| {
                        self.seen[v as usize] |= lanes;
                    });
                }
                self.front_nodes = front_nodes;
                break;
            }
            self.next_nodes.clear();
            for &u in &front_nodes {
                let lanes = self.front[u as usize];
                g.for_each_neighbor(u, |v| {
                    let new = lanes & !self.seen[v as usize];
                    if new != 0 {
                        if self.next[v as usize] == 0 {
                            self.next_nodes.push(v);
                        }
                        self.next[v as usize] |= new;
                        self.seen[v as usize] |= new;
                    }
                });
            }
            // Clear the consumed frontier words, then promote the next
            // level: after the swap, the former `front` array (now all
            // zero again) becomes the blank `next` of the new level.
            for &u in &front_nodes {
                self.front[u as usize] = 0;
            }
            self.front_nodes = front_nodes;
            std::mem::swap(&mut self.front, &mut self.next);
            std::mem::swap(&mut self.front_nodes, &mut self.next_nodes);
        }
        // Restore the all-zero invariant for the tail frontier (the
        // final level's input, or the sources when `h = 0`) so the
        // next traversal can skip two of its three memsets.
        let front_nodes = std::mem::take(&mut self.front_nodes);
        for &u in &front_nodes {
            self.front[u as usize] = 0;
        }
        self.front_nodes = front_nodes;
        budget.check()
    }

    /// The lanes that reached node `v` in the most recent traversal
    /// (bit `s` set ⇔ source lane `s` reached `v`).
    #[inline]
    pub fn reached_lanes(&self, v: NodeId) -> u64 {
        self.seen[v as usize]
    }

    /// The per-node lane words of the most recent traversal — word `v`
    /// is [`MsBfsScratch::reached_lanes`]`(v)`. Covers exactly that
    /// traversal's graph.
    #[inline]
    pub fn lane_words(&self) -> &[u64] {
        &self.seen[..self.num_nodes]
    }

    /// Number of distinct nodes reached by any lane in the most recent
    /// traversal (the union footprint) — one sequential scan of the
    /// lane words, computed only when asked (the density executors
    /// never need it; diagnostics and tests do).
    pub fn union_footprint(&self) -> usize {
        self.lane_words().iter().filter(|&&w| w != 0).count()
    }

    /// Per-lane vicinity sizes of the most recent traversal:
    /// `sizes[s] = |V^h_{sources[s]}|`. `sizes` must hold one slot per
    /// source; slots are overwritten.
    ///
    /// One sequential sweep over the lane words through
    /// [`add_lane_popcounts`] — `O(1)` amortized per word via vertical
    /// carry-save counters, however many lanes share the word, where a
    /// naive bit loop would pay one increment per (node, lane)
    /// incidence (`Σ_s |V^h_s|`, ruinous exactly when sharing is
    /// high — the case this kernel exists for).
    pub fn lane_sizes(&self, sizes: &mut [u32]) {
        assert_eq!(sizes.len(), self.num_lanes, "one size slot per source");
        sizes.fill(0);
        add_lane_popcounts(self.lane_words(), sizes);
    }

    /// Per-lane membership counts against one node set:
    /// `counts[s] = |members ∩ V^h_{sources[s]}|`. `members` must be
    /// duplicate-free (an event's occurrence list); `counts` holds one
    /// slot per source and is overwritten.
    ///
    /// Reading only the event's members makes scoring an event against
    /// all 64 lanes `O(|V_e|)` word reads — independent of vicinity
    /// size, unlike a sweep over the visited footprint.
    pub fn lane_member_counts(&self, members: &[NodeId], counts: &mut [u32]) {
        assert_eq!(counts.len(), self.num_lanes, "one count slot per source");
        counts.fill(0);
        for &m in members {
            let mut lanes = self.seen[m as usize];
            while lanes != 0 {
                counts[lanes.trailing_zeros() as usize] += 1;
                lanes &= lanes - 1;
            }
        }
    }
}

/// Positional (per-bit-lane) popcount over a word slice:
/// `counts[s] += |{w ∈ words : bit s of w set}|`, with `counts`
/// covering at least the highest set lane.
///
/// Implementation: 64 vertical binary counters held in eight *level
/// words* (bit `s` of level `l` is bit `l` of lane `s`'s running
/// tally), advanced by carry-save addition — a word is "added" by
/// rippling it through the levels with AND/XOR, which terminates after
/// the first carry-free level (`O(1)` amortized, like incrementing a
/// binary counter). Levels are flushed into `counts` every 255 inputs
/// (the 8-bit capacity), so the per-bit extraction cost amortizes to
/// nothing. Zero words are skipped.
pub fn add_lane_popcounts(words: &[u64], counts: &mut [u32]) {
    let mut levels = [0u64; 8];
    let mut in_block = 0u32;
    for &w in words {
        if w == 0 {
            continue;
        }
        let mut carry = w;
        for level in levels.iter_mut() {
            let c = *level & carry;
            *level ^= carry;
            carry = c;
            if carry == 0 {
                break;
            }
        }
        debug_assert_eq!(carry, 0, "flush cadence bounds the counters");
        in_block += 1;
        if in_block == 255 {
            flush_lane_counters(&mut levels, counts);
            in_block = 0;
        }
    }
    flush_lane_counters(&mut levels, counts);
}

/// Drain carry-save level words into per-lane counts.
fn flush_lane_counters(levels: &mut [u64; 8], counts: &mut [u32]) {
    for (l, word) in levels.iter_mut().enumerate() {
        let mut bits = *word;
        while bits != 0 {
            counts[bits.trailing_zeros() as usize] += 1u32 << l;
            bits &= bits - 1;
        }
        *word = 0;
    }
}

/// Word-level multi-mask intersection counting — the fused-density
/// primitive: `counts[m] += popcount(visited[w] & masks[m][w])` for
/// every word `w` and mask `m`, sweeping the visited bitmap **once**
/// (word-major, all masks per word) so a single `h`-hop BFS can be
/// scored against M event masks without re-walking the bitmap M times.
///
/// `visited` and every mask must be word slices over the same id space
/// (equal length, as produced by `BfsScratch::visited_words` and
/// `NodeMask::words` in `tesc_events`); `counts` must have one slot
/// per mask and is accumulated into, not cleared — zero it first for
/// absolute counts. Zero visited words are skipped, so sparse
/// vicinities cost proportionally less.
pub fn multi_mask_counts(visited: &[u64], masks: &[&[u64]], counts: &mut [u32]) {
    debug_assert_eq!(masks.len(), counts.len(), "one count slot per mask");
    debug_assert!(
        masks.iter().all(|m| m.len() == visited.len()),
        "masks and visited bitmap must cover the same id space"
    );
    for (w, &vw) in visited.iter().enumerate() {
        if vw == 0 {
            continue;
        }
        for (m, words) in masks.iter().enumerate() {
            counts[m] += (vw & words[w]).count_ones();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{from_edges, CsrGraph};

    /// Path 0-1-2-3-4-5.
    fn path6() -> CsrGraph {
        from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn single_source_h_limits_depth() {
        let g = path6();
        let mut s = BfsScratch::new(g.num_nodes());
        let mut v1 = s.h_vicinity(&g, 0, 1);
        v1.sort_unstable();
        assert_eq!(v1, vec![0, 1]);
        let mut v3 = s.h_vicinity(&g, 0, 3);
        v3.sort_unstable();
        assert_eq!(v3, vec![0, 1, 2, 3]);
        let mut vall = s.h_vicinity(&g, 0, 10);
        vall.sort_unstable();
        assert_eq!(vall, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn h_zero_returns_only_sources() {
        let g = path6();
        let mut s = BfsScratch::new(g.num_nodes());
        assert_eq!(s.h_vicinity(&g, 2, 0), vec![2]);
    }

    #[test]
    fn depths_are_shortest_distances() {
        // Diamond: 0-1, 0-2, 1-3, 2-3; distance(0,3) = 2 via two routes.
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut s = BfsScratch::new(4);
        let mut depths = vec![u32::MAX; 4];
        s.visit_h_vicinity(&g, &[0], 5, |v, d| depths[v as usize] = d);
        assert_eq!(depths, vec![0, 1, 1, 2]);
    }

    #[test]
    fn batch_bfs_equals_union_of_single_source() {
        let g = from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (3, 4),
            ],
        );
        let sources = [0u32, 6];
        let mut s = BfsScratch::new(9);
        for h in 0..4 {
            let mut batch = Vec::new();
            s.h_vicinity_into(&g, &sources, h, &mut batch);
            batch.sort_unstable();
            let mut union: Vec<NodeId> = sources
                .iter()
                .flat_map(|&src| s.h_vicinity(&g, src, h))
                .collect();
            union.sort_unstable();
            union.dedup();
            assert_eq!(batch, union, "h={h}");
        }
    }

    #[test]
    fn duplicate_sources_visited_once() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        let mut count = 0;
        s.visit_h_vicinity(&g, &[3, 3, 3], 0, |_, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn each_node_visited_exactly_once() {
        let g = from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let mut s = BfsScratch::new(5);
        let mut seen = vec![0u32; 5];
        s.visit_h_vicinity(&g, &[0], 10, |v, _| seen[v as usize] += 1);
        assert_eq!(seen, vec![1; 5]);
    }

    #[test]
    fn scratch_reuse_isolated_between_searches() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        let a = s.vicinity_size(&g, 0, 1);
        let b = s.vicinity_size(&g, 5, 1);
        let c = s.vicinity_size(&g, 0, 1);
        assert_eq!(a, 2);
        assert_eq!(b, 2);
        assert_eq!(a, c, "reuse must not leak visited marks");
    }

    #[test]
    fn vicinity_size_counts_self() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        assert_eq!(s.vicinity_size(&g, 2, 0), 1);
        assert_eq!(s.vicinity_size(&g, 2, 1), 3);
        assert_eq!(s.vicinity_size(&g, 2, 2), 5);
    }

    #[test]
    fn count_matching_density_pieces() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        // "Event" on odd nodes.
        let (m, t) = s.count_matching(&g, 2, 2, |v| v % 2 == 1);
        // V^2_2 = {0,1,2,3,4}; odd members = {1,3}.
        assert_eq!((m, t), (2, 5));
    }

    #[test]
    fn vicinity_contains_respects_h() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        assert!(!s.vicinity_contains(&g, 0, 2, |v| v == 4));
        assert!(s.vicinity_contains(&g, 0, 4, |v| v == 4));
    }

    #[test]
    fn disconnected_components_not_reached() {
        let g = from_edges(5, &[(0, 1), (2, 3)]);
        let mut s = BfsScratch::new(5);
        let mut v = s.h_vicinity(&g, 0, 9);
        v.sort_unstable();
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn epoch_wraparound_resets_cleanly() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        // Force the epoch to the brink, then verify searches still work.
        s.epoch = u32::MAX - 1;
        assert_eq!(s.vicinity_size(&g, 0, 1), 2); // epoch -> MAX... begin bumps to MAX
        assert_eq!(s.vicinity_size(&g, 0, 1), 2); // wraps: stamps cleared
        assert_eq!(s.vicinity_size(&g, 5, 2), 3);
    }

    #[test]
    #[should_panic(expected = "BfsScratch sized for")]
    fn undersized_scratch_panics() {
        let g = path6();
        let mut s = BfsScratch::new(3);
        let _ = s.vicinity_size(&g, 0, 1);
    }

    #[test]
    fn visited_count_matches_collected() {
        let g = from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 6)]);
        let mut s = BfsScratch::new(7);
        let mut collected = Vec::new();
        let n = s.visit_h_vicinity(&g, &[0], 2, |v, _| collected.push(v));
        assert_eq!(n, collected.len());
    }

    /// Nodes set in the scratch's visited bitmap, ascending.
    fn bitmap_nodes(s: &BfsScratch) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (w, &word) in s.visited_words().iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                out.push((w * 64) as NodeId + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        out
    }

    /// Scalar/bitset agreement on one search: same set, same count,
    /// same per-depth tallies.
    fn assert_kernels_agree(g: &CsrGraph, s: &mut BfsScratch, sources: &[NodeId], h: u32) {
        let mut scalar_nodes = Vec::new();
        let mut scalar_levels = vec![0u32; h as usize + 1];
        let scalar_n = s.visit_h_vicinity(g, sources, h, |v, d| {
            scalar_nodes.push(v);
            scalar_levels[d as usize] += 1;
        });
        scalar_nodes.sort_unstable();
        let bitset_n = s.visit_h_vicinity_bitset(g, sources, h);
        assert_eq!(scalar_n, bitset_n, "visited counts differ");
        assert_eq!(scalar_nodes, bitmap_nodes(s), "visited sets differ");
        for (d, &c) in s.level_counts().iter().enumerate() {
            assert_eq!(scalar_levels[d], c, "depth {d} count differs");
        }
        for (d, &c) in scalar_levels
            .iter()
            .enumerate()
            .skip(s.level_counts().len())
        {
            assert_eq!(c, 0, "scalar reached depth {d}");
        }
    }

    #[test]
    fn bitset_matches_scalar_on_paths_and_diamonds() {
        let g = path6();
        let mut s = BfsScratch::new(6);
        for h in 0..6 {
            assert_kernels_agree(&g, &mut s, &[0], h);
            assert_kernels_agree(&g, &mut s, &[2], h);
            assert_kernels_agree(&g, &mut s, &[0, 5], h);
        }
        let d = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut s = BfsScratch::new(4);
        assert_kernels_agree(&d, &mut s, &[0], 2);
    }

    #[test]
    fn bitset_duplicate_sources_and_isolated_nodes() {
        let g = from_edges(130, &[(0, 1), (2, 3)]); // mostly isolated, >64 nodes
        let mut s = BfsScratch::new(130);
        assert_kernels_agree(&g, &mut s, &[3, 3, 3], 2);
        assert_kernels_agree(&g, &mut s, &[129], 4); // isolated source
        assert_eq!(s.visit_h_vicinity_bitset(&g, &[129], 4), 1);
        assert_eq!(s.level_counts(), &[1]);
    }

    #[test]
    fn bitset_star_whole_graph_in_one_hop() {
        // Frontier = everything at h = 1: exercises the final-level
        // blind-OR path on a word-boundary-straddling graph.
        let n = 100usize;
        let edges: Vec<(NodeId, NodeId)> = (1..n as NodeId).map(|v| (0, v)).collect();
        let g = from_edges(n, &edges);
        let mut s = BfsScratch::new(n);
        assert_kernels_agree(&g, &mut s, &[0], 1);
        assert_eq!(s.visit_h_vicinity_bitset(&g, &[0], 1), n);
        // From a leaf, h = 2 covers everything via the hub.
        assert_kernels_agree(&g, &mut s, &[17], 2);
    }

    #[test]
    fn bitset_bottom_up_levels_match_scalar() {
        // A dense blob where mid-levels trip the α-threshold: complete
        // bipartite-ish core plus a tail, searched to h = 3 so the fat
        // frontier is *not* the final level.
        let mut edges = Vec::new();
        for u in 0..40u32 {
            for v in 40..80u32 {
                edges.push((u, v));
            }
        }
        edges.extend([(0, 80), (80, 81), (81, 82)]);
        let g = from_edges(83, &edges);
        let mut s = BfsScratch::new(83);
        for h in 0..5 {
            assert_kernels_agree(&g, &mut s, &[82], h);
            assert_kernels_agree(&g, &mut s, &[0], h);
        }
    }

    #[test]
    fn bitset_scratch_reuse_and_mixed_kernels() {
        // Interleave scalar and bitset searches on one scratch; also
        // shrink to a smaller graph so stale high words are ignored.
        let big = from_edges(200, &[(0, 1), (1, 2), (198, 199)]);
        let small = path6();
        let mut s = BfsScratch::new(200);
        assert_eq!(s.visit_h_vicinity_bitset(&big, &[198], 1), 2);
        assert_eq!(s.vicinity_size(&big, 0, 1), 2);
        assert_eq!(s.visit_h_vicinity_bitset(&small, &[0], 2), 3);
        assert_eq!(s.visited_words().len(), 1, "covers the small graph only");
        assert_eq!(bitmap_nodes(&s), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "BfsScratch sized for")]
    fn undersized_scratch_panics_bitset() {
        let g = path6();
        let mut s = BfsScratch::new(3);
        let _ = s.visit_h_vicinity_bitset(&g, &[0], 1);
    }

    #[test]
    fn kernel_selection_resolves() {
        let sparse = from_edges(4096, &[(0, 1), (2, 3)]);
        assert!(
            !BfsKernel::Auto.use_bitset(&sparse, 1),
            "sparse stays scalar"
        );
        let dense = from_edges(
            64,
            &(0..64u32)
                .flat_map(|u| (u + 1..64).map(move |v| (u, v)))
                .collect::<Vec<_>>(),
        );
        assert!(BfsKernel::Auto.use_bitset(&dense, 2), "dense goes bitset");
        assert!(!BfsKernel::Scalar.use_bitset(&dense, 2));
        assert!(BfsKernel::Bitset.use_bitset(&sparse, 1));
        assert!(!BfsKernel::Auto.use_bitset(&from_edges(0, &[]), 2));
        assert_eq!(BfsKernel::Auto.to_string(), "auto");
    }

    /// Per-lane reached sets of the most recent multi-source search.
    fn lane_sets(s: &MsBfsScratch, lanes: usize) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); lanes];
        for (v, &word) in s.lane_words().iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out[w.trailing_zeros() as usize].push(v as NodeId);
                w &= w - 1;
            }
        }
        out
    }

    fn assert_multi_matches_scalar(g: &CsrGraph, sources: &[NodeId], h: u32) {
        let mut ms = MsBfsScratch::new(g.num_nodes());
        let mut s = BfsScratch::new(g.num_nodes());
        ms.visit_h_vicinity_multi(g, sources, h);
        let sets = lane_sets(&ms, sources.len());
        let mut sizes = vec![0u32; sources.len()];
        ms.lane_sizes(&mut sizes);
        for (lane, &src) in sources.iter().enumerate() {
            let mut want = s.h_vicinity(g, src, h);
            want.sort_unstable();
            assert_eq!(sets[lane], want, "lane {lane} (source {src}), h = {h}");
            assert_eq!(sizes[lane] as usize, want.len(), "lane {lane} size");
        }
    }

    #[test]
    fn multi_source_lanes_equal_independent_single_source() {
        let g = path6();
        for h in 0..6 {
            assert_multi_matches_scalar(&g, &[0], h);
            assert_multi_matches_scalar(&g, &[0, 5], h);
            assert_multi_matches_scalar(&g, &[0, 2, 2, 5], h); // duplicates
        }
        let d = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_multi_matches_scalar(&d, &[0, 3], 2);
        // Disconnected components + isolated sources straddling words.
        let sparse = from_edges(130, &[(0, 1), (2, 3), (64, 65)]);
        assert_multi_matches_scalar(&sparse, &[0, 2, 64, 129], 4);
    }

    #[test]
    fn multi_source_full_word_group() {
        // 64 sources (a full lane word) on a graph where vicinities
        // overlap heavily — the sharing case the kernel exists for.
        let n = 200usize;
        let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId - 1).map(|v| (v, v + 1)).collect();
        let g = from_edges(n, &edges);
        let sources: Vec<NodeId> = (30..94).collect();
        assert_eq!(sources.len(), 64);
        for h in [0u32, 1, 3] {
            assert_multi_matches_scalar(&g, &sources, h);
        }
    }

    #[test]
    fn multi_source_scratch_reuse_resets_cleanly() {
        let g = path6();
        let mut ms = MsBfsScratch::new(6);
        ms.visit_h_vicinity_multi(&g, &[0, 5], 1);
        assert_eq!(ms.union_footprint(), 4);
        // A second, disjoint traversal must not see stale lanes.
        ms.visit_h_vicinity_multi(&g, &[2], 0);
        assert_eq!(ms.union_footprint(), 1);
        let mut sizes = [0u32];
        ms.lane_sizes(&mut sizes);
        assert_eq!(sizes, [1]);
        assert_eq!(ms.lane_words(), &[0, 0, 1, 0, 0, 0]);
        assert_eq!(ms.reached_lanes(0), 0, "previous footprint cleared");
        // And an h = 0 group leaves each lane on its own source only.
        ms.visit_h_vicinity_multi(&g, &[3, 3, 1], 0);
        assert_eq!(ms.reached_lanes(3), 0b011);
        assert_eq!(ms.reached_lanes(1), 0b100);
    }

    #[test]
    fn lane_member_counts_match_per_lane_intersections() {
        let g = from_edges(
            140,
            &[(0, 1), (1, 2), (2, 63), (63, 64), (64, 65), (65, 128)],
        );
        let mut ms = MsBfsScratch::new(140);
        let sources = [0u32, 63, 139];
        ms.visit_h_vicinity_multi(&g, &sources, 2);
        let members = [1u32, 64, 128, 139];
        let mut counts = vec![0u32; sources.len()];
        ms.lane_member_counts(&members, &mut counts);
        let mut s = BfsScratch::new(140);
        for (lane, &src) in sources.iter().enumerate() {
            let vic = s.h_vicinity(&g, src, 2);
            let want = members.iter().filter(|m| vic.contains(m)).count();
            assert_eq!(counts[lane] as usize, want, "lane {lane}");
        }
    }

    #[test]
    #[should_panic(expected = "at most 64 sources")]
    fn oversized_group_rejected() {
        let g = path6();
        let mut ms = MsBfsScratch::new(6);
        let sources = vec![0u32; 65];
        ms.visit_h_vicinity_multi(&g, &sources, 1);
    }

    #[test]
    #[should_panic(expected = "MsBfsScratch sized for")]
    fn undersized_multi_scratch_panics() {
        let g = path6();
        let mut ms = MsBfsScratch::new(3);
        ms.visit_h_vicinity_multi(&g, &[0], 1);
    }

    #[test]
    fn multi_source_kernel_selection() {
        let g = path6();
        assert!(BfsKernel::Multi.use_multi_source(&g, 1, 1));
        assert!(!BfsKernel::Scalar.use_multi_source(&g, 3, 10_000));
        assert!(!BfsKernel::Bitset.use_multi_source(&g, 3, 10_000));
        // Auto: enough sources AND the union footprint covers the
        // graph. On path6 any 16 sources at h ≥ 1 qualify…
        assert!(BfsKernel::Auto.use_multi_source(&g, 1, MULTI_MIN_SOURCES));
        assert!(!BfsKernel::Auto.use_multi_source(&g, 1, MULTI_MIN_SOURCES - 1));
        // …but tiny vicinity islands in a big sparse graph never do.
        let sparse = from_edges(100_000, &[(0, 1), (2, 3)]);
        assert!(!BfsKernel::Auto.use_multi_source(&sparse, 1, 300));
        assert!(!BfsKernel::Auto.use_multi_source(&from_edges(0, &[]), 1, 64));
        // Multi in a single-source context degrades to the bitset path.
        assert!(BfsKernel::Multi.use_bitset(&g, 1));
        assert_eq!(BfsKernel::Multi.to_string(), "multi");
    }

    #[test]
    fn exhausted_budget_interrupts_every_kernel_and_scratch_stays_reusable() {
        use crate::budget::Budget;
        let g = path6();
        let dead = Budget::with_deadline(std::time::Duration::ZERO);
        let live = Budget::with_deadline(std::time::Duration::from_secs(3600));

        let mut s = BfsScratch::new(6);
        assert!(s
            .visit_h_vicinity_budgeted(&g, &[0], 3, &dead, |_, _| {})
            .is_err());
        assert_eq!(
            s.visit_h_vicinity_budgeted(&g, &[0], 3, &live, |_, _| {}),
            Ok(4),
            "scalar scratch reusable after interruption, result exact"
        );
        assert!(s
            .visit_h_vicinity_bitset_budgeted(&g, &[0], 3, &dead)
            .is_err());
        assert_eq!(
            s.visit_h_vicinity_bitset_budgeted(&g, &[0], 3, &live),
            Ok(4)
        );

        let mut ms = MsBfsScratch::new(6);
        assert!(ms
            .visit_h_vicinity_multi_budgeted(&g, &[0, 5], 3, &dead)
            .is_err());
        // The frontier invariant must survive the early exit: the next
        // (unbudgeted) traversal debug-asserts front/next are all-zero
        // and must produce exact lane sets.
        assert_multi_matches_scalar(&g, &[0, 5], 3);
        ms.visit_h_vicinity_multi_budgeted(&g, &[0, 5], 3, &live)
            .expect("live budget");
        let mut sizes = [0u32; 2];
        ms.lane_sizes(&mut sizes);
        assert_eq!(sizes, [4, 4]);
    }

    #[test]
    fn add_lane_popcounts_matches_naive_bit_loop() {
        // > 255 words forces at least one mid-stream counter flush.
        let words: Vec<u64> = (0..700u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | ((i % 3 == 0) as u64))
            .collect();
        let mut naive = vec![0u32; 64];
        for &w in &words {
            for (s, slot) in naive.iter_mut().enumerate() {
                *slot += ((w >> s) & 1) as u32;
            }
        }
        let mut csa = vec![0u32; 64];
        add_lane_popcounts(&words, &mut csa);
        assert_eq!(naive, csa);
        // Accumulation contract: += , not overwrite.
        add_lane_popcounts(&words, &mut csa);
        assert_eq!(csa[0], 2 * naive[0]);
    }

    #[test]
    fn multi_mask_counts_matches_per_node_probes() {
        // 140 nodes spans 3 words; masks straddle word boundaries.
        let g = from_edges(
            140,
            &[
                (0, 1),
                (1, 2),
                (2, 63),
                (63, 64),
                (64, 65),
                (65, 128),
                (128, 139),
            ],
        );
        let mut s = BfsScratch::new(140);
        let mask_sets: Vec<Vec<NodeId>> = vec![
            vec![0, 63, 64, 139],
            vec![1, 2, 65, 128],
            vec![],
            (0..140).collect(),
        ];
        let to_words = |nodes: &[NodeId]| {
            let mut w = vec![0u64; 140usize.div_ceil(64)];
            for &v in nodes {
                w[v as usize / 64] |= 1 << (v % 64);
            }
            w
        };
        let word_sets: Vec<Vec<u64>> = mask_sets.iter().map(|m| to_words(m)).collect();
        for r in [0u32, 64, 139] {
            for h in 0..5u32 {
                let size = s.visit_h_vicinity_bitset(&g, &[r], h);
                let masks: Vec<&[u64]> = word_sets.iter().map(Vec::as_slice).collect();
                let mut counts = vec![0u32; masks.len()];
                s.visited_multi_mask_counts(&masks, &mut counts);
                // Reference: one membership probe per (visited node, mask).
                let mut visited = Vec::new();
                s.h_vicinity_into(&g, &[r], h, &mut visited);
                assert_eq!(visited.len(), size);
                for (m, nodes) in mask_sets.iter().enumerate() {
                    let expect = visited.iter().filter(|v| nodes.contains(v)).count();
                    assert_eq!(counts[m] as usize, expect, "r={r} h={h} mask {m}");
                }
            }
        }
        // Accumulation contract: counts are += , not overwritten.
        let _ = s.visit_h_vicinity_bitset(&g, &[0], 1);
        let masks: Vec<&[u64]> = word_sets[..1].iter().map(Vec::as_slice).collect();
        let mut counts = vec![100u32];
        multi_mask_counts(s.visited_words(), &masks, &mut counts);
        assert!(counts[0] >= 100);
    }
}
