//! Compact immutable CSR graph and its mutable builder.
//!
//! Design notes (following the paper's cost model, Sec. 4.4):
//!
//! * Node ids are `u32` — the paper's largest graph (Twitter, 20M nodes)
//!   fits comfortably, and halving the id width halves the adjacency
//!   footprint, which is what BFS-bound workloads are limited by.
//! * Adjacency is a single `Box<[u32]>` indexed by a `Box<[u64]>` offset
//!   array (`|V|+1` entries). Neighbor lists are sorted, enabling
//!   `O(log d)` edge queries.
//! * The graph is undirected and simple: every edge is stored in both
//!   endpoints' lists; self-loops and parallel edges are rejected or
//!   deduplicated at build time.

/// Node identifier (dense, `0..n`).
pub type NodeId = u32;

/// An immutable undirected simple graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `v`'s neighbor slice.
    offsets: Box<[u64]>,
    /// Concatenated, per-node-sorted adjacency.
    neighbors: Box<[NodeId]>,
}

impl CsrGraph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Does the undirected edge `{u, v}` exist? `O(log deg)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Probe the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Sum of degrees (`2|E|`), useful for average-degree reporting.
    #[inline]
    pub fn degree_sum(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// 64-bit structural fingerprint (FNV-1a over the CSR arrays),
    /// `O(|V| + |E|)`. Two graphs with equal fingerprints are the same
    /// graph for all practical purposes — used to pin density caches
    /// to a topology, where node/edge *counts* alone would collide
    /// (e.g. [`crate::perturb`] swaps edges count-neutrally).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(PRIME);
        };
        mix(self.num_nodes() as u64);
        for &o in self.offsets.iter() {
            mix(o);
        }
        for &v in self.neighbors.iter() {
            mix(v as u64);
        }
        h
    }

    /// Average degree `2|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.degree_sum() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Resident heap bytes of the CSR arrays (offset directory +
    /// adjacency), for memory reporting. Excludes the `size_of::<Self>`
    /// header — this is the part that scales with the graph.
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
    }

    /// Assemble a graph directly from finished CSR arrays.
    ///
    /// Crate-internal: callers ([`crate::compressed`] decode,
    /// [`crate::generators`] streaming builds) must uphold the CSR
    /// invariants — `offsets` is a non-decreasing prefix-sum array with
    /// `offsets[0] == 0` and `offsets[n] == neighbors.len()`, each
    /// per-node range is strictly sorted, in-range, self-loop-free and
    /// symmetric. Debug builds spot-check the cheap ones.
    pub(crate) fn from_parts(offsets: Box<[u64]>, neighbors: Box<[NodeId]>) -> CsrGraph {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        CsrGraph { offsets, neighbors }
    }

    /// Rebuild a [`GraphBuilder`] seeded with this graph's edges — the
    /// escape hatch for mutation (used by [`crate::perturb`]).
    pub fn to_builder(&self) -> GraphBuilder {
        let mut b = GraphBuilder::new(self.num_nodes());
        for (u, v) in self.edges() {
            b.add_edge(u, v);
        }
        b
    }

    /// New graph with `extra` edges added (duplicates of existing
    /// edges are no-ops). This is the snapshot-ingestion primitive:
    /// the receiver is untouched, so readers holding it keep a
    /// consistent view while the returned graph becomes the next
    /// version. Cost is a full `O(|V| + |E|)` CSR rebuild — cheap next
    /// to the vicinity-index refresh that follows it in the ingestion
    /// path.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints (validate with
    /// [`CsrGraph::check_edges`] first on untrusted input).
    pub fn with_edges(&self, extra: &[(NodeId, NodeId)]) -> CsrGraph {
        let mut b = self.to_builder();
        b.extend_edges(extra.iter().copied());
        b.build()
    }

    /// The same graph under an id permutation: node `v` of the result
    /// is node `map.to_old(v)` of the receiver, with every adjacency
    /// translated (and re-sorted, preserving the sorted-neighbors
    /// invariant). The result is isomorphic — degrees, vicinity sizes
    /// and every other set cardinality carry over elementwise — which
    /// is what lets [`crate::relabel`]'s locality orders speed BFS up
    /// without changing any count.
    ///
    /// # Panics
    ///
    /// Panics if the permutation covers a different node count.
    pub fn relabeled(&self, map: &crate::relabel::Relabeling) -> CsrGraph {
        let n = self.num_nodes();
        assert_eq!(
            map.len(),
            n,
            "relabeling covers {} ids, graph has {n} nodes",
            map.len()
        );
        let mut offsets = vec![0u64; n + 1];
        for v_new in 0..n {
            offsets[v_new + 1] = offsets[v_new] + self.degree(map.to_old(v_new as NodeId)) as u64;
        }
        let mut neighbors = vec![0 as NodeId; self.neighbors.len()];
        for v_new in 0..n {
            let (lo, hi) = (offsets[v_new] as usize, offsets[v_new + 1] as usize);
            let row = &mut neighbors[lo..hi];
            for (slot, &nb) in row
                .iter_mut()
                .zip(self.neighbors(map.to_old(v_new as NodeId)))
            {
                *slot = map.to_new(nb);
            }
            row.sort_unstable();
        }
        CsrGraph {
            offsets: offsets.into_boxed_slice(),
            neighbors: neighbors.into_boxed_slice(),
        }
    }

    /// Validate an edge delta without applying it: every endpoint in
    /// range and no self-loops. Returns the first offending edge.
    pub fn check_edges(&self, edges: &[(NodeId, NodeId)]) -> Result<(), EdgeError> {
        let n = self.num_nodes();
        for &(u, v) in edges {
            if u == v {
                return Err(EdgeError::SelfLoop { node: u });
            }
            if u as usize >= n || v as usize >= n {
                return Err(EdgeError::OutOfRange {
                    edge: (u, v),
                    num_nodes: n,
                });
            }
        }
        Ok(())
    }
}

/// Why an edge delta is invalid for a given graph
/// (see [`CsrGraph::check_edges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeError {
    /// Both endpoints are the same node.
    SelfLoop {
        /// The looping node.
        node: NodeId,
    },
    /// An endpoint is not a node of the graph.
    OutOfRange {
        /// The offending edge.
        edge: (NodeId, NodeId),
        /// The graph's node count.
        num_nodes: usize,
    },
}

impl std::fmt::Display for EdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            EdgeError::OutOfRange { edge, num_nodes } => write!(
                f,
                "edge ({},{}) out of range for {num_nodes} nodes",
                edge.0, edge.1
            ),
        }
    }
}

impl std::error::Error for EdgeError {}

/// Mutable edge-list accumulator that [`GraphBuilder::build`]s into a
/// [`CsrGraph`].
///
/// Self-loops are rejected eagerly (panic — they are always a bug in
/// this codebase); parallel edges are deduplicated at build time.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    /// Normalized `(min, max)` pairs; may contain duplicates until build.
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Builder for a graph over `num_nodes` nodes (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= u32::MAX as usize,
            "node ids are u32; {num_nodes} nodes do not fit"
        );
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Builder with preallocated edge capacity.
    pub fn with_capacity(num_nodes: usize, edge_capacity: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.edges.reserve(edge_capacity);
        b
    }

    /// Number of nodes this builder was created for.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added so far (before deduplication).
    #[inline]
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add the undirected edge `{u, v}`. Duplicates are allowed and
    /// removed at build time.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert_ne!(u, v, "self-loop at node {u}");
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u},{v}) out of range for {} nodes",
            self.num_nodes
        );
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Add every edge from an iterator.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (NodeId, NodeId)>) {
        for (u, v) in it {
            self.add_edge(u, v);
        }
    }

    /// Check whether `{u, v}` has been added (linear scan — intended for
    /// tests and small builders; large-scale generators use their own
    /// membership structures).
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = (u.min(v), u.max(v));
        self.edges.contains(&key)
    }

    /// Finalize into a CSR graph: sort, dedup, count, fill.
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.num_nodes;
        let mut degrees = vec![0u64; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }

        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degrees[v];
        }

        let total = offsets[n] as usize;
        let mut neighbors = vec![0 as NodeId; total];
        // `cursor[v]` = next write slot in v's range.
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Edges were emitted in sorted (u, v) order, so each node's
        // lower-id neighbors arrive sorted, but the mix of "as source"
        // and "as target" writes can interleave out of order; sort each
        // range to establish the invariant.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            neighbors[lo..hi].sort_unstable();
        }

        CsrGraph {
            offsets: offsets.into_boxed_slice(),
            neighbors: neighbors.into_boxed_slice(),
        }
    }
}

/// Build a CSR graph from a flat `[u0, v0, u1, v1, ...]` endpoint
/// array of **distinct, loop-free, in-range** edges.
///
/// This is the streaming path used by the large-scale generators: a
/// generator that can guarantee its edges are already unique skips
/// [`GraphBuilder`]'s sort + dedup pass *and* its second copy of the
/// edge list, so peak heap stays at the endpoint array plus the final
/// CSR arrays (~16 B/edge) instead of ~24 B/edge. The invariants are
/// the caller's contract; they are `debug_assert`ed here.
pub(crate) fn from_endpoint_pairs(num_nodes: usize, endpoints: &[NodeId]) -> CsrGraph {
    debug_assert!(endpoints.len().is_multiple_of(2), "endpoints come in pairs");
    let mut degrees = vec![0u32; num_nodes];
    for &v in endpoints {
        degrees[v as usize] += 1;
    }
    let mut offsets = vec![0u64; num_nodes + 1];
    for v in 0..num_nodes {
        offsets[v + 1] = offsets[v] + u64::from(degrees[v]);
    }
    let mut neighbors = vec![0 as NodeId; endpoints.len()];
    // Reuse `degrees` as the per-node write cursor (now counting up
    // from each node's offset) rather than allocating another array.
    degrees.iter_mut().for_each(|d| *d = 0);
    let mut cursor = degrees;
    for pair in endpoints.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        debug_assert_ne!(u, v, "self-loop at node {u}");
        neighbors[(offsets[u as usize] + u64::from(cursor[u as usize])) as usize] = v;
        cursor[u as usize] += 1;
        neighbors[(offsets[v as usize] + u64::from(cursor[v as usize])) as usize] = u;
        cursor[v as usize] += 1;
    }
    drop(cursor);
    for v in 0..num_nodes {
        let range = &mut neighbors[offsets[v] as usize..offsets[v + 1] as usize];
        range.sort_unstable();
        debug_assert!(
            range.windows(2).all(|w| w[0] < w[1]),
            "duplicate edge incident to node {v}"
        );
    }
    CsrGraph {
        offsets: offsets.into_boxed_slice(),
        neighbors: neighbors.into_boxed_slice(),
    }
}

/// Build a graph directly from an edge list (test/example convenience).
pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(num_nodes, edges.len());
    b.extend_edges(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 2-0 triangle; 2-3-4 tail.
        from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.degree_sum(), 10);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        for (u, v) in g.edges() {
            assert!(g.neighbors(u).contains(&v));
            assert!(g.neighbors(v).contains(&u));
        }
        for v in g.nodes() {
            let ns = g.neighbors(v);
            assert!(
                ns.windows(2).all(|w| w[0] < w[1]),
                "node {v} not sorted/dedup"
            );
        }
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(0, 4));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once_ordered() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn isolated_nodes_supported() {
        let g = from_edges(4, &[(0, 1)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(3), &[] as &[NodeId]);
    }

    #[test]
    fn empty_graph() {
        let g = from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn to_builder_round_trips() {
        let g = triangle_plus_tail();
        let g2 = g.to_builder().build();
        assert_eq!(g, g2);
    }

    #[test]
    fn with_edges_adds_without_mutating_receiver() {
        let g = triangle_plus_tail();
        let g2 = g.with_edges(&[(0, 4), (0, 1)]); // one new, one duplicate
        assert_eq!(g.num_edges(), 5, "receiver untouched");
        assert_eq!(g2.num_edges(), 6);
        assert!(g2.has_edge(0, 4));
        assert_eq!(
            g2,
            from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (0, 4)])
        );
    }

    #[test]
    fn fingerprint_distinguishes_count_equal_graphs() {
        // Same node and edge counts, different topology.
        let g1 = from_edges(4, &[(0, 1), (2, 3)]);
        let g2 = from_edges(4, &[(0, 2), (1, 3)]);
        assert_ne!(g1.fingerprint(), g2.fingerprint());
        assert_eq!(g1.fingerprint(), g1.clone().fingerprint());
        assert_eq!(
            g1.fingerprint(),
            g1.to_builder().build().fingerprint(),
            "rebuild-stable"
        );
    }

    #[test]
    fn check_edges_catches_bad_deltas() {
        let g = triangle_plus_tail();
        assert_eq!(g.check_edges(&[(0, 4), (1, 3)]), Ok(()));
        assert_eq!(
            g.check_edges(&[(2, 2)]),
            Err(EdgeError::SelfLoop { node: 2 })
        );
        let err = g.check_edges(&[(0, 9)]).unwrap_err();
        assert_eq!(
            err,
            EdgeError::OutOfRange {
                edge: (0, 9),
                num_nodes: 5
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn builder_contains_edge_is_order_insensitive() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1);
        assert!(b.contains_edge(1, 2));
        assert!(b.contains_edge(2, 1));
        assert!(!b.contains_edge(0, 1));
    }
}
