//! The [`Adjacency`] abstraction every BFS kernel runs against.
//!
//! The density hot path only ever *streams* a node's sorted neighbor
//! list — it never indexes into the middle of one. That access pattern
//! is the whole contract, so the kernels ([`crate::bfs`]), the
//! vicinity index ([`crate::vicinity`]) and the locality relabeling
//! ([`crate::relabel`]) are generic over this trait instead of the
//! concrete [`CsrGraph`]. Two implementations exist:
//!
//! * [`CsrGraph`] — plain CSR; `neighbors_iter` is a slice iterator,
//!   so the generic kernels compile to exactly the code they had when
//!   they took `&CsrGraph` directly (asserted by the bit-identity
//!   suite in `tests/kernels.rs`).
//! * [`crate::compressed::CompressedCsr`] — delta-encoded,
//!   bit-packed adjacency; `neighbors_iter` is a streaming decoder
//!   that never materializes a row, and `for_each_neighbor` is its
//!   branch-free internal-iteration fast path.
//!
//! All methods are reads over immutable state; the `Sync + Send`
//! supertraits are what let one graph instance back every thread of a
//! batch run (see [`crate::pool`]).

use crate::csr::{CsrGraph, NodeId};
use crate::relabel::Relabeling;

/// An immutable undirected graph whose per-node sorted neighbor lists
/// can be streamed. See the [module docs](self) for the contract.
///
/// Implementations must describe a *simple* undirected graph with
/// `num_nodes() ≤ u32::MAX` nodes: `neighbors_iter(v)` yields `v`'s
/// neighbors in strictly ascending id order, exactly `degree(v)` of
/// them, all `< num_nodes()`.
pub trait Adjacency: Sync + Send {
    /// Number of nodes `|V|`.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges `|E|`.
    fn num_edges(&self) -> usize;

    /// Degree of `v`.
    fn degree(&self, v: NodeId) -> usize;

    /// Sum of all degrees (`2|E|`), precomputed — the bitset kernel's
    /// direction heuristic reads it every level.
    fn degree_sum(&self) -> u64;

    /// 64-bit structural fingerprint of the *plain CSR content* this
    /// graph represents (see [`CsrGraph::fingerprint`]). Equal
    /// fingerprints ⇒ identical topology, regardless of encoding —
    /// the invariant that lets density caches and relabeled
    /// substrates built against one encoding be pinned to the other.
    fn fingerprint(&self) -> u64;

    /// Estimated resident heap bytes of the adjacency structure
    /// (directory + neighbor storage), for memory reporting.
    fn resident_bytes(&self) -> usize;

    /// Stream `v`'s neighbors in strictly ascending id order.
    fn neighbors_iter(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_;

    /// Internal-iteration variant of [`neighbors_iter`]: call `f(w)`
    /// for each neighbor of `v`, ascending. The BFS kernels' hot loops
    /// use this so an encoding can run its tightest decode loop
    /// (chunk-level constants hoisted, no per-item iterator state);
    /// the default just drains `neighbors_iter`.
    ///
    /// [`neighbors_iter`]: Adjacency::neighbors_iter
    #[inline]
    fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        for w in self.neighbors_iter(v) {
            f(w);
        }
    }

    /// The isomorphic twin of this graph under `map`, in the same
    /// encoding (used by [`crate::relabel::RelabeledGraph::build`]).
    fn relabeled_twin(&self, map: &Relabeling) -> Self
    where
        Self: Sized;

    /// Average degree `2|E| / |V|`.
    fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.degree_sum() as f64 / self.num_nodes() as f64
        }
    }
}

impl Adjacency for CsrGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        CsrGraph::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn degree_sum(&self) -> u64 {
        CsrGraph::degree_sum(self)
    }

    #[inline]
    fn fingerprint(&self) -> u64 {
        CsrGraph::fingerprint(self)
    }

    #[inline]
    fn resident_bytes(&self) -> usize {
        CsrGraph::resident_bytes(self)
    }

    #[inline]
    fn neighbors_iter(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(v).iter().copied()
    }

    #[inline]
    fn relabeled_twin(&self, map: &Relabeling) -> Self {
        self.relabeled(map)
    }

    #[inline]
    fn average_degree(&self) -> f64 {
        CsrGraph::average_degree(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    fn wheel() -> CsrGraph {
        from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)])
    }

    #[test]
    fn csr_impl_mirrors_inherent_methods() {
        let g = wheel();
        fn probe<G: Adjacency>(g: &G) -> (usize, usize, u64, f64, u64) {
            (
                g.num_nodes(),
                g.num_edges(),
                g.degree_sum(),
                g.average_degree(),
                g.fingerprint(),
            )
        }
        let (n, m, ds, avg, fp) = probe(&g);
        assert_eq!(n, 5);
        assert_eq!(m, 6);
        assert_eq!(ds, 12);
        assert!((avg - 2.4).abs() < 1e-12);
        assert_eq!(fp, g.fingerprint());
        assert!(g.resident_bytes() >= 12 * 4);
    }

    #[test]
    fn neighbors_iter_matches_slice() {
        let g = wheel();
        for v in g.nodes() {
            let streamed: Vec<NodeId> = Adjacency::neighbors_iter(&g, v).collect();
            assert_eq!(streamed, g.neighbors(v), "node {v}");
            assert_eq!(streamed.len(), Adjacency::degree(&g, v));
        }
    }

    #[test]
    fn for_each_neighbor_default_matches_iter() {
        let g = wheel();
        for v in g.nodes() {
            let mut pushed = Vec::new();
            Adjacency::for_each_neighbor(&g, v, |w| pushed.push(w));
            assert_eq!(pushed, g.neighbors(v), "node {v}");
        }
    }
}
