//! The offline `|V^h_v|` vicinity-size index of Sec. 4.2.
//!
//! Rejection and importance sampling both need `|V^h_v|` for every event
//! node `v` and every vicinity level `h ≤ h_m`. The paper precomputes
//! these "offline by doing a h_m-hop BFS from each node in the graph",
//! noting the space cost is only `O(|V|)` per level and that the index
//! "can be efficiently updated as the graph changes". [`VicinityIndex`]
//! implements exactly that, including the incremental update.

use crate::adjacency::Adjacency;
use crate::bfs::{BfsKernel, BfsScratch};
use crate::csr::NodeId;
use crate::pool::PARALLEL_MIN_NODES;

/// Per-level vicinity node-set sizes for every node of a graph:
/// `sizes(h)[v] = |V^h_v|` (which always includes `v` itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VicinityIndex {
    max_level: u32,
    /// `levels[h-1][v]` = |V^h_v| ; `|V^0_v|` = 1 is implicit.
    levels: Vec<Vec<u32>>,
}

impl VicinityIndex {
    /// Build the index for levels `1..=max_level` with a single-threaded
    /// sweep (one `max_level`-hop BFS per node), picking the BFS kernel
    /// automatically.
    pub fn build<G: Adjacency>(g: &G, max_level: u32) -> Self {
        Self::build_with_kernel(g, max_level, BfsKernel::Auto)
    }

    /// [`VicinityIndex::build`] with an explicit scalar/bitset BFS
    /// kernel choice. Both kernels produce the identical index — the
    /// override exists for tests and benches.
    pub fn build_with_kernel<G: Adjacency>(g: &G, max_level: u32, kernel: BfsKernel) -> Self {
        assert!(max_level >= 1, "max_level must be at least 1");
        let n = g.num_nodes();
        let use_bitset = kernel.use_bitset(g, max_level);
        let mut levels = vec![vec![0u32; n]; max_level as usize];
        let mut scratch = BfsScratch::new(n);
        let mut counts = vec![0u32; max_level as usize + 1];
        for v in 0..n as NodeId {
            Self::fill_node(
                g,
                &mut scratch,
                v,
                max_level,
                &mut counts,
                &mut levels,
                use_bitset,
            );
        }
        VicinityIndex { max_level, levels }
    }

    /// Build the index with `threads` worker threads (scoped std
    /// threads; node ranges are partitioned statically). Graphs below
    /// [`PARALLEL_MIN_NODES`] fall back to the serial sweep — the
    /// threshold `tesc::batch` shares for its own fan-out decision.
    pub fn build_parallel<G: Adjacency>(g: &G, max_level: u32, threads: usize) -> Self {
        assert!(max_level >= 1, "max_level must be at least 1");
        let threads = threads.max(1);
        let n = g.num_nodes();
        if threads == 1 || n < PARALLEL_MIN_NODES {
            return Self::build(g, max_level);
        }
        let use_bitset = BfsKernel::Auto.use_bitset(g, max_level);
        let mut levels = vec![vec![0u32; n]; max_level as usize];
        {
            // Split each level vector into per-thread chunks. To keep the
            // borrow checker happy we transpose the work: each thread owns
            // a contiguous node range across all levels, communicated via
            // raw chunk splitting of the level slices.
            let chunk = n.div_ceil(threads);
            let mut level_chunks: Vec<Vec<&mut [u32]>> = Vec::with_capacity(threads);
            let mut rest: Vec<&mut [u32]> = levels.iter_mut().map(|l| l.as_mut_slice()).collect();
            for _ in 0..threads {
                let mut mine = Vec::with_capacity(max_level as usize);
                let mut remaining = Vec::with_capacity(max_level as usize);
                for slice in rest {
                    let split = chunk.min(slice.len());
                    let (a, b) = slice.split_at_mut(split);
                    mine.push(a);
                    remaining.push(b);
                }
                rest = remaining;
                level_chunks.push(mine);
            }
            std::thread::scope(|scope| {
                for (t, mine) in level_chunks.into_iter().enumerate() {
                    let start = (t * chunk).min(n) as NodeId;
                    scope.spawn(move || {
                        let mut scratch = BfsScratch::new(g.num_nodes());
                        let mut counts = vec![0u32; max_level as usize + 1];
                        let len = mine.first().map_or(0, |s| s.len());
                        let mut mine = mine;
                        #[allow(clippy::needless_range_loop)]
                        // indexes several parallel level slices
                        for i in 0..len {
                            let v = start + i as NodeId;
                            depth_counts(g, &mut scratch, v, max_level, &mut counts, use_bitset);
                            let mut cum = counts[0];
                            for h in 1..=max_level as usize {
                                cum += counts[h];
                                mine[h - 1][i] = cum;
                            }
                        }
                    });
                }
            });
        }
        VicinityIndex { max_level, levels }
    }

    /// Build the index *only for the given nodes* (sizes of all other
    /// nodes read as 0 — do not query them).
    ///
    /// Rejection/importance sampling only ever need `|V^h_v|` for the
    /// current event nodes `V_{a∪b}` (the weight table of Sec. 4.2), so
    /// a single-pair workload can skip the full offline sweep. The
    /// full [`VicinityIndex::build`] is the right choice when many
    /// event pairs share one graph.
    pub fn build_for_nodes<G: Adjacency>(g: &G, nodes: &[NodeId], max_level: u32) -> Self {
        assert!(max_level >= 1, "max_level must be at least 1");
        let n = g.num_nodes();
        let use_bitset = BfsKernel::Auto.use_bitset(g, max_level);
        let mut levels = vec![vec![0u32; n]; max_level as usize];
        let mut scratch = BfsScratch::new(n);
        let mut counts = vec![0u32; max_level as usize + 1];
        for &v in nodes {
            Self::fill_node(
                g,
                &mut scratch,
                v,
                max_level,
                &mut counts,
                &mut levels,
                use_bitset,
            );
        }
        VicinityIndex { max_level, levels }
    }

    #[allow(clippy::too_many_arguments)] // internal fill helper
    fn fill_node<G: Adjacency>(
        g: &G,
        scratch: &mut BfsScratch,
        v: NodeId,
        max_level: u32,
        counts: &mut [u32],
        levels: &mut [Vec<u32>],
        use_bitset: bool,
    ) {
        depth_counts(g, scratch, v, max_level, counts, use_bitset);
        let mut cum = counts[0];
        for h in 1..=max_level as usize {
            cum += counts[h];
            levels[h - 1][v as usize] = cum;
        }
    }

    /// Highest level this index stores.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// `|V^h_v|`. `h = 0` returns 1.
    ///
    /// # Panics
    ///
    /// Panics if `h > max_level()`.
    #[inline]
    pub fn size(&self, v: NodeId, h: u32) -> usize {
        if h == 0 {
            return 1;
        }
        assert!(
            h <= self.max_level,
            "index built for h ≤ {}, asked for {h}",
            self.max_level
        );
        self.levels[h as usize - 1][v as usize] as usize
    }

    /// `N_sum = Σ_{v ∈ nodes} |V^h_v|` — the normalizer of
    /// RejectSamp/Importance sampling (Sec. 4.2).
    pub fn sum_over(&self, nodes: &[NodeId], h: u32) -> u64 {
        nodes.iter().map(|&v| self.size(v, h) as u64).sum()
    }

    /// Incrementally refresh after the graph changed near `touched`
    /// nodes (typically the endpoints of added/removed edges).
    ///
    /// Any node whose `h`-vicinity could have changed lies within
    /// `max_level` hops of a touched node in the old *or* new graph, so
    /// we recompute exactly that dirty set against `g_new`. Pass the
    /// pre-change graph as `g_old` when edges were removed (the dirty
    /// region must be discovered through the now-deleted edges too).
    pub fn refresh<G: Adjacency>(&mut self, g_new: &G, g_old: Option<&G>, touched: &[NodeId]) {
        assert_eq!(
            self.levels[0].len(),
            g_new.num_nodes(),
            "refresh cannot change the node count"
        );
        let n = g_new.num_nodes();
        let mut scratch = BfsScratch::new(n);
        let mut dirty = Vec::new();
        scratch.visit_h_vicinity(g_new, touched, self.max_level, |v, _| dirty.push(v));
        if let Some(old) = g_old {
            let mut dirty_old = Vec::new();
            scratch.visit_h_vicinity(old, touched, self.max_level, |v, _| dirty_old.push(v));
            dirty.extend(dirty_old);
            dirty.sort_unstable();
            dirty.dedup();
        }
        let use_bitset = BfsKernel::Auto.use_bitset(g_new, self.max_level);
        let mut counts = vec![0u32; self.max_level as usize + 1];
        for &v in &dirty {
            Self::fill_node(
                g_new,
                &mut scratch,
                v,
                self.max_level,
                &mut counts,
                &mut self.levels,
                use_bitset,
            );
        }
    }

    /// Non-destructive [`VicinityIndex::refresh`]: clone the index and
    /// refresh the clone, leaving the receiver as-is. This is the
    /// snapshot-ingestion primitive — readers of the old index keep a
    /// consistent view of the old graph while the returned index pairs
    /// with `g_new` as the next version.
    #[must_use]
    pub fn refreshed<G: Adjacency>(
        &self,
        g_new: &G,
        g_old: Option<&G>,
        touched: &[NodeId],
    ) -> Self {
        let mut next = self.clone();
        next.refresh(g_new, g_old, touched);
        next
    }
}

/// Per-depth first-reach counts of a `max_level`-hop BFS from `v`,
/// written into `counts[0..=max_level]` (cleared first), via whichever
/// kernel was resolved — both kernels tally identical depths.
fn depth_counts<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    v: NodeId,
    max_level: u32,
    counts: &mut [u32],
    use_bitset: bool,
) {
    counts.fill(0);
    if use_bitset {
        scratch.visit_h_vicinity_bitset(g, &[v], max_level);
        for (d, &c) in scratch.level_counts().iter().enumerate() {
            counts[d] = c;
        }
    } else {
        scratch.visit_h_vicinity(g, &[v], max_level, |_, d| {
            counts[d as usize] += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{from_edges, CsrGraph};

    fn path5() -> CsrGraph {
        from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn sizes_match_direct_bfs() {
        let g = path5();
        let idx = VicinityIndex::build(&g, 3);
        let mut s = BfsScratch::new(5);
        for v in 0..5u32 {
            for h in 1..=3 {
                assert_eq!(idx.size(v, h), s.vicinity_size(&g, v, h), "v={v} h={h}");
            }
        }
    }

    #[test]
    fn level_zero_is_one() {
        let g = path5();
        let idx = VicinityIndex::build(&g, 1);
        assert_eq!(idx.size(3, 0), 1);
    }

    #[test]
    fn sizes_monotone_in_h() {
        let g = from_edges(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6)]);
        let idx = VicinityIndex::build(&g, 3);
        for v in 0..7u32 {
            for h in 1..3 {
                assert!(idx.size(v, h) <= idx.size(v, h + 1));
            }
        }
    }

    #[test]
    fn sum_over_matches_manual() {
        let g = path5();
        let idx = VicinityIndex::build(&g, 2);
        // |V^2_v| on a path of 5: node 0 → {0,1,2}=3; 1 → 4; 2 → 5; 3 → 4; 4 → 3.
        assert_eq!(idx.sum_over(&[0, 2, 4], 2), 3 + 5 + 3);
        assert_eq!(idx.sum_over(&[], 2), 0);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Grid-ish graph with enough nodes to trigger the parallel path.
        let mut edges = Vec::new();
        let side = 40u32; // 1600 nodes > 1024 threshold
        let id = |x: u32, y: u32| x * side + y;
        for x in 0..side {
            for y in 0..side {
                if x + 1 < side {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < side {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        let g = from_edges((side * side) as usize, &edges);
        let seq = VicinityIndex::build(&g, 2);
        let par = VicinityIndex::build_parallel(&g, 2, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn refresh_after_adding_edge() {
        let g_old = path5();
        let mut idx = VicinityIndex::build(&g_old, 3);
        // Add chord 0-4, turning the path into a cycle.
        let g_new = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        idx.refresh(&g_new, Some(&g_old), &[0, 4]);
        assert_eq!(idx, VicinityIndex::build(&g_new, 3));
    }

    #[test]
    fn refresh_after_removing_edge() {
        let g_old = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let mut idx = VicinityIndex::build(&g_old, 3);
        let g_new = path5();
        idx.refresh(&g_new, Some(&g_old), &[0, 4]);
        assert_eq!(idx, VicinityIndex::build(&g_new, 3));
    }

    #[test]
    fn refreshed_clone_leaves_receiver_untouched() {
        let g_old = path5();
        let idx = VicinityIndex::build(&g_old, 2);
        let g_new = g_old.with_edges(&[(0, 4)]);
        let next = idx.refreshed(&g_new, None, &[0, 4]);
        assert_eq!(idx, VicinityIndex::build(&g_old, 2), "receiver unchanged");
        assert_eq!(next, VicinityIndex::build(&g_new, 2));
    }

    #[test]
    #[should_panic(expected = "asked for")]
    fn asking_beyond_max_level_panics() {
        let g = path5();
        let idx = VicinityIndex::build(&g, 2);
        let _ = idx.size(0, 3);
    }

    #[test]
    fn build_for_nodes_matches_full_build_on_those_nodes() {
        let g = from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 6)]);
        let full = VicinityIndex::build(&g, 2);
        let targets = [1u32, 4, 6];
        let sparse = VicinityIndex::build_for_nodes(&g, &targets, 2);
        for &v in &targets {
            for h in 1..=2 {
                assert_eq!(sparse.size(v, h), full.size(v, h), "v={v} h={h}");
            }
        }
        // Unqueried nodes read 0 (documented sentinel).
        assert_eq!(sparse.size(0, 1), 0);
    }

    #[test]
    fn scalar_and_bitset_builds_agree() {
        // A clustered graph (dense cliques + bridges) where Auto would
        // genuinely pick bitset; force both and compare.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            for i in 0..12 {
                for j in (i + 1)..12 {
                    edges.push((c * 12 + i, c * 12 + j));
                }
            }
        }
        edges.extend([(0, 12), (12, 24), (24, 36)]);
        let g = from_edges(48, &edges);
        let scalar = VicinityIndex::build_with_kernel(&g, 3, crate::bfs::BfsKernel::Scalar);
        let bitset = VicinityIndex::build_with_kernel(&g, 3, crate::bfs::BfsKernel::Bitset);
        assert_eq!(scalar, bitset);
        assert_eq!(scalar, VicinityIndex::build(&g, 3));
    }

    #[test]
    fn isolated_node_size_is_one() {
        let g = from_edges(3, &[(0, 1)]);
        let idx = VicinityIndex::build(&g, 2);
        assert_eq!(idx.size(2, 1), 1);
        assert_eq!(idx.size(2, 2), 1);
    }
}
