//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The workspace carries zero registry dependencies, so the checksum
//! every binary frame relies on is hand-rolled here: a classic
//! 256-entry table built at first use, byte-at-a-time update. This is
//! the same polynomial as zlib/`crc32fast`, so frames written by this
//! module can be checked with any standard CRC-32 tool.
//!
//! This is the single implementation for the whole workspace: the
//! `.tgraph` container ([`crate::container`]) uses it directly and
//! `tesc::persist` re-exports it, so the snapshot/WAL formats and the
//! graph container cannot drift onto different polynomials.

use std::sync::OnceLock;

/// The 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, reflected, init/final-xor `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let base = b"write-ahead log record payload".to_vec();
        let crc = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), crc, "flip at byte {i} bit {bit}");
            }
        }
    }
}
