//! Delta-encoded, bit-packed CSR adjacency ([`CompressedCsr`]).
//!
//! At the million-node scale the h-hop vicinity BFS is bound by memory
//! bandwidth, not instructions: the kernels stream adjacency rows and
//! the plain CSR spends 4 bytes per neighbor id. This module stores
//! each (sorted) neighbor row as *gaps* (first id, then successive
//! deltas minus one), packed in chunks of [`CHUNK_GAPS`] gaps at a
//! fixed per-chunk bit width — one header byte per chunk, then the
//! gaps back to back, LSB first. On real graphs that is ~2.3 bytes per
//! entry, so a row scan streams roughly half the bytes of plain CSR,
//! and the decoder is **branch-free per gap**: one unaligned `u64`
//! load, a shift, and a mask (the fixed width makes the hot loop free
//! of the length branches an LEB128 varint pays per byte).
//! `fig14_scale` measures the trade instead of asserting it;
//! `docs/PERFORMANCE.md` §7 discusses when it loses.
//!
//! Layout:
//!
//! * a per-node **directory**: byte offset into the packed stream
//!   (`u32` — the stream is capped at 4 GiB) plus degree (`u32`);
//! * the **packed adjacency stream**, grouped into blocks of
//!   [`BLOCK_NODES`] consecutive nodes; every block starts on a
//!   [`BLOCK_ALIGN`]-byte (cache-line) boundary, zero-padded, so a
//!   block's rows never share a line with a neighboring block and
//!   streaming a block touches only its own lines. The stream ends
//!   with [`TAIL_PAD`] zero bytes so the decoder's 8-byte window loads
//!   never run past the allocation.
//!
//! A [`CompressedCsr`] carries the [`CsrGraph::fingerprint`] of the
//! plain content it encodes: equal fingerprints mean identical
//! topology regardless of encoding, which is what lets density caches
//! and relabeled substrates interoperate across the two
//! representations. The decoder ([`CompressedCsr::neighbors_iter`])
//! streams a row without materializing it;
//! [`CompressedCsr::for_each_neighbor`] is the internal-iteration
//! fast path the BFS kernels use (chunk constants hoisted out of the
//! gap loop), and [`CompressedCsr::decode_neighbors_into`] fills a
//! reused scratch buffer for slice consumers. The on-disk form of
//! this structure is the `.tgraph` container ([`crate::container`]),
//! which packs each edge *once* (upper-triangle rows) with the same
//! chunk codec.

use crate::adjacency::Adjacency;
use crate::codec::DecodeError;
use crate::csr::{CsrGraph, NodeId};
use crate::relabel::Relabeling;

/// Nodes per alignment block of the packed stream.
pub const BLOCK_NODES: usize = 64;

/// Byte alignment of every block start (one cache line).
pub const BLOCK_ALIGN: usize = 64;

/// Gaps per fixed-width chunk of a packed row. Small enough that one
/// outlier gap inflates at most 15 companions' widths, large enough
/// that the header byte costs only half a bit per gap.
pub const CHUNK_GAPS: usize = 16;

/// Zero bytes appended after the last row so the decoder's 8-byte
/// window loads stay inside the buffer at any in-stream bit position.
pub const TAIL_PAD: usize = 8;

// --- varint codec --------------------------------------------------------

/// Append `value` as an LEB128 varint (7 payload bits per byte,
/// continuation in the high bit; 1–5 bytes for a `u32`). Used by the
/// `.tgraph` degree directory, not the packed gap stream.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut value: u32) {
    while value >= 0x80 {
        buf.push((value as u8 & 0x7F) | 0x80);
        value >>= 7;
    }
    buf.push(value as u8);
}

/// Decode one LEB128 varint from `bytes` at `*pos`, advancing `*pos`.
///
/// Trusted-input fast path: the caller guarantees a well-formed stream
/// (all in-memory streams are validated at construction), so this
/// panics on truncation like any slice index rather than returning a
/// `Result`. Untrusted bytes go through [`checked_read_varint`].
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut b = bytes[*pos];
    *pos += 1;
    let mut acc = (b & 0x7F) as u32;
    let mut shift = 7u32;
    while b & 0x80 != 0 {
        b = bytes[*pos];
        *pos += 1;
        acc |= ((b & 0x7F) as u32) << shift;
        shift += 7;
    }
    acc
}

/// Decode one varint from untrusted bytes: bounds-checked, rejects
/// encodings longer than 5 bytes or overflowing a `u32`.
pub fn checked_read_varint(bytes: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    let mut acc = 0u64;
    for i in 0..5 {
        let b = *bytes.get(*pos).ok_or_else(|| DecodeError {
            offset: *pos,
            message: "varint truncated".into(),
        })?;
        *pos += 1;
        acc |= ((b & 0x7F) as u64) << (7 * i);
        if b & 0x80 == 0 {
            return u32::try_from(acc).map_err(|_| DecodeError {
                offset: *pos,
                message: format!("varint value {acc} overflows u32"),
            });
        }
    }
    Err(DecodeError {
        offset: *pos,
        message: "varint longer than 5 bytes".into(),
    })
}

// --- chunked fixed-width gap codec ---------------------------------------

/// 8-byte little-endian window at `byte`. Trusted path: the caller
/// guarantees `byte + 8 <= bytes.len()` (every in-memory stream ends
/// with [`TAIL_PAD`] zeros, so any in-stream position qualifies).
#[inline]
fn window(bytes: &[u8], byte: usize) -> u64 {
    u64::from_le_bytes(bytes[byte..byte + 8].try_into().unwrap())
}

/// Like [`window`] but clamped at the end of `bytes` (missing tail
/// bytes read as zero) — the untrusted-path variant, where the stream
/// carries no tail padding. `byte` may be at most `bytes.len()`.
#[inline]
fn checked_window(bytes: &[u8], byte: usize) -> u64 {
    let mut buf = [0u8; 8];
    let end = bytes.len().min(byte + 8);
    buf[..end - byte].copy_from_slice(&bytes[byte..end]);
    u64::from_le_bytes(buf)
}

/// Append `gaps` to `buf` as fixed-width chunks: per [`CHUNK_GAPS`]
/// gaps, one header byte holding the chunk's bit width (the widest
/// gap's bit length, 0–32), then the gaps packed LSB-first. Chunks are
/// byte-aligned; a width-0 chunk (all gaps zero — a consecutive id
/// run) has no payload at all.
pub(crate) fn encode_gaps_chunked(buf: &mut Vec<u8>, gaps: &[u32]) {
    for chunk in gaps.chunks(CHUNK_GAPS) {
        let width = chunk
            .iter()
            .map(|&g| 32 - g.leading_zeros())
            .max()
            .unwrap_or(0);
        buf.push(width as u8);
        let mut acc = 0u64;
        let mut nbits = 0u32;
        for &g in chunk {
            acc |= (g as u64) << nbits;
            nbits += width;
            while nbits >= 8 {
                buf.push(acc as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            buf.push(acc as u8);
        }
    }
}

/// Walk `count` gaps of chunked fixed-width stream from untrusted
/// `bytes` at `*pos`, advancing `*pos` past the consumed chunks and
/// invoking `emit` per decoded gap. Every structural hazard — missing
/// header, width over 32, truncated payload — is a typed error;
/// `emit` may veto with its own error (id out of range, etc.).
pub(crate) fn checked_walk_chunks(
    bytes: &[u8],
    pos: &mut usize,
    count: u32,
    mut emit: impl FnMut(u32) -> Result<(), DecodeError>,
) -> Result<(), DecodeError> {
    let mut remaining = count;
    while remaining > 0 {
        let width = *bytes.get(*pos).ok_or_else(|| DecodeError {
            offset: *pos,
            message: "chunk header past the end of the stream".into(),
        })? as usize;
        if width > 32 {
            return Err(DecodeError {
                offset: *pos,
                message: format!("chunk width {width} exceeds 32 bits"),
            });
        }
        *pos += 1;
        let cnt = remaining.min(CHUNK_GAPS as u32) as usize;
        let payload = (cnt * width).div_ceil(8);
        if bytes.len() - *pos < payload {
            return Err(DecodeError {
                offset: *pos,
                message: format!(
                    "chunk payload truncated: {payload} bytes needed, {} left",
                    bytes.len() - *pos
                ),
            });
        }
        let mask = (1u64 << width) - 1;
        let mut bit = *pos * 8;
        for _ in 0..cnt {
            let gap = ((checked_window(bytes, bit >> 3) >> (bit & 7)) & mask) as u32;
            bit += width;
            emit(gap)?;
        }
        *pos += payload;
        remaining -= cnt as u32;
    }
    Ok(())
}

// --- cache-line-aligned byte storage -------------------------------------

/// Immutable byte buffer whose first byte sits on a [`BLOCK_ALIGN`]
/// boundary, so the in-stream block alignment is alignment in memory,
/// not just relative to the stream start.
struct AlignedBytes {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// SAFETY: `AlignedBytes` is an immutable owned allocation — shared
// references only ever read it, exactly like `Box<[u8]>`.
unsafe impl Send for AlignedBytes {}
unsafe impl Sync for AlignedBytes {}

impl AlignedBytes {
    fn layout(len: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(len, BLOCK_ALIGN).expect("valid layout")
    }

    fn copy_from(bytes: &[u8]) -> Self {
        if bytes.is_empty() {
            return AlignedBytes {
                ptr: std::ptr::NonNull::dangling(),
                len: 0,
            };
        }
        // SAFETY: the layout is non-zero-sized; the copy writes
        // exactly `len` bytes into the fresh allocation.
        unsafe {
            let raw = std::alloc::alloc(Self::layout(bytes.len()));
            let ptr = match std::ptr::NonNull::new(raw) {
                Some(p) => p,
                None => std::alloc::handle_alloc_error(Self::layout(bytes.len())),
            };
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr.as_ptr(), bytes.len());
            AlignedBytes {
                ptr,
                len: bytes.len(),
            }
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` initialized bytes we own.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBytes {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated in `copy_from` with the same layout.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr(), Self::layout(self.len)) }
        }
    }
}

impl Clone for AlignedBytes {
    fn clone(&self) -> Self {
        AlignedBytes::copy_from(self.as_slice())
    }
}

// --- the compressed graph ------------------------------------------------

/// An immutable undirected simple graph with delta/bit-packed
/// adjacency. See the [module docs](self).
#[derive(Clone)]
pub struct CompressedCsr {
    /// Directory, part 1: `offsets[v]` is the byte offset of `v`'s row
    /// in `bytes`; `offsets[n]` is the end of the last row (the tail
    /// padding lies beyond it).
    offsets: Box<[u32]>,
    /// Directory, part 2: `degrees[v]` is `v`'s neighbor count.
    degrees: Box<[u32]>,
    /// The packed adjacency stream (cache-line-aligned base).
    bytes: AlignedBytes,
    degree_sum: u64,
    /// [`CsrGraph::fingerprint`] of the plain content.
    fingerprint: u64,
}

impl std::fmt::Debug for CompressedCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedCsr")
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges())
            .field("adjacency_bytes", &self.bytes.len)
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

impl PartialEq for CompressedCsr {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets
            && self.degrees == other.degrees
            && self.bytes.as_slice() == other.bytes.as_slice()
            && self.fingerprint == other.fingerprint
    }
}

impl Eq for CompressedCsr {}

impl CompressedCsr {
    /// Compress a plain CSR graph. `O(|V| + |E|)`; the result's
    /// [`fingerprint`](Self::fingerprint) equals `g.fingerprint()`.
    ///
    /// # Panics
    ///
    /// Panics if the packed stream would exceed the directory's 4 GiB
    /// offset range (≈ 1.5 billion undirected edges at typical gap
    /// widths — beyond the `u32` node ids long before that).
    pub fn from_graph(g: &CsrGraph) -> CompressedCsr {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut degrees = Vec::with_capacity(n);
        // ~2.3 B/entry is typical; the Vec grows if a graph is gappier.
        let mut bytes =
            Vec::with_capacity(5 * g.degree_sum() as usize / 2 + BLOCK_ALIGN + TAIL_PAD);
        let mut gaps: Vec<u32> = Vec::new();
        let push_offset = |offsets: &mut Vec<u32>, pos: usize| {
            offsets.push(u32::try_from(pos).expect("packed adjacency stream exceeds 4 GiB"));
        };
        for v in 0..n {
            if v % BLOCK_NODES == 0 {
                while bytes.len() % BLOCK_ALIGN != 0 {
                    bytes.push(0);
                }
            }
            push_offset(&mut offsets, bytes.len());
            let row = g.neighbors(v as NodeId);
            degrees.push(row.len() as u32);
            gaps.clear();
            let mut base = 0 as NodeId;
            for &w in row {
                gaps.push(w - base);
                base = w + 1;
            }
            encode_gaps_chunked(&mut bytes, &gaps);
        }
        push_offset(&mut offsets, bytes.len());
        bytes.extend_from_slice(&[0u8; TAIL_PAD]);
        CompressedCsr {
            offsets: offsets.into_boxed_slice(),
            degrees: degrees.into_boxed_slice(),
            bytes: AlignedBytes::copy_from(&bytes),
            degree_sum: g.degree_sum(),
            fingerprint: g.fingerprint(),
        }
    }

    /// Reassemble (and fully validate) a compressed graph from its
    /// serialized parts: the per-node degrees and the packed stream
    /// (block padding and tail padding included).
    ///
    /// This is the untrusted-input constructor: it re-walks the whole
    /// stream with checked chunk reads, verifies block and tail
    /// padding, id ranges and exact stream consumption, and recomputes
    /// the plain-CSR fingerprint, which must equal
    /// `expect_fingerprint`. Never panics on garbage.
    pub fn assemble(
        degrees: Vec<u32>,
        bytes: Vec<u8>,
        expect_fingerprint: u64,
    ) -> Result<CompressedCsr, DecodeError> {
        let n = degrees.len();
        let malformed = |offset: usize, message: String| DecodeError { offset, message };
        if n > u32::MAX as usize {
            return Err(malformed(0, format!("{n} nodes do not fit u32 ids")));
        }
        if bytes.len() > u32::MAX as usize {
            return Err(malformed(0, "packed stream exceeds 4 GiB".into()));
        }
        let mut degree_sum = 0u64;
        for (v, &d) in degrees.iter().enumerate() {
            if d as usize >= n.max(1) {
                return Err(malformed(
                    0,
                    format!("node {v} claims degree {d} in a {n}-node simple graph"),
                ));
            }
            degree_sum += d as u64;
        }
        if !degree_sum.is_multiple_of(2) {
            return Err(malformed(0, format!("odd degree sum {degree_sum}")));
        }

        // Fingerprint (FNV-1a, mirroring `CsrGraph::fingerprint`): the
        // plain offsets are the degree prefix sums, mixable up front.
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h ^= n as u64;
        h = h.wrapping_mul(PRIME);
        let mut prefix = 0u64;
        h ^= prefix;
        h = h.wrapping_mul(PRIME);
        for &d in degrees.iter() {
            prefix += d as u64;
            h ^= prefix;
            h = h.wrapping_mul(PRIME);
        }

        // Walk the stream exactly as the encoder emitted it.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut pos = 0usize;
        for (v, &d) in degrees.iter().enumerate() {
            if v % BLOCK_NODES == 0 {
                while !pos.is_multiple_of(BLOCK_ALIGN) {
                    match bytes.get(pos) {
                        Some(0) => pos += 1,
                        Some(_) => {
                            return Err(malformed(pos, "nonzero block padding".into()));
                        }
                        None => return Err(malformed(pos, "stream ends inside padding".into())),
                    }
                }
            }
            offsets.push(pos as u32);
            let row_start = pos;
            let mut base = 0u64;
            checked_walk_chunks(&bytes, &mut pos, d, |gap| {
                let w = base + gap as u64;
                if w >= n as u64 {
                    return Err(DecodeError {
                        offset: row_start,
                        message: format!("node {v} neighbor {w} out of range for {n} nodes"),
                    });
                }
                h ^= w;
                h = h.wrapping_mul(PRIME);
                base = w + 1;
                Ok(())
            })?;
        }
        offsets.push(pos as u32);
        if bytes.len() != pos + TAIL_PAD {
            return Err(malformed(
                pos,
                format!(
                    "stream is {} bytes, expected {} rows + {TAIL_PAD} tail padding",
                    bytes.len(),
                    pos
                ),
            ));
        }
        if bytes[pos..].iter().any(|&b| b != 0) {
            return Err(malformed(pos, "nonzero tail padding".into()));
        }
        if h != expect_fingerprint {
            return Err(malformed(
                0,
                format!("content fingerprint {h:#018x} != header {expect_fingerprint:#018x}"),
            ));
        }
        Ok(CompressedCsr {
            offsets: offsets.into_boxed_slice(),
            degrees: degrees.into_boxed_slice(),
            bytes: AlignedBytes::copy_from(&bytes),
            degree_sum,
            fingerprint: expect_fingerprint,
        })
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.degrees.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        (self.degree_sum / 2) as usize
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Sum of degrees (`2|E|`).
    #[inline]
    pub fn degree_sum(&self) -> u64 {
        self.degree_sum
    }

    /// [`CsrGraph::fingerprint`] of the plain content this graph
    /// encodes (equal by construction, revalidated on container load).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Average degree `2|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.degree_sum as f64 / self.num_nodes() as f64
        }
    }

    /// Stream `v`'s neighbors in ascending order, decoding gaps on the
    /// fly — no per-row allocation, ever.
    #[inline]
    pub fn neighbors_iter(&self, v: NodeId) -> CompressedNeighbors<'_> {
        CompressedNeighbors {
            bytes: self.bytes.as_slice(),
            bit: (self.offsets[v as usize] as usize) << 3,
            remaining: self.degrees[v as usize],
            chunk_left: 0,
            width: 0,
            mask: 0,
            base: 0,
        }
    }

    /// Internal-iteration decode of `v`'s row: `f(w)` per neighbor,
    /// ascending. This is the kernels' hot path — the per-chunk width
    /// and mask are hoisted out of the gap loop, which is then one
    /// window load + shift + mask + add per neighbor, branch-free.
    #[inline]
    pub fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        let mut remaining = self.degrees[v as usize];
        if remaining == 0 {
            return;
        }
        let bytes = self.bytes.as_slice();
        let mut byte = self.offsets[v as usize] as usize;
        let mut base: NodeId = 0;
        while remaining > 0 {
            let width = bytes[byte] as usize;
            let cnt = remaining.min(CHUNK_GAPS as u32);
            let mask = (1u64 << width) - 1;
            let mut bit = (byte + 1) << 3;
            for _ in 0..cnt {
                let gap = ((window(bytes, bit >> 3) >> (bit & 7)) & mask) as u32;
                bit += width;
                let w = base + gap;
                f(w);
                base = w + 1;
            }
            byte = (bit + 7) >> 3;
            remaining -= cnt;
        }
    }

    /// Decode `v`'s neighbor row into `out` (cleared first) — the
    /// reused-scratch-buffer path for consumers that need a slice.
    pub fn decode_neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.reserve(self.degrees[v as usize] as usize);
        self.for_each_neighbor(v, |w| out.push(w));
    }

    /// Decompress back to a plain [`CsrGraph`] (bit-identical to the
    /// graph this was built from — same fingerprint by construction).
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut prefix = 0u64;
        offsets.push(0u64);
        for &d in self.degrees.iter() {
            prefix += d as u64;
            offsets.push(prefix);
        }
        let mut neighbors = Vec::with_capacity(self.degree_sum as usize);
        for v in 0..n {
            self.for_each_neighbor(v as NodeId, |w| neighbors.push(w));
        }
        CsrGraph::from_parts(offsets.into_boxed_slice(), neighbors.into_boxed_slice())
    }

    /// Bytes of the packed adjacency stream (block and tail padding
    /// included) — what a whole-graph scan streams from memory.
    #[inline]
    pub fn adjacency_bytes(&self) -> usize {
        self.bytes.len
    }

    /// Bytes of the (offset, degree) directory.
    #[inline]
    pub fn directory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.degrees.len() * std::mem::size_of::<u32>()
    }

    /// Packed-stream bytes a scan of `v`'s row streams (its extent up
    /// to the next row's start, so block padding is accounted to the
    /// row that precedes it).
    #[inline]
    pub fn row_bytes(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The raw degree directory (test support — the `.tgraph`
    /// container re-derives its own half-adjacency form).
    #[cfg(test)]
    pub(crate) fn degrees_raw(&self) -> &[u32] {
        &self.degrees
    }

    /// The raw packed stream (test support).
    #[cfg(test)]
    pub(crate) fn bytes_raw(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    #[cfg(test)]
    pub(crate) fn offsets_raw(&self) -> &[u32] {
        &self.offsets
    }
}

impl Adjacency for CompressedCsr {
    #[inline]
    fn num_nodes(&self) -> usize {
        CompressedCsr::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CompressedCsr::num_edges(self)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        CompressedCsr::degree(self, v)
    }

    #[inline]
    fn degree_sum(&self) -> u64 {
        CompressedCsr::degree_sum(self)
    }

    #[inline]
    fn fingerprint(&self) -> u64 {
        CompressedCsr::fingerprint(self)
    }

    #[inline]
    fn resident_bytes(&self) -> usize {
        self.adjacency_bytes() + self.directory_bytes()
    }

    #[inline]
    fn neighbors_iter(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        CompressedCsr::neighbors_iter(self, v)
    }

    #[inline]
    fn for_each_neighbor(&self, v: NodeId, f: impl FnMut(NodeId)) {
        CompressedCsr::for_each_neighbor(self, v, f)
    }

    /// Relabeled twin, staying compressed: decompress, permute,
    /// recompress. The transient plain copy makes this `O(|V| + |E|)`
    /// time and memory — a build-time cost paid once per substrate,
    /// like [`CsrGraph::relabeled`] itself.
    fn relabeled_twin(&self, map: &Relabeling) -> Self {
        CompressedCsr::from_graph(&self.to_csr().relabeled(map))
    }

    #[inline]
    fn average_degree(&self) -> f64 {
        CompressedCsr::average_degree(self)
    }
}

/// Streaming row decoder returned by [`CompressedCsr::neighbors_iter`]:
/// one window load + shift + mask per entry at the current chunk's
/// fixed width; the only branch is the per-[`CHUNK_GAPS`] header read.
#[derive(Debug, Clone)]
pub struct CompressedNeighbors<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor into `bytes`.
    bit: usize,
    /// Gaps left in the row.
    remaining: u32,
    /// Gaps left in the current chunk (0 forces a header read).
    chunk_left: u32,
    width: u32,
    mask: u64,
    base: NodeId,
}

impl Iterator for CompressedNeighbors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        if self.chunk_left == 0 {
            // Chunks are byte-aligned: round up, read the width header.
            let byte = (self.bit + 7) >> 3;
            self.width = self.bytes[byte] as u32;
            self.mask = (1u64 << self.width) - 1;
            self.chunk_left = self.remaining.min(CHUNK_GAPS as u32);
            self.bit = (byte + 1) << 3;
        }
        let gap = ((window(self.bytes, self.bit >> 3) >> (self.bit & 7)) & self.mask) as u32;
        self.bit += self.width as usize;
        self.remaining -= 1;
        self.chunk_left -= 1;
        let v = self.base + gap;
        self.base = v + 1;
        Some(v)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for CompressedNeighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [
            0u32,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            0x1F_FFFF,
            0x20_0000,
            0xFFF_FFFF,
            0x1000_0000,
            u32::MAX - 1,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= 5);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
            let mut pos = 0;
            assert_eq!(checked_read_varint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn checked_varint_rejects_truncation_and_overflow() {
        assert!(checked_read_varint(&[], &mut 0).is_err());
        assert!(checked_read_varint(&[0x80], &mut 0).is_err());
        assert!(checked_read_varint(&[0x80, 0x80, 0x80, 0x80], &mut 0).is_err());
        // 6-byte encoding: too long even if the value would fit.
        assert!(checked_read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut 0).is_err());
        // 5 bytes whose value exceeds u32::MAX.
        assert!(checked_read_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F], &mut 0).is_err());
    }

    /// The chunk codec round-trips arbitrary gap sequences through the
    /// checked walker, including widths 0 and 32, chunk-boundary
    /// lengths, and empty input.
    #[test]
    fn chunk_codec_round_trips_gap_sequences() {
        let mut rng = StdRng::seed_from_u64(0xBD7);
        let mut cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![u32::MAX],
            vec![0; CHUNK_GAPS],
            vec![0; CHUNK_GAPS + 1],
            (0..3 * CHUNK_GAPS as u32).collect(),
        ];
        for _ in 0..32 {
            let len = rng.gen_range(0..80usize);
            let shift = rng.gen_range(0..32u32);
            cases.push(
                (0..len)
                    .map(|_| rng.gen_range(0..=u32::MAX >> shift))
                    .collect(),
            );
        }
        for (i, gaps) in cases.iter().enumerate() {
            let mut buf = Vec::new();
            encode_gaps_chunked(&mut buf, gaps);
            let mut back = Vec::new();
            let mut pos = 0usize;
            checked_walk_chunks(&buf, &mut pos, gaps.len() as u32, |g| {
                back.push(g);
                Ok(())
            })
            .unwrap_or_else(|e| panic!("case {i}: {e}"));
            assert_eq!(&back, gaps, "case {i}");
            assert_eq!(pos, buf.len(), "case {i} consumes exactly");
            // Truncations of the stream must be typed errors.
            if !buf.is_empty() {
                let mut pos = 0usize;
                assert!(
                    checked_walk_chunks(&buf[..buf.len() - 1], &mut pos, gaps.len() as u32, |_| {
                        Ok(())
                    })
                    .is_err(),
                    "case {i} truncation accepted"
                );
            }
        }
        // A width header over 32 is rejected.
        let mut pos = 0usize;
        assert!(checked_walk_chunks(&[33, 0, 0, 0, 0], &mut pos, 1, |_| Ok(())).is_err());
    }

    #[test]
    fn compresses_and_streams_back_identically() {
        let g = from_edges(6, &[(0, 1), (0, 5), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)]);
        let c = CompressedCsr::from_graph(&g);
        assert_eq!(c.num_nodes(), g.num_nodes());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.degree_sum(), g.degree_sum());
        assert_eq!(c.fingerprint(), g.fingerprint());
        let mut scratch = Vec::new();
        for v in g.nodes() {
            assert_eq!(c.degree(v), g.degree(v));
            let row: Vec<NodeId> = c.neighbors_iter(v).collect();
            assert_eq!(row, g.neighbors(v), "node {v}");
            c.decode_neighbors_into(v, &mut scratch);
            assert_eq!(scratch, g.neighbors(v), "node {v} via scratch");
            let mut streamed = Vec::new();
            c.for_each_neighbor(v, |w| streamed.push(w));
            assert_eq!(streamed, g.neighbors(v), "node {v} via for_each");
        }
        assert_eq!(c.to_csr(), g);
    }

    #[test]
    fn blocks_are_cache_line_aligned() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::erdos_renyi_gnp(300, 0.05, &mut rng);
        let c = CompressedCsr::from_graph(&g);
        // Base pointer and every block-leading row start on a line.
        assert_eq!(c.bytes_raw().as_ptr() as usize % BLOCK_ALIGN, 0);
        for v in (0..c.num_nodes()).step_by(BLOCK_NODES) {
            assert_eq!(
                c.offsets_raw()[v] as usize % BLOCK_ALIGN,
                0,
                "block at node {v} misaligned"
            );
        }
        assert_eq!(c.to_csr(), g);
    }

    /// Satellite property test: 128 seeded random degree/gap
    /// distributions — including degree-0 nodes and a max-gap row that
    /// spans the whole id range — must round-trip bit-identically
    /// through compress → stream-decode and compress → assemble.
    #[test]
    fn codec_round_trips_random_degree_gap_distributions() {
        let mut rng = StdRng::seed_from_u64(0xC0DEC);
        for case in 0..128 {
            let n = rng.gen_range(2..400usize);
            let mut edges = Vec::new();
            // Random density, clustered and uniform gaps mixed.
            let attempts = rng.gen_range(0..6 * n);
            for _ in 0..attempts {
                let u = rng.gen_range(0..n as NodeId);
                let w = rng.gen_range(0..n as NodeId);
                if u != w {
                    edges.push((u, w));
                }
            }
            // Max-gap row: node 0 adjacent to the last node only
            // (plus whatever it randomly drew).
            edges.push((0, n as NodeId - 1));
            let g = from_edges(n, &edges);
            let c = CompressedCsr::from_graph(&g);
            assert_eq!(c.to_csr(), g, "case {case} (n = {n})");
            for v in g.nodes() {
                assert!(c.neighbors_iter(v).eq(g.neighbors(v).iter().copied()));
            }
            // Degree-0 nodes exist with high probability at these
            // densities; exercise them explicitly when present.
            if let Some(iso) = g.nodes().find(|&v| g.degree(v) == 0) {
                assert_eq!(c.neighbors_iter(iso).count(), 0);
            }
            // The untrusted-input path accepts its own serialization…
            let back = CompressedCsr::assemble(
                c.degrees_raw().to_vec(),
                c.bytes_raw().to_vec(),
                c.fingerprint(),
            )
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(back, c, "case {case} assemble round-trip");
            // …and refuses a wrong fingerprint.
            assert!(CompressedCsr::assemble(
                c.degrees_raw().to_vec(),
                c.bytes_raw().to_vec(),
                c.fingerprint() ^ 1,
            )
            .is_err());
        }
    }

    #[test]
    fn assemble_rejects_malformed_streams() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let c = CompressedCsr::from_graph(&g);
        let (degrees, bytes) = (c.degrees_raw().to_vec(), c.bytes_raw().to_vec());
        // Truncated stream.
        assert!(
            CompressedCsr::assemble(degrees.clone(), bytes[..bytes.len() - 1].to_vec(), 0).is_err()
        );
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(3);
        assert!(CompressedCsr::assemble(degrees.clone(), long, c.fingerprint()).is_err());
        // Nonzero tail padding.
        let mut dirty = bytes.clone();
        *dirty.last_mut().unwrap() = 1;
        assert!(CompressedCsr::assemble(degrees.clone(), dirty, c.fingerprint()).is_err());
        // Degree exceeding the node count.
        let mut fat = degrees.clone();
        fat[0] = 99;
        assert!(CompressedCsr::assemble(fat, bytes.clone(), c.fingerprint()).is_err());
        // Odd degree sum.
        let mut odd = degrees.clone();
        odd[0] += 1;
        assert!(CompressedCsr::assemble(odd, bytes.clone(), c.fingerprint()).is_err());
        // Out-of-range neighbor: lie about n by shrinking the
        // directory while keeping the stream.
        assert!(CompressedCsr::assemble(degrees[..4].to_vec(), bytes, c.fingerprint()).is_err());
    }

    #[test]
    fn relabeled_twin_tracks_plain_relabeling() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::barabasi_albert(150, 3, &mut rng);
        let map = Relabeling::locality_order(&g);
        let twin = CompressedCsr::from_graph(&g).relabeled_twin(&map);
        let plain = g.relabeled(&map);
        assert_eq!(twin.fingerprint(), plain.fingerprint());
        assert_eq!(twin.to_csr(), plain);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = CompressedCsr::from_graph(&from_edges(0, &[]));
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.num_edges(), 0);
        assert_eq!(empty.average_degree(), 0.0);
        let iso = CompressedCsr::from_graph(&from_edges(3, &[]));
        assert_eq!(iso.num_nodes(), 3);
        assert_eq!(iso.neighbors_iter(1).count(), 0);
        // Empty rows pack to zero bytes; only the tail padding remains.
        assert_eq!(iso.adjacency_bytes(), TAIL_PAD);
    }
}
