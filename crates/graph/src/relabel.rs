//! Locality-aware graph relabeling for BFS-bound workloads.
//!
//! The density hot path touches memory in whatever node order the
//! graph generator (or dataset loader) happened to emit: a BFS from a
//! reference node jumps across the whole id range, so the visited
//! bitmap, the adjacency reads and the event-mask words are all
//! scattered. A [`Relabeling`] assigns new ids in **degree-descending
//! seed + BFS discovery order** (the RCM family of bandwidth-reducing
//! permutations): every node lands next to the nodes it is reached
//! with, so an `h`-vicinity occupies a near-contiguous id range and
//! the bitset kernel's words stay hot.
//!
//! The permutation is a pure id bijection — [`CsrGraph::relabeled`]
//! produces an isomorphic graph, vicinities map elementwise, and every
//! set *cardinality* (vicinity sizes, mask intersections, density
//! numerators/denominators) is unchanged. The engine therefore runs
//! density BFS on the relabeled substrate while sampling, event sets
//! and reported node ids stay in original id space; results are
//! bit-identical either way (asserted in `tests/kernels.rs`).

use crate::adjacency::Adjacency;
use crate::csr::{CsrGraph, NodeId};

/// A bijection between a graph's original node ids and a
/// locality-optimized id space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    /// `to_new[old] = new`.
    to_new: Vec<NodeId>,
    /// `to_old[new] = old`.
    to_old: Vec<NodeId>,
}

impl Relabeling {
    /// Degree-descending + BFS-order permutation of `g`.
    ///
    /// Seeds are taken in degree-descending order (ties by ascending
    /// id); each unvisited seed starts a BFS whose discovery order —
    /// neighbors expanded in ascending original id, as stored in the
    /// CSR — assigns the next block of new ids. High-degree hubs and
    /// their vicinities end up front-packed and contiguous;
    /// disconnected low-degree debris trails at the end.
    pub fn locality_order<G: Adjacency>(g: &G) -> Self {
        let n = g.num_nodes();
        let mut seeds: Vec<NodeId> = (0..n as NodeId).collect();
        seeds.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        let mut seen = vec![false; n];
        let mut to_old: Vec<NodeId> = Vec::with_capacity(n);
        for &s in &seeds {
            if seen[s as usize] {
                continue;
            }
            seen[s as usize] = true;
            let mut qi = to_old.len();
            to_old.push(s);
            while qi < to_old.len() {
                let u = to_old[qi];
                qi += 1;
                for v in g.neighbors_iter(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        to_old.push(v);
                    }
                }
            }
        }
        let mut to_new = vec![0 as NodeId; n];
        for (new, &old) in to_old.iter().enumerate() {
            to_new[old as usize] = new as NodeId;
        }
        Relabeling { to_new, to_old }
    }

    /// Reconstruct a permutation from its `to_old` direction (the form
    /// the `.tgraph` container stores). Returns `None` unless the
    /// slice is a bijection over `0..len` — the validation gate for
    /// untrusted permutation sections.
    pub fn from_to_old(to_old: Vec<NodeId>) -> Option<Self> {
        let n = to_old.len();
        if n > u32::MAX as usize {
            return None;
        }
        let mut to_new = vec![NodeId::MAX; n];
        for (new, &old) in to_old.iter().enumerate() {
            let slot = to_new.get_mut(old as usize)?;
            if *slot != NodeId::MAX {
                return None; // duplicate image
            }
            *slot = new as NodeId;
        }
        Some(Relabeling { to_new, to_old })
    }

    /// The identity permutation over `n` ids (useful as a no-op
    /// baseline in benches and tests).
    pub fn identity(n: usize) -> Self {
        let ids: Vec<NodeId> = (0..n as NodeId).collect();
        Relabeling {
            to_new: ids.clone(),
            to_old: ids,
        }
    }

    /// Number of ids the permutation covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.to_new.len()
    }

    /// Is the permutation over zero ids?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.to_new.is_empty()
    }

    /// Original id → relabeled id.
    #[inline]
    pub fn to_new(&self, v: NodeId) -> NodeId {
        self.to_new[v as usize]
    }

    /// Relabeled id → original id.
    #[inline]
    pub fn to_old(&self, v: NodeId) -> NodeId {
        self.to_old[v as usize]
    }

    /// Map a slice of original ids into relabeled id space.
    pub fn map_to_new(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        nodes.iter().map(|&v| self.to_new(v)).collect()
    }

    /// Map a slice of relabeled ids back to original id space.
    pub fn map_to_old(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        nodes.iter().map(|&v| self.to_old(v)).collect()
    }
}

/// A graph bundled with the permutation that produced it: the
/// relabeled density substrate plus both direction maps, built once
/// and shared (`Arc`) by every engine over the same graph version.
///
/// Generic over the adjacency encoding: the substrate of a plain
/// [`CsrGraph`] is a plain CSR, the substrate of a
/// [`crate::compressed::CompressedCsr`] stays compressed.
#[derive(Debug, Clone)]
pub struct RelabeledGraph<G = CsrGraph> {
    graph: G,
    map: Relabeling,
    /// Fingerprint of the *original* graph, so engines can assert the
    /// substrate matches the graph they sample on.
    original_fingerprint: u64,
}

impl<G: Adjacency> RelabeledGraph<G> {
    /// Build the locality-ordered substrate for `g`.
    pub fn build(g: &G) -> Self {
        Self::with_map(g, Relabeling::locality_order(g))
    }

    /// Build the substrate for `g` under a caller-supplied permutation
    /// (e.g. one precomputed and shipped in a `.tgraph` container).
    ///
    /// # Panics
    ///
    /// Panics if `map` covers a different node count than `g`.
    pub fn with_map(g: &G, map: Relabeling) -> Self {
        assert_eq!(
            map.len(),
            g.num_nodes(),
            "relabeling covers {} ids, graph has {} nodes",
            map.len(),
            g.num_nodes()
        );
        RelabeledGraph {
            graph: g.relabeled_twin(&map),
            map,
            original_fingerprint: g.fingerprint(),
        }
    }

    /// The relabeled graph (isomorphic to the original).
    #[inline]
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// The id bijection.
    #[inline]
    pub fn map(&self) -> &Relabeling {
        &self.map
    }

    /// Was this substrate built from (a graph structurally identical
    /// to) `g`? Compares fingerprints, which are encoding-independent.
    pub fn matches_original<H: Adjacency>(&self, g: &H) -> bool {
        self.original_fingerprint == g.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsScratch;
    use crate::csr::from_edges;

    fn tail_star() -> CsrGraph {
        // Hub 3 with leaves {0, 1, 2, 4}; tail 4-5-6; isolated 7.
        from_edges(8, &[(3, 0), (3, 1), (3, 2), (3, 4), (4, 5), (5, 6)])
    }

    #[test]
    fn permutation_is_a_bijection() {
        let g = tail_star();
        let m = Relabeling::locality_order(&g);
        assert_eq!(m.len(), 8);
        for v in 0..8u32 {
            assert_eq!(m.to_old(m.to_new(v)), v);
            assert_eq!(m.to_new(m.to_old(v)), v);
        }
        let mut news: Vec<NodeId> = (0..8).map(|v| m.to_new(v)).collect();
        news.sort_unstable();
        assert_eq!(news, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn highest_degree_node_becomes_zero_and_isolated_trails() {
        let g = tail_star();
        let m = Relabeling::locality_order(&g);
        assert_eq!(m.to_new(3), 0, "hub seeds the order");
        assert_eq!(m.to_new(7), 7, "isolated node trails");
        // Hub's neighbors are discovered next: new ids 1..=4.
        for v in [0u32, 1, 2, 4] {
            assert!(m.to_new(v) <= 4, "leaf {v} packed next to the hub");
        }
    }

    #[test]
    fn relabeled_graph_is_isomorphic() {
        let g = tail_star();
        let r = RelabeledGraph::build(&g);
        assert!(r.matches_original(&g));
        assert_eq!(r.graph().num_nodes(), g.num_nodes());
        assert_eq!(r.graph().num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(
                r.graph().has_edge(r.map().to_new(u), r.map().to_new(v)),
                "edge ({u},{v}) lost"
            );
        }
        for v in g.nodes() {
            assert_eq!(g.degree(v), r.graph().degree(r.map().to_new(v)));
        }
    }

    #[test]
    fn vicinity_sizes_preserved() {
        let g = tail_star();
        let r = RelabeledGraph::build(&g);
        let mut s = BfsScratch::new(8);
        for v in 0..8u32 {
            for h in 0..4 {
                assert_eq!(
                    s.vicinity_size(&g, v, h),
                    s.vicinity_size(r.graph(), r.map().to_new(v), h),
                    "v = {v}, h = {h}"
                );
            }
        }
    }

    #[test]
    fn map_slices_round_trip() {
        let g = tail_star();
        let m = Relabeling::locality_order(&g);
        let orig = vec![1u32, 5, 7];
        assert_eq!(m.map_to_old(&m.map_to_new(&orig)), orig);
        let id = Relabeling::identity(4);
        assert_eq!(id.map_to_new(&[0, 3]), vec![0, 3]);
        assert!(!id.is_empty());
        assert!(Relabeling::identity(0).is_empty());
    }

    #[test]
    fn bfs_locality_packs_vicinities() {
        // On a two-community graph the relabeled ids of a community
        // form a contiguous block: max(new ids) - min(new ids) spans
        // exactly the community.
        let mut edges = Vec::new();
        for c in [0u32, 10] {
            for i in 0..10 {
                for j in (i + 1)..10 {
                    edges.push((c + i, c + j));
                }
            }
        }
        let g = from_edges(20, &edges);
        let m = Relabeling::locality_order(&g);
        for c in [0u32, 10] {
            let news: Vec<NodeId> = (c..c + 10).map(|v| m.to_new(v)).collect();
            let (lo, hi) = (*news.iter().min().unwrap(), *news.iter().max().unwrap());
            assert_eq!(hi - lo, 9, "community at {c} not contiguous: {news:?}");
        }
    }
}
