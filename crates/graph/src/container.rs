//! The `.tgraph` binary graph container.
//!
//! The on-disk form of [`CompressedCsr`]: little-endian throughout,
//! magic + version up front, and every section independently
//! CRC-32-checksummed — the same codec/CRC discipline as
//! `tesc::persist` (the snapshot and WAL formats re-export this
//! crate's [`crate::codec`] and [`crate::crc`] modules, so all binary
//! frames in the workspace share one dialect).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     8 B   b"TGRAPH01" (version is the trailing two digits)
//! num_nodes 8 B
//! num_edges 8 B   undirected count
//! fingerprint 8 B plain-CSR fingerprint of the content
//! flags     8 B   bit 0: permutation section present
//! header_crc 4 B  CRC-32 of the 40 bytes above
//! section: directory   u64 len | LEB128 *up*-degree per node | u32 crc
//! section: adjacency   u64 len | packed half-adjacency gaps  | u32 crc
//! section: permutation u64 len | u32 `to_old` per node       | u32 crc  (optional)
//! ```
//!
//! On disk, each undirected edge is stored **once**: node `v`'s row
//! holds only its *up-neighbors* (`w > v`), delta-encoded against
//! `v + 1` (first gap `w₀ − v − 1`, then successive deltas minus one)
//! and packed with the same fixed-width chunk codec the in-memory
//! stream uses. That halves the entry count relative to the resident
//! form — and because upper-triangle gaps are measured from `v`, they
//! are *smaller* than full-row gaps, so the per-entry byte cost drops
//! too. The directory stores the varint up-degree per node (most fit
//! one byte); full degrees and row offsets are recomputed at load.
//!
//! Loading is a single linear decode of the half stream plus one
//! cursor pass that scatters each edge `(v, w)` into both endpoint
//! rows. Rows come out sorted *without a sort*: within row `r`, the
//! down-entries (mirrored from rows `v < r`) arrive in ascending `v`
//! order because the stream is walked in row order, the up-entries
//! are ascending by the gap encoding, and every down-entry `< r <`
//! every up-entry. The rebuilt graph is then re-packed and its
//! fingerprint checked against the header — a flipped bit has to beat
//! a section CRC *and* a 64-bit FNV fingerprint to be accepted, and
//! the fuzz suite (`tests/fuzz_parsers.rs`) holds the decoder to
//! "typed error, never a panic" on arbitrary garbage.
//!
//! The optional permutation section carries a precomputed
//! locality-relabel order ([`Relabeling`]) so engines can build their
//! relabeled substrate without re-running the BFS ordering pass at
//! load; the adjacency itself always stays in original id order, so
//! fingerprints are encoding-independent.

use crate::codec::{put_u32, put_u64, Cursor, DecodeError};
use crate::compressed::{
    checked_read_varint, checked_walk_chunks, encode_gaps_chunked, write_varint, CompressedCsr,
};
use crate::crc::crc32;
use crate::csr::{CsrGraph, NodeId};
use crate::relabel::Relabeling;

/// Magic + version prefix of every `.tgraph` file.
pub const TGRAPH_MAGIC: &[u8; 8] = b"TGRAPH01";

/// Flag bit: the optional permutation section is present.
const FLAG_PERMUTATION: u64 = 1;

/// A decoded `.tgraph` container: the graph plus the optional
/// precomputed locality permutation.
#[derive(Debug, Clone)]
pub struct TgraphFile {
    /// The (validated) compressed graph.
    pub graph: CompressedCsr,
    /// Precomputed locality-relabel permutation, if the writer stored
    /// one (`tesc-cli convert --relabel`).
    pub relabeling: Option<Relabeling>,
}

/// Does `bytes` start with the `.tgraph` magic? The sniff used by
/// loaders that accept both text edge lists and binary containers.
pub fn is_tgraph(bytes: &[u8]) -> bool {
    bytes.len() >= TGRAPH_MAGIC.len() && &bytes[..TGRAPH_MAGIC.len()] == TGRAPH_MAGIC
}

fn put_section(out: &mut Vec<u8>, payload: &[u8]) {
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

/// Serialize `graph` (and optionally a locality permutation over its
/// nodes) into `.tgraph` bytes.
///
/// # Panics
///
/// Panics if `perm` covers a different node count than the graph.
pub fn encode_tgraph(graph: &CompressedCsr, perm: Option<&Relabeling>) -> Vec<u8> {
    if let Some(p) = perm {
        assert_eq!(
            p.len(),
            graph.num_nodes(),
            "permutation covers {} ids, graph has {} nodes",
            p.len(),
            graph.num_nodes()
        );
    }
    let n = graph.num_nodes();
    let mut directory = Vec::with_capacity(n);
    let mut half = Vec::with_capacity(graph.adjacency_bytes() / 2 + 1);
    let mut gaps: Vec<u32> = Vec::new();
    for v in 0..n as NodeId {
        gaps.clear();
        let mut base = v + 1;
        graph.for_each_neighbor(v, |w| {
            if w > v {
                gaps.push(w - base);
                base = w + 1;
            }
        });
        write_varint(&mut directory, gaps.len() as u32);
        encode_gaps_chunked(&mut half, &gaps);
    }
    let mut out = Vec::with_capacity(
        48 + directory.len() + half.len() + perm.map_or(0, |p| 4 * p.len() + 12),
    );
    out.extend_from_slice(TGRAPH_MAGIC);
    put_u64(&mut out, graph.num_nodes() as u64);
    put_u64(&mut out, graph.num_edges() as u64);
    put_u64(&mut out, graph.fingerprint());
    put_u64(&mut out, if perm.is_some() { FLAG_PERMUTATION } else { 0 });
    let header_crc = crc32(&out);
    put_u32(&mut out, header_crc);
    put_section(&mut out, &directory);
    put_section(&mut out, &half);
    if let Some(p) = perm {
        let mut payload = Vec::with_capacity(4 * p.len());
        for v in 0..p.len() as NodeId {
            put_u32(&mut payload, p.to_old(v));
        }
        put_section(&mut out, &payload);
    }
    out
}

fn take_section<'a>(c: &mut Cursor<'a>, what: &str) -> Result<&'a [u8], DecodeError> {
    let len = c.len_prefix(1)?;
    let start = c.pos();
    let payload = c.take(len)?;
    let stored = c.u32()?;
    let actual = crc32(payload);
    if stored != actual {
        return Err(DecodeError {
            offset: start,
            message: format!(
                "{what} section CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
            ),
        });
    }
    Ok(payload)
}

/// Decode and fully validate `.tgraph` bytes, reconstructing the
/// symmetric [`CompressedCsr`] from the half-adjacency stream. Every
/// acceptance path goes through the section CRCs plus a full
/// structural walk and fingerprint recomputation; any failure is a
/// typed [`DecodeError`], never a panic.
pub fn decode_tgraph(bytes: &[u8]) -> Result<TgraphFile, DecodeError> {
    let mut c = Cursor::new(bytes);
    let magic = c.take(8)?;
    if magic != TGRAPH_MAGIC {
        return Err(DecodeError {
            offset: 0,
            message: format!("bad magic {magic:02x?}, expected {TGRAPH_MAGIC:02x?}"),
        });
    }
    let num_nodes = c.u64()?;
    let num_edges = c.u64()?;
    let fingerprint = c.u64()?;
    let flags = c.u64()?;
    let header_end = c.pos();
    let stored = c.u32()?;
    let actual = crc32(&bytes[..header_end]);
    if stored != actual {
        return Err(DecodeError {
            offset: header_end,
            message: format!("header CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"),
        });
    }
    if flags & !FLAG_PERMUTATION != 0 {
        return Err(DecodeError {
            offset: 32,
            message: format!("unknown flags {flags:#x}"),
        });
    }
    let n = usize::try_from(num_nodes).map_err(|_| DecodeError {
        offset: 8,
        message: format!("node count {num_nodes} overflows"),
    })?;
    // A degree varint is ≥ 1 byte, so the directory section itself
    // bounds n; reject counts the remaining bytes cannot cover before
    // allocating anything.
    if n > c.remaining() {
        return Err(DecodeError {
            offset: 8,
            message: format!("{n} nodes cannot fit in {} remaining bytes", c.remaining()),
        });
    }
    if n > u32::MAX as usize {
        return Err(DecodeError {
            offset: 8,
            message: format!("{n} nodes do not fit u32 ids"),
        });
    }

    let directory = take_section(&mut c, "directory")?;
    let mut ups = Vec::with_capacity(n);
    let mut pos = 0usize;
    for v in 0..n {
        ups.push(
            checked_read_varint(directory, &mut pos).map_err(|e| DecodeError {
                offset: e.offset,
                message: format!("directory entry {v}: {}", e.message),
            })?,
        );
    }
    if pos != directory.len() {
        return Err(DecodeError {
            offset: pos,
            message: format!("{} trailing directory bytes", directory.len() - pos),
        });
    }
    let up_sum: u64 = ups.iter().map(|&d| d as u64).sum();
    if up_sum != num_edges {
        return Err(DecodeError {
            offset: 16,
            message: format!("header claims {num_edges} edges, directory sums to {up_sum}"),
        });
    }

    // Pass A over the half-adjacency stream: full structural
    // validation (chunk walk, id ranges, exact consumption) plus the
    // down-degree counts — before the edge arrays are allocated, so a
    // lying header cannot provoke a huge allocation.
    let half = take_section(&mut c, "adjacency")?;
    let mut full_deg = vec![0u32; n];
    let mut pos = 0usize;
    for (v, &up) in ups.iter().enumerate() {
        let mut base = v as u64 + 1;
        checked_walk_chunks(half, &mut pos, up, |gap| {
            let w = base + gap as u64;
            if w >= n as u64 {
                return Err(DecodeError {
                    offset: 0,
                    message: format!("node {v} up-neighbor {w} out of range for {n} nodes"),
                });
            }
            full_deg[w as usize] += 1;
            base = w + 1;
            Ok(())
        })?;
    }
    if pos != half.len() {
        return Err(DecodeError {
            offset: pos,
            message: format!("{} trailing adjacency bytes", half.len() - pos),
        });
    }
    for (d, &up) in full_deg.iter_mut().zip(ups.iter()) {
        *d += up;
    }

    // Offsets from the full degrees, then pass B scatters each stored
    // edge (v, w) into both endpoint rows. The cursor fill emits every
    // row already sorted (see the module docs), so the plain CSR can
    // be assembled directly and re-packed.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut prefix = 0u64;
    offsets.push(0u64);
    for &d in &full_deg {
        prefix += d as u64;
        offsets.push(prefix);
    }
    let mut cursor: Vec<u64> = offsets[..n].to_vec();
    let mut neighbors = vec![0 as NodeId; prefix as usize];
    let mut pos = 0usize;
    for (v, &up) in ups.iter().enumerate() {
        let mut base = v as NodeId + 1;
        // The stream was validated in pass A; this walk cannot fail.
        checked_walk_chunks(half, &mut pos, up, |gap| {
            let w = base + gap;
            neighbors[cursor[v] as usize] = w;
            cursor[v] += 1;
            neighbors[cursor[w as usize] as usize] = v as NodeId;
            cursor[w as usize] += 1;
            base = w + 1;
            Ok(())
        })?;
    }
    let plain = CsrGraph::from_parts(offsets.into_boxed_slice(), neighbors.into_boxed_slice());
    let graph = CompressedCsr::from_graph(&plain);
    if graph.fingerprint() != fingerprint {
        return Err(DecodeError {
            offset: 24,
            message: format!(
                "content fingerprint {:#018x} != header {fingerprint:#018x}",
                graph.fingerprint()
            ),
        });
    }

    let relabeling = if flags & FLAG_PERMUTATION != 0 {
        let payload = take_section(&mut c, "permutation")?;
        if payload.len() != 4 * n {
            return Err(DecodeError {
                offset: 0,
                message: format!(
                    "permutation section is {} bytes, expected {}",
                    payload.len(),
                    4 * n
                ),
            });
        }
        let to_old: Vec<NodeId> = payload
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        Some(Relabeling::from_to_old(to_old).ok_or_else(|| DecodeError {
            offset: 0,
            message: "permutation section is not a bijection over the node ids".into(),
        })?)
    } else {
        None
    };

    if !c.is_empty() {
        return Err(DecodeError {
            offset: c.pos(),
            message: format!("{} trailing bytes after the last section", c.remaining()),
        });
    }
    Ok(TgraphFile { graph, relabeling })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> CompressedCsr {
        let mut rng = StdRng::seed_from_u64(3);
        CompressedCsr::from_graph(&generators::barabasi_albert(200, 3, &mut rng))
    }

    #[test]
    fn round_trips_without_permutation() {
        let c = sample();
        let bytes = encode_tgraph(&c, None);
        assert!(is_tgraph(&bytes));
        let file = decode_tgraph(&bytes).expect("round trip");
        assert_eq!(file.graph, c);
        assert!(file.relabeling.is_none());
    }

    #[test]
    fn round_trips_with_permutation() {
        let c = sample();
        let map = Relabeling::locality_order(&c.to_csr());
        let bytes = encode_tgraph(&c, Some(&map));
        let file = decode_tgraph(&bytes).expect("round trip");
        assert_eq!(file.graph, c);
        assert_eq!(file.relabeling.as_ref(), Some(&map));
    }

    #[test]
    fn smaller_than_plain_pairs_on_disk() {
        let c = sample();
        let bytes = encode_tgraph(&c, None);
        // Raw (u32, u32) pairs would cost 8 B/edge; the container must
        // beat that handily even with headers and CRCs.
        assert!(
            bytes.len() < 8 * c.num_edges(),
            "{} B container vs {} B raw pairs",
            bytes.len(),
            8 * c.num_edges()
        );
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let c = CompressedCsr::from_graph(&from_edges(9, &[(0, 3), (1, 3), (3, 8), (2, 7)]));
        let map = Relabeling::locality_order(&c.to_csr());
        let bytes = encode_tgraph(&c, Some(&map));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_tgraph(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let bytes = encode_tgraph(&sample(), None);
        for k in 0..bytes.len() {
            assert!(decode_tgraph(&bytes[..k]).is_err(), "truncation at {k}");
        }
    }

    #[test]
    fn header_lies_are_rejected() {
        let c = sample();
        // Tamper with the edge count but fix up the header CRC, so
        // only the content cross-check can catch it.
        let mut bytes = encode_tgraph(&c, None);
        let lied = (c.num_edges() as u64 + 1).to_le_bytes();
        bytes[16..24].copy_from_slice(&lied);
        let fixed = crc32(&bytes[..40]).to_le_bytes();
        bytes[40..44].copy_from_slice(&fixed);
        let err = decode_tgraph(&bytes).unwrap_err();
        assert!(err.message.contains("edges"), "unexpected error: {err}");
    }

    #[test]
    fn empty_graph_round_trips() {
        let c = CompressedCsr::from_graph(&from_edges(0, &[]));
        let file = decode_tgraph(&encode_tgraph(&c, None)).expect("empty");
        assert_eq!(file.graph.num_nodes(), 0);
    }
}
