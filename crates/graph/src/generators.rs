//! Random and deterministic graph generators.
//!
//! The paper evaluates on real graphs (DBLP, Intrusion, Twitter) that
//! are not redistributable; these generators produce synthetic stand-ins
//! with the structural properties the evaluation actually exercises:
//! small-world diameter, heavy-tailed degrees (Barabási–Albert),
//! community structure (planted partition), and tunable density
//! (Erdős–Rényi). Deterministic toys (path, cycle, star, grid, complete)
//! serve the unit tests.
//!
//! All generators take a caller-supplied RNG so every experiment in the
//! repository is reproducible from a seed.

use crate::csr::{CsrGraph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Pack an undirected edge into a dedup key.
#[inline]
fn edge_key(u: NodeId, v: NodeId) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// Erdős–Rényi `G(n, p)`: every pair independently an edge with
/// probability `p`.
///
/// Uses geometric gap-sampling per row, so the cost is
/// `O(n + expected edges)` rather than `O(n²)` — necessary for the
/// multi-million-node Twitter-like scalability graphs.
pub fn erdos_renyi_gnp(n: usize, p: f64, rng: &mut impl Rng) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p == 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    let log1p = (1.0 - p).ln();
    for u in 0..(n - 1) as NodeId {
        // Skip-sample columns in (u, n): gap ~ Geometric(p).
        let mut v = u as i64; // "cursor" position; next candidate is v + gap + 1
        loop {
            let r: f64 = rng.gen_range(0.0..1.0f64);
            // log(1-r) is ≤ 0; gap ≥ 0.
            let gap = ((1.0 - r).ln() / log1p).floor() as i64;
            v += gap + 1;
            if v >= n as i64 {
                break;
            }
            b.add_edge(u, v as NodeId);
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly.
pub fn erdos_renyi_gnm(n: usize, m: usize, rng: &mut impl Rng) -> CsrGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "cannot place {m} edges in a simple graph on {n} nodes (max {max_edges})"
    );
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut seen = HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        if seen.insert(edge_key(u, v)) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: start from a small seed
/// clique, attach each new node to `m` existing nodes chosen
/// proportionally to degree (via the standard repeated-endpoint trick).
///
/// Produces the heavy-tailed degree distribution and `O(log n)` diameter
/// of social graphs — the paper's Twitter stand-in.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut impl Rng) -> CsrGraph {
    assert!(m >= 1, "attachment count m must be ≥ 1");
    assert!(n > m, "need more nodes ({n}) than attachment count ({m})");
    // Endpoint multiset: each edge contributes both endpoints, so
    // sampling uniformly from it is degree-proportional sampling. It
    // doubles as the edge list (entries 2i, 2i+1 are edge i), and BA
    // never emits a duplicate edge — per-node targets are sampled
    // without replacement and the seed clique enumerates each pair
    // once — so the CSR is filled straight from this array. Skipping
    // the sort + dedup builder (and its second edge-list copy) keeps
    // peak heap at ~16 B/edge + O(n), which is what lets the
    // million-node Twitter configuration generate in streaming memory.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);

    // Seed: a clique on m+1 nodes (guarantees every early node has
    // degree ≥ m and the endpoint pool is nonempty).
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for new in (m + 1)..n {
        let new = new as NodeId;
        targets.clear();
        // Degree-proportional sampling without replacement.
        while targets.len() < m {
            let &t = endpoints
                .choose(rng)
                .expect("endpoint pool is nonempty after seeding");
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    crate::csr::from_endpoint_pairs(n, &endpoints)
}

/// Watts–Strogatz small-world graph: ring lattice with `k` neighbors per
/// node (k even), each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut impl Rng) -> CsrGraph {
    assert!(k.is_multiple_of(2), "k must be even, got {k}");
    assert!(k >= 2 && n > k, "need n > k ≥ 2 (n={n}, k={k})");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut seen = HashSet::with_capacity(n * k);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * k / 2);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            let key = edge_key(u as NodeId, v as NodeId);
            if seen.insert(key) {
                edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    // Rewire: replace (u, v) with (u, w) for uniform random w.
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for edge in edges.iter_mut() {
        let (u, v) = *edge;
        if rng.gen_range(0.0..1.0f64) < beta {
            // Try a few times to find a fresh endpoint; fall back to the
            // original edge in pathological (dense) cases.
            let mut rewired = false;
            for _ in 0..32 {
                let w = rng.gen_range(0..n as NodeId);
                if w == u {
                    continue;
                }
                let key = edge_key(u, w);
                if seen.contains(&key) {
                    continue;
                }
                seen.remove(&edge_key(u, v));
                seen.insert(key);
                *edge = (u, w);
                rewired = true;
                break;
            }
            let _ = rewired;
        }
    }
    for &(u, v) in &edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Planted-partition graph: `communities` blocks of `block_size` nodes
/// each; within-block pairs are edges with probability `p_in`,
/// cross-block pairs with probability `p_out`.
///
/// Returns the graph and the community label of every node. Node ids
/// are contiguous per block (block `c` owns
/// `c*block_size .. (c+1)*block_size`).
pub fn planted_partition(
    communities: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut impl Rng,
) -> (CsrGraph, Vec<u32>) {
    assert!(communities >= 1 && block_size >= 1);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n = communities * block_size;
    let mut b = GraphBuilder::new(n);
    let labels: Vec<u32> = (0..n).map(|v| (v / block_size) as u32).collect();

    let mut sample_range = |b: &mut GraphBuilder, u: NodeId, lo: usize, hi: usize, p: f64| {
        // Skip-sample targets in [lo, hi) with probability p each.
        if p <= 0.0 || lo >= hi {
            return;
        }
        if p >= 1.0 {
            for v in lo..hi {
                b.add_edge(u, v as NodeId);
            }
            return;
        }
        let log1p = (1.0 - p).ln();
        let mut v = lo as i64 - 1;
        loop {
            let r: f64 = rng.gen_range(0.0..1.0f64);
            let gap = ((1.0 - r).ln() / log1p).floor() as i64;
            v += gap + 1;
            if v >= hi as i64 {
                break;
            }
            b.add_edge(u, v as NodeId);
        }
    };

    for u in 0..n {
        let block = u / block_size;
        let block_end = (block + 1) * block_size;
        // Within-block, only targets above u (avoid double counting).
        sample_range(&mut b, u as NodeId, u + 1, block_end.min(n), p_in);
        // Cross-block: everything from block_end up.
        sample_range(&mut b, u as NodeId, block_end, n, p_out);
    }
    (b.build(), labels)
}

/// Path graph `0 — 1 — … — n−1`.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Cycle graph on `n ≥ 3` nodes.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_edge(v - 1, v);
    }
    b.add_edge(n as NodeId - 1, 0);
    b.build()
}

/// Star graph: node 0 is the hub, `1..n` are leaves.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 2, "a star needs at least 2 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_edge(0, v);
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// `w × h` grid graph (4-neighborhood); node `(x, y)` has id `x*h + y`.
pub fn grid(w: usize, h: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(w * h);
    let id = |x: usize, y: usize| (x * h + y) as NodeId;
    for x in 0..w {
        for y in 0..h {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 2000;
        let p = 0.005;
        let g = erdos_renyi_gnp(n, p, &mut rng(7));
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        // 5-sigma band for a binomial with this variance.
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sigma,
            "edges {got} vs expected {expected} (σ={sigma:.1})"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(50, 0.0, &mut rng(1)).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, &mut rng(1)).num_edges(), 45);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 250, &mut rng(3));
        assert_eq!(g.num_edges(), 250);
        assert_eq!(g.num_nodes(), 100);
    }

    #[test]
    fn gnm_full_graph() {
        let g = erdos_renyi_gnm(6, 15, &mut rng(3));
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn gnm_too_many_edges_panics() {
        let _ = erdos_renyi_gnm(4, 7, &mut rng(0));
    }

    #[test]
    fn ba_degree_and_connectivity() {
        let g = barabasi_albert(500, 3, &mut rng(11));
        assert_eq!(g.num_nodes(), 500);
        assert!(is_connected(&g), "BA graphs are connected by construction");
        // Every non-seed node attaches with exactly m edges, so degree ≥ m... for
        // new nodes; seed nodes have degree ≥ m from the clique.
        for v in g.nodes() {
            assert!(g.degree(v) >= 3, "node {v} degree {}", g.degree(v));
        }
        // Heavy tail: max degree far above average.
        assert!(g.max_degree() as f64 > 3.0 * g.average_degree());
    }

    #[test]
    fn ba_edge_count_formula() {
        let (n, m) = (200, 2);
        let g = barabasi_albert(n, m, &mut rng(5));
        // Seed clique has m(m+1)/2 edges; each later node adds exactly m.
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn ws_degree_regular_before_rewiring() {
        let g = watts_strogatz(60, 6, 0.0, &mut rng(2));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 6);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn ws_rewiring_preserves_edge_count() {
        let g0 = watts_strogatz(100, 4, 0.0, &mut rng(4));
        let g1 = watts_strogatz(100, 4, 0.3, &mut rng(4));
        assert_eq!(g0.num_edges(), g1.num_edges());
    }

    #[test]
    fn planted_partition_density_contrast() {
        let (g, labels) = planted_partition(4, 100, 0.2, 0.002, &mut rng(9));
        assert_eq!(g.num_nodes(), 400);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[399], 3);
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                within += 1;
            } else {
                across += 1;
            }
        }
        // Expected within ≈ 4 * C(100,2) * 0.2 = 3960; across ≈ C(400,2)*... cross
        // pairs = 400*300/2 = 60000 * 0.002 = 120.
        assert!(within > 3000, "within-block edges {within}");
        assert!(across < 400, "cross-block edges {across}");
        assert!(within > 10 * across);
    }

    #[test]
    fn deterministic_toys() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(star(5).degree(0), 4);
        assert_eq!(complete(5).num_edges(), 10);
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert!(is_connected(&g));
    }

    #[test]
    fn generators_are_seed_reproducible() {
        let a = barabasi_albert(300, 2, &mut rng(42));
        let b = barabasi_albert(300, 2, &mut rng(42));
        assert_eq!(a, b);
        let c = erdos_renyi_gnp(300, 0.01, &mut rng(42));
        let d = erdos_renyi_gnp(300, 0.01, &mut rng(42));
        assert_eq!(c, d);
    }

    #[test]
    fn generated_graphs_are_simple() {
        // No self loops (builder would panic) and no parallel edges
        // (CSR neighbor lists strictly increasing).
        for g in [
            erdos_renyi_gnp(200, 0.05, &mut rng(1)),
            erdos_renyi_gnm(200, 500, &mut rng(2)),
            barabasi_albert(200, 4, &mut rng(3)),
            watts_strogatz(200, 6, 0.2, &mut rng(4)),
            planted_partition(4, 50, 0.3, 0.01, &mut rng(5)).0,
        ] {
            for v in g.nodes() {
                let ns = g.neighbors(v);
                assert!(ns.windows(2).all(|w| w[0] < w[1]));
                assert!(!ns.contains(&v));
            }
        }
    }
}
