//! Random edge perturbation — the graph-density experiment of Fig. 8.
//!
//! The paper alters the DBLP graph "by randomly adding/removing edges"
//! and re-runs the correlation tests: removing edges stretches
//! distances (breaking positive correlations), adding edges shrinks
//! them (breaking negative correlations).

use crate::csr::{CsrGraph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Remove `count` uniformly random edges. Returns the new graph and the
/// removed edges.
///
/// # Panics
///
/// Panics if `count > |E|`.
pub fn remove_random_edges(
    g: &CsrGraph,
    count: usize,
    rng: &mut impl Rng,
) -> (CsrGraph, Vec<(NodeId, NodeId)>) {
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    assert!(
        count <= edges.len(),
        "cannot remove {count} of {} edges",
        edges.len()
    );
    // Partial Fisher–Yates: shuffle only the prefix we need.
    for i in 0..count {
        let j = rng.gen_range(i..edges.len());
        edges.swap(i, j);
    }
    let removed: Vec<(NodeId, NodeId)> = edges[..count].to_vec();
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), edges.len() - count);
    b.extend_edges(edges[count..].iter().copied());
    (b.build(), removed)
}

/// Add `count` uniformly random *new* edges (no duplicates, no
/// self-loops). Returns the new graph and the added edges.
///
/// # Panics
///
/// Panics if the simple graph cannot hold `count` more edges.
pub fn add_random_edges(
    g: &CsrGraph,
    count: usize,
    rng: &mut impl Rng,
) -> (CsrGraph, Vec<(NodeId, NodeId)>) {
    let n = g.num_nodes();
    let max_edges = n * n.saturating_sub(1) / 2;
    assert!(
        g.num_edges() + count <= max_edges,
        "cannot add {count} edges: graph has {} of {max_edges} possible",
        g.num_edges()
    );
    let mut added = Vec::with_capacity(count);
    let mut fresh: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(count * 2);
    while added.len() < count {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if g.has_edge(u, v) || !fresh.insert(key) {
            continue;
        }
        added.push(key);
    }
    let mut b = g.to_builder();
    b.extend_edges(added.iter().copied());
    (b.build(), added)
}

/// Uniformly sample `count` node ids without replacement.
pub fn sample_nodes(g: &CsrGraph, count: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let n = g.num_nodes();
    assert!(count <= n, "cannot sample {count} of {n} nodes");
    if count * 3 >= n {
        // Dense case: shuffle the full id range.
        let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
        ids.shuffle(rng);
        ids.truncate(count);
        ids
    } else {
        // Sparse case: rejection into a set.
        let mut seen = HashSet::with_capacity(count * 2);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let v = rng.gen_range(0..n as NodeId);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::generators::{complete, erdos_renyi_gnm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn remove_reduces_count_and_edges_are_gone() {
        let g = erdos_renyi_gnm(200, 800, &mut rng(1));
        let (g2, removed) = remove_random_edges(&g, 100, &mut rng(2));
        assert_eq!(g2.num_edges(), 700);
        assert_eq!(removed.len(), 100);
        for &(u, v) in &removed {
            assert!(g.has_edge(u, v), "removed edge must have existed");
            assert!(!g2.has_edge(u, v), "removed edge must be gone");
        }
    }

    #[test]
    fn remove_all_edges() {
        let g = complete(6);
        let (g2, _) = remove_random_edges(&g, 15, &mut rng(3));
        assert_eq!(g2.num_edges(), 0);
        assert_eq!(g2.num_nodes(), 6);
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn remove_too_many_panics() {
        let g = from_edges(3, &[(0, 1)]);
        let _ = remove_random_edges(&g, 2, &mut rng(0));
    }

    #[test]
    fn add_increases_count_with_fresh_edges() {
        let g = erdos_renyi_gnm(200, 300, &mut rng(4));
        let (g2, added) = add_random_edges(&g, 150, &mut rng(5));
        assert_eq!(g2.num_edges(), 450);
        assert_eq!(added.len(), 150);
        for &(u, v) in &added {
            assert!(!g.has_edge(u, v), "added edge must be new");
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn add_preserves_existing_edges() {
        let g = from_edges(5, &[(0, 1), (2, 3)]);
        let (g2, _) = add_random_edges(&g, 3, &mut rng(6));
        assert!(g2.has_edge(0, 1));
        assert!(g2.has_edge(2, 3));
    }

    #[test]
    #[should_panic(expected = "cannot add")]
    fn add_beyond_complete_panics() {
        let g = complete(4);
        let _ = add_random_edges(&g, 1, &mut rng(0));
    }

    #[test]
    fn sample_nodes_distinct_and_in_range() {
        let g = erdos_renyi_gnm(50, 100, &mut rng(7));
        for count in [0, 1, 10, 49, 50] {
            let s = sample_nodes(&g, count, &mut rng(8));
            assert_eq!(s.len(), count);
            let set: HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), count, "samples must be distinct");
            assert!(s.iter().all(|&v| (v as usize) < 50));
        }
    }

    #[test]
    fn perturbation_is_seed_reproducible() {
        let g = erdos_renyi_gnm(100, 300, &mut rng(9));
        let (a, ra) = remove_random_edges(&g, 50, &mut rng(10));
        let (b, rb) = remove_random_edges(&g, 50, &mut rng(10));
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
