//! Bounded shortest-path helpers.
//!
//! The event simulator (Sec. 5.2 of the paper) needs to "randomly pick a
//! node at that distance from v"; tests need ground-truth distances to
//! validate BFS. All helpers here are hop-bounded — the paper never
//! needs unbounded distances ("we focus on relatively small h values,
//! such as h = 1, 2, 3").

use crate::bfs::BfsScratch;
use crate::csr::{CsrGraph, NodeId};

/// Shortest-path distance from `u` to `v`, or `None` if it exceeds
/// `max_h` (or the nodes are disconnected within that horizon).
pub fn bounded_distance(
    g: &CsrGraph,
    scratch: &mut BfsScratch,
    u: NodeId,
    v: NodeId,
    max_h: u32,
) -> Option<u32> {
    let mut found = None;
    scratch.visit_h_vicinity(g, &[u], max_h, |node, depth| {
        if node == v && found.is_none() {
            found = Some(depth);
        }
    });
    found
}

/// All nodes at *exactly* `d` hops from `src` (empty when none).
pub fn nodes_at_distance(
    g: &CsrGraph,
    scratch: &mut BfsScratch,
    src: NodeId,
    d: u32,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    scratch.visit_h_vicinity(g, &[src], d, |node, depth| {
        if depth == d {
            out.push(node);
        }
    });
    out
}

/// Hop distance from the node set `sources` (multi-source BFS), bounded
/// by `max_h`; entries beyond the horizon are `u32::MAX`.
pub fn distances_from_set(
    g: &CsrGraph,
    scratch: &mut BfsScratch,
    sources: &[NodeId],
    max_h: u32,
) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_nodes()];
    scratch.visit_h_vicinity(g, sources, max_h, |node, depth| {
        dist[node as usize] = depth;
    });
    dist
}

/// Connected-component labels (0-based, by discovery order).
pub fn connected_components(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut scratch = BfsScratch::new(n);
    let mut next = 0u32;
    for v in 0..n as NodeId {
        if label[v as usize] == u32::MAX {
            scratch.visit_h_vicinity(g, &[v], u32::MAX, |u, _| {
                label[u as usize] = next;
            });
            next += 1;
        }
    }
    label
}

/// Is the graph connected? (Vacuously true for 0 or 1 nodes.)
pub fn is_connected(g: &CsrGraph) -> bool {
    if g.num_nodes() <= 1 {
        return true;
    }
    let labels = connected_components(g);
    labels.iter().all(|&l| l == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    fn path5() -> CsrGraph {
        from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bounded_distance_on_path() {
        let g = path5();
        let mut s = BfsScratch::new(5);
        assert_eq!(bounded_distance(&g, &mut s, 0, 0, 3), Some(0));
        assert_eq!(bounded_distance(&g, &mut s, 0, 3, 3), Some(3));
        assert_eq!(
            bounded_distance(&g, &mut s, 0, 4, 3),
            None,
            "beyond horizon"
        );
        assert_eq!(bounded_distance(&g, &mut s, 0, 4, 4), Some(4));
    }

    #[test]
    fn bounded_distance_disconnected() {
        let g = from_edges(4, &[(0, 1), (2, 3)]);
        let mut s = BfsScratch::new(4);
        assert_eq!(bounded_distance(&g, &mut s, 0, 3, 100), None);
    }

    #[test]
    fn nodes_at_distance_rings() {
        let g = path5();
        let mut s = BfsScratch::new(5);
        assert_eq!(nodes_at_distance(&g, &mut s, 2, 0), vec![2]);
        let mut d1 = nodes_at_distance(&g, &mut s, 2, 1);
        d1.sort_unstable();
        assert_eq!(d1, vec![1, 3]);
        let mut d2 = nodes_at_distance(&g, &mut s, 2, 2);
        d2.sort_unstable();
        assert_eq!(d2, vec![0, 4]);
        assert!(nodes_at_distance(&g, &mut s, 2, 3).is_empty());
    }

    #[test]
    fn distances_from_set_takes_minimum() {
        let g = path5();
        let mut s = BfsScratch::new(5);
        let d = distances_from_set(&g, &mut s, &[0, 4], 10);
        assert_eq!(d, vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn distances_beyond_horizon_are_max() {
        let g = path5();
        let mut s = BfsScratch::new(5);
        let d = distances_from_set(&g, &mut s, &[0], 1);
        assert_eq!(d, vec![0, 1, u32::MAX, u32::MAX, u32::MAX]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert_ne!(labels[5], labels[3]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path5()));
        assert!(is_connected(&from_edges(1, &[])));
        assert!(is_connected(&from_edges(0, &[])));
    }
}
