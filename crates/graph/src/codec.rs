//! Little-endian byte-frame primitives shared by every binary format
//! in the workspace: the `.tgraph` graph container in this crate and
//! the snapshot/WAL codecs in `tesc::persist` (which re-exports this
//! module, so the two layers share one `DecodeError` type).
//!
//! Every multi-byte integer in the formats is little-endian. Reads go
//! through [`Cursor`], which bounds-checks every access and reports a
//! structured [`DecodeError`] instead of panicking — the decoders sit
//! behind CRC checks, but the fuzz suite feeds them arbitrary bytes
//! directly, so "never panic on garbage" is part of their contract.

/// Why a frame could not be decoded. `offset` is the byte position
/// (within the decoded region) at which the problem was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Cursor over `bytes`, starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError {
            offset: self.pos,
            message: message.into(),
        }
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.err(format!("need {n} bytes, {} left", self.remaining())));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `u64` length prefix that must be coverable by the bytes
    /// still in the frame (`bytes_per_item` each) — the guard that
    /// keeps a corrupt length field from provoking a huge allocation.
    pub fn len_prefix(&mut self, bytes_per_item: usize) -> Result<usize, DecodeError> {
        let raw = self.u64()?;
        let n = usize::try_from(raw).map_err(|_| self.err(format!("length {raw} overflows")))?;
        match n.checked_mul(bytes_per_item) {
            Some(total) if total <= self.remaining() => Ok(n),
            _ => Err(self.err(format!(
                "length {n} × {bytes_per_item} B exceeds the {} bytes left",
                self.remaining()
            ))),
        }
    }
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_bounds() {
        let mut buf = Vec::new();
        buf.push(7u8);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 42);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), 42);
        assert!(c.is_empty());
        assert!(c.u8().is_err(), "reads past the end are errors");
    }

    #[test]
    fn len_prefix_rejects_oversized_counts() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // absurd count
        let mut c = Cursor::new(&buf);
        let err = c.len_prefix(4).unwrap_err();
        assert!(err.message.contains("exceeds") || err.message.contains("overflows"));
        // A plausible count with enough backing bytes is accepted.
        let mut buf = Vec::new();
        put_u64(&mut buf, 2);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 2);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.len_prefix(4).unwrap(), 2);
    }
}
