//! Cooperative deadlines and cancellation for long-running searches.
//!
//! A [`Budget`] is a cheap, cloneable token carrying an optional
//! deadline and an atomic cancel flag. Work loops check it at bounded
//! intervals — the BFS kernels once per frontier level, the density
//! executors once per reference node or source group, the batch/rank
//! drivers once per pair — and unwind with a typed [`Interrupted`]
//! error when it is exhausted.
//!
//! Two properties make the protocol sound without `Result`-threading
//! every inner loop:
//!
//! * **Exhaustion is sticky.** A passed deadline stays passed and the
//!   cancel flag is never cleared, so once [`Budget::is_exhausted`]
//!   returns `true` it returns `true` forever. A kernel may therefore
//!   bail out mid-search leaving *partial* state behind, as long as
//!   every budget-aware caller re-checks the budget before publishing
//!   anything derived from that state — the re-check is guaranteed to
//!   observe the exhaustion and discard the partials.
//! * **The unlimited budget is free.** [`Budget::unlimited`] carries
//!   no allocation and its checks compile to a `None` test, so every
//!   pre-existing caller pays nothing.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deadline + cancellation token shared by everything working on one
/// request. Clones share the same deadline and cancel flag.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

#[derive(Debug)]
struct BudgetInner {
    start: Instant,
    deadline: Option<Instant>,
    limit: Option<Duration>,
    cancel: AtomicBool,
}

impl Budget {
    /// A budget that is never exhausted. Checks are near-free.
    pub fn unlimited() -> Self {
        Budget { inner: None }
    }

    /// A budget that exhausts `limit` after its creation (it can also
    /// be cancelled early via [`Budget::cancel`]).
    pub fn with_deadline(limit: Duration) -> Self {
        let start = Instant::now();
        Budget {
            inner: Some(Arc::new(BudgetInner {
                start,
                deadline: start.checked_add(limit),
                limit: Some(limit),
                cancel: AtomicBool::new(false),
            })),
        }
    }

    /// A budget with no deadline that exhausts only when
    /// [`Budget::cancel`] is called.
    pub fn cancellable() -> Self {
        Budget {
            inner: Some(Arc::new(BudgetInner {
                start: Instant::now(),
                deadline: None,
                limit: None,
                cancel: AtomicBool::new(false),
            })),
        }
    }

    /// Does this budget never exhaust?
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Set the cancel flag (sticky; a no-op on unlimited budgets).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancel.store(true, Ordering::SeqCst);
        }
    }

    /// Has the deadline passed or the cancel flag been set? Once
    /// `true`, stays `true`.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancel.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// `Ok(())` while the budget holds, `Err` once exhausted.
    #[inline]
    pub fn check(&self) -> Result<(), Interrupted> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let cancelled = inner.cancel.load(Ordering::Relaxed);
        if cancelled || inner.deadline.is_some_and(|d| Instant::now() >= d) {
            Err(Interrupted {
                elapsed: inner.start.elapsed(),
                limit: inner.limit,
                cancelled,
            })
        } else {
            Ok(())
        }
    }

    /// Time since the budget was created (zero for unlimited budgets).
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |i| i.start.elapsed())
    }

    /// The configured deadline duration (`None` when there is none).
    pub fn limit(&self) -> Option<Duration> {
        self.inner.as_ref().and_then(|i| i.limit)
    }

    /// Time left before the deadline (`None` when there is no
    /// deadline; zero once passed).
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        let deadline = inner.deadline?;
        Some(deadline.saturating_duration_since(Instant::now()))
    }
}

/// Typed unwind carried by every layer when a [`Budget`] exhausts:
/// how long the work ran, the configured limit, and whether the cause
/// was an explicit cancel rather than a passed deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// Wall time between budget creation and the failed check.
    pub elapsed: Duration,
    /// The configured deadline (`None` for cancel-only budgets).
    pub limit: Option<Duration>,
    /// `true` when the cancel flag caused the interruption.
    pub cancelled: bool,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cancelled {
            write!(f, "cancelled after {} ms", self.elapsed.as_millis())
        } else {
            match self.limit {
                Some(limit) => write!(
                    f,
                    "deadline exceeded: {} ms elapsed of a {} ms budget",
                    self.elapsed.as_millis(),
                    limit.as_millis()
                ),
                None => write!(f, "interrupted after {} ms", self.elapsed.as_millis()),
            }
        }
    }
}

impl Error for Interrupted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.is_exhausted());
        assert!(b.check().is_ok());
        b.cancel(); // no-op
        assert!(!b.is_exhausted());
        assert_eq!(b.limit(), None);
        assert_eq!(b.remaining(), None);
        assert_eq!(b.elapsed(), Duration::ZERO);
    }

    #[test]
    fn zero_deadline_exhausts_immediately_and_stays_exhausted() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert!(!b.is_unlimited());
        assert!(b.is_exhausted());
        let err = b.check().unwrap_err();
        assert!(!err.cancelled);
        assert_eq!(err.limit, Some(Duration::ZERO));
        // Sticky: still exhausted on every later check.
        assert!(b.is_exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        assert!(err.to_string().contains("deadline exceeded"));
    }

    #[test]
    fn generous_deadline_holds() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(!b.is_exhausted());
        assert!(b.check().is_ok());
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
        assert_eq!(b.limit(), Some(Duration::from_secs(3600)));
    }

    #[test]
    fn cancel_exhausts_and_clones_share_the_flag() {
        let b = Budget::cancellable();
        let clone = b.clone();
        assert!(b.check().is_ok());
        clone.cancel();
        assert!(b.is_exhausted(), "cancel is visible through every clone");
        let err = b.check().unwrap_err();
        assert!(err.cancelled);
        assert_eq!(err.limit, None);
        assert!(err.to_string().contains("cancelled"));
    }

    #[test]
    fn interrupted_is_a_std_error() {
        let err: Box<dyn Error> = Box::new(Interrupted {
            elapsed: Duration::from_millis(7),
            limit: None,
            cancelled: false,
        });
        assert!(err.to_string().contains("interrupted after 7 ms"));
    }
}
