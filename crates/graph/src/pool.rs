//! Shared [`BfsScratch`] pooling for concurrent BFS work.
//!
//! The TESC hot path runs thousands of `h`-hop BFS searches, each
//! needing an `O(|V|)` scratch (epoch-stamped visited marks plus a
//! frontier queue). A [`ScratchPool`] keeps a free list of scratches
//! behind a mutex so that any number of worker threads can check one
//! out, run searches, and return it on drop — the pool grows to the
//! high-water mark of concurrent users and never shrinks, so steady-
//! state operation allocates nothing.
//!
//! The lock is held only for the check-out/check-in push/pop, never
//! during a search, so contention is negligible next to BFS cost.
//!
//! Shareability contract: [`CsrGraph`] and
//! [`crate::VicinityIndex`] are immutable after
//! construction and therefore `Sync` — one instance of each can back
//! every thread of a batch run. `ScratchPool` is the mutable
//! counterpart designed for the same sharing (asserted at compile time
//! below).

use crate::adjacency::Adjacency;
use crate::bfs::{BfsScratch, MsBfsScratch};
use crate::csr::CsrGraph;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// Below this node count, parallel fan-outs cost more in thread
/// spawn/synchronization than they recover in BFS work:
/// [`crate::VicinityIndex::build_parallel`] falls back to its serial
/// sweep, and `tesc::batch::run_batch` runs its request on the calling
/// thread. One named constant so the two layers' decisions cannot
/// drift apart (results are bit-identical either way — this is purely
/// a scheduling choice).
pub const PARALLEL_MIN_NODES: usize = 1024;

/// A thread-safe free list of [`BfsScratch`] instances for one graph
/// size.
#[derive(Debug)]
pub struct ScratchPool {
    num_nodes: usize,
    free: Mutex<Vec<BfsScratch>>,
    /// Free list for the 64-way multi-source kernel's scratches
    /// ([`MsBfsScratch`]) — separate, because a grouped density sweep
    /// needs *both* kinds at different times and their footprints
    /// differ (lane words vs epoch stamps).
    multi_free: Mutex<Vec<MsBfsScratch>>,
}

impl ScratchPool {
    /// Pool of scratches sized for graphs of up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        ScratchPool {
            num_nodes,
            free: Mutex::new(Vec::new()),
            multi_free: Mutex::new(Vec::new()),
        }
    }

    /// Pool sized for `g` (any adjacency encoding).
    pub fn for_graph<G: Adjacency>(g: &G) -> Self {
        Self::new(g.num_nodes())
    }

    /// The node capacity every pooled scratch is created with.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Check a scratch out of the pool, creating one if the free list
    /// is empty. The scratch returns to the pool when the guard drops.
    pub fn acquire(&self) -> PooledScratch<'_> {
        let scratch = self
            .free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_else(|| BfsScratch::new(self.num_nodes));
        PooledScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Check a multi-source scratch ([`MsBfsScratch`]) out of the
    /// pool, creating one if the free list is empty. The scratch
    /// returns to the pool when the guard drops.
    pub fn acquire_multi(&self) -> PooledMultiScratch<'_> {
        let scratch = self
            .multi_free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_else(|| MsBfsScratch::new(self.num_nodes));
        PooledMultiScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Number of scratches currently idle in the pool (diagnostics:
    /// after a batch run this is the high-water mark of concurrency).
    pub fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool poisoned").len()
    }

    /// Number of idle multi-source scratches.
    pub fn idle_multi(&self) -> usize {
        self.multi_free.lock().expect("scratch pool poisoned").len()
    }
}

/// RAII guard dereferencing to a pooled [`BfsScratch`]; returns the
/// scratch to its [`ScratchPool`] on drop.
#[derive(Debug)]
pub struct PooledScratch<'p> {
    pool: &'p ScratchPool,
    scratch: Option<BfsScratch>,
}

impl Deref for PooledScratch<'_> {
    type Target = BfsScratch;

    #[inline]
    fn deref(&self) -> &BfsScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for PooledScratch<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut BfsScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            // A poisoned pool means another worker panicked; dropping
            // the scratch on the floor is then the right degradation.
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(s);
            }
        }
    }
}

/// RAII guard dereferencing to a pooled [`MsBfsScratch`]; returns the
/// scratch to its [`ScratchPool`] on drop.
#[derive(Debug)]
pub struct PooledMultiScratch<'p> {
    pool: &'p ScratchPool,
    scratch: Option<MsBfsScratch>,
}

impl Deref for PooledMultiScratch<'_> {
    type Target = MsBfsScratch;

    #[inline]
    fn deref(&self) -> &MsBfsScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for PooledMultiScratch<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut MsBfsScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledMultiScratch<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            if let Ok(mut free) = self.pool.multi_free.lock() {
                free.push(s);
            }
        }
    }
}

// Compile-time shareability contract for the batch engine: one graph,
// one vicinity index and one pool serve all worker threads.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<CsrGraph>();
    assert_sync::<crate::compressed::CompressedCsr>();
    assert_sync::<crate::VicinityIndex>();
    assert_sync::<ScratchPool>();
    assert_sync::<PooledScratch<'_>>();
    assert_sync::<PooledMultiScratch<'_>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    #[test]
    fn acquire_creates_then_reuses() {
        let pool = ScratchPool::new(8);
        assert_eq!(pool.idle(), 0);
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
            assert_eq!(pool.idle(), 0, "both scratches checked out");
        }
        assert_eq!(pool.idle(), 2, "both returned on drop");
        {
            let _c = pool.acquire();
            assert_eq!(pool.idle(), 1, "reused from the free list");
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn pooled_scratch_searches_work() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let pool = ScratchPool::for_graph(&g);
        let mut s = pool.acquire();
        assert_eq!(s.vicinity_size(&g, 2, 1), 3);
        assert_eq!(s.vicinity_size(&g, 0, 2), 3);
    }

    #[test]
    fn multi_scratch_acquire_creates_then_reuses() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let pool = ScratchPool::for_graph(&g);
        assert_eq!(pool.idle_multi(), 0);
        {
            let mut a = pool.acquire_multi();
            let _b = pool.acquire_multi();
            a.visit_h_vicinity_multi(&g, &[0, 5], 1);
            assert_eq!(a.union_footprint(), 4);
            assert_eq!(pool.idle_multi(), 0, "both checked out");
        }
        assert_eq!(pool.idle_multi(), 2, "both returned on drop");
        // The two free lists are independent.
        let _s = pool.acquire();
        assert_eq!(pool.idle_multi(), 2);
    }

    #[test]
    fn pool_is_usable_from_scoped_threads() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let pool = ScratchPool::for_graph(&g);
        let sizes: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let (pool, g) = (&pool, &g);
                    scope.spawn(move || {
                        let mut s = pool.acquire();
                        s.vicinity_size(g, t as u32, 1)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sizes, vec![2, 3, 3, 3]);
        assert!(pool.idle() >= 1);
    }
}
