//! Plain-text edge-list serialization.
//!
//! Format: first line `num_nodes num_edges`, then one `u v` pair per
//! line. Lines starting with `#` are comments. This is the interchange
//! format the examples use to persist generated scenario graphs.

use crate::csr::{CsrGraph, GraphBuilder, NodeId};
use std::io::{self, BufRead, Write};

/// Write `g` in edge-list format.
pub fn write_edge_list(g: &CsrGraph, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "{} {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Errors from [`read_edge_list`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not in the expected format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "I/O error: {e}"),
            ReadError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read a graph in edge-list format.
pub fn read_edge_list(r: &mut impl BufRead) -> Result<CsrGraph, ReadError> {
    let mut line = String::new();
    let mut lineno = 0usize;

    // Header (skipping comments/blank lines).
    let (num_nodes, num_edges) = loop {
        line.clear();
        lineno += 1;
        if r.read_line(&mut line)? == 0 {
            return Err(ReadError::Parse {
                line: lineno,
                message: "missing header".into(),
            });
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse = |s: Option<&str>, what: &str, lineno: usize| {
            s.ok_or_else(|| ReadError::Parse {
                line: lineno,
                message: format!("header missing {what}"),
            })
            .and_then(|s| {
                s.parse::<usize>().map_err(|e| ReadError::Parse {
                    line: lineno,
                    message: format!("bad {what}: {e}"),
                })
            })
        };
        let n = parse(parts.next(), "node count", lineno)?;
        let m = parse(parts.next(), "edge count", lineno)?;
        break (n, m);
    };

    let mut b = GraphBuilder::with_capacity(num_nodes, num_edges);
    let mut seen_edges = 0usize;
    while seen_edges < num_edges {
        line.clear();
        lineno += 1;
        if r.read_line(&mut line)? == 0 {
            return Err(ReadError::Parse {
                line: lineno,
                message: format!("expected {num_edges} edges, found {seen_edges}"),
            });
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let mut endpoint = |what: &str| -> Result<NodeId, ReadError> {
            parts
                .next()
                .ok_or_else(|| ReadError::Parse {
                    line: lineno,
                    message: format!("edge missing {what}"),
                })?
                .parse::<NodeId>()
                .map_err(|e| ReadError::Parse {
                    line: lineno,
                    message: format!("bad {what}: {e}"),
                })
        };
        let u = endpoint("source")?;
        let v = endpoint("target")?;
        if u == v || (u as usize) >= num_nodes || (v as usize) >= num_nodes {
            return Err(ReadError::Parse {
                line: lineno,
                message: format!("invalid edge ({u}, {v}) for {num_nodes} nodes"),
            });
        }
        b.add_edge(u, v);
        seen_edges += 1;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&mut Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a graph\n\n3 2\n# edges\n0 1\n\n1 2\n";
        let g = read_edge_list(&mut Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let text = "3 2\n0 1\n";
        let err = read_edge_list(&mut Cursor::new(text)).unwrap_err();
        assert!(matches!(err, ReadError::Parse { .. }), "{err}");
    }

    #[test]
    fn self_loop_is_an_error() {
        let text = "3 1\n1 1\n";
        let err = read_edge_list(&mut Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("invalid edge"));
    }

    #[test]
    fn out_of_range_is_an_error() {
        let text = "3 1\n0 7\n";
        assert!(read_edge_list(&mut Cursor::new(text)).is_err());
    }

    #[test]
    fn missing_header_is_an_error() {
        let text = "# nothing\n";
        assert!(read_edge_list(&mut Cursor::new(text)).is_err());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = from_edges(0, &[]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&mut Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }
}
