//! Event substrate for the TESC reproduction.
//!
//! The paper models an *attributed graph*: every node `v` carries a set
//! of events `Q_v ⊆ Q` (Sec. 2). This crate provides:
//!
//! * [`store`] — the event registry ([`store::EventStore`]) mapping
//!   named events to their occurrence node sets, plus the dense
//!   [`store::NodeMask`] used for O(1) membership tests during density
//!   BFS sweeps.
//! * [`simulate`] — the synthetic event machinery of Sec. 5.2:
//!   positively correlated "linked pair" events (Gaussian hop
//!   distances), negatively correlated events (placed outside
//!   `V^h_a`), the noise models that gradually break both, and
//!   independent events for Type-I-error experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod io;
pub mod simulate;
pub mod store;

pub use store::{EventId, EventStore, EventStoreError, NodeMask};
