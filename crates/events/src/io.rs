//! Plain-text serialization for event occurrence lists.
//!
//! Two formats, both line-oriented with `#` comments:
//!
//! * **node list** — one node id per line; the single-event
//!   interchange format of `tesc-cli test`.
//! * **named events** — `name v1,v2,v3` per line; the multi-event
//!   format consumed by `tesc-cli stream` to seed an [`EventStore`].

use crate::store::{EventStore, EventStoreError};
use std::io::{self, BufRead, Write};
use tesc_graph::NodeId;

/// Write an occurrence list, one node per line.
pub fn write_node_list(nodes: &[NodeId], w: &mut impl Write) -> io::Result<()> {
    for &v in nodes {
        writeln!(w, "{v}")?;
    }
    Ok(())
}

/// Read an occurrence list (one node id per line; `#` comments and
/// blank lines skipped). Returns a parse error message with the line
/// number on malformed input.
pub fn read_node_list(r: &mut impl BufRead) -> Result<Vec<NodeId>, String> {
    let mut out = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        lineno += 1;
        let read = r
            .read_line(&mut line)
            .map_err(|e| format!("I/O error: {e}"))?;
        if read == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let v: NodeId = t
            .parse()
            .map_err(|e| format!("line {lineno}: bad node id {t:?}: {e}"))?;
        out.push(v);
    }
    Ok(out)
}

/// Write a whole store in named-event format: `name v1,v2,v3` per
/// line, in id order. Names must not contain whitespace (asserted).
pub fn write_named_events(store: &EventStore, w: &mut impl Write) -> io::Result<()> {
    for (_, name, nodes) in store.iter() {
        assert!(
            !name.chars().any(char::is_whitespace),
            "event name {name:?} contains whitespace; not serializable"
        );
        let ids = nodes
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        writeln!(w, "{name} {ids}")?;
    }
    Ok(())
}

/// Read a named-event file (`name v1,v2,v3` per line, `#` comments
/// and blank lines skipped) into a fresh [`EventStore`]. Duplicate
/// names surface as [`EventStoreError::DuplicateName`] wrapped in the
/// error string with the offending line number.
pub fn read_named_events(r: &mut impl BufRead) -> Result<EventStore, String> {
    let mut store = EventStore::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        lineno += 1;
        let read = r
            .read_line(&mut line)
            .map_err(|e| format!("I/O error: {e}"))?;
        if read == 0 {
            break;
        }
        let t = line.split('#').next().unwrap_or("").trim();
        if t.is_empty() {
            continue;
        }
        let mut fields = t.split_whitespace();
        let (Some(name), Some(ids), None) = (fields.next(), fields.next(), fields.next()) else {
            return Err(format!(
                "line {lineno}: expected `name v1,v2,...`, got {t:?}"
            ));
        };
        let nodes = parse_id_list(ids).map_err(|e| format!("line {lineno}: {e}"))?;
        store
            .try_add_event(name, nodes)
            .map_err(|e: EventStoreError| format!("line {lineno}: {e}"))?;
    }
    Ok(store)
}

/// Parse a comma-separated node-id list (`1,2,3`; empty tokens
/// skipped, so a bare `,` or trailing comma is tolerated).
pub fn parse_id_list(field: &str) -> Result<Vec<NodeId>, String> {
    field
        .split(',')
        .filter(|tok| !tok.is_empty())
        .map(|tok| {
            tok.parse::<NodeId>()
                .map_err(|_| format!("bad node id {tok:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let nodes = vec![3u32, 1, 4, 1, 5];
        let mut buf = Vec::new();
        write_node_list(&nodes, &mut buf).unwrap();
        let back = read_node_list(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, nodes);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# event a\n1\n\n2\n# trailing\n3\n";
        assert_eq!(
            read_node_list(&mut Cursor::new(text)).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn bad_line_reports_position() {
        let text = "1\nnope\n";
        let err = read_node_list(&mut Cursor::new(text)).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn empty_input_is_empty_list() {
        assert!(read_node_list(&mut Cursor::new("")).unwrap().is_empty());
    }

    #[test]
    fn named_events_round_trip() {
        let mut store = EventStore::new();
        store.add_event("wireless", vec![5, 1, 3]);
        store.add_event("sensor", vec![2]);
        let mut buf = Vec::new();
        write_named_events(&store, &mut buf).unwrap();
        let back = read_named_events(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back.num_events(), 2);
        assert_eq!(back.nodes(back.id_by_name("wireless").unwrap()), &[1, 3, 5]);
        assert_eq!(back.nodes(back.id_by_name("sensor").unwrap()), &[2]);
    }

    #[test]
    fn named_events_reports_duplicates_with_line() {
        let text = "a 1,2\nb 3\na 4\n";
        let err = read_named_events(&mut Cursor::new(text)).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("duplicate event name"), "{err}");
    }

    #[test]
    fn named_events_bad_shape_and_ids() {
        let err = read_named_events(&mut Cursor::new("justaname\n")).unwrap_err();
        assert!(err.contains("expected `name v1,v2,...`"), "{err}");
        let err = read_named_events(&mut Cursor::new("a 1,x\n")).unwrap_err();
        assert!(err.contains("bad node id"), "{err}");
        // Comments and blank lines are fine.
        let s = read_named_events(&mut Cursor::new("# hi\n\na 1,2, # tail\n")).unwrap();
        assert_eq!(s.nodes(s.id_by_name("a").unwrap()), &[1, 2]);
    }

    #[test]
    fn parse_id_list_tolerates_empty_tokens() {
        assert_eq!(parse_id_list("1,,2,").unwrap(), vec![1, 2]);
        assert_eq!(parse_id_list("").unwrap(), Vec::<NodeId>::new());
        assert!(parse_id_list("1,-2").is_err());
    }
}
