//! Plain-text serialization for event occurrence lists.
//!
//! Format: one node id per line; blank lines and `#` comments ignored.
//! This is the interchange format of the `tesc-cli` tool.

use std::io::{self, BufRead, Write};
use tesc_graph::NodeId;

/// Write an occurrence list, one node per line.
pub fn write_node_list(nodes: &[NodeId], w: &mut impl Write) -> io::Result<()> {
    for &v in nodes {
        writeln!(w, "{v}")?;
    }
    Ok(())
}

/// Read an occurrence list (one node id per line; `#` comments and
/// blank lines skipped). Returns a parse error message with the line
/// number on malformed input.
pub fn read_node_list(r: &mut impl BufRead) -> Result<Vec<NodeId>, String> {
    let mut out = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        lineno += 1;
        let read = r
            .read_line(&mut line)
            .map_err(|e| format!("I/O error: {e}"))?;
        if read == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let v: NodeId = t
            .parse()
            .map_err(|e| format!("line {lineno}: bad node id {t:?}: {e}"))?;
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let nodes = vec![3u32, 1, 4, 1, 5];
        let mut buf = Vec::new();
        write_node_list(&nodes, &mut buf).unwrap();
        let back = read_node_list(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, nodes);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# event a\n1\n\n2\n# trailing\n3\n";
        assert_eq!(
            read_node_list(&mut Cursor::new(text)).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn bad_line_reports_position() {
        let text = "1\nnope\n";
        let err = read_node_list(&mut Cursor::new(text)).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn empty_input_is_empty_list() {
        assert!(read_node_list(&mut Cursor::new("")).unwrap().is_empty());
    }
}
