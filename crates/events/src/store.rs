//! Event registry and dense node-set membership.

use tesc_graph::NodeId;

/// Identifier of an event within an [`EventStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

/// Failure modes of fallible [`EventStore`] mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventStoreError {
    /// An event with this name is already registered.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// The given [`EventId`] does not name an event of this store.
    UnknownEvent {
        /// The offending id.
        id: EventId,
    },
}

impl std::fmt::Display for EventStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventStoreError::DuplicateName { name } => {
                write!(f, "duplicate event name {name:?}")
            }
            EventStoreError::UnknownEvent { id } => {
                write!(f, "unknown event id {}", id.0)
            }
        }
    }
}

impl std::error::Error for EventStoreError {}

/// Registry of named events and their occurrence node sets
/// (`V_a` in the paper's notation).
///
/// Occurrence lists are kept sorted and deduplicated, so set operations
/// (union for `V_{a∪b}`, intersection for transaction-correlation
/// baselines) are linear merges.
#[derive(Debug, Clone, Default)]
pub struct EventStore {
    names: Vec<String>,
    occurrences: Vec<Vec<NodeId>>,
}

impl EventStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an event with its occurrence nodes (deduplicated and
    /// sorted internally). Returns its id, or
    /// [`EventStoreError::DuplicateName`] if the name is taken.
    pub fn try_add_event(
        &mut self,
        name: impl Into<String>,
        nodes: Vec<NodeId>,
    ) -> Result<EventId, EventStoreError> {
        let name = name.into();
        if self.id_by_name(&name).is_some() {
            return Err(EventStoreError::DuplicateName { name });
        }
        let mut nodes = nodes;
        nodes.sort_unstable();
        nodes.dedup();
        let id = EventId(self.names.len() as u32);
        self.names.push(name);
        self.occurrences.push(nodes);
        Ok(id)
    }

    /// Panicking convenience wrapper over [`EventStore::try_add_event`]
    /// for tests and static scenario builders.
    ///
    /// # Panics
    ///
    /// Panics if an event with the same name already exists.
    pub fn add_event(&mut self, name: impl Into<String>, nodes: Vec<NodeId>) -> EventId {
        match self.try_add_event(name, nodes) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Append occurrence nodes to an existing event (the ingestion
    /// path of a streaming workload). New nodes are merged into the
    /// sorted occurrence set; duplicates are no-ops. Returns how many
    /// nodes were actually new.
    pub fn add_occurrences(
        &mut self,
        id: EventId,
        nodes: &[NodeId],
    ) -> Result<usize, EventStoreError> {
        if id.0 as usize >= self.names.len() {
            return Err(EventStoreError::UnknownEvent { id });
        }
        let mut extra = nodes.to_vec();
        extra.sort_unstable();
        extra.dedup();
        let existing = &mut self.occurrences[id.0 as usize];
        let before = existing.len();
        let merged = merge_union(existing, &extra);
        *existing = merged;
        Ok(existing.len() - before)
    }

    /// Number of registered events.
    #[inline]
    pub fn num_events(&self) -> usize {
        self.names.len()
    }

    /// The sorted occurrence node set `V_a`.
    #[inline]
    pub fn nodes(&self, id: EventId) -> &[NodeId] {
        &self.occurrences[id.0 as usize]
    }

    /// Number of occurrences `|V_a|`.
    #[inline]
    pub fn size(&self, id: EventId) -> usize {
        self.nodes(id).len()
    }

    /// Event name.
    #[inline]
    pub fn name(&self, id: EventId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Look an event up by name.
    pub fn id_by_name(&self, name: &str) -> Option<EventId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| EventId(i as u32))
    }

    /// Estimated resident heap bytes of the registry (names plus
    /// occurrence lists), for memory reporting.
    pub fn resident_bytes(&self) -> usize {
        let names: usize = self.names.iter().map(|n| n.capacity()).sum();
        let occ: usize = self
            .occurrences
            .iter()
            .map(|o| o.capacity() * std::mem::size_of::<NodeId>())
            .sum();
        names + occ
    }

    /// 64-bit content fingerprint (FNV-1a over event count, names and
    /// sorted occurrence lists), same constants as
    /// `CsrGraph::fingerprint`. Two stores with equal fingerprints hold
    /// the same events in the same registration order — used by the
    /// persistence layer to prove a recovered store bit-identical to
    /// the never-crashed one.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(PRIME);
        };
        mix(self.names.len() as u64);
        for (name, nodes) in self.names.iter().zip(&self.occurrences) {
            mix(name.len() as u64);
            for &b in name.as_bytes() {
                mix(b as u64);
            }
            mix(nodes.len() as u64);
            for &n in nodes {
                mix(n as u64);
            }
        }
        h
    }

    /// Iterate `(id, name, nodes)` over all events.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &str, &[NodeId])> {
        self.names
            .iter()
            .zip(&self.occurrences)
            .enumerate()
            .map(|(i, (n, o))| (EventId(i as u32), n.as_str(), o.as_slice()))
    }

    /// All unordered event pairs `(a, b)` with `a < b`, in ascending
    /// id order — the candidate set of an all-pairs ranking run
    /// (`E·(E−1)/2` pairs for `E` registered events).
    pub fn event_pairs(&self) -> Vec<(EventId, EventId)> {
        let n = self.names.len() as u32;
        let mut out = Vec::with_capacity((n as usize * n.saturating_sub(1) as usize) / 2);
        for a in 0..n {
            for b in a + 1..n {
                out.push((EventId(a), EventId(b)));
            }
        }
        out
    }

    /// All pairs that include `event`, in ascending partner-id order —
    /// the candidate set for ranking one event against every other
    /// (`E−1` pairs). Each pair is returned in the same canonical
    /// `(a, b)` with `a < b` orientation as [`EventStore::event_pairs`],
    /// so a pair carries identical labels, content-addressed seeds and
    /// scores whether it came from a one-vs-all or an all-pairs
    /// enumeration.
    ///
    /// # Panics
    ///
    /// Panics if `event` does not name an event of this store.
    pub fn pairs_with(&self, event: EventId) -> Vec<(EventId, EventId)> {
        assert!(
            (event.0 as usize) < self.names.len(),
            "unknown event id {}",
            event.0
        );
        (0..self.names.len() as u32)
            .filter(|&other| other != event.0)
            .map(|other| {
                let partner = EventId(other);
                (event.min(partner), event.max(partner))
            })
            .collect()
    }

    /// Sorted union `V_a ∪ V_b` — the paper's `V_{a∪b}` (all event nodes).
    pub fn union(&self, a: EventId, b: EventId) -> Vec<NodeId> {
        merge_union(self.nodes(a), self.nodes(b))
    }

    /// Sorted intersection `V_a ∩ V_b` (nodes carrying both events).
    pub fn intersection(&self, a: EventId, b: EventId) -> Vec<NodeId> {
        let (mut i, mut j) = (0, 0);
        let (xa, xb) = (self.nodes(a), self.nodes(b));
        let mut out = Vec::new();
        while i < xa.len() && j < xb.len() {
            match xa[i].cmp(&xb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(xa[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

/// Merge two sorted deduplicated node lists into their sorted union.
pub fn merge_union(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Dense bitset over node ids for O(1) membership during BFS sweeps.
///
/// The density computation (Eq. 2) tests every node of every reference
/// vicinity for event membership; a sorted-`Vec` binary search would add
/// a `log |V_a|` factor to the innermost loop, so we spend `|V|/8` bytes
/// instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMask {
    bits: Vec<u64>,
    num_nodes: usize,
    count: usize,
}

impl NodeMask {
    /// All-empty mask over `num_nodes` ids.
    pub fn new(num_nodes: usize) -> Self {
        NodeMask {
            bits: vec![0; num_nodes.div_ceil(64)],
            num_nodes,
            count: 0,
        }
    }

    /// Mask with the given members set.
    pub fn from_nodes(num_nodes: usize, nodes: &[NodeId]) -> Self {
        let mut m = Self::new(num_nodes);
        for &v in nodes {
            m.insert(v);
        }
        m
    }

    /// Number of ids the mask covers.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of set members.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Is the mask empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        debug_assert!((v as usize) < self.num_nodes);
        self.bits[v as usize / 64] & (1u64 << (v % 64)) != 0
    }

    /// Insert `v`; returns whether it was newly inserted.
    pub fn insert(&mut self, v: NodeId) -> bool {
        assert!((v as usize) < self.num_nodes, "node {v} out of mask range");
        let slot = &mut self.bits[v as usize / 64];
        let bit = 1u64 << (v % 64);
        if *slot & bit == 0 {
            *slot |= bit;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Remove `v`; returns whether it was present.
    pub fn remove(&mut self, v: NodeId) -> bool {
        assert!((v as usize) < self.num_nodes, "node {v} out of mask range");
        let slot = &mut self.bits[v as usize / 64];
        let bit = 1u64 << (v % 64);
        if *slot & bit != 0 {
            *slot &= !bit;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// The mask's raw `u64` words, bit `v % 64` of word `v / 64` set ⇔
    /// `v` is a member (`num_nodes().div_ceil(64)` words; bits beyond
    /// `num_nodes()` are always clear). This is the bitset density
    /// kernel's interface: intersecting a BFS visited bitmap against an
    /// event mask is one AND + popcount per 64 nodes instead of one
    /// probe per visited node.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// `|self ∩ W|` where `W` is a visited bitmap over the same id
    /// space (shorter slices are treated as zero-padded). One word-wise
    /// AND + popcount sweep — the single-mask form of the word-level
    /// intersection; the density hot path fuses three of these (both
    /// event masks plus their `a | b` union) into one sweep over
    /// [`NodeMask::words`] instead (`tesc::density::density_counts_bitset`).
    pub fn intersection_count_words(&self, words: &[u64]) -> usize {
        self.bits
            .iter()
            .zip(words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Collect the members in ascending order.
    pub fn to_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.count);
        for (w, &word) in self.bits.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((w * 64) as NodeId + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_content_and_order() {
        let mut a = EventStore::new();
        a.add_event("x", vec![1, 2]);
        a.add_event("y", vec![3]);
        let mut b = EventStore::new();
        b.add_event("x", vec![2, 1, 2]); // sorts/dedups to the same set
        b.add_event("y", vec![3]);
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = EventStore::new();
        c.add_event("y", vec![3]); // same content, different order
        c.add_event("x", vec![1, 2]);
        assert_ne!(a.fingerprint(), c.fingerprint());

        let before = a.fingerprint();
        a.add_occurrences(EventId(0), &[9]).unwrap();
        assert_ne!(a.fingerprint(), before);
    }

    #[test]
    fn store_sorts_and_dedups() {
        let mut s = EventStore::new();
        let a = s.add_event("a", vec![5, 1, 3, 1, 5]);
        assert_eq!(s.nodes(a), &[1, 3, 5]);
        assert_eq!(s.size(a), 3);
        assert_eq!(s.name(a), "a");
    }

    #[test]
    fn store_lookup_by_name() {
        let mut s = EventStore::new();
        let a = s.add_event("wireless", vec![1]);
        let b = s.add_event("sensor", vec![2]);
        assert_eq!(s.id_by_name("wireless"), Some(a));
        assert_eq!(s.id_by_name("sensor"), Some(b));
        assert_eq!(s.id_by_name("nope"), None);
        assert_eq!(s.num_events(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate event name")]
    fn duplicate_names_rejected() {
        let mut s = EventStore::new();
        s.add_event("x", vec![]);
        s.add_event("x", vec![1]);
    }

    #[test]
    fn try_add_event_reports_duplicates_as_err() {
        let mut s = EventStore::new();
        let id = s.try_add_event("x", vec![2, 1]).unwrap();
        assert_eq!(s.nodes(id), &[1, 2]);
        let err = s.try_add_event("x", vec![3]).unwrap_err();
        assert_eq!(err, EventStoreError::DuplicateName { name: "x".into() });
        assert_eq!(s.num_events(), 1, "failed insert must not register");
        assert!(err.to_string().contains("duplicate event name"));
    }

    #[test]
    fn add_occurrences_merges_sorted() {
        let mut s = EventStore::new();
        let id = s.add_event("a", vec![1, 5]);
        assert_eq!(s.add_occurrences(id, &[3, 5, 3, 9]).unwrap(), 2);
        assert_eq!(s.nodes(id), &[1, 3, 5, 9]);
        assert_eq!(s.add_occurrences(id, &[1, 9]).unwrap(), 0);
        assert_eq!(s.nodes(id), &[1, 3, 5, 9]);
    }

    #[test]
    fn add_occurrences_unknown_id_is_err() {
        let mut s = EventStore::new();
        let err = s.add_occurrences(EventId(3), &[1]).unwrap_err();
        assert_eq!(err, EventStoreError::UnknownEvent { id: EventId(3) });
        assert!(err.to_string().contains("unknown event id 3"));
    }

    #[test]
    fn event_pairs_enumerates_all_unordered_pairs() {
        let mut s = EventStore::new();
        for name in ["a", "b", "c", "d"] {
            s.add_event(name, vec![]);
        }
        let pairs = s.event_pairs();
        assert_eq!(pairs.len(), 6, "C(4,2) pairs");
        for (a, b) in &pairs {
            assert!(a < b, "pairs are ordered (a < b)");
        }
        let mut dedup = pairs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), pairs.len(), "no duplicate pairs");
        assert_eq!(pairs[0], (EventId(0), EventId(1)));
        assert_eq!(pairs[5], (EventId(2), EventId(3)));
        assert!(EventStore::new().event_pairs().is_empty());
        let mut one = EventStore::new();
        one.add_event("solo", vec![1]);
        assert!(one.event_pairs().is_empty(), "one event has no pairs");
    }

    #[test]
    fn pairs_with_covers_every_partner_once_in_canonical_orientation() {
        let mut s = EventStore::new();
        for name in ["a", "b", "c", "d"] {
            s.add_event(name, vec![]);
        }
        let focus = EventId(2);
        let pairs = s.pairs_with(focus);
        // Same (a < b) orientation as event_pairs, so one-vs-all and
        // all-pairs enumerations agree on each pair's identity.
        assert_eq!(
            pairs,
            vec![
                (EventId(0), focus),
                (EventId(1), focus),
                (focus, EventId(3)),
            ]
        );
        for p in &pairs {
            assert!(
                s.event_pairs().contains(p),
                "orientation matches event_pairs"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown event id 7")]
    fn pairs_with_unknown_event_panics() {
        let _ = EventStore::new().pairs_with(EventId(7));
    }

    #[test]
    fn union_and_intersection() {
        let mut s = EventStore::new();
        let a = s.add_event("a", vec![1, 3, 5, 7]);
        let b = s.add_event("b", vec![2, 3, 6, 7, 9]);
        assert_eq!(s.union(a, b), vec![1, 2, 3, 5, 6, 7, 9]);
        assert_eq!(s.intersection(a, b), vec![3, 7]);
    }

    #[test]
    fn union_disjoint_and_identical() {
        assert_eq!(merge_union(&[1, 2], &[3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(merge_union(&[1, 2], &[1, 2]), vec![1, 2]);
        assert_eq!(merge_union(&[], &[5]), vec![5]);
        assert_eq!(merge_union(&[], &[]), Vec::<NodeId>::new());
    }

    #[test]
    fn iter_visits_all() {
        let mut s = EventStore::new();
        s.add_event("a", vec![1]);
        s.add_event("b", vec![2]);
        let collected: Vec<_> = s
            .iter()
            .map(|(_, n, o)| (n.to_string(), o.to_vec()))
            .collect();
        assert_eq!(
            collected,
            vec![("a".into(), vec![1u32]), ("b".into(), vec![2u32])]
        );
    }

    #[test]
    fn mask_basics() {
        let mut m = NodeMask::new(130);
        assert!(m.is_empty());
        assert!(m.insert(0));
        assert!(m.insert(64));
        assert!(m.insert(129));
        assert!(!m.insert(64), "double insert reports false");
        assert_eq!(m.len(), 3);
        assert!(m.contains(0) && m.contains(64) && m.contains(129));
        assert!(!m.contains(1) && !m.contains(128));
        assert!(m.remove(64));
        assert!(!m.remove(64));
        assert_eq!(m.len(), 2);
        assert_eq!(m.to_nodes(), vec![0, 129]);
    }

    #[test]
    fn mask_from_nodes_round_trips() {
        let nodes = vec![3, 17, 63, 64, 65, 99];
        let m = NodeMask::from_nodes(100, &nodes);
        assert_eq!(m.to_nodes(), nodes);
        assert_eq!(m.len(), nodes.len());
    }

    #[test]
    fn mask_from_nodes_with_duplicates() {
        let m = NodeMask::from_nodes(10, &[1, 1, 2, 2, 2]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of mask range")]
    fn mask_out_of_range_insert_panics() {
        let mut m = NodeMask::new(10);
        m.insert(10);
    }

    #[test]
    fn mask_words_expose_members() {
        let m = NodeMask::from_nodes(130, &[0, 63, 64, 129]);
        let w = m.words();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], 1 | (1u64 << 63));
        assert_eq!(w[1], 1);
        assert_eq!(w[2], 1 << 1);
        let total: usize = w.iter().map(|x| x.count_ones() as usize).sum();
        assert_eq!(total, m.len());
    }

    #[test]
    fn intersection_count_words_matches_per_node_probes() {
        let members = [3u32, 17, 63, 64, 65, 99, 127];
        let visited = [0u32, 3, 64, 99, 100, 127];
        let m = NodeMask::from_nodes(128, &members);
        let v = NodeMask::from_nodes(128, &visited);
        let expect = visited.iter().filter(|&&x| m.contains(x)).count();
        assert_eq!(m.intersection_count_words(v.words()), expect);
        // Shorter visited slices are zero-padded (word 0 holds the
        // members below id 64; the only shared one there is 3).
        assert_eq!(m.intersection_count_words(&v.words()[..1]), 1);
        assert_eq!(m.intersection_count_words(&[]), 0);
    }
}
