//! Synthetic event simulation — the methodology of Sec. 5.2.
//!
//! The paper validates the TESC test by *planting* correlated event
//! pairs on a real graph and measuring recall:
//!
//! * **Positive pairs** are generated "in a linked pair fashion": every
//!   event-`a` node gets an associated event-`b` node whose hop
//!   distance follows a Gaussian with mean 0 and variance `h`
//!   (distances beyond `h` are clamped to `h`).
//! * **Negative pairs** place all `b` nodes outside `V^h_a`, so every
//!   `b` occurrence is at least `h+1` hops from every `a` occurrence.
//! * **Noise** gradually breaks the correlation: with probability `p`
//!   a positive link is broken (its `b` node relocated outside
//!   `V^h_a`); with probability `p` a negative `b` node is relocated
//!   next to a random `a` node.
//!
//! All functions are deterministic given the RNG, and take an external
//! [`BfsScratch`] so sweeping thousands of planted pairs allocates
//! nothing per pair.

use crate::store::NodeMask;
use rand::Rng;
use tesc_graph::bfs::BfsScratch;
use tesc_graph::csr::CsrGraph;
use tesc_graph::dist::nodes_at_distance;
use tesc_graph::perturb::sample_nodes;
use tesc_graph::NodeId;

/// A pair of event occurrence sets (sorted, deduplicated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventPair {
    /// `V_a`.
    pub a: Vec<NodeId>,
    /// `V_b`.
    pub b: Vec<NodeId>,
}

impl EventPair {
    /// Normalize (sort + dedup) and wrap.
    pub fn new(mut a: Vec<NodeId>, mut b: Vec<NodeId>) -> Self {
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        EventPair { a, b }
    }

    /// `V_{a∪b}` — all event nodes.
    pub fn union(&self) -> Vec<NodeId> {
        crate::store::merge_union(&self.a, &self.b)
    }
}

/// A positively correlated pair with its link structure retained
/// (needed by the noise model, which breaks individual links).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkedPair {
    /// The event-`a` nodes, one per link.
    pub a_nodes: Vec<NodeId>,
    /// `links[i]` is the event-`b` node associated with `a_nodes[i]`.
    pub b_nodes: Vec<NodeId>,
    /// The vicinity level the pair was generated for.
    pub h: u32,
}

impl LinkedPair {
    /// Collapse into occurrence sets.
    pub fn to_pair(&self) -> EventPair {
        EventPair::new(self.a_nodes.clone(), self.b_nodes.clone())
    }
}

/// Errors from the simulators (all are "the graph is too small/dense
/// for the requested plant" conditions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulateError {
    /// Requested more event nodes than the graph has.
    NotEnoughNodes {
        /// Nodes requested.
        requested: usize,
        /// Nodes available.
        available: usize,
    },
    /// `V \ V^h_a` is too small to host the negative event / relocations.
    ComplementTooSmall {
        /// Nodes needed outside the vicinity.
        requested: usize,
        /// Complement size.
        available: usize,
    },
}

impl std::fmt::Display for SimulateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulateError::NotEnoughNodes {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} event nodes, graph has {available}"
            ),
            SimulateError::ComplementTooSmall {
                requested,
                available,
            } => write!(
                f,
                "need {requested} nodes outside the event vicinity, only {available} exist"
            ),
        }
    }
}

impl std::error::Error for SimulateError {}

/// Standard normal sample via Box–Muller (`rand` offline build has no
/// `rand_distr`, so we roll the two-liner ourselves).
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Hop distance for a linked `b` node: `|N(0, h)|` rounded, clamped to
/// `[0, h]` ("distances go beyond h are set to h").
fn link_distance(h: u32, rng: &mut impl Rng) -> u32 {
    let d = (gaussian(rng) * (h as f64).sqrt()).abs().round() as u32;
    d.min(h)
}

/// Generate a strongly positively correlated pair (Sec. 5.2):
/// `size` random `a` nodes, each with a `b` node at Gaussian hop
/// distance — "wherever we observe an event a, there is always a nearby
/// event b".
///
/// If no node exists at the drawn distance (e.g. a small component),
/// the nearest non-empty ring below it is used (ring 0 = the `a` node
/// itself always exists).
pub fn positive_pair(
    g: &CsrGraph,
    scratch: &mut BfsScratch,
    size: usize,
    h: u32,
    rng: &mut impl Rng,
) -> Result<LinkedPair, SimulateError> {
    if size > g.num_nodes() {
        return Err(SimulateError::NotEnoughNodes {
            requested: size,
            available: g.num_nodes(),
        });
    }
    let a_nodes = sample_nodes(g, size, rng);
    let mut b_nodes = Vec::with_capacity(size);
    for &v in &a_nodes {
        let mut d = link_distance(h, rng);
        let b = loop {
            if d == 0 {
                break v;
            }
            let ring = nodes_at_distance(g, scratch, v, d);
            if ring.is_empty() {
                d -= 1;
                continue;
            }
            break ring[rng.gen_range(0..ring.len())];
        };
        b_nodes.push(b);
    }
    Ok(LinkedPair {
        a_nodes,
        b_nodes,
        h,
    })
}

/// Generate a strongly negatively correlated pair (Sec. 5.2): `size_a`
/// random `a` nodes, then `size_b` random `b` nodes drawn from
/// `V \ V^h_a`, keeping every `b` at least `h+1` hops from every `a`.
pub fn negative_pair(
    g: &CsrGraph,
    scratch: &mut BfsScratch,
    size_a: usize,
    size_b: usize,
    h: u32,
    rng: &mut impl Rng,
) -> Result<EventPair, SimulateError> {
    if size_a > g.num_nodes() {
        return Err(SimulateError::NotEnoughNodes {
            requested: size_a,
            available: g.num_nodes(),
        });
    }
    let a_nodes = sample_nodes(g, size_a, rng);
    let mut vicinity = NodeMask::new(g.num_nodes());
    scratch.visit_h_vicinity(g, &a_nodes, h, |v, _| {
        vicinity.insert(v);
    });
    let complement_size = g.num_nodes() - vicinity.len();
    if size_b > complement_size {
        return Err(SimulateError::ComplementTooSmall {
            requested: size_b,
            available: complement_size,
        });
    }
    let b_nodes = sample_outside(g, &vicinity, size_b, rng);
    Ok(EventPair::new(a_nodes, b_nodes))
}

/// Independent events: two uniformly random node sets (they may
/// overlap, as truly independent events would). Used to measure the
/// test's Type-I error rate.
pub fn independent_pair(
    g: &CsrGraph,
    size_a: usize,
    size_b: usize,
    rng: &mut impl Rng,
) -> Result<EventPair, SimulateError> {
    let n = g.num_nodes();
    if size_a > n || size_b > n {
        return Err(SimulateError::NotEnoughNodes {
            requested: size_a.max(size_b),
            available: n,
        });
    }
    let a = sample_nodes(g, size_a, rng);
    let b = sample_nodes(g, size_b, rng);
    Ok(EventPair::new(a, b))
}

/// Positive-pair noise (Sec. 5.2.1): "a sequence of independent
/// Bernoulli trials, one for each linked pair, in which with
/// probability p the pair is broken and the node of b is relocated
/// outside `V^h_a`".
pub fn apply_positive_noise(
    g: &CsrGraph,
    scratch: &mut BfsScratch,
    pair: &LinkedPair,
    p: f64,
    rng: &mut impl Rng,
) -> Result<EventPair, SimulateError> {
    assert!((0.0..=1.0).contains(&p), "noise level must be in [0,1]");
    let mut vicinity = NodeMask::new(g.num_nodes());
    scratch.visit_h_vicinity(g, &pair.a_nodes, pair.h, |v, _| {
        vicinity.insert(v);
    });
    let complement_size = g.num_nodes() - vicinity.len();
    let mut b_nodes = Vec::with_capacity(pair.b_nodes.len());
    for &b in &pair.b_nodes {
        if rng.gen_range(0.0..1.0f64) < p {
            if complement_size == 0 {
                return Err(SimulateError::ComplementTooSmall {
                    requested: 1,
                    available: 0,
                });
            }
            b_nodes.push(sample_outside(g, &vicinity, 1, rng)[0]);
        } else {
            b_nodes.push(b);
        }
    }
    Ok(EventPair::new(pair.a_nodes.clone(), b_nodes))
}

/// Negative-pair noise (Sec. 5.2.1): "each node in V_b has probability
/// p to be relocated and attached with one node in V_a" — the relocated
/// occurrence is planted at Gaussian hop distance from a random `a`
/// node, exactly like a positive link.
pub fn apply_negative_noise(
    g: &CsrGraph,
    scratch: &mut BfsScratch,
    pair: &EventPair,
    h: u32,
    p: f64,
    rng: &mut impl Rng,
) -> EventPair {
    assert!((0.0..=1.0).contains(&p), "noise level must be in [0,1]");
    assert!(
        !pair.a.is_empty(),
        "negative noise needs a nodes to attach to"
    );
    let mut b_nodes = Vec::with_capacity(pair.b.len());
    for &b in &pair.b {
        if rng.gen_range(0.0..1.0f64) < p {
            let anchor = pair.a[rng.gen_range(0..pair.a.len())];
            let mut d = link_distance(h, rng);
            let relocated = loop {
                if d == 0 {
                    break anchor;
                }
                let ring = nodes_at_distance(g, scratch, anchor, d);
                if !ring.is_empty() {
                    break ring[rng.gen_range(0..ring.len())];
                }
                d -= 1;
            };
            b_nodes.push(relocated);
        } else {
            b_nodes.push(b);
        }
    }
    EventPair::new(pair.a.clone(), b_nodes)
}

/// Sample `count` distinct nodes outside `mask`, uniformly.
///
/// Strategy: rejection sampling while the complement is a reasonable
/// fraction of the graph, falling back to explicit complement
/// enumeration when rejection keeps missing (dense-mask case).
fn sample_outside(g: &CsrGraph, mask: &NodeMask, count: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let n = g.num_nodes();
    let complement = n - mask.len();
    debug_assert!(count <= complement);
    let mut chosen = NodeMask::new(n);
    let mut out = Vec::with_capacity(count);
    // Expected tries per hit = n / complement; give rejection a generous
    // budget before switching to enumeration.
    let budget = 32 * count * (n / complement.max(1)).max(1);
    let mut tries = 0usize;
    while out.len() < count && tries < budget {
        tries += 1;
        let v = rng.gen_range(0..n as NodeId);
        if !mask.contains(v) && chosen.insert(v) {
            out.push(v);
        }
    }
    if out.len() < count {
        // Enumerate the remaining complement and fill deterministically
        // at random positions.
        let mut pool: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| !mask.contains(v) && !chosen.contains(v))
            .collect();
        while out.len() < count {
            let i = rng.gen_range(0..pool.len());
            out.push(pool.swap_remove(i));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tesc_graph::dist::distances_from_set;
    use tesc_graph::generators::{barabasi_albert, erdos_renyi_gnm, grid, path};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn positive_links_stay_within_h() {
        let g = grid(30, 30);
        let mut s = BfsScratch::new(g.num_nodes());
        for h in 1..=3 {
            let lp = positive_pair(&g, &mut s, 40, h, &mut rng(h as u64)).unwrap();
            assert_eq!(lp.a_nodes.len(), 40);
            assert_eq!(lp.b_nodes.len(), 40);
            for (&a, &b) in lp.a_nodes.iter().zip(&lp.b_nodes) {
                let d = tesc_graph::dist::bounded_distance(&g, &mut s, a, b, h).unwrap_or(u32::MAX);
                assert!(d <= h, "link distance {d} exceeds h={h}");
            }
        }
    }

    #[test]
    fn positive_pair_distance_distribution_is_concentrated() {
        // With variance h, most mass should be at small distances.
        let g = grid(40, 40);
        let mut s = BfsScratch::new(g.num_nodes());
        let lp = positive_pair(&g, &mut s, 300, 3, &mut rng(5)).unwrap();
        let zero_dist = lp
            .a_nodes
            .iter()
            .zip(&lp.b_nodes)
            .filter(|(a, b)| a == b)
            .count();
        // P(|N(0,3)| rounds to 0) ≈ 0.23; allow a broad band.
        assert!(
            zero_dist > 20 && zero_dist < 180,
            "zero-distance links {zero_dist}"
        );
    }

    #[test]
    fn negative_pair_respects_separation() {
        let g = barabasi_albert(3000, 3, &mut rng(1));
        let mut s = BfsScratch::new(g.num_nodes());
        let h = 2;
        let pair = negative_pair(&g, &mut s, 30, 30, h, &mut rng(2)).unwrap();
        assert_eq!(pair.a.len(), 30);
        assert_eq!(pair.b.len(), 30);
        let dist = distances_from_set(&g, &mut s, &pair.a, h);
        for &b in &pair.b {
            assert!(
                dist[b as usize] == u32::MAX,
                "b node {b} within {h} hops of V_a"
            );
        }
    }

    #[test]
    fn negative_pair_fails_when_vicinity_covers_graph() {
        // A star: V^1 of the hub covers everything.
        let g = tesc_graph::generators::star(50);
        let mut s = BfsScratch::new(50);
        // With all nodes as event a, complement is empty.
        let err = negative_pair(&g, &mut s, 50, 1, 1, &mut rng(3)).unwrap_err();
        assert!(
            matches!(err, SimulateError::ComplementTooSmall { .. }),
            "{err}"
        );
    }

    #[test]
    fn independent_pair_sizes() {
        let g = erdos_renyi_gnm(500, 1500, &mut rng(4));
        let pair = independent_pair(&g, 50, 80, &mut rng(5)).unwrap();
        assert_eq!(pair.a.len(), 50);
        assert_eq!(pair.b.len(), 80);
    }

    #[test]
    fn oversized_requests_error() {
        let g = path(10);
        let mut s = BfsScratch::new(10);
        assert!(matches!(
            positive_pair(&g, &mut s, 11, 1, &mut rng(0)),
            Err(SimulateError::NotEnoughNodes { .. })
        ));
        assert!(independent_pair(&g, 11, 1, &mut rng(0)).is_err());
    }

    #[test]
    fn zero_noise_is_identity_for_positive() {
        let g = grid(20, 20);
        let mut s = BfsScratch::new(g.num_nodes());
        let lp = positive_pair(&g, &mut s, 30, 2, &mut rng(6)).unwrap();
        let noised = apply_positive_noise(&g, &mut s, &lp, 0.0, &mut rng(7)).unwrap();
        assert_eq!(noised, lp.to_pair());
    }

    #[test]
    fn full_noise_relocates_all_links_outside() {
        let g = erdos_renyi_gnm(2000, 4000, &mut rng(8));
        let mut s = BfsScratch::new(g.num_nodes());
        let h = 1;
        let lp = positive_pair(&g, &mut s, 25, h, &mut rng(9)).unwrap();
        let noised = apply_positive_noise(&g, &mut s, &lp, 1.0, &mut rng(10)).unwrap();
        let dist = distances_from_set(&g, &mut s, &noised.a, h);
        for &b in &noised.b {
            assert_eq!(
                dist[b as usize],
                u32::MAX,
                "fully-noised b node {b} still within V^h_a"
            );
        }
    }

    #[test]
    fn zero_noise_is_identity_for_negative() {
        let g = barabasi_albert(2000, 2, &mut rng(11));
        let mut s = BfsScratch::new(g.num_nodes());
        let pair = negative_pair(&g, &mut s, 20, 20, 1, &mut rng(12)).unwrap();
        let noised = apply_negative_noise(&g, &mut s, &pair, 1, 0.0, &mut rng(13));
        assert_eq!(noised, pair);
    }

    #[test]
    fn full_negative_noise_attracts_b_to_a() {
        let g = barabasi_albert(2000, 2, &mut rng(14));
        let mut s = BfsScratch::new(g.num_nodes());
        let h = 2;
        let pair = negative_pair(&g, &mut s, 20, 20, h, &mut rng(15)).unwrap();
        let noised = apply_negative_noise(&g, &mut s, &pair, h, 1.0, &mut rng(16));
        let dist = distances_from_set(&g, &mut s, &noised.a, h);
        for &b in &noised.b {
            assert!(
                dist[b as usize] <= h,
                "fully-attracted b node {b} not within {h} hops of V_a"
            );
        }
    }

    #[test]
    fn event_pair_normalizes() {
        let p = EventPair::new(vec![3, 1, 3], vec![2, 2]);
        assert_eq!(p.a, vec![1, 3]);
        assert_eq!(p.b, vec![2]);
        assert_eq!(p.union(), vec![1, 2, 3]);
    }

    #[test]
    fn simulation_is_seed_reproducible() {
        let g = grid(15, 15);
        let mut s = BfsScratch::new(g.num_nodes());
        let p1 = positive_pair(&g, &mut s, 20, 2, &mut rng(42)).unwrap();
        let p2 = positive_pair(&g, &mut s, 20, 2, &mut rng(42)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn sample_outside_dense_mask_falls_back_to_enumeration() {
        let g = path(100);
        // Mask everything except 3 nodes.
        let mut mask = NodeMask::new(100);
        for v in 0..100u32 {
            if v != 7 && v != 55 && v != 99 {
                mask.insert(v);
            }
        }
        let mut out = sample_outside(&g, &mask, 3, &mut rng(17));
        out.sort_unstable();
        assert_eq!(out, vec![7, 55, 99]);
    }
}
