//! Offline stand-in for the parts of the [`rand`] crate this workspace
//! uses.
//!
//! The build environment is fully offline (no crates.io), so the real
//! `rand` cannot be vendored. This crate re-implements, from scratch
//! and on `std` only, the exact API surface the workspace consumes:
//!
//! * [`RngCore`] / [`Rng`] — raw word generation plus the ergonomic
//!   `gen_range` / `gen_bool` extension methods.
//! * [`SeedableRng`] with the `seed_from_u64` constructor every test,
//!   example and benchmark in the repository uses.
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded
//!   via SplitMix64. **The stream differs from upstream `rand`'s
//!   `StdRng`** (which is ChaCha12); determinism within this
//!   repository, not cross-crate stream compatibility, is the contract.
//! * [`seq::SliceRandom`] — `choose` and Fisher–Yates `shuffle`.
//!
//! Integer `gen_range` uses Lemire's widening-multiply mapping, which
//! keeps the bias below 2⁻⁶⁴ per draw without a rejection loop, so
//! every draw consumes exactly one `next_u64` — a property the batch
//! engine's deterministic per-test RNG streams rely on.
//!
//! [`rand`]: https://crates.io/crates/rand

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Raw random word generation. Object safe (`&mut dyn RngCore` works).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} out of [0, 1]");
        // 53 uniform mantissa bits, the same mapping as float gen_range.
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 — the same
    /// convention upstream `rand` documents for this method.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — seed expander (public for deterministic stream
/// derivation, e.g. per-test seeds in the batch engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next word of the SplitMix64 sequence.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types a range can be sampled from. Implemented for `Range` and
/// `RangeInclusive` over the primitive integers and floats.
pub trait SampleRange<T> {
    /// Draw one uniform value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as $u).wrapping_add(off as $u)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                ((lo as $u).wrapping_add(off as $u)) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // `u` < 1, but the cast (f32) or the fused arithmetic
                // can round `v` up onto the excluded bound; step one
                // ulp back down to keep the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not stream-compatible with upstream `rand::rngs::StdRng`
    /// (ChaCha12); chosen for speed and a tiny, auditable
    /// implementation. Same seed ⇒ same stream, forever, on every
    /// platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// `choose` / `shuffle` on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng, SplitMix64};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..10 hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
        }
        for _ in 0..1000 {
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn float_range_never_returns_the_excluded_bound() {
        // All-ones words maximize the 53-bit unit mantissa, which
        // rounds to exactly 1.0 when cast to f32 — the sampler must
        // step one ulp back below the excluded bound.
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v32 = MaxRng.gen_range(0.0f32..1.0);
        assert!(v32 < 1.0, "f32 excluded upper bound returned: {v32}");
        assert!(v32 > 0.999_999, "should land just below the bound");
        let v64 = MaxRng.gen_range(0.0f64..1.0);
        assert!(v64 < 1.0, "f64 excluded upper bound returned: {v64}");
        // Tiny spans stress the arithmetic-rounding path too.
        let w = MaxRng.gen_range(1.0f32..1.000_000_2);
        assert!(w < 1.000_000_2);
        assert!(w >= 1.0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        let trials = 80_000;
        for _ in 0..trials {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        let expect = trials as f64 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.05, "bucket {i}: {c} vs {expect} ({rel:.3})");
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(5);
        for &p in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            let hits = (0..20_000).filter(|_| rng.gen_bool(p)).count();
            let freq = hits as f64 / 20_000.0;
            assert!((freq - p).abs() < 0.02, "p = {p}, freq = {freq}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty_some_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [10u32, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn dyn_rng_core_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(8);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen_range(0u64..100);
        assert!(v < 100);
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference vector from the public-domain splitmix64.c.
        let mut sm = SplitMix64(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
