//! Spearman's ρ rank correlation — the alternative statistic the paper
//! mentions in its conclusions ("Another rank correlation statistic,
//! Spearman's ρ could also be used. We choose Kendall's τ since it can
//! provide an intuitive interpretation and also facilitate the
//! derivation of the efficient importance sampling method").
//!
//! We provide it so users can cross-check verdicts: ρ is the Pearson
//! correlation of the average ranks, tie-corrected, and is also
//! asymptotically normal under independence with
//! `Var(ρ) = 1/(n − 1)`, so the same z-score machinery applies.

use crate::rank::average_ranks;
use crate::{SignificanceLevel, Tail, TestOutcome};

/// Summary of a Spearman correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpearmanSummary {
    /// Sample size.
    pub n: usize,
    /// Spearman's ρ (Pearson correlation of midranks; tie-safe).
    pub rho: f64,
    /// z-score under the null: `ρ · sqrt(n − 1)`.
    pub z: f64,
}

impl SpearmanSummary {
    /// Outcome at a significance level / tail convention.
    pub fn outcome(&self, tail: Tail, alpha: SignificanceLevel) -> TestOutcome {
        TestOutcome::from_z(self.rho, self.z, tail, alpha)
    }
}

/// Compute Spearman's ρ between paired samples.
///
/// Uses the Pearson-of-midranks formulation, which is exact in the
/// presence of ties (the classic `1 − 6Σd²/(n(n²−1))` shortcut is not).
/// Degenerate inputs (either side one big tie) yield `ρ = z = 0`.
///
/// # Panics
///
/// Panics if the samples differ in length or `n < 3`.
pub fn spearman_rho(x: &[f64], y: &[f64]) -> SpearmanSummary {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let n = x.len();
    assert!(n >= 3, "spearman_rho needs n ≥ 3, got {n}");
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    let mean = (n + 1) as f64 / 2.0; // mean rank is (n+1)/2 on both sides
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..n {
        let dx = rx[i] - mean;
        let dy = ry[i] - mean;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    let denom = (var_x * var_y).sqrt();
    let rho = if denom > 0.0 { cov / denom } else { 0.0 };
    let z = if denom > 0.0 {
        rho * ((n - 1) as f64).sqrt()
    } else {
        0.0
    };
    SpearmanSummary { n, rho, z }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_gives_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 8.0, 16.0, 32.0]; // monotone, nonlinear
        let s = spearman_rho(&x, &y);
        assert!((s.rho - 1.0).abs() < 1e-12);
        assert!((s.z - 2.0).abs() < 1e-12, "z = rho*sqrt(n-1) = 2");
    }

    #[test]
    fn perfect_reversal_gives_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [9.0, 7.0, 5.0, 1.0];
        let s = spearman_rho(&x, &y);
        assert!((s.rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_example_without_ties() {
        // Ranks x: 1..5, ranks y: (1, 3, 2, 5, 4); Σd² = 0+1+1+1+1 = 4
        // ρ = 1 − 6·4 / (5·24) = 0.8.
        let x = [10.0, 20.0, 30.0, 40.0, 50.0];
        let y = [1.0, 3.0, 2.0, 5.0, 4.0];
        let s = spearman_rho(&x, &y);
        assert!((s.rho - 0.8).abs() < 1e-12, "rho = {}", s.rho);
    }

    #[test]
    fn tie_handling_via_midranks() {
        // x = (1, 2, 2, 4): midranks (1, 2.5, 2.5, 4).
        // A y that follows x exactly gives rho = 1 even with the tie.
        let x = [1.0, 2.0, 2.0, 4.0];
        let s = spearman_rho(&x, &x);
        assert!((s.rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_all_tied_side_is_zero() {
        let x = [3.0; 5];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = spearman_rho(&x, &y);
        assert_eq!(s.rho, 0.0);
        assert_eq!(s.z, 0.0);
    }

    #[test]
    fn agrees_in_sign_with_kendall() {
        use crate::kendall::{kendall_tau, KendallMethod};
        let x = [0.1, 0.9, 0.3, 0.7, 0.5, 0.2, 0.8];
        let y = [0.2, 0.8, 0.4, 0.9, 0.3, 0.1, 0.7];
        let sp = spearman_rho(&x, &y);
        let kt = kendall_tau(&x, &y, KendallMethod::Exact);
        assert_eq!(sp.rho > 0.0, kt.tau > 0.0);
        // |rho| >= |tau| typically for monotone-ish data.
        assert!(sp.rho.abs() >= kt.tau.abs() * 0.8);
    }

    #[test]
    fn outcome_wiring() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let s = spearman_rho(&x, &x);
        let o = s.outcome(Tail::Upper, SignificanceLevel::FIVE_PERCENT);
        assert!(o.is_significant());
        let o = s.outcome(Tail::Lower, SignificanceLevel::FIVE_PERCENT);
        assert!(!o.is_significant());
    }

    #[test]
    #[should_panic(expected = "n ≥ 3")]
    fn too_small_panics() {
        let _ = spearman_rho(&[1.0, 2.0], &[1.0, 2.0]);
    }

    #[test]
    fn symmetric_in_arguments() {
        let x = [0.4, 0.1, 0.8, 0.8, 0.2];
        let y = [0.3, 0.3, 0.9, 0.5, 0.1];
        let a = spearman_rho(&x, &y);
        let b = spearman_rho(&y, &x);
        assert!((a.rho - b.rho).abs() < 1e-12);
    }
}
