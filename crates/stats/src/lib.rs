//! Statistics substrate for the TESC reproduction.
//!
//! This crate implements the statistical machinery of
//! *Measuring Two-Event Structural Correlations on Graphs*
//! (Guan, Yan, Kaplan; VLDB 2012):
//!
//! * [`kendall`] — Kendall's τ rank correlation (Eq. 3/4 of the paper),
//!   in both the exact `O(n²)` pair-enumeration form and Knight's
//!   `O(n log n)` merge-sort form, together with the tie-corrected
//!   null-hypothesis variance (Eq. 6) and the z-score (Eq. 7).
//! * [`normal`] — the standard normal distribution: pdf, cdf, survival
//!   function and quantile, used to convert z-scores into p-values.
//! * [`rank`] — ranking utilities (average ranks, tie-group extraction)
//!   shared by the τ implementations and the τ_b transaction-correlation
//!   baseline.
//! * [`significance`] — hypothesis-test plumbing: tails, significance
//!   levels, and the [`significance::TestOutcome`] produced by a test.
//! * [`descriptive`] — small online descriptive-statistics helpers
//!   (Welford mean/variance) used by the experiment harness.
//! * [`confidence`] — progressive-sampling confidence intervals: scale
//!   functions, tie-penalty projection and `1 − eps` score intervals
//!   powering the anytime ranking tier.
//!
//! The crate is dependency-free (std only) so that the statistical core
//! can be audited in isolation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod confidence;
pub mod descriptive;
pub mod kendall;
pub mod normal;
pub mod rank;
pub mod significance;
pub mod spearman;

pub use confidence::{
    projected_score_interval, spearman_scale, untied_kendall_scale, ScoreInterval,
};
pub use kendall::{kendall_tau, KendallMethod, KendallSummary};
pub use normal::StdNormal;
pub use significance::{SignificanceLevel, Tail, TestOutcome};
pub use spearman::{spearman_rho, SpearmanSummary};
