//! Kendall's τ rank correlation and its null-hypothesis significance.
//!
//! This is the statistical heart of the TESC test (Sec. 3 of the paper):
//!
//! * [`pair_counts_exact`] enumerates all `n(n−1)/2` pairs — the direct
//!   transcription of Eq. 1 + Eq. 4 — in `O(n²)`.
//! * [`pair_counts_merge`] is Knight's `O(n log n)` algorithm, which
//!   computes the same counts by sorting and inversion counting.
//! * [`var_s_no_ties`] / [`var_s_tie_corrected`] implement Eq. 5 and the
//!   tie-corrected Eq. 6 for the variance of the numerator
//!   `S = Σ_{i<j} c(r_i, r_j)` under the null hypothesis.
//! * [`kendall_tau`] bundles everything into a [`KendallSummary`]
//!   carrying τ, S, the variance and the z-score of Eq. 7.
//! * [`weighted_tau`] is the importance-sampling estimator `t̃` of
//!   Eq. 8, used by the Importance sampler (Alg. 2).

use crate::rank::{cmp_f64, nontrivial_tie_group_sizes};

/// Pairwise concordance counts for two paired samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairCounts {
    /// Number of strictly concordant pairs (`c(r_i, r_j) = 1`).
    pub concordant: u64,
    /// Number of strictly discordant pairs (`c(r_i, r_j) = −1`).
    pub discordant: u64,
    /// Pairs tied in `x` but not in `y`.
    pub tied_x_only: u64,
    /// Pairs tied in `y` but not in `x`.
    pub tied_y_only: u64,
    /// Pairs tied in both `x` and `y`.
    pub tied_both: u64,
}

impl PairCounts {
    /// The Kendall numerator `S = concordant − discordant`
    /// (`Σ_{i<j} c(r_i, r_j)` in the paper's notation).
    #[inline]
    pub fn s(&self) -> i64 {
        self.concordant as i64 - self.discordant as i64
    }

    /// Total number of pairs `n(n−1)/2`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.concordant + self.discordant + self.tied_x_only + self.tied_y_only + self.tied_both
    }

    /// τ_a: `S / (n(n−1)/2)` — Eq. 3/4 of the paper (ties in the
    /// denominator are *not* removed; see the discussion after Eq. 6:
    /// the alternative normalization makes no difference to the z-score).
    #[inline]
    pub fn tau_a(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.s() as f64 / total as f64
        }
    }

    /// τ_b: `S / sqrt((n0 − n1)(n0 − n2))`, the tie-adjusted variant used
    /// for the Transaction Correlation baseline (Tables 1–4 use
    /// "Kendall's τ_b \[1\] to estimate the Transaction Correlation").
    pub fn tau_b(&self) -> f64 {
        let n0 = self.total() as f64;
        let n1 = (self.tied_x_only + self.tied_both) as f64;
        let n2 = (self.tied_y_only + self.tied_both) as f64;
        let denom = ((n0 - n1) * (n0 - n2)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            self.s() as f64 / denom
        }
    }
}

/// Exact `O(n²)` pair enumeration (reference implementation).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn pair_counts_exact(x: &[f64], y: &[f64]) -> PairCounts {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let mut c = PairCounts::default();
    for i in 0..x.len() {
        for j in (i + 1)..x.len() {
            let dx = cmp_f64(x[i], x[j]);
            let dy = cmp_f64(y[i], y[j]);
            use core::cmp::Ordering::Equal;
            match (dx, dy) {
                (Equal, Equal) => c.tied_both += 1,
                (Equal, _) => c.tied_x_only += 1,
                (_, Equal) => c.tied_y_only += 1,
                (a, b) if a == b => c.concordant += 1,
                _ => c.discordant += 1,
            }
        }
    }
    c
}

/// Knight's `O(n log n)` algorithm.
///
/// Sorts by `(x, y)`, counts tie pairs in `x`, in `y`, and jointly, then
/// counts discordant pairs as strict inversions of `y` via merge sort.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn pair_counts_merge(x: &[f64], y: &[f64]) -> PairCounts {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let n = x.len();
    let n0 = (n as u64) * (n as u64).saturating_sub(1) / 2;
    if n < 2 {
        return PairCounts::default();
    }

    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_by(|&a, &b| {
        cmp_f64(x[a as usize], x[b as usize]).then(cmp_f64(y[a as usize], y[b as usize]))
    });

    // Tie pairs in x, and joint ties (x and y both equal).
    let mut tied_x_pairs = 0u64;
    let mut tied_both = 0u64;
    {
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && x[idx[j] as usize] == x[idx[i] as usize] {
                j += 1;
            }
            let run = (j - i) as u64;
            tied_x_pairs += run * (run - 1) / 2;
            // Within an x-tie run the order is sorted by y; count joint ties.
            let mut k = i;
            while k < j {
                let mut m = k + 1;
                while m < j && y[idx[m] as usize] == y[idx[k] as usize] {
                    m += 1;
                }
                let jrun = (m - k) as u64;
                tied_both += jrun * (jrun - 1) / 2;
                k = m;
            }
            i = j;
        }
    }

    // Tie pairs in y (independent of x).
    let tied_y_pairs = crate::rank::tied_pair_count(y);

    // Discordant pairs = strict inversions of y in the (x, y)-sorted order.
    // Pairs tied in x are already sorted by y (no inversion); pairs tied
    // in y are not strict inversions. So the inversion count is exactly
    // the number of pairs with x strictly ordered and y strictly reversed.
    let mut ys: Vec<f64> = idx.iter().map(|&i| y[i as usize]).collect();
    let mut buf = vec![0.0f64; n];
    let discordant = count_strict_inversions(&mut ys, &mut buf);

    let tied_x_only = tied_x_pairs - tied_both;
    let tied_y_only = tied_y_pairs - tied_both;
    let concordant = n0 - tied_x_pairs - tied_y_only - discordant;
    PairCounts {
        concordant,
        discordant,
        tied_x_only,
        tied_y_only,
        tied_both,
    }
}

/// Merge sort counting pairs `(i < j)` with `v[i] > v[j]` strictly.
fn count_strict_inversions(v: &mut [f64], buf: &mut [f64]) -> u64 {
    let n = v.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = v.split_at_mut(mid);
    let mut inv = count_strict_inversions(left, buf) + count_strict_inversions(right, buf);
    // Merge, counting how many elements of `left` remain (strictly
    // greater) when each element of `right` is emitted.
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[k] = left[i];
            i += 1;
        } else {
            // left[i] > right[j]: every remaining left element inverts with right[j].
            inv += (left.len() - i) as u64;
            buf[k] = right[j];
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    v.copy_from_slice(&buf[..n]);
    inv
}

/// Null-hypothesis variance of τ itself with no ties — Eq. 5:
/// `σ² = 2(2n+5) / (9 n (n−1))`.
#[inline]
pub fn var_tau_no_ties(n: usize) -> f64 {
    assert!(n >= 2, "variance needs at least 2 observations");
    let nf = n as f64;
    2.0 * (2.0 * nf + 5.0) / (9.0 * nf * (nf - 1.0))
}

/// Null-hypothesis variance of the numerator `S` with no ties:
/// Eq. 5 multiplied by `[n(n−1)/2]²`, i.e. `n(n−1)(2n+5)/18`.
#[inline]
pub fn var_s_no_ties(n: usize) -> f64 {
    assert!(n >= 2, "variance needs at least 2 observations");
    let nf = n as f64;
    nf * (nf - 1.0) * (2.0 * nf + 5.0) / 18.0
}

/// Tie-corrected null-hypothesis variance of `S` — Eq. 6 of the paper
/// (Kendall & Gibbons, ch. 5).
///
/// `u` and `v` are the tie-group sizes (≥ 2; singletons may be included,
/// they contribute nothing) of the two density vectors.
pub fn var_s_tie_corrected(n: usize, u: &[usize], v: &[usize]) -> f64 {
    assert!(
        n >= 3,
        "tie-corrected variance needs n ≥ 3 (Eq. 6 divides by n−2)"
    );
    let nf = n as f64;
    let term =
        |sizes: &[usize], f: fn(f64) -> f64| -> f64 { sizes.iter().map(|&s| f(s as f64)).sum() };
    let a_u = term(u, |s| s * (s - 1.0) * (2.0 * s + 5.0));
    let a_v = term(v, |s| s * (s - 1.0) * (2.0 * s + 5.0));
    let b_u = term(u, |s| s * (s - 1.0) * (s - 2.0));
    let b_v = term(v, |s| s * (s - 1.0) * (s - 2.0));
    let c_u = term(u, |s| s * (s - 1.0));
    let c_v = term(v, |s| s * (s - 1.0));

    (nf * (nf - 1.0) * (2.0 * nf + 5.0) - a_u - a_v) / 18.0
        + b_u * b_v / (9.0 * nf * (nf - 1.0) * (nf - 2.0))
        + c_u * c_v / (2.0 * nf * (nf - 1.0))
}

/// Which algorithm to use for pair counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KendallMethod {
    /// Exact `O(n²)` enumeration — what the paper times in Fig. 10(b).
    Exact,
    /// Knight's `O(n log n)` merge-sort algorithm (identical output).
    #[default]
    MergeSort,
}

/// Full summary of a Kendall correlation test between two paired samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KendallSummary {
    /// Sample size `n`.
    pub n: usize,
    /// Pair counts.
    pub counts: PairCounts,
    /// τ_a (Eq. 4 with the plain `n(n−1)/2` normalizer).
    pub tau: f64,
    /// τ_b (tie-adjusted normalizer), reported for reference.
    pub tau_b: f64,
    /// Null-hypothesis variance of the numerator `S` (Eq. 6, which
    /// reduces to Eq. 5 × `[n(n−1)/2]²` when no ties exist).
    pub var_s: f64,
    /// The z-score of Eq. 7: `S / sqrt(Var(S))`.
    pub z: f64,
}

impl KendallSummary {
    /// One-tailed p-value for positive correlation (`P(Z ≥ z)`).
    pub fn p_positive(&self) -> f64 {
        crate::normal::StdNormal::p_upper(self.z)
    }

    /// One-tailed p-value for negative correlation (`P(Z ≤ z)`).
    pub fn p_negative(&self) -> f64 {
        crate::normal::StdNormal::p_lower(self.z)
    }

    /// Two-sided p-value (`P(|Z| ≥ |z|)`).
    pub fn p_two_sided(&self) -> f64 {
        crate::normal::StdNormal::p_two_sided(self.z)
    }
}

/// Compute the Kendall correlation test between paired samples `x`, `y`.
///
/// This is Eq. 4–7 of the paper in one call: τ over all pairs, the
/// tie-corrected variance of the numerator, and the z-score. Ties are
/// detected from the data; when none exist the variance is exactly
/// Eq. 5 scaled to the numerator.
///
/// # Panics
///
/// Panics if the samples differ in length or have fewer than 3 elements
/// (Eq. 6 requires `n ≥ 3`; the paper recommends `n > 30` for a good
/// normal approximation).
pub fn kendall_tau(x: &[f64], y: &[f64], method: KendallMethod) -> KendallSummary {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    assert!(x.len() >= 3, "kendall_tau needs n ≥ 3, got {}", x.len());
    let counts = match method {
        KendallMethod::Exact => pair_counts_exact(x, y),
        KendallMethod::MergeSort => pair_counts_merge(x, y),
    };
    let n = x.len();
    let u = nontrivial_tie_group_sizes(x);
    let v = nontrivial_tie_group_sizes(y);
    let var_s = var_s_tie_corrected(n, &u, &v);
    let s = counts.s() as f64;
    let z = if var_s > 0.0 { s / var_s.sqrt() } else { 0.0 };
    KendallSummary {
        n,
        counts,
        tau: counts.tau_a(),
        tau_b: counts.tau_b(),
        var_s,
        z,
    }
}

/// The importance-sampling estimator `t̃(a, b)` of Eq. 8.
///
/// `x`, `y` are the density values at the *distinct* sampled reference
/// nodes; `omega[i] = w_i / p(r_i)` is each node's weight (multiplicity
/// over inclusion probability). Because the pair weight factorizes as
/// `ω_i ω_j`, the estimator is
///
/// ```text
/// t̃ = Σ_{i<j} c(i,j) ω_i ω_j  /  Σ_{i<j} ω_i ω_j .
/// ```
///
/// Returns 0 when the denominator vanishes (all weights zero or n < 2).
pub fn weighted_tau(x: &[f64], y: &[f64], omega: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    assert_eq!(x.len(), omega.len(), "weights must match sample length");
    let n = x.len();
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let w = omega[i] * omega[j];
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            let prod = dx * dy;
            if prod > 0.0 {
                num += w;
            } else if prod < 0.0 {
                num -= w;
            }
            den += w;
        }
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(x: &[f64], y: &[f64]) -> KendallSummary {
        kendall_tau(x, y, KendallMethod::Exact)
    }

    #[test]
    fn perfect_agreement_gives_tau_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = summary(&x, &x);
        assert_eq!(s.tau, 1.0);
        assert_eq!(s.counts.concordant, 10);
        assert_eq!(s.counts.discordant, 0);
        assert!(s.z > 0.0);
    }

    #[test]
    fn perfect_reversal_gives_tau_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        let s = summary(&x, &y);
        assert_eq!(s.tau, -1.0);
        assert!(s.z < 0.0);
    }

    #[test]
    fn known_small_example() {
        // Classic example: x = 1..4, y = (1, 3, 2, 4):
        // pairs: 6 total, discordant only (3,2) → S = 5 - 1 = 4, tau = 2/3.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        let s = summary(&x, &y);
        assert_eq!(s.counts.s(), 4);
        assert!((s.tau - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_tied_x_gives_zero_tau_and_zero_z() {
        let x = [1.0; 5];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = summary(&x, &y);
        assert_eq!(s.tau, 0.0);
        assert_eq!(
            s.z, 0.0,
            "variance collapses to 0 when one side is one big tie"
        );
    }

    #[test]
    fn eq6_reduces_to_eq5_without_ties() {
        for n in [3usize, 5, 10, 30, 101] {
            let no_ties = var_s_no_ties(n);
            let corrected = var_s_tie_corrected(n, &[], &[]);
            assert!(
                (no_ties - corrected).abs() < 1e-9,
                "n={n}: {no_ties} vs {corrected}"
            );
            // And singleton groups are genuinely neutral:
            let with_singletons = var_s_tie_corrected(n, &vec![1; n], &vec![1; n]);
            assert!((no_ties - with_singletons).abs() < 1e-9);
        }
    }

    #[test]
    fn var_tau_and_var_s_consistent() {
        for n in [5usize, 20, 900] {
            let half = (n * (n - 1) / 2) as f64;
            assert!((var_s_no_ties(n) / (half * half) - var_tau_no_ties(n)).abs() < 1e-15);
        }
    }

    #[test]
    fn ties_always_shrink_variance() {
        // "more (larger) ties always lead to smaller σ_c²" (Sec. 3.1).
        let n = 50;
        let base = var_s_tie_corrected(n, &[], &[]);
        let small_tie = var_s_tie_corrected(n, &[2], &[]);
        let big_tie = var_s_tie_corrected(n, &[10], &[]);
        let both_sides = var_s_tie_corrected(n, &[10], &[10]);
        assert!(small_tie < base);
        assert!(big_tie < small_tie);
        assert!(both_sides < big_tie);
    }

    #[test]
    fn z_score_uses_tie_corrected_variance() {
        // Construct data with a big tie in y; z must be computed against
        // the Eq. 6 variance, which differs from Eq. 5.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [1.0, 1.0, 1.0, 2.0, 3.0, 4.0];
        let s = summary(&x, &y);
        let var_naive = var_s_no_ties(6);
        assert!(s.var_s < var_naive);
        assert!((s.z - s.counts.s() as f64 / s.var_s.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_sort_matches_exact_on_fixed_cases() {
        let cases: &[(&[f64], &[f64])] = &[
            (&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]),
            (&[1.0, 2.0, 2.0, 3.0], &[1.0, 1.0, 2.0, 2.0]),
            (&[1.0, 1.0, 1.0, 1.0], &[4.0, 3.0, 2.0, 1.0]),
            (
                &[0.1, 0.9, 0.4, 0.4, 0.7, 0.2, 0.9],
                &[0.5, 0.5, 0.5, 0.1, 0.2, 0.2, 0.9],
            ),
        ];
        for (x, y) in cases {
            assert_eq!(pair_counts_exact(x, y), pair_counts_merge(x, y));
        }
    }

    #[test]
    fn merge_sort_matches_exact_randomized() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let n = 2 + (next() % 64) as usize;
            // Coarse quantization to force plenty of ties.
            let x: Vec<f64> = (0..n).map(|_| (next() % 7) as f64).collect();
            let y: Vec<f64> = (0..n).map(|_| (next() % 5) as f64).collect();
            assert_eq!(
                pair_counts_exact(&x, &y),
                pair_counts_merge(&x, &y),
                "trial {trial} n={n} x={x:?} y={y:?}"
            );
        }
    }

    #[test]
    fn pair_counts_total_is_n_choose_2() {
        let x = [0.0, 1.0, 1.0, 2.0, 5.0, 5.0, 5.0];
        let c = pair_counts_exact(&x, &x);
        assert_eq!(c.total(), 21);
    }

    #[test]
    fn tau_b_handles_ties_like_textbook() {
        // Agresti-style example: x has one tie pair, y has one tie pair.
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        let c = pair_counts_exact(&x, &y);
        // pairs: (12):tx, (13):C, (14):C, (23):ty, (24):C, (34):C → S=4
        assert_eq!(c.s(), 4);
        let n0: f64 = 6.0;
        let expect = 4.0 / ((n0 - 1.0) * (n0 - 1.0)).sqrt();
        assert!((c.tau_b() - expect).abs() < 1e-12);
        // τ_b ≥ τ_a in magnitude when ties exist.
        assert!(c.tau_b() >= c.tau_a());
    }

    #[test]
    fn weighted_tau_with_unit_weights_equals_tau_a_when_no_ties() {
        let x = [0.3, 0.1, 0.9, 0.5, 0.7];
        let y = [0.2, 0.4, 0.8, 0.6, 0.1];
        let w = [1.0; 5];
        let t = weighted_tau(&x, &y, &w);
        let s = summary(&x, &y);
        assert!((t - s.tau).abs() < 1e-12);
    }

    #[test]
    fn weighted_tau_upweights_pairs() {
        // One concordant pair with huge weight dominates the many
        // discordant unit-weight pairs.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 1.0, 4.0, 3.0]; // pairs mixed
        let flat = weighted_tau(&x, &y, &[1.0; 4]);
        let skew = weighted_tau(&x, &y, &[1.0, 1.0, 100.0, 100.0]);
        // Pair (3,4) is concordant (3<4, 4>3? dx=-1, dy=1 → discordant).
        // Compute expectation directly instead of hand-waving:
        let exact = pair_counts_exact(&x, &y);
        assert_eq!(exact.total(), 6);
        // The test's point: weighting changes the estimate.
        assert_ne!(flat, skew);
        assert!((-1.0..=1.0).contains(&skew));
    }

    #[test]
    fn weighted_tau_zero_weights_returns_zero() {
        assert_eq!(weighted_tau(&[1.0, 2.0], &[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn weighted_tau_is_scale_invariant_in_weights() {
        let x = [0.3, 0.1, 0.9, 0.5];
        let y = [0.2, 0.4, 0.8, 0.6];
        let w1 = [1.0, 2.0, 3.0, 4.0];
        let w2 = [10.0, 20.0, 30.0, 40.0];
        assert!((weighted_tau(&x, &y, &w1) - weighted_tau(&x, &y, &w2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 2.0], KendallMethod::Exact);
    }

    #[test]
    #[should_panic(expected = "n ≥ 3")]
    fn too_small_sample_panics() {
        let _ = kendall_tau(&[1.0, 2.0], &[1.0, 2.0], KendallMethod::Exact);
    }

    #[test]
    fn null_z_is_moderate_for_independent_ranks() {
        // A fixed "random-looking" permutation should yield |z| < 3.
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y = [
            17.0, 3.0, 29.0, 11.0, 38.0, 0.0, 24.0, 8.0, 33.0, 15.0, 1.0, 27.0, 19.0, 36.0, 5.0,
            22.0, 13.0, 31.0, 9.0, 39.0, 2.0, 25.0, 16.0, 34.0, 7.0, 20.0, 12.0, 30.0, 4.0, 37.0,
            23.0, 14.0, 32.0, 6.0, 26.0, 18.0, 35.0, 10.0, 28.0, 21.0,
        ];
        let s = summary(&x, &y);
        assert!(s.z.abs() < 3.0, "z = {}", s.z);
    }
}
