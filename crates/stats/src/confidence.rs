//! Confidence intervals for progressively sampled correlation scores.
//!
//! The anytime ranking tier scores a pair on a small reference sample
//! `m < n`, then must decide whether the pair's *full-sample* score
//! could still land inside (or outside) the top-K cutoff. The pieces:
//!
//! * **Scale functions.** A z-score grows with the sample size even
//!   when the underlying correlation is fixed: for Kendall's S the
//!   tie-free null scale is `c(m) = S_max/√Var(S) = √(9m(m−1)/(2(2m+5)))`
//!   (since `S_max = m(m−1)/2` and `Var(S) = m(m−1)(2m+5)/18`), for
//!   Spearman it is `√(m−1)`. Dividing an observed score by its scale
//!   gives a size-free estimate `ê ∈ [−1, 1]` of the correlation; the
//!   projected full-sample score is `ê·c(n)`.
//! * **Tie penalty.** Ties shrink both `S_max` and `Var(S)`. The
//!   *observed* scale at `m` (the significance budget the ranker
//!   already computes) captures the pair's actual tie structure, so
//!   the projection carries the observed-to-untied ratio
//!   `ρ = c_obs(m)/c_untied(m)` forward to `n` rather than assuming a
//!   tie-free future.
//! * **Interval width.** `Var(τ̂) ≤ 2/m` for every exchangeable null /
//!   alternative (the Hoeffding projection bound: `τ̂` is a U-statistic
//!   of degree 2 with kernel in `[−1, 1]`), so a normal-approximation
//!   interval of coverage `1 − eps` on `ê` has half-width
//!   `z_{1−eps/2}·√(2/m)`; scaling by the projected scale moves it to
//!   the score axis. `eps = 0` yields the infinite interval — the
//!   anytime executor then never decides early, which is exactly what
//!   makes its output bit-identical to the exact ranking.

use crate::normal::StdNormal;

/// Tie-free Kendall z-scale at sample size `m`:
/// `√(9m(m−1)/(2(2m+5)))` — the largest |z| an untied sample of `m`
/// reference nodes can produce. Zero for `m < 2`.
pub fn untied_kendall_scale(m: usize) -> f64 {
    if m < 2 {
        return 0.0;
    }
    let m = m as f64;
    (9.0 * m * (m - 1.0) / (2.0 * (2.0 * m + 5.0))).sqrt()
}

/// Spearman z-scale at sample size `m`: `√(m−1)` (|ρ| ≤ 1 and
/// `z = ρ·√(m−1)`). Zero for `m < 1`.
pub fn spearman_scale(m: usize) -> f64 {
    if m < 1 {
        return 0.0;
    }
    ((m - 1) as f64).sqrt()
}

/// A confidence interval on a pair's projected full-sample score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreInterval {
    /// Point estimate of the full-sample score.
    pub point: f64,
    /// Lower confidence bound (`−∞` when `eps = 0`).
    pub lo: f64,
    /// Upper confidence bound (`+∞` when `eps = 0`).
    pub hi: f64,
}

impl ScoreInterval {
    /// Degenerate point interval (used once a score is exact).
    pub fn exact(score: f64) -> Self {
        ScoreInterval {
            point: score,
            lo: score,
            hi: score,
        }
    }

    /// Interval width (`∞` when `eps = 0`).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Project a score observed at sample size `m` to the full sample size
/// and wrap it in a `1 − eps` confidence interval.
///
/// `score_m` is the observed score (a z-score read in the tested
/// direction), `scale_m > 0` the observed score scale at `m` (the
/// significance budget `S_max/√Var(S)`), and `scale_n` the projected
/// scale at the full sample size. The estimate `ê = score_m/scale_m`
/// is clamped to `[−1, 1]`; the half-width is
/// `z_{1−eps/2}·√(2/m)·scale_n`. With `eps = 0` the interval is
/// `(−∞, +∞)`: no early decision is ever possible.
///
/// # Panics
///
/// Panics unless `scale_m > 0`, `m ≥ 2` and `0 ≤ eps < 1`.
pub fn projected_score_interval(
    score_m: f64,
    scale_m: f64,
    scale_n: f64,
    m: usize,
    eps: f64,
) -> ScoreInterval {
    assert!(scale_m > 0.0, "observed scale must be positive");
    assert!(m >= 2, "need at least two reference nodes");
    assert!((0.0..1.0).contains(&eps), "eps must be in [0, 1)");
    let estimate = (score_m / scale_m).clamp(-1.0, 1.0);
    let point = estimate * scale_n;
    if eps == 0.0 {
        return ScoreInterval {
            point,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        };
    }
    let half = StdNormal::quantile(1.0 - eps / 2.0) * (2.0 / m as f64).sqrt() * scale_n;
    ScoreInterval {
        point,
        lo: point - half,
        hi: point + half,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untied_scales_match_closed_forms() {
        // m = 10: Var(S) = 10·9·25/18 = 125, S_max = 45 → 45/√125.
        let expect = 45.0 / 125.0f64.sqrt();
        assert!((untied_kendall_scale(10) - expect).abs() < 1e-12);
        assert_eq!(untied_kendall_scale(1), 0.0);
        assert_eq!(spearman_scale(10), 3.0);
        assert_eq!(spearman_scale(0), 0.0);
        // Scales grow ~√m: a full-sample scale always dominates a
        // prefix scale.
        for m in 3..200 {
            assert!(untied_kendall_scale(m + 1) > untied_kendall_scale(m));
            assert!(spearman_scale(m + 1) > spearman_scale(m));
        }
    }

    #[test]
    fn eps_zero_interval_is_infinite() {
        let ci = projected_score_interval(3.0, 4.0, 8.0, 50, 0.0);
        assert_eq!(ci.lo, f64::NEG_INFINITY);
        assert_eq!(ci.hi, f64::INFINITY);
        assert!((ci.point - 6.0).abs() < 1e-12, "ê = 0.75 → 0.75·8");
        assert_eq!(ci.width(), f64::INFINITY);
    }

    #[test]
    fn width_shrinks_with_m_and_grows_as_eps_drops() {
        let w = |m: usize, eps: f64| projected_score_interval(1.0, 4.0, 8.0, m, eps).width();
        assert!(w(100, 0.1) < w(25, 0.1), "more samples → tighter");
        assert!(
            (w(25, 0.1) - 2.0 * w(100, 0.1)).abs() < 1e-9,
            "√(2/m): quadrupling m halves the width"
        );
        assert!(w(100, 0.01) > w(100, 0.1), "smaller eps → wider");
        assert!(w(100, 0.5) > 0.0);
    }

    #[test]
    fn estimate_is_clamped_to_unit_correlation() {
        // An observed score at the budget ceiling projects to the full
        // ceiling, never beyond.
        let ci = projected_score_interval(9.0, 4.0, 8.0, 50, 0.2);
        assert_eq!(ci.point, 8.0);
        let ci = projected_score_interval(-9.0, 4.0, 8.0, 50, 0.2);
        assert_eq!(ci.point, -8.0);
    }

    #[test]
    fn exact_interval_is_a_point() {
        let ci = ScoreInterval::exact(2.5);
        assert_eq!((ci.lo, ci.point, ci.hi), (2.5, 2.5, 2.5));
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "eps must be in [0, 1)")]
    fn eps_one_rejected() {
        let _ = projected_score_interval(1.0, 2.0, 3.0, 10, 1.0);
    }
}
