//! Hypothesis-test plumbing shared by the TESC test and the baselines.

use crate::normal::StdNormal;

/// Which tail(s) of the null distribution count as "extreme".
///
/// The paper's evaluation (Sec. 5.2) uses **one-tailed** tests at
/// `α = 0.05`: the upper tail when hunting positive correlation, the
/// lower tail for negative correlation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tail {
    /// Reject for large positive statistics (attraction).
    Upper,
    /// Reject for large negative statistics (repulsion).
    Lower,
    /// Reject for large |statistic| (either direction).
    TwoSided,
}

impl Tail {
    /// p-value of an observed z-score under this tail convention.
    pub fn p_value(self, z: f64) -> f64 {
        match self {
            Tail::Upper => StdNormal::p_upper(z),
            Tail::Lower => StdNormal::p_lower(z),
            Tail::TwoSided => StdNormal::p_two_sided(z),
        }
    }

    /// Critical z value at significance level `alpha`: the observed z is
    /// significant iff it is more extreme than this cutoff (in the
    /// direction(s) of the tail).
    pub fn critical_z(self, alpha: SignificanceLevel) -> f64 {
        match self {
            Tail::Upper => StdNormal::quantile(1.0 - alpha.0),
            Tail::Lower => -StdNormal::quantile(1.0 - alpha.0),
            Tail::TwoSided => StdNormal::quantile(1.0 - alpha.0 / 2.0),
        }
    }
}

/// A validated significance level `α ∈ (0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SignificanceLevel(f64);

impl SignificanceLevel {
    /// The paper's default, `α = 0.05`.
    pub const FIVE_PERCENT: SignificanceLevel = SignificanceLevel(0.05);
    /// `α = 0.01` (the z > 2.33 rule of thumb quoted in Sec. 5.4).
    pub const ONE_PERCENT: SignificanceLevel = SignificanceLevel(0.01);

    /// Construct a significance level, validating the range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "significance level must be in (0,1), got {alpha}"
        );
        SignificanceLevel(alpha)
    }

    /// The raw α.
    #[inline]
    pub fn alpha(self) -> f64 {
        self.0
    }
}

/// Verdict of a correlation significance test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Null hypothesis rejected in favour of positive correlation.
    PositiveCorrelation,
    /// Null hypothesis rejected in favour of negative correlation.
    NegativeCorrelation,
    /// Null hypothesis not rejected.
    Independent,
}

/// Outcome of a significance test: the statistic, its z-score, p-value
/// and the accept/reject verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestOutcome {
    /// Point estimate of the correlation (τ or t̃ in the paper).
    pub statistic: f64,
    /// z-score of the statistic under the null hypothesis (Eq. 7).
    pub z: f64,
    /// p-value under the chosen tail.
    pub p_value: f64,
    /// Tail convention the p-value was computed under.
    pub tail: Tail,
    /// Significance level the verdict was taken at.
    pub alpha: f64,
    /// The verdict.
    pub verdict: Verdict,
}

impl TestOutcome {
    /// Assemble an outcome from a statistic + z-score.
    pub fn from_z(statistic: f64, z: f64, tail: Tail, alpha: SignificanceLevel) -> Self {
        let p = tail.p_value(z);
        let significant = p < alpha.alpha();
        let verdict = if !significant {
            Verdict::Independent
        } else {
            match tail {
                Tail::Upper => Verdict::PositiveCorrelation,
                Tail::Lower => Verdict::NegativeCorrelation,
                Tail::TwoSided => {
                    if z >= 0.0 {
                        Verdict::PositiveCorrelation
                    } else {
                        Verdict::NegativeCorrelation
                    }
                }
            }
        };
        TestOutcome {
            statistic,
            z,
            p_value: p,
            tail,
            alpha: alpha.alpha(),
            verdict,
        }
    }

    /// Did the test reject the null hypothesis?
    #[inline]
    pub fn is_significant(&self) -> bool {
        self.verdict != Verdict::Independent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_tail_p_values() {
        assert!(Tail::Upper.p_value(3.0) < 0.01);
        assert!(Tail::Upper.p_value(0.0) == 0.5);
        assert!(Tail::Upper.p_value(-3.0) > 0.99);
    }

    #[test]
    fn lower_tail_mirrors_upper() {
        for z in [-2.5, -0.4, 0.0, 1.3, 4.0] {
            let a = Tail::Lower.p_value(z);
            let b = Tail::Upper.p_value(-z);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn critical_values_match_textbook() {
        let a05 = SignificanceLevel::FIVE_PERCENT;
        assert!((Tail::Upper.critical_z(a05) - 1.6449).abs() < 1e-3);
        assert!((Tail::Lower.critical_z(a05) + 1.6449).abs() < 1e-3);
        assert!((Tail::TwoSided.critical_z(a05) - 1.9600).abs() < 1e-3);
    }

    #[test]
    fn verdicts_follow_tail_and_alpha() {
        let a = SignificanceLevel::FIVE_PERCENT;
        let o = TestOutcome::from_z(0.4, 2.0, Tail::Upper, a);
        assert_eq!(o.verdict, Verdict::PositiveCorrelation);
        assert!(o.is_significant());

        let o = TestOutcome::from_z(0.4, 1.0, Tail::Upper, a);
        assert_eq!(o.verdict, Verdict::Independent);

        let o = TestOutcome::from_z(-0.4, -2.0, Tail::Lower, a);
        assert_eq!(o.verdict, Verdict::NegativeCorrelation);

        // A strongly negative z is NOT significant under the upper tail.
        let o = TestOutcome::from_z(-0.4, -5.0, Tail::Upper, a);
        assert_eq!(o.verdict, Verdict::Independent);
    }

    #[test]
    fn two_sided_verdict_takes_sign_from_z() {
        let a = SignificanceLevel::FIVE_PERCENT;
        let o = TestOutcome::from_z(0.4, 2.5, Tail::TwoSided, a);
        assert_eq!(o.verdict, Verdict::PositiveCorrelation);
        let o = TestOutcome::from_z(-0.4, -2.5, Tail::TwoSided, a);
        assert_eq!(o.verdict, Verdict::NegativeCorrelation);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn invalid_alpha_rejected() {
        let _ = SignificanceLevel::new(1.5);
    }

    #[test]
    fn stricter_alpha_flips_borderline_cases() {
        let z = 2.0; // p ≈ 0.0228 one-tailed
        let at5 = TestOutcome::from_z(0.1, z, Tail::Upper, SignificanceLevel::FIVE_PERCENT);
        let at1 = TestOutcome::from_z(0.1, z, Tail::Upper, SignificanceLevel::ONE_PERCENT);
        assert!(at5.is_significant());
        assert!(!at1.is_significant());
    }
}
