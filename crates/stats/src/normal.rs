#![allow(clippy::excessive_precision)] // full-precision Cody/Acklam constants are intentional
//! The standard normal distribution.
//!
//! The TESC test converts the Kendall statistic into a z-score (Eq. 7 of
//! the paper) and assesses significance against the standard normal,
//! exploiting τ's asymptotic normality under the null hypothesis.
//! This module provides the pdf, cdf, survival function and quantile
//! needed for that conversion, implemented from scratch (no external
//! special-function crates are available offline).

/// The standard normal distribution `N(0, 1)`.
///
/// All methods are associated functions on this zero-sized type so call
/// sites read as `StdNormal::cdf(z)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StdNormal;

/// `1 / sqrt(2π)`.
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
/// `sqrt(2)`.
const SQRT_2: f64 = core::f64::consts::SQRT_2;

impl StdNormal {
    /// Probability density function `φ(x)`.
    #[inline]
    pub fn pdf(x: f64) -> f64 {
        INV_SQRT_2PI * (-0.5 * x * x).exp()
    }

    /// Cumulative distribution function `Φ(x) = P(Z ≤ x)`.
    ///
    /// Accurate to roughly `1e-15` relative error in the central region
    /// and `1e-12` absolute error in the tails, via [`erfc`].
    #[inline]
    pub fn cdf(x: f64) -> f64 {
        0.5 * erfc(-x / SQRT_2)
    }

    /// Survival function `P(Z > x) = 1 − Φ(x)`.
    ///
    /// Computed directly from `erfc` so it stays accurate for large
    /// positive `x` where `1 − cdf(x)` would catastrophically cancel.
    #[inline]
    pub fn sf(x: f64) -> f64 {
        0.5 * erfc(x / SQRT_2)
    }

    /// Quantile function (inverse cdf): returns `x` with `Φ(x) = p`.
    ///
    /// Uses Acklam's rational approximation refined with one Halley step,
    /// giving ~`1e-15` relative accuracy over `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)` (0 and 1 map to ±∞, which the
    /// caller almost always does not want; be explicit instead).
    pub fn quantile(p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "StdNormal::quantile requires p in (0,1), got {p}"
        );
        let x = acklam_quantile(p);
        // One Halley refinement step: solves cdf(x) - p = 0.
        let e = Self::cdf(x) - p;
        let u = e * (2.0 * core::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        x - u / (1.0 + x * u / 2.0)
    }

    /// Two-sided p-value for an observed z-score: `P(|Z| ≥ |z|)`.
    #[inline]
    pub fn p_two_sided(z: f64) -> f64 {
        2.0 * Self::sf(z.abs())
    }

    /// Upper-tail p-value: `P(Z ≥ z)`. Used for one-tailed tests of
    /// positive correlation.
    #[inline]
    pub fn p_upper(z: f64) -> f64 {
        Self::sf(z)
    }

    /// Lower-tail p-value: `P(Z ≤ z)`. Used for one-tailed tests of
    /// negative correlation.
    #[inline]
    pub fn p_lower(z: f64) -> f64 {
        Self::cdf(z)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Implementation: W. J. Cody's CALERF rational approximations
/// (TOMS, 1969/1990), which keep ~1e-16 relative accuracy everywhere —
/// including the far tail, where the TESC z-scores of strongly
/// correlated pairs live (e.g. `z ≈ 30` in Table 1 of the paper).
pub fn erfc(x: f64) -> f64 {
    let y = x.abs();
    let result = if y <= 0.46875 {
        1.0 - erf_cody_small(x)
    } else if y <= 4.0 {
        erfc_cody_mid(y)
    } else {
        erfc_cody_large(y)
    };
    // For |x| ≤ 0.46875 the first branch already used the signed x via
    // erf's odd symmetry; otherwise reflect erfc(-y) = 2 − erfc(y).
    if x < -0.46875 {
        2.0 - result
    } else {
        result
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    if x.abs() <= 0.46875 {
        erf_cody_small(x)
    } else {
        1.0 - erfc(x)
    }
}

/// Cody branch 1: `erf(x)` for `|x| ≤ 0.46875` (odd in x).
fn erf_cody_small(x: f64) -> f64 {
    const A: [f64; 5] = [
        3.161_123_743_870_565_6e0,
        1.138_641_541_510_501_56e2,
        3.774_852_376_853_020_2e2,
        3.209_377_589_138_469_47e3,
        1.857_777_061_846_031_53e-1,
    ];
    const B: [f64; 4] = [
        2.360_129_095_234_412_09e1,
        2.440_246_379_344_441_73e2,
        1.282_616_526_077_372_28e3,
        2.844_236_833_439_170_62e3,
    ];
    let z = x * x;
    let mut xnum = A[4] * z;
    let mut xden = z;
    for i in 0..3 {
        xnum = (xnum + A[i]) * z;
        xden = (xden + B[i]) * z;
    }
    x * (xnum + A[3]) / (xden + B[3])
}

/// Cody branch 2: `erfc(y)` for `0.46875 ≤ y ≤ 4`.
fn erfc_cody_mid(y: f64) -> f64 {
    const C: [f64; 9] = [
        5.641_884_969_886_700_9e-1,
        8.883_149_794_388_375_9e0,
        6.611_919_063_714_163e1,
        2.986_351_381_974_001_3e2,
        8.819_522_212_417_690_9e2,
        1.712_047_612_634_070_58e3,
        2.051_078_377_826_071_47e3,
        1.230_339_354_797_997_25e3,
        2.153_115_354_744_038_46e-8,
    ];
    const D: [f64; 8] = [
        1.574_492_611_070_983_47e1,
        1.176_939_508_913_124_99e2,
        5.371_811_018_620_098_58e2,
        1.621_389_574_566_690_19e3,
        3.290_799_235_733_459_63e3,
        4.362_619_090_143_247_16e3,
        3.439_367_674_143_721_64e3,
        1.230_339_354_803_749_42e3,
    ];
    let mut xnum = C[8] * y;
    let mut xden = y;
    for i in 0..7 {
        xnum = (xnum + C[i]) * y;
        xden = (xden + D[i]) * y;
    }
    let r = (xnum + C[7]) / (xden + D[7]);
    exp_neg_sq(y) * r
}

/// Cody branch 3: `erfc(y)` for `y > 4`.
fn erfc_cody_large(y: f64) -> f64 {
    const SQRPI: f64 = 5.641_895_835_477_562_9e-1; // 1/sqrt(pi)
    const P: [f64; 6] = [
        3.053_266_349_612_323_44e-1,
        3.603_448_999_498_044_4e-1,
        1.257_817_261_112_292_46e-1,
        1.608_378_514_874_227_66e-2,
        6.587_491_615_298_378e-4,
        1.631_538_713_730_209_78e-2,
    ];
    const Q: [f64; 5] = [
        2.568_520_192_289_822_4e0,
        1.872_952_849_923_460_47e0,
        5.279_051_029_514_284_1e-1,
        6.051_834_131_244_131_9e-2,
        2.335_204_976_268_691_85e-3,
    ];
    if y >= 26.64 {
        // erfc underflows to 0 around y ≈ 26.64 in f64.
        return 0.0;
    }
    let z = 1.0 / (y * y);
    let mut xnum = P[5] * z;
    let mut xden = z;
    for i in 0..4 {
        xnum = (xnum + P[i]) * z;
        xden = (xden + Q[i]) * z;
    }
    let mut r = z * (xnum + P[4]) / (xden + Q[4]);
    r = (SQRPI - r) / y;
    exp_neg_sq(y) * r
}

/// `exp(-y²)` computed with the split-square trick from CALERF to avoid
/// losing low-order bits of `y²` (matters for tail relative accuracy).
fn exp_neg_sq(y: f64) -> f64 {
    let ysq = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp()
}

/// Acklam's rational approximation to the normal quantile.
fn acklam_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath (50 digits), rounded to 17
    /// significant digits.
    const CDF_TABLE: &[(f64, f64)] = &[
        (-5.0, 2.866_515_718_791_939e-7),
        (-2.33, 9.903_075_559_164_252e-3),
        (-1.0, 0.158_655_253_931_457_05),
        (0.0, 0.5),
        (0.5, 0.691_462_461_274_013_1),
        (1.0, 0.841_344_746_068_542_9),
        (1.96, 0.975_002_104_851_779_7),
        (2.33, 0.990_096_924_440_835_7),
        (3.0, 0.998_650_101_968_369_9),
        (6.0, 0.999_999_999_013_412_3),
    ];

    #[test]
    fn cdf_matches_reference_table() {
        for &(x, want) in CDF_TABLE {
            let got = StdNormal::cdf(x);
            assert!((got - want).abs() < 1e-8, "cdf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn sf_is_complement_of_cdf_centrally() {
        for &(x, want) in CDF_TABLE {
            let got = StdNormal::sf(x);
            assert!((got - (1.0 - want)).abs() < 1e-8, "sf({x}) = {got}");
        }
    }

    #[test]
    fn sf_accurate_in_far_tail() {
        // P(Z > 10) ~ 7.619e-24; a naive 1-cdf would return exactly 0.
        let p = StdNormal::sf(10.0);
        assert!(p > 0.0, "far-tail survival must not underflow to 0");
        let want = 7.619_853_024_160_525e-24;
        assert!((p - want).abs() / want < 1e-4, "sf(10) = {p:e}");
    }

    #[test]
    fn pdf_symmetric_and_peaks_at_zero() {
        assert!((StdNormal::pdf(0.0) - INV_SQRT_2PI).abs() < 1e-15);
        for x in [0.3, 1.7, 4.2] {
            assert!((StdNormal::pdf(x) - StdNormal::pdf(-x)).abs() < 1e-16);
            assert!(StdNormal::pdf(x) < StdNormal::pdf(0.0));
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [
            1e-6,
            0.001,
            0.025,
            0.05,
            0.31,
            0.5,
            0.77,
            0.95,
            0.999,
            1.0 - 1e-6,
        ] {
            let x = StdNormal::quantile(p);
            let back = StdNormal::cdf(x);
            assert!(
                (back - p).abs() < 1e-9,
                "quantile({p}) = {x}, cdf back {back}"
            );
        }
    }

    #[test]
    fn quantile_known_critical_values() {
        // One-tailed alpha = 0.05 and 0.01 critical values used in the paper.
        assert!((StdNormal::quantile(0.95) - 1.644_853_626_951_472_8).abs() < 1e-9);
        assert!((StdNormal::quantile(0.99) - 2.326_347_874_040_841).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_rejects_zero() {
        let _ = StdNormal::quantile(0.0);
    }

    #[test]
    fn paper_z_cutoff_claim_holds() {
        // Sec. 5.4: "a z-score > 2.33 or < -2.33 indicates the
        // corresponding p-value < 0.01 for one-tailed testing".
        assert!(StdNormal::p_upper(2.331) < 0.01);
        assert!(StdNormal::p_lower(-2.331) < 0.01);
        assert!(StdNormal::p_upper(2.32) > 0.01);
    }

    #[test]
    fn erf_erfc_consistency() {
        for x in [-4.0, -1.2, -0.3, 0.0, 0.2, 0.49, 0.51, 1.0, 2.5, 5.0] {
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 1e-9, "erf+erfc at {x} = {s}");
        }
    }

    #[test]
    fn erf_odd_symmetry() {
        for x in [0.1, 0.5, 1.5, 3.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-9);
        }
    }

    #[test]
    fn p_two_sided_is_twice_one_sided_for_positive_z() {
        for z in [0.5, 1.0, 2.0, 3.5] {
            let two = StdNormal::p_two_sided(z);
            let one = StdNormal::p_upper(z);
            assert!((two - 2.0 * one).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = StdNormal::cdf(-8.0);
        let mut x = -8.0;
        while x <= 8.0 {
            let c = StdNormal::cdf(x);
            assert!(c + 1e-12 >= prev, "cdf not monotone at {x}");
            prev = c;
            x += 0.05;
        }
    }
}
