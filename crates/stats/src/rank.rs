//! Ranking utilities: average ranks and tie-group extraction.
//!
//! Ties are central to the TESC test: reference nodes whose vicinities
//! contain only one of the two events form large tie groups in the
//! density vectors (Sec. 3.2 of the paper), and the null-hypothesis
//! variance must be corrected for them (Eq. 6). This module provides the
//! shared tie bookkeeping.

/// Total order on `f64` for ranking purposes.
///
/// Panics on NaN: event densities are ratios of finite counts and can
/// never be NaN, so a NaN here is a logic error upstream.
#[inline]
pub fn cmp_f64(a: f64, b: f64) -> core::cmp::Ordering {
    a.partial_cmp(&b).expect("density values must not be NaN")
}

/// Sizes of the tie groups of `values`, *including* groups of size 1.
///
/// The returned sizes sum to `values.len()` and are reported in
/// ascending value order.
pub fn tie_group_sizes(values: &[f64]) -> Vec<usize> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| cmp_f64(*a, *b));
    let mut groups = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        groups.push(j - i);
        i = j;
    }
    groups
}

/// Sizes of tie groups with at least two members (the `u_i`/`v_i` of
/// Eq. 6; singleton groups contribute nothing to the correction terms).
pub fn nontrivial_tie_group_sizes(values: &[f64]) -> Vec<usize> {
    tie_group_sizes(values)
        .into_iter()
        .filter(|&s| s >= 2)
        .collect()
}

/// Average ("midrank") ranks of `values`, 1-based.
///
/// Tied values receive the mean of the ranks they span — the convention
/// required by τ_b and Spearman-style statistics.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| cmp_f64(values[a], values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && values[idx[j]] == values[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j (1-based) share the average rank.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

/// Descending total order on ranking scores — the shared comparator of
/// every ranking surface (`tesc::rank`, the CLI's `rank` table, the
/// bench's recall@k agreement): best score first, NaN rejected like
/// [`cmp_f64`]. Compose with an index/label tie-break for a
/// deterministic full order, e.g.
/// `cmp_score_desc(a, b).then(i.cmp(&j))`.
#[inline]
pub fn cmp_score_desc(a: f64, b: f64) -> core::cmp::Ordering {
    cmp_f64(b, a)
}

/// Indices of `scores` sorted best-first: descending score with the
/// ascending-index tie-break, so equal scores keep their original
/// relative order deterministically.
pub fn rank_indices_desc(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&i, &j| cmp_score_desc(scores[i], scores[j]).then(i.cmp(&j)));
    idx
}

/// Number of pairs `(i, j)`, `i < j`, tied within `values`
/// (i.e. `Σ s(s−1)/2` over tie groups). This is the `n1`/`n2` of the
/// standard τ_b notation.
pub fn tied_pair_count(values: &[f64]) -> u64 {
    nontrivial_tie_group_sizes(values)
        .iter()
        .map(|&s| (s as u64) * (s as u64 - 1) / 2)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_groups_all_distinct() {
        assert_eq!(tie_group_sizes(&[3.0, 1.0, 2.0]), vec![1, 1, 1]);
        assert!(nontrivial_tie_group_sizes(&[3.0, 1.0, 2.0]).is_empty());
    }

    #[test]
    fn tie_groups_with_duplicates() {
        let v = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        assert_eq!(tie_group_sizes(&v), vec![1, 2, 3]);
        assert_eq!(nontrivial_tie_group_sizes(&v), vec![2, 3]);
    }

    #[test]
    fn tie_groups_all_equal() {
        assert_eq!(tie_group_sizes(&[5.0; 4]), vec![4]);
    }

    #[test]
    fn tie_groups_empty_input() {
        assert!(tie_group_sizes(&[]).is_empty());
    }

    #[test]
    fn tie_group_sizes_sum_to_len() {
        let v = [0.5, 0.5, 0.1, 0.9, 0.1, 0.1, 0.7];
        assert_eq!(tie_group_sizes(&v).iter().sum::<usize>(), v.len());
    }

    #[test]
    fn average_ranks_no_ties() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn average_ranks_with_ties_take_midrank() {
        // values: 1, 2, 2, 4 → ranks 1, 2.5, 2.5, 4
        assert_eq!(
            average_ranks(&[1.0, 2.0, 2.0, 4.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn average_ranks_all_tied() {
        assert_eq!(average_ranks(&[7.0; 5]), vec![3.0; 5]);
    }

    #[test]
    fn average_ranks_sum_invariant() {
        // Ranks always sum to n(n+1)/2, ties or not.
        let v = [0.3, 0.3, 0.9, 0.1, 0.9, 0.9, 0.2];
        let n = v.len() as f64;
        let sum: f64 = average_ranks(&v).iter().sum();
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn tied_pair_count_examples() {
        assert_eq!(tied_pair_count(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(tied_pair_count(&[1.0, 1.0, 2.0]), 1);
        assert_eq!(tied_pair_count(&[2.0; 4]), 6);
        assert_eq!(tied_pair_count(&[1.0, 1.0, 2.0, 2.0, 2.0]), 1 + 3);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_is_rejected() {
        let _ = average_ranks(&[1.0, f64::NAN]);
    }

    #[test]
    fn score_comparator_is_descending() {
        use core::cmp::Ordering;
        assert_eq!(cmp_score_desc(2.0, 1.0), Ordering::Less, "bigger first");
        assert_eq!(cmp_score_desc(1.0, 2.0), Ordering::Greater);
        assert_eq!(cmp_score_desc(1.0, 1.0), Ordering::Equal);
        assert_eq!(cmp_score_desc(-1.0, -2.0), Ordering::Less);
    }

    #[test]
    fn rank_indices_desc_orders_and_breaks_ties_by_index() {
        assert_eq!(rank_indices_desc(&[0.5, 2.0, 1.0]), vec![1, 2, 0]);
        // Equal scores keep ascending index order.
        assert_eq!(rank_indices_desc(&[1.0, 3.0, 1.0, 3.0]), vec![1, 3, 0, 2]);
        assert!(rank_indices_desc(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn score_comparator_rejects_nan() {
        let _ = rank_indices_desc(&[1.0, f64::NAN]);
    }
}
