//! Online descriptive statistics (Welford) for the experiment harness.
//!
//! The figure-reproduction binaries average recall and running time over
//! many trials (e.g. 50 instances per point in Fig. 9); this module
//! provides a numerically stable accumulator for that.

/// Numerically stable running mean / variance accumulator
/// (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; 0 for an empty accumulator.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 when fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n_total as f64;
        self.n = n_total;
    }
}

/// Convenience: mean of a slice (0.0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..33] {
            left.push(x);
        }
        for &x in &xs[33..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(3.0);
        let snapshot = w;
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-15);
    }
}
