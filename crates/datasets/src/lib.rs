//! Synthetic dataset scenarios standing in for the paper's real graphs.
//!
//! The paper evaluates on three proprietary/non-redistributable
//! datasets. Each module here builds a synthetic equivalent that
//! preserves the structural properties the evaluation leans on, and
//! plants named event pairs mirroring the relationships reported in
//! Tables 1–5 (see `DESIGN.md` §3 for the substitution rationale):
//!
//! * [`dblp_like`] — DBLP co-author graph (965k nodes / 3.5M edges,
//!   keyword events). Substitute: a *paper-clique* community graph —
//!   authors cluster into research communities, every "paper" adds a
//!   clique over 2–5 authors, occasional cross-community papers keep
//!   the graph small-world and triangle-dense (real co-authorship
//!   graphs are clique unions by construction).
//! * [`intrusion_like`] — Intrusion alert graph (201k nodes / 703k
//!   edges, 545 alert events, several ~50k-degree hubs, low diameter).
//!   Substitute: dense "subnets" bridged by a few very-high-degree
//!   hub nodes, with alert events planted per subnet.
//! * [`twitter_like`](mod@twitter_like) — Twitter follower graph (20M nodes / 160M
//!   edges), used only for scalability. Substitute: Barabási–Albert at
//!   a configurable scale (heavy-tailed degrees, `O(log n)` diameter),
//!   with planted correlated / anti-correlated / background event
//!   pairs for large all-pairs ranking workloads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dblp_like;
pub mod intrusion_like;
pub mod twitter_like;

pub use dblp_like::{DblpConfig, DblpScenario};
pub use intrusion_like::{IntrusionConfig, IntrusionScenario};
pub use twitter_like::{twitter_like, TwitterConfig, TwitterScenario, TWITTER_ATTACHMENT};
