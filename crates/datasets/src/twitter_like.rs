//! Twitter-like scalability scenario.
//!
//! The paper's Twitter snapshot (20M nodes, 0.16B edges) carries no
//! events; it exists purely to stress the samplers (Fig. 9) and the
//! BFS/z-score micro-benchmarks (Fig. 10). A Barabási–Albert graph
//! reproduces the properties those experiments exercise — heavy-tailed
//! degree distribution and `O(log n)` effective diameter — at whatever
//! scale the machine affords.
//!
//! Beyond the bare graph, [`TwitterScenario`] plants event pairs with
//! known ground truth so large all-pairs ranking workloads (the
//! anytime tier's bench) have a scenario where escalation skew
//! matters: a few strongly correlated / anti-correlated pairs buried
//! in a sea of independent background pairs.

use rand::Rng;
use tesc_graph::csr::CsrGraph;
use tesc_graph::generators::barabasi_albert;
use tesc_graph::{BfsScratch, NodeId};

/// Average out-degree of the paper's Twitter subgraph (160M/20M = 8
/// edges per node); we attach with `m = 8` accordingly.
pub const TWITTER_ATTACHMENT: usize = 8;

/// Build a Twitter-like graph with `n` nodes (the bare-graph
/// convenience wrapper around [`TwitterScenario`]).
pub fn twitter_like(n: usize, rng: &mut impl Rng) -> CsrGraph {
    barabasi_albert(n, TWITTER_ATTACHMENT, rng)
}

/// Configuration of the Twitter-like generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwitterConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Preferential-attachment edges per new node
    /// ([`TWITTER_ATTACHMENT`] by default).
    pub attachment: usize,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            num_nodes: 20_000,
            attachment: TWITTER_ATTACHMENT,
        }
    }
}

impl TwitterConfig {
    /// A small configuration for unit tests (≈ 4k nodes).
    pub fn small() -> Self {
        TwitterConfig {
            num_nodes: 4_000,
            ..Default::default()
        }
    }

    /// The million-node scale configuration (the `fig14_scale` bench's
    /// large rows): 10⁶ nodes at the Twitter attachment rate ≈ 8M
    /// edges. Generation streams — see [`peak_build_bytes`] for the
    /// documented heap bound.
    ///
    /// [`peak_build_bytes`]: TwitterConfig::peak_build_bytes
    pub fn million() -> Self {
        TwitterConfig {
            num_nodes: 1_000_000,
            ..Default::default()
        }
    }

    /// Number of edges the preferential-attachment build will emit:
    /// the seed clique on `attachment + 1` nodes plus `attachment`
    /// edges per remaining node (exact — BA never duplicates an edge).
    pub fn num_edges(&self) -> usize {
        let m = self.attachment;
        m * (m + 1) / 2 + (self.num_nodes - m - 1) * m
    }

    /// The documented peak-heap bound of [`TwitterScenario::build`].
    ///
    /// The generator keeps exactly two O(E) arrays alive at once — the
    /// endpoint pool it samples from (which doubles as the edge list)
    /// and the final CSR neighbor array — plus O(n) degree/offset
    /// counters: ~16 B/edge + ~16 B/node, with 1 MiB of slack for
    /// everything else. A million nodes fits in ~145 MiB instead of
    /// the ~24 B/edge a sort + dedup edge-list builder would take.
    /// `tests/memory_budget.rs` holds the build to this bound with a
    /// counting allocator, so a regression to buffered generation
    /// fails in CI rather than at scale.
    pub fn peak_build_bytes(&self) -> usize {
        let endpoint_pool = 2 * self.num_nodes * self.attachment * 4;
        let csr = self.num_edges() * 2 * 4 + (self.num_nodes + 1) * 8;
        let counters = self.num_nodes * 8;
        endpoint_pool + csr + counters + (1 << 20)
    }
}

/// A built Twitter-like scenario: the graph plus planting helpers for
/// event pairs with known correlation ground truth.
#[derive(Debug, Clone)]
pub struct TwitterScenario {
    /// The follower graph.
    pub graph: CsrGraph,
    config: TwitterConfig,
}

impl TwitterScenario {
    /// Build the scenario.
    ///
    /// # Panics
    ///
    /// Panics unless `num_nodes > attachment ≥ 1`.
    pub fn build(config: TwitterConfig, rng: &mut impl Rng) -> Self {
        assert!(config.attachment >= 1, "attachment must be at least 1");
        assert!(
            config.num_nodes > config.attachment,
            "need more nodes than attachment edges"
        );
        TwitterScenario {
            graph: barabasi_albert(config.num_nodes, config.attachment, rng),
            config,
        }
    }

    /// The configuration the scenario was built with.
    pub fn config(&self) -> &TwitterConfig {
        &self.config
    }

    /// Plant a **correlated** pair: both events sampled from the same
    /// `radius`-hop ball around a peripheral anchor, so wherever one
    /// event is dense the other is too (strong positive TESC). `size`
    /// nodes per event, drawn independently (occasional shared nodes
    /// are realistic and only strengthen the signal).
    pub fn plant_correlated_pair(
        &self,
        size: usize,
        radius: u32,
        rng: &mut impl Rng,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        let ball = self.ball(self.peripheral_anchor(rng), radius);
        (sample_from(&ball, size, rng), sample_from(&ball, size, rng))
    }

    /// Plant an **anti-correlated** pair: the events live in disjoint
    /// `radius`-hop balls around two far-apart peripheral anchors, so
    /// reference nodes that see one event densely see the other
    /// sparsely (strong negative TESC).
    ///
    /// # Panics
    ///
    /// Panics if no disjoint anchor pair is found in 64 attempts
    /// (radius too large for the graph).
    pub fn plant_anticorrelated_pair(
        &self,
        size: usize,
        radius: u32,
        rng: &mut impl Rng,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        for _ in 0..64 {
            let ball_a = self.ball(self.peripheral_anchor(rng), radius);
            let ball_b = self.ball(self.peripheral_anchor(rng), radius);
            if ball_a.iter().any(|v| ball_b.binary_search(v).is_ok()) {
                continue;
            }
            return (
                sample_from(&ball_a, size, rng),
                sample_from(&ball_b, size, rng),
            );
        }
        panic!("no disjoint {radius}-hop balls found in 64 attempts");
    }

    /// Plant an **independent** background pair: two uniform random
    /// node sets with no structural relationship.
    pub fn plant_background_pair(
        &self,
        size: usize,
        rng: &mut impl Rng,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        (
            tesc_graph::perturb::sample_nodes(&self.graph, size, rng),
            tesc_graph::perturb::sample_nodes(&self.graph, size, rng),
        )
    }

    /// A low-degree anchor: preferential attachment makes early nodes
    /// hubs whose balls swallow the graph, so anchors come from the
    /// later (peripheral) half of the id space.
    fn peripheral_anchor(&self, rng: &mut impl Rng) -> NodeId {
        let n = self.config.num_nodes;
        rng.gen_range(n as NodeId / 2..n as NodeId)
    }

    /// The sorted `radius`-hop ball around `anchor`.
    fn ball(&self, anchor: NodeId, radius: u32) -> Vec<NodeId> {
        let mut scratch = BfsScratch::new(self.graph.num_nodes());
        let mut out = Vec::new();
        scratch.h_vicinity_into(&self.graph, &[anchor], radius, &mut out);
        out.sort_unstable();
        out
    }
}

/// `k` distinct nodes from `pool` (the whole pool when it is smaller).
fn sample_from(pool: &[NodeId], k: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let mut pool = pool.to_vec();
    let k = k.min(pool.len());
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tesc::{Tail, TescConfig, TescEngine};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn degree_scale_matches_twitter() {
        let g = twitter_like(20_000, &mut rng(1));
        let avg = g.average_degree();
        // 2m = 16 asymptotically.
        assert!((10.0..20.0).contains(&avg), "avg degree {avg}");
        assert!(g.max_degree() > 100, "heavy tail expected");
    }

    #[test]
    fn small_world_distances() {
        let g = twitter_like(20_000, &mut rng(2));
        let mut scratch = tesc_graph::BfsScratch::new(g.num_nodes());
        let d = tesc_graph::dist::distances_from_set(&g, &mut scratch, &[0], 6);
        let reached = d.iter().filter(|&&x| x != u32::MAX).count();
        assert!(
            reached as f64 > 0.99 * g.num_nodes() as f64,
            "{reached} nodes within 6 hops"
        );
    }

    #[test]
    fn build_is_seed_reproducible_and_configurable() {
        let a = TwitterScenario::build(TwitterConfig::small(), &mut rng(3));
        let b = TwitterScenario::build(TwitterConfig::small(), &mut rng(3));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.graph.num_nodes(), 4_000);
        let tiny = TwitterScenario::build(
            TwitterConfig {
                num_nodes: 500,
                attachment: 3,
            },
            &mut rng(4),
        );
        assert_eq!(tiny.graph.num_nodes(), 500);
        assert_eq!(tiny.config().attachment, 3);
    }

    #[test]
    fn hundred_k_build_is_seed_deterministic() {
        let cfg = TwitterConfig {
            num_nodes: 100_000,
            ..Default::default()
        };
        let a = TwitterScenario::build(cfg, &mut rng(20));
        let b = TwitterScenario::build(cfg, &mut rng(20));
        assert_eq!(a.graph.fingerprint(), b.graph.fingerprint());
        assert_eq!(a.graph, b.graph);
        let c = TwitterScenario::build(cfg, &mut rng(21));
        assert_ne!(a.graph.fingerprint(), c.graph.fingerprint());
    }

    #[test]
    fn million_config_documents_linear_memory() {
        let cfg = TwitterConfig::million();
        assert_eq!(cfg.num_nodes, 1_000_000);
        assert_eq!(cfg.num_edges(), 36 + 8 * (1_000_000 - 9));
        // The documented bound stays linear in E with the streaming
        // constant (~16 B/edge), well under a buffered builder's ~24.
        assert!(cfg.peak_build_bytes() < 24 * cfg.num_edges() + 24 * cfg.num_nodes);
    }

    #[test]
    fn correlated_pair_attracts() {
        let s = TwitterScenario::build(TwitterConfig::small(), &mut rng(5));
        let (va, vb) = s.plant_correlated_pair(40, 1, &mut rng(6));
        let engine = TescEngine::new(&s.graph);
        let cfg = TescConfig::new(1)
            .with_sample_size(300)
            .with_tail(Tail::Upper);
        let res = engine.test(&va, &vb, &cfg, &mut rng(7)).unwrap();
        assert!(res.z() > 2.33, "correlated pair z = {}", res.z());
    }

    #[test]
    fn anticorrelated_pair_repulses() {
        let s = TwitterScenario::build(TwitterConfig::small(), &mut rng(8));
        let (va, vb) = s.plant_anticorrelated_pair(40, 1, &mut rng(9));
        assert!(va.iter().all(|v| !vb.contains(v)), "events are disjoint");
        let engine = TescEngine::new(&s.graph);
        let cfg = TescConfig::new(1)
            .with_sample_size(300)
            .with_tail(Tail::Lower);
        let res = engine.test(&va, &vb, &cfg, &mut rng(10)).unwrap();
        assert!(res.z() < -2.33, "anticorrelated pair z = {}", res.z());
    }

    #[test]
    fn background_pair_is_unstructured() {
        let s = TwitterScenario::build(TwitterConfig::small(), &mut rng(11));
        let (va, vb) = s.plant_background_pair(40, &mut rng(12));
        assert_eq!(va.len(), 40);
        assert_eq!(vb.len(), 40);
        let engine = TescEngine::new(&s.graph);
        let cfg = TescConfig::new(1)
            .with_sample_size(300)
            .with_tail(Tail::TwoSided);
        let res = engine.test(&va, &vb, &cfg, &mut rng(13)).unwrap();
        assert!(res.z().is_finite());
    }

    #[test]
    #[should_panic(expected = "more nodes than attachment")]
    fn degenerate_config_rejected() {
        let cfg = TwitterConfig {
            num_nodes: 4,
            attachment: 8,
        };
        let _ = TwitterScenario::build(cfg, &mut rng(0));
    }
}
