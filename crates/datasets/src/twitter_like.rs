//! Twitter-like scalability graph.
//!
//! The paper's Twitter snapshot (20M nodes, 0.16B edges) carries no
//! events; it exists purely to stress the samplers (Fig. 9) and the
//! BFS/z-score micro-benchmarks (Fig. 10). A Barabási–Albert graph
//! reproduces the properties those experiments exercise — heavy-tailed
//! degree distribution and `O(log n)` effective diameter — at whatever
//! scale the machine affords.

use rand::Rng;
use tesc_graph::csr::CsrGraph;
use tesc_graph::generators::barabasi_albert;

/// Average out-degree of the paper's Twitter subgraph (160M/20M = 8
/// edges per node); we attach with `m = 8` accordingly.
pub const TWITTER_ATTACHMENT: usize = 8;

/// Build a Twitter-like graph with `n` nodes.
pub fn twitter_like(n: usize, rng: &mut impl Rng) -> CsrGraph {
    barabasi_albert(n, TWITTER_ATTACHMENT, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_scale_matches_twitter() {
        let g = twitter_like(20_000, &mut StdRng::seed_from_u64(1));
        let avg = g.average_degree();
        // 2m = 16 asymptotically.
        assert!((10.0..20.0).contains(&avg), "avg degree {avg}");
        assert!(g.max_degree() > 100, "heavy tail expected");
    }

    #[test]
    fn small_world_distances() {
        let g = twitter_like(20_000, &mut StdRng::seed_from_u64(2));
        let mut scratch = tesc_graph::BfsScratch::new(g.num_nodes());
        let d = tesc_graph::dist::distances_from_set(&g, &mut scratch, &[0], 6);
        let reached = d.iter().filter(|&&x| x != u32::MAX).count();
        assert!(
            reached as f64 > 0.99 * g.num_nodes() as f64,
            "{reached} nodes within 6 hops"
        );
    }
}
