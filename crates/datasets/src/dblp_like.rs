//! DBLP-like co-authorship scenario.
//!
//! Real co-authorship graphs are unions of paper cliques with strong
//! community structure — exactly the two properties the DBLP
//! experiments exercise (triangle-dense 1-vicinities for Table 1's
//! 1-hop positive pairs, far-apart communities for Table 2's 3-hop
//! negative pairs). The builder synthesizes that directly: communities
//! of authors, papers as cliques sampled within (and occasionally
//! across) communities.

use rand::Rng;
use tesc_graph::csr::{CsrGraph, GraphBuilder};
use tesc_graph::NodeId;

/// Configuration of the DBLP-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DblpConfig {
    /// Number of research communities.
    pub num_communities: usize,
    /// Authors per community.
    pub community_size: usize,
    /// Papers written inside each community.
    pub papers_per_community: usize,
    /// Author count per paper, inclusive range.
    pub authors_per_paper: (usize, usize),
    /// Probability that a paper is a cross-community collaboration
    /// (its authors are split over two communities).
    pub cross_community_prob: f64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            num_communities: 100,
            community_size: 50,
            papers_per_community: 120,
            authors_per_paper: (2, 5),
            cross_community_prob: 0.05,
        }
    }
}

impl DblpConfig {
    /// A small configuration for unit tests (≈ 2k nodes).
    pub fn small() -> Self {
        DblpConfig {
            num_communities: 40,
            community_size: 50,
            papers_per_community: 100,
            ..Default::default()
        }
    }

    /// Total number of authors.
    pub fn num_nodes(&self) -> usize {
        self.num_communities * self.community_size
    }
}

/// A built DBLP-like scenario: the co-author graph plus the
/// community label of every author, with planting helpers for the
/// Table 1 / Table 2 style keyword pairs.
#[derive(Debug, Clone)]
pub struct DblpScenario {
    /// The co-author graph.
    pub graph: CsrGraph,
    /// `community[v]` = community id of author `v`.
    pub community: Vec<u32>,
    /// Node ranges per community (authors are contiguous per block).
    config: DblpConfig,
}

impl DblpScenario {
    /// Build the scenario.
    pub fn build(config: DblpConfig, rng: &mut impl Rng) -> Self {
        assert!(config.num_communities >= 2, "need at least 2 communities");
        assert!(
            config.authors_per_paper.0 >= 2
                && config.authors_per_paper.0 <= config.authors_per_paper.1,
            "authors_per_paper range invalid"
        );
        assert!(
            config.authors_per_paper.1 <= config.community_size,
            "papers cannot have more authors than a community"
        );
        let n = config.num_nodes();
        let mut b = GraphBuilder::with_capacity(
            n,
            config.num_communities * config.papers_per_community * 4,
        );
        let community: Vec<u32> = (0..n).map(|v| (v / config.community_size) as u32).collect();

        let mut authors: Vec<NodeId> = Vec::new();
        for c in 0..config.num_communities {
            for _ in 0..config.papers_per_community {
                let k = rng.gen_range(config.authors_per_paper.0..=config.authors_per_paper.1);
                authors.clear();
                let cross = rng.gen_range(0.0..1.0f64) < config.cross_community_prob;
                if cross {
                    // Split authors over this and one random other community.
                    let other = loop {
                        let o = rng.gen_range(0..config.num_communities);
                        if o != c {
                            break o;
                        }
                    };
                    let here = k.div_ceil(2);
                    sample_from_block(&config, c, here, &mut authors, rng);
                    sample_from_block(&config, other, k - here, &mut authors, rng);
                } else {
                    sample_from_block(&config, c, k, &mut authors, rng);
                }
                // The paper clique.
                for i in 0..authors.len() {
                    for j in (i + 1)..authors.len() {
                        b.add_edge(authors[i], authors[j]);
                    }
                }
            }
        }
        DblpScenario {
            graph: b.build(),
            community,
            config,
        }
    }

    /// The configuration the scenario was built with.
    pub fn config(&self) -> &DblpConfig {
        &self.config
    }

    /// Node id range of a community.
    pub fn community_nodes(&self, c: usize) -> std::ops::Range<NodeId> {
        let s = self.config.community_size;
        (c * s) as NodeId..((c + 1) * s) as NodeId
    }

    /// Plant a **Table 1** style pair: two "keywords" of one research
    /// area (e.g. *Wireless* / *Sensor*). Both live in the same
    /// `num_shared` communities; within each community the authors are
    /// split so most carry only one of the two keywords
    /// (`co_author_frac` of them carry both — the authors who "use both
    /// keywords"). Strong 1-hop positive TESC; TC positive but driven
    /// only by the shared authors.
    pub fn plant_positive_keyword_pair(
        &self,
        num_shared: usize,
        per_community: usize,
        co_author_frac: f64,
        rng: &mut impl Rng,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(num_shared <= self.config.num_communities);
        assert!(2 * per_community <= self.config.community_size);
        assert!((0.0..=1.0).contains(&co_author_frac));
        let comms = sample_communities(self.config.num_communities, num_shared, rng);
        let mut va = Vec::new();
        let mut vb = Vec::new();
        for &c in &comms {
            let mut pool: Vec<NodeId> = self.community_nodes(c).collect();
            partial_shuffle(&mut pool, 2 * per_community, rng);
            let (first, second) = pool[..2 * per_community].split_at(per_community);
            va.extend_from_slice(first);
            vb.extend_from_slice(second);
            // A fraction of authors use both keywords.
            let co = (per_community as f64 * co_author_frac).round() as usize;
            va.extend_from_slice(&second[..co.min(second.len())]);
            vb.extend_from_slice(&first[..co.min(first.len())]);
        }
        (va, vb)
    }

    /// Plant a **Table 2** style pair: two keywords of *distant* topics
    /// (e.g. *Texture* vs *Java*) living in disjoint community sets,
    /// plus `shared_authors` generalists who used both. The handful of
    /// co-occurrences makes TC positive, while the bulk separation
    /// makes TESC strongly negative.
    pub fn plant_negative_keyword_pair(
        &self,
        communities_each: usize,
        per_community: usize,
        shared_authors: usize,
        rng: &mut impl Rng,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(2 * communities_each <= self.config.num_communities);
        assert!(per_community <= self.config.community_size);
        let comms = sample_communities(self.config.num_communities, 2 * communities_each, rng);
        let (ca, cb) = comms.split_at(communities_each);
        let mut va = plant_in_communities(self, ca, per_community, rng);
        let mut vb = plant_in_communities(self, cb, per_community, rng);
        // Generalists: nodes carrying both keywords, drawn from a's side
        // (any side works — what matters is n11 > 0 for TC).
        vb.extend_from_slice(&va[..shared_authors.min(va.len())]);
        va.sort_unstable();
        va.dedup();
        vb.sort_unstable();
        vb.dedup();
        (va, vb)
    }

    /// Plant an independent "keyword": uniform random authors.
    pub fn plant_uniform_keyword(&self, size: usize, rng: &mut impl Rng) -> Vec<NodeId> {
        tesc_graph::perturb::sample_nodes(&self.graph, size, rng)
    }
}

fn sample_from_block(
    cfg: &DblpConfig,
    c: usize,
    k: usize,
    out: &mut Vec<NodeId>,
    rng: &mut impl Rng,
) {
    let base = (c * cfg.community_size) as NodeId;
    let mut tries = 0;
    let start = out.len();
    while out.len() - start < k {
        let v = base + rng.gen_range(0..cfg.community_size as NodeId);
        if !out[start..].contains(&v) {
            out.push(v);
        }
        tries += 1;
        if tries > 64 * k {
            break; // community too small relative to k; accept fewer
        }
    }
}

fn sample_communities(total: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..total).collect();
    partial_shuffle(&mut ids, k, rng);
    ids.truncate(k);
    ids
}

fn partial_shuffle<T>(v: &mut [T], k: usize, rng: &mut impl Rng) {
    let k = k.min(v.len());
    for i in 0..k {
        let j = rng.gen_range(i..v.len());
        v.swap(i, j);
    }
}

fn plant_in_communities(
    s: &DblpScenario,
    comms: &[usize],
    per_community: usize,
    rng: &mut impl Rng,
) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(comms.len() * per_community);
    for &c in comms {
        let mut pool: Vec<NodeId> = s.community_nodes(c).collect();
        partial_shuffle(&mut pool, per_community, rng);
        out.extend_from_slice(&pool[..per_community]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tesc::{SamplerKind, Tail, TescConfig, TescEngine};
    use tesc_baselines::transaction_correlation;
    use tesc_graph::dist::is_connected;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn small() -> DblpScenario {
        DblpScenario::build(DblpConfig::small(), &mut rng(1))
    }

    #[test]
    fn structure_is_dblp_like() {
        let s = small();
        let g = &s.graph;
        assert_eq!(g.num_nodes(), 2000);
        // Average degree in DBLP is ≈ 7.4; ours should be in that
        // ballpark (same order).
        let avg = g.average_degree();
        assert!((3.0..30.0).contains(&avg), "avg degree {avg}");
        // Triangle-dense: count triangles incident to a sample of edges.
        let mut closed = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges().take(500) {
            total += 1;
            let nu = g.neighbors(u);
            let nv = g.neighbors(v);
            // Intersect the two sorted lists.
            let (mut i, mut j) = (0, 0);
            let mut common = 0;
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        common += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            if common > 0 {
                closed += 1;
            }
        }
        assert!(
            closed * 2 > total,
            "paper cliques should close most edges into triangles ({closed}/{total})"
        );
    }

    #[test]
    fn communities_are_labeled_contiguously() {
        let s = small();
        assert_eq!(s.community[0], 0);
        assert_eq!(s.community[49], 0);
        assert_eq!(s.community[50], 1);
        assert_eq!(s.community_nodes(1), 50..100);
    }

    #[test]
    fn mostly_connected_via_cross_papers() {
        // Cross-community papers keep the giant component large.
        let s = small();
        let labels = tesc_graph::dist::connected_components(&s.graph);
        let mut counts = std::collections::HashMap::new();
        for &l in &labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let giant = counts.values().copied().max().unwrap();
        assert!(
            giant as f64 > 0.9 * s.graph.num_nodes() as f64,
            "giant component only {giant}"
        );
        let _ = is_connected(&s.graph); // smoke: no panic on big graphs
    }

    #[test]
    fn positive_pair_has_positive_tesc_and_tc() {
        let s = small();
        let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.2, &mut rng(2));
        let engine = TescEngine::new(&s.graph);
        let cfg = TescConfig::new(1)
            .with_sample_size(400)
            .with_tail(Tail::Upper);
        let res = engine.test(&va, &vb, &cfg, &mut rng(3)).unwrap();
        assert!(res.z() > 2.33, "TESC z = {}", res.z());
        let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
        assert!(tc.z > 0.0, "TC z = {}", tc.z);
    }

    #[test]
    fn negative_pair_has_negative_tesc_but_positive_tc() {
        let s = small();
        // Universe 2000, |V_a| = |V_b| ≈ 120 ⇒ expected chance overlap
        // ≈ 7.2 nodes; 20 shared generalists push TC clearly positive.
        let (va, vb) = s.plant_negative_keyword_pair(10, 12, 20, &mut rng(4));
        let engine = TescEngine::new(&s.graph);
        let cfg = TescConfig::new(2)
            .with_sample_size(400)
            .with_tail(Tail::Lower);
        let res = engine.test(&va, &vb, &cfg, &mut rng(5)).unwrap();
        assert!(res.z() < -2.33, "TESC z = {}", res.z());
        // The generalist authors make the transaction view positive —
        // the Table 2 inversion.
        let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
        assert!(tc.z > 0.0, "TC z = {}", tc.z);
    }

    #[test]
    fn positive_pair_is_detectable_with_importance_sampling() {
        let s = small();
        let idx = tesc_graph::VicinityIndex::build(&s.graph, 1);
        let (va, vb) = s.plant_positive_keyword_pair(12, 10, 0.2, &mut rng(6));
        let engine = TescEngine::with_vicinity_index(&s.graph, &idx);
        let cfg = TescConfig::new(1)
            .with_sample_size(400)
            .with_tail(Tail::Upper)
            .with_sampler(SamplerKind::Importance { batch_size: 1 });
        let res = engine.test(&va, &vb, &cfg, &mut rng(7)).unwrap();
        assert!(res.z() > 2.33, "importance-sampled z = {}", res.z());
    }

    #[test]
    fn uniform_keyword_has_requested_size() {
        let s = small();
        let kw = s.plant_uniform_keyword(100, &mut rng(8));
        assert_eq!(kw.len(), 100);
    }

    #[test]
    fn build_is_seed_reproducible() {
        let a = DblpScenario::build(DblpConfig::small(), &mut rng(9));
        let b = DblpScenario::build(DblpConfig::small(), &mut rng(9));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "at least 2 communities")]
    fn degenerate_config_rejected() {
        let cfg = DblpConfig {
            num_communities: 1,
            ..DblpConfig::small()
        };
        let _ = DblpScenario::build(cfg, &mut rng(0));
    }
}
