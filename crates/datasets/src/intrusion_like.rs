//! Intrusion-alert scenario.
//!
//! The paper's Intrusion graph (201k nodes, 703k edges, 545 alert
//! types) "contains several nodes with very high degrees (around 50k)",
//! giving it a much lower diameter than DBLP — which is why the paper
//! uses `h = 2` for its negative alert pairs (Table 4). The substitute:
//! dense *subnets* (hosts that talk to each other) bridged by a few
//! hub nodes connected to a large fraction of all hosts.
//!
//! Planting helpers mirror the Table 3/4/5 relationships:
//!
//! * [`IntrusionScenario::plant_alternating_alert_pair`] — two related
//!   attack techniques alternated across hosts of the same subnets
//!   (the bandwidth-tradeoff story): **disjoint** node sets ⇒ TC ≈ 0
//!   or negative, but strong 1-hop positive TESC.
//! * [`IntrusionScenario::plant_separated_alert_pair`] — techniques
//!   targeting different platforms, living in disjoint subnet groups:
//!   negative TESC at `h = 2`, moderate negative TC.
//! * [`IntrusionScenario::plant_rare_pair`] — a rare co-located pair
//!   (tens of occurrences) that frequency-based proximity mining
//!   misses (Table 5).

use rand::Rng;
use tesc_graph::csr::{CsrGraph, GraphBuilder};
use tesc_graph::NodeId;

/// Configuration of the intrusion-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntrusionConfig {
    /// Number of subnets.
    pub num_subnets: usize,
    /// Hosts per subnet.
    pub subnet_size: usize,
    /// Within-subnet connection probability.
    pub p_in: f64,
    /// Number of global hub nodes (scanners / gateways).
    pub num_hubs: usize,
    /// Fraction of all hosts each hub connects to.
    pub hub_coverage: f64,
}

impl Default for IntrusionConfig {
    fn default() -> Self {
        IntrusionConfig {
            num_subnets: 120,
            subnet_size: 40,
            p_in: 0.35,
            num_hubs: 4,
            hub_coverage: 0.08,
        }
    }
}

impl IntrusionConfig {
    /// Small configuration for unit tests (≈ 2k nodes).
    pub fn small() -> Self {
        IntrusionConfig {
            num_subnets: 50,
            subnet_size: 40,
            ..Default::default()
        }
    }

    /// Total host count, hubs included (hubs take the highest ids).
    pub fn num_nodes(&self) -> usize {
        self.num_subnets * self.subnet_size + self.num_hubs
    }
}

/// A built intrusion scenario.
#[derive(Debug, Clone)]
pub struct IntrusionScenario {
    /// The network graph.
    pub graph: CsrGraph,
    /// `subnet[v]` = subnet id of host `v`; hubs carry `u32::MAX`.
    pub subnet: Vec<u32>,
    config: IntrusionConfig,
}

impl IntrusionScenario {
    /// Build the scenario.
    pub fn build(config: IntrusionConfig, rng: &mut impl Rng) -> Self {
        assert!(config.num_subnets >= 2, "need at least 2 subnets");
        assert!((0.0..=1.0).contains(&config.p_in));
        assert!((0.0..=1.0).contains(&config.hub_coverage));
        let hosts = config.num_subnets * config.subnet_size;
        let n = config.num_nodes();
        let mut b = GraphBuilder::new(n);
        let mut subnet = vec![u32::MAX; n];

        // Dense subnets.
        for s in 0..config.num_subnets {
            let base = s * config.subnet_size;
            for i in 0..config.subnet_size {
                subnet[base + i] = s as u32;
                for j in (i + 1)..config.subnet_size {
                    if rng.gen_range(0.0..1.0f64) < config.p_in {
                        b.add_edge((base + i) as NodeId, (base + j) as NodeId);
                    }
                }
            }
        }
        // Hubs: each touches a hub_coverage fraction of all hosts.
        for hub_i in 0..config.num_hubs {
            let hub = (hosts + hub_i) as NodeId;
            for v in 0..hosts {
                if rng.gen_range(0.0..1.0f64) < config.hub_coverage {
                    b.add_edge(hub, v as NodeId);
                }
            }
        }
        IntrusionScenario {
            graph: b.build(),
            subnet,
            config,
        }
    }

    /// The configuration the scenario was built with.
    pub fn config(&self) -> &IntrusionConfig {
        &self.config
    }

    /// Host id range of a subnet.
    pub fn subnet_nodes(&self, s: usize) -> std::ops::Range<NodeId> {
        let z = self.config.subnet_size;
        (s * z) as NodeId..((s + 1) * z) as NodeId
    }

    /// Hub node ids.
    pub fn hubs(&self) -> Vec<NodeId> {
        let hosts = (self.config.num_subnets * self.config.subnet_size) as NodeId;
        (hosts..hosts + self.config.num_hubs as NodeId).collect()
    }

    /// Table 3 style: attacker alternates two techniques over the hosts
    /// of `num_shared` subnets — each affected host gets exactly one of
    /// the two alerts, so the node sets are **disjoint** (the bandwidth
    /// tradeoff: more hosts attacked ⇒ fewer techniques per host).
    ///
    /// Attack *intensity varies per subnet* (uniform fraction of
    /// `max_hosts_per_subnet`): heavily attacked subnets see many of
    /// both alerts, lightly attacked ones few of either. That
    /// cross-subnet co-variation is what makes the pair positively
    /// correlated in the TESC sense despite the disjoint node sets —
    /// within a single neighborhood the disjoint split is actually
    /// competitive (hypergeometric), so constant-intensity planting
    /// would read as repulsion.
    pub fn plant_alternating_alert_pair(
        &self,
        num_shared: usize,
        max_hosts_per_subnet: usize,
        rng: &mut impl Rng,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(num_shared <= self.config.num_subnets);
        assert!(2 * max_hosts_per_subnet <= self.config.subnet_size);
        assert!(max_hosts_per_subnet >= 1);
        let subnets = sample_distinct(self.config.num_subnets, num_shared, rng);
        let mut va = Vec::new();
        let mut vb = Vec::new();
        for &s in &subnets {
            // Intensity: between 1 and max hosts *per alert* in this subnet.
            let k = rng.gen_range(1..=max_hosts_per_subnet);
            let mut pool: Vec<NodeId> = self.subnet_nodes(s).collect();
            partial_shuffle(&mut pool, 2 * k, rng);
            for (i, &host) in pool[..2 * k].iter().enumerate() {
                if i % 2 == 0 {
                    va.push(host);
                } else {
                    vb.push(host);
                }
            }
        }
        (va, vb)
    }

    /// Table 4 style: two techniques bound to different platforms,
    /// occurring in disjoint subnet groups.
    pub fn plant_separated_alert_pair(
        &self,
        subnets_each: usize,
        hosts_per_subnet: usize,
        rng: &mut impl Rng,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(2 * subnets_each <= self.config.num_subnets);
        assert!(hosts_per_subnet <= self.config.subnet_size);
        let subnets = sample_distinct(self.config.num_subnets, 2 * subnets_each, rng);
        let (sa, sb) = subnets.split_at(subnets_each);
        let plant = |sns: &[usize], rng: &mut dyn rand::RngCore| {
            let mut out = Vec::new();
            for &s in sns {
                let mut pool: Vec<NodeId> = self.subnet_nodes(s).collect();
                partial_shuffle(&mut pool, hosts_per_subnet, rng);
                out.extend_from_slice(&pool[..hosts_per_subnet]);
            }
            out
        };
        (plant(sa, rng), plant(sb, rng))
    }

    /// Table 5 style: a *rare* pair — `count_a` and `count_b` total
    /// occurrences spread over three subnets with geometrically
    /// decaying intensity (one hot spot, two minor ones). Strongly
    /// co-located and co-varying, yet far too infrequent for a
    /// frequent-pattern support threshold.
    pub fn plant_rare_pair(
        &self,
        count_a: usize,
        count_b: usize,
        rng: &mut impl Rng,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(count_a >= 1 && count_b >= 1);
        // Geometric intensity decay, clamped by subnet capacity: each
        // successive subnet takes ~half of what is left (one hot spot,
        // exponentially fainter echoes), never more than a subnet holds.
        let cap = self.config.subnet_size;
        let total = count_a + count_b;
        let mut needs: Vec<usize> = Vec::new();
        let mut left = total;
        while left > 0 {
            let take = left.div_ceil(2).min(cap).max(1);
            // Don't leave a remainder of 1-2 dangling in its own subnet
            // if the current one still has room.
            let take = if left - take <= 2 && left <= cap {
                left
            } else {
                take
            };
            needs.push(take);
            left -= take;
        }
        // Vary intensity across at least 3 subnets.
        while needs.len() < 3 {
            let Some(last) = needs.iter().position(|&n| n >= 2) else {
                break;
            };
            needs[last] -= 1;
            needs.push(1);
        }
        let k = needs.len();
        assert!(
            k <= self.config.num_subnets,
            "rare pair of {total} occurrences needs {k} subnets, have {}",
            self.config.num_subnets
        );
        let subnets = sample_distinct(self.config.num_subnets, k, rng);
        let mut va = Vec::with_capacity(count_a);
        let mut vb = Vec::with_capacity(count_b);
        let (mut left_a, mut left_b) = (count_a, count_b);
        for (i, &s) in subnets.iter().enumerate() {
            let need = needs[i];
            // Split this subnet's quota between a and b proportionally
            // to what each still owes.
            let take_a = ((need * left_a).div_ceil(left_a + left_b)).min(left_a);
            let take_b = (need - take_a).min(left_b);
            let need = take_a + take_b;
            let mut pool: Vec<NodeId> = self.subnet_nodes(s).collect();
            partial_shuffle(&mut pool, need, rng);
            va.extend_from_slice(&pool[..take_a]);
            vb.extend_from_slice(&pool[take_a..need]);
            left_a -= take_a;
            left_b -= take_b;
        }
        // Any residue (possible when one event exhausts early) lands in
        // one extra subnet.
        debug_assert_eq!(left_a + left_b, 0, "allocator must place everything");
        (va, vb)
    }
}

fn sample_distinct(total: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..total).collect();
    partial_shuffle(&mut ids, k, rng);
    ids.truncate(k);
    ids
}

fn partial_shuffle<T>(v: &mut [T], k: usize, rng: &mut (impl Rng + ?Sized)) {
    let k = k.min(v.len());
    for i in 0..k {
        let j = rng.gen_range(i..v.len());
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tesc::{Tail, TescConfig, TescEngine};
    use tesc_baselines::{transaction_correlation, ProximityMiner};
    use tesc_graph::BfsScratch;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn small() -> IntrusionScenario {
        IntrusionScenario::build(IntrusionConfig::small(), &mut rng(1))
    }

    #[test]
    fn hubs_have_very_high_degree() {
        let s = small();
        let avg = s.graph.average_degree();
        for hub in s.hubs() {
            let d = s.graph.degree(hub);
            assert!(
                d as f64 > 8.0 * avg,
                "hub degree {d} vs avg {avg:.1} — hubs must dominate"
            );
        }
    }

    #[test]
    fn subnets_labeled_and_hubs_unlabeled() {
        let s = small();
        assert_eq!(s.subnet[0], 0);
        assert_eq!(s.subnet[39], 0);
        assert_eq!(s.subnet[40], 1);
        for hub in s.hubs() {
            assert_eq!(s.subnet[hub as usize], u32::MAX);
        }
    }

    #[test]
    fn low_diameter_via_hubs() {
        // Any two hosts are ≤ 4 hops apart through a hub with high
        // probability; verify on a sample.
        let s = small();
        let mut scratch = BfsScratch::new(s.graph.num_nodes());
        let d = tesc_graph::dist::distances_from_set(&s.graph, &mut scratch, &[0], 6);
        let within: usize = d.iter().filter(|&&x| x <= 4).count();
        assert!(
            within as f64 > 0.95 * s.graph.num_nodes() as f64,
            "only {within} nodes within 4 hops of host 0"
        );
    }

    #[test]
    fn alternating_pair_positive_tesc_nonpositive_tc() {
        let s = small();
        let (va, vb) = s.plant_alternating_alert_pair(12, 10, &mut rng(2));
        // Disjoint by construction.
        let mut overlap = va.clone();
        overlap.retain(|v| vb.contains(v));
        assert!(overlap.is_empty());

        let engine = TescEngine::new(&s.graph);
        let cfg = TescConfig::new(1)
            .with_sample_size(400)
            .with_tail(Tail::Upper);
        let res = engine.test(&va, &vb, &cfg, &mut rng(3)).unwrap();
        assert!(res.z() > 2.33, "TESC z = {}", res.z());

        // Transactionally the pair is at best independent (disjoint sets).
        let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
        assert!(tc.z <= 0.0, "TC z = {}", tc.z);
    }

    #[test]
    fn separated_pair_negative_tesc_at_h2() {
        let s = small();
        let (va, vb) = s.plant_separated_alert_pair(10, 10, &mut rng(4));
        let engine = TescEngine::new(&s.graph);
        let cfg = TescConfig::new(2)
            .with_sample_size(400)
            .with_tail(Tail::Lower);
        let res = engine.test(&va, &vb, &cfg, &mut rng(5)).unwrap();
        assert!(res.z() < -2.33, "TESC z = {}", res.z());
        let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
        assert!(tc.z <= 0.0, "TC z = {}", tc.z);
    }

    #[test]
    fn rare_pair_detected_by_tesc_missed_by_proximity_mining() {
        let s = small();
        let (va, vb) = s.plant_rare_pair(16, 12, &mut rng(6));
        assert_eq!(va.len(), 16);
        assert_eq!(vb.len(), 12);

        let engine = TescEngine::new(&s.graph);
        let cfg = TescConfig::new(1)
            .with_sample_size(300)
            .with_tail(Tail::Upper);
        let res = engine.test(&va, &vb, &cfg, &mut rng(7)).unwrap();
        assert!(res.z() > 2.33, "TESC z = {}", res.z());

        // minsup = 10/|V| in the paper; here use a threshold the rare
        // pair cannot reach but a frequent pair would.
        let miner = ProximityMiner::new(1, 0.05);
        let mut scratch = BfsScratch::new(s.graph.num_nodes());
        assert!(
            !miner.detects(&s.graph, &mut scratch, &va, &vb),
            "rare pair must fall below the support threshold"
        );
    }

    #[test]
    fn build_is_seed_reproducible() {
        let a = IntrusionScenario::build(IntrusionConfig::small(), &mut rng(8));
        let b = IntrusionScenario::build(IntrusionConfig::small(), &mut rng(8));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.subnet, b.subnet);
    }

    #[test]
    #[should_panic(expected = "at least 2 subnets")]
    fn degenerate_config_rejected() {
        let cfg = IntrusionConfig {
            num_subnets: 1,
            ..IntrusionConfig::small()
        };
        let _ = IntrusionScenario::build(cfg, &mut rng(0));
    }
}
