//! Density-kernel shoot-out: **scalar** vs **bitset** vs
//! **bitset + locality relabeling** vs **multi** (64-way source
//! batching), the execution plans of the per-reference-node density
//! hot path (`tesc::density::KernelPlan` / `GroupKernelPlan`).
//!
//! For the DBLP-like and intrusion-like scenarios, at `h ∈ {1, 2, 3}`,
//! the bench draws a fixed 300-node Batch-BFS reference sample and
//! times the density vectors over it:
//!
//! * `<scenario>/h<h>/scalar` — epoch-stamped queue BFS, three mask
//!   probes per visited node (the pre-kernel baseline).
//! * `<scenario>/h<h>/bitset` — hybrid top-down/bottom-up bitmap BFS
//!   with the branch-free final level, counts by word-wise
//!   AND + popcount.
//! * `<scenario>/h<h>/bitset+relabel` — the bitset kernel on the
//!   degree-descending BFS-order substrate (`tesc_graph::relabel`),
//!   reference nodes translated at the boundary.
//! * `<scenario>/h<h>/multi` — the 300 reference nodes batched into
//!   64-way multi-source traversals (`MsBfsScratch`), one bit-lane
//!   each, per-lane counts by popcount.
//! * `<scenario>/h<h>/multi+relabel` — the multi-source kernel on the
//!   relabeled substrate.
//!
//! **Per-row identity verification** (like `fig12_ingest_vs_rebuild`):
//! before timing, each row's density vectors are asserted bit-identical
//! to the scalar baseline — a divergence aborts the bench, so the CI
//! smoke run doubles as a correctness gate. After the rows, a summary
//! table prints the speedups.
//!
//! Run: `cargo bench --bench density_kernel`. Set
//! `TESC_BENCH_JSON=<path>` to append machine-readable records (the
//! committed `BENCH_density_kernel.json` is this bench's output on the
//! reference container; see `docs/PERFORMANCE.md`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::density::{
    density_vectors_group_plan, density_vectors_plan, translate_mask, GroupKernelPlan, KernelPlan,
};
use tesc::sampler::batch_bfs_sample;
use tesc::NodeMask;
use tesc_bench::timing::Harness;
use tesc_bench::{dblp_scenario, Scale};
use tesc_datasets::{IntrusionConfig, IntrusionScenario};
use tesc_events::store::merge_union;
use tesc_graph::relabel::RelabeledGraph;
use tesc_graph::{BfsScratch, CsrGraph, NodeId, ScratchPool};

/// Group size of the `multi` rows — the full lane word.
const GROUP: usize = tesc_graph::SOURCE_GROUP_SIZE;

/// One benchmark scenario: a graph plus a planted event pair.
struct Scenario {
    name: &'static str,
    graph: CsrGraph,
    va: Vec<NodeId>,
    vb: Vec<NodeId>,
}

fn scenarios() -> Vec<Scenario> {
    let dblp = dblp_scenario(Scale::Small, 42);
    let (va, vb) = dblp.plant_positive_keyword_pair(12, 10, 0.25, &mut StdRng::seed_from_u64(7));
    let intr = IntrusionScenario::build(IntrusionConfig::small(), &mut StdRng::seed_from_u64(42));
    let (ia, ib) = intr.plant_alternating_alert_pair(14, 10, &mut StdRng::seed_from_u64(7));
    vec![
        Scenario {
            name: "dblp",
            graph: dblp.graph,
            va,
            vb,
        },
        Scenario {
            name: "intrusion",
            graph: intr.graph,
            va: ia,
            vb: ib,
        },
    ]
}

fn main() {
    let harness = Harness::new().with_samples(10);
    let mut summary: Vec<(String, f64, f64, f64, f64, f64)> = Vec::new();

    for s in scenarios() {
        let g = &s.graph;
        let n = g.num_nodes();
        eprintln!(
            "{}: {} nodes, {} edges, avg degree {:.1}",
            s.name,
            n,
            g.num_edges(),
            g.average_degree()
        );
        let pool = ScratchPool::for_graph(g);
        let ma = NodeMask::from_nodes(n, &s.va);
        let mb = NodeMask::from_nodes(n, &s.vb);
        let (a_norm, b_norm) = (normalize(&s.va), normalize(&s.vb));
        let union = merge_union(&a_norm, &b_norm);
        let rel = RelabeledGraph::build(g);
        let (ta, tb) = (
            translate_mask(rel.map(), &ma),
            translate_mask(rel.map(), &mb),
        );
        // Occurrence-list slots for the grouped (multi-source) plans.
        let slot_nodes = vec![a_norm.clone(), b_norm.clone()];
        let slot_nodes_rel = vec![rel.map().map_to_new(&a_norm), rel.map().map_to_new(&b_norm)];

        for h in [1u32, 2, 3] {
            let refs = {
                let mut scratch = BfsScratch::new(n);
                batch_bfs_sample(
                    g,
                    &mut scratch,
                    &union,
                    h,
                    300,
                    &mut StdRng::seed_from_u64(9),
                )
                .nodes
            };
            let scalar = KernelPlan::scalar(g, &ma, &mb, h);
            let bitset = KernelPlan {
                use_bitset: true,
                ..scalar
            };
            let relabel = KernelPlan {
                graph: rel.graph(),
                mask_a: &ta,
                mask_b: &tb,
                translate: Some(rel.map()),
                use_bitset: true,
                h,
            };
            let group = GroupKernelPlan {
                graph: g,
                slot_nodes: &slot_nodes,
                translate: None,
                h,
            };
            let group_relabel = GroupKernelPlan {
                graph: rel.graph(),
                slot_nodes: &slot_nodes_rel,
                translate: Some(rel.map()),
                h,
            };
            // Per-row identity verification: every plan must reproduce
            // the scalar baseline bit-for-bit before it gets timed.
            let baseline = density_vectors_plan(&scalar, &pool, &refs, 1);
            for (label, plan) in [("bitset", &bitset), ("bitset+relabel", &relabel)] {
                let got = density_vectors_plan(plan, &pool, &refs, 1);
                assert!(
                    baseline == got,
                    "{}/h{h}/{label}: density vectors diverged from scalar",
                    s.name
                );
            }
            for (label, plan) in [("multi", &group), ("multi+relabel", &group_relabel)] {
                let got = density_vectors_group_plan(plan, &pool, &refs, 1, GROUP);
                assert!(
                    baseline == got,
                    "{}/h{h}/{label}: density vectors diverged from scalar",
                    s.name
                );
            }
            let t_scalar = harness.bench(&format!("{}/h{h}/scalar", s.name), || {
                density_vectors_plan(&scalar, &pool, &refs, 1)
            });
            let t_bitset = harness.bench(&format!("{}/h{h}/bitset", s.name), || {
                density_vectors_plan(&bitset, &pool, &refs, 1)
            });
            let t_relabel = harness.bench(&format!("{}/h{h}/bitset+relabel", s.name), || {
                density_vectors_plan(&relabel, &pool, &refs, 1)
            });
            let t_multi = harness.bench(&format!("{}/h{h}/multi", s.name), || {
                density_vectors_group_plan(&group, &pool, &refs, 1, GROUP)
            });
            let t_multi_rel = harness.bench(&format!("{}/h{h}/multi+relabel", s.name), || {
                density_vectors_group_plan(&group_relabel, &pool, &refs, 1, GROUP)
            });
            if t_scalar.is_finite() && t_bitset.is_finite() {
                summary.push((
                    format!("{}/h{h}", s.name),
                    t_scalar / t_bitset,
                    t_scalar / t_relabel,
                    t_scalar / t_multi,
                    t_bitset / t_multi,
                    t_scalar / t_multi_rel,
                ));
            }
        }
    }

    if !summary.is_empty() {
        println!(
            "\nrow            bitset  bitset+rel  multi   multi_vs_bitset  multi+rel  (speedups; identical results)"
        );
        for (row, sb, sr, sm, smb, smr) in &summary {
            println!("{row:<14} {sb:<7.2} {sr:<11.2} {sm:<7.2} {smb:<16.2} {smr:.2}");
        }
    }
}

fn normalize(nodes: &[NodeId]) -> Vec<NodeId> {
    let mut v = nodes.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}
