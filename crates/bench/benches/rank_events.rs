//! All-pairs event ranking shoot-out: the **fused pair-set planner**
//! (`tesc::rank` over `tesc::planner`) vs the **per-pair engine path**
//! (one `TescEngine::test` per pair, with and without the cross-pair
//! density cache) on a shared-event workload — 8 planted DBLP-like
//! keyword events, all 28 pairs, so every event appears in 7 pairs
//! and the pairs' reference populations overlap heavily.
//!
//! Rows (same content-addressed seeds everywhere, so all paths compute
//! the *same* statistics):
//!
//! * `allpairs/perpair` — per-pair path, no cache: one density BFS per
//!   (pair, reference node) (source-grouped into 64-way multi-source
//!   traversals by the Auto kernel on this workload).
//! * `allpairs/perpair+cache` — per-pair path behind a **persistent**
//!   `DensityCache`, the serving shape (`TescContext` keeps one cache
//!   across batches of a graph version): the first sample pays the
//!   cold fill, the median measures the steady state where a BFS is
//!   skipped whenever both of a pair's slots are memoized.
//! * `allpairs/perpair+coldcache` — the same path against a cache that
//!   is **rebuilt every iteration**: the pure cold-fill worst case.
//!   The probe governor (`tesc::cache::ProbeGovernor`) bounds what the
//!   lookups may cost here, but the fill inserts are a real investment
//!   (~paid back from the second batch on — see the `+cache` row).
//! * `allpairs/fused` — `tesc::rank::rank_pairs`: ONE BFS per distinct
//!   reference node of the whole set, scored against every event
//!   touching it in a single word sweep (also source-grouped).
//! * `allpairs/fused+top5` — same, with the top-K significance-budget
//!   early exit keeping the best 5.
//!
//! **Per-row identity verification** (like `density_kernel`): before
//! timing, every ranked pair's z-score is asserted bit-identical to an
//! independent `TescEngine::test` seeded with the pair's content seed —
//! a divergence aborts the bench, so the CI smoke run doubles as a
//! correctness gate. The bench also reports TESC-vs-proximity-baseline
//! ranking agreement (recall@k via `tesc_bench::recall`) and the fused
//! pass's work-sharing factor.
//!
//! Run: `cargo bench --bench rank_events`. Set `TESC_BENCH_JSON=<path>`
//! to append machine-readable records (the committed
//! `BENCH_rank_events.json` is this bench's output on the reference
//! container).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::batch::EventPair;
use tesc::rank::{content_seed, rank_pairs, RankRequest};
use tesc::{DensityCache, Tail, TescConfig, TescEngine};
use tesc_bench::recall::{proximity_order, recall_at_k};
use tesc_bench::timing::Harness;
use tesc_bench::{dblp_scenario, Scale};
use tesc_graph::NodeId;

fn main() {
    let harness = Harness::new().with_samples(10);
    let dblp = dblp_scenario(Scale::Small, 42);
    let g = &dblp.graph;

    // 8 events from 4 planted keyword pairs; all 28 unordered pairs.
    let mut events: Vec<(String, Vec<NodeId>)> = Vec::new();
    for i in 0..4u64 {
        let (va, vb) =
            dblp.plant_positive_keyword_pair(12, 10, 0.25, &mut StdRng::seed_from_u64(100 + i));
        events.push((format!("kw{i}a"), va));
        events.push((format!("kw{i}b"), vb));
    }
    let mut pairs: Vec<EventPair> = Vec::new();
    for i in 0..events.len() {
        for j in i + 1..events.len() {
            pairs.push(EventPair::new(
                format!("{}×{}", events[i].0, events[j].0),
                events[i].1.clone(),
                events[j].1.clone(),
            ));
        }
    }
    let cfg = TescConfig::new(2)
        .with_sample_size(300)
        .with_tail(Tail::Upper);
    let seed = 7u64;
    let engine = TescEngine::new(g);
    eprintln!(
        "{} nodes, {} edges; {} events, {} candidate pairs, n = {}, h = {}",
        g.num_nodes(),
        g.num_edges(),
        events.len(),
        pairs.len(),
        cfg.sample_size,
        cfg.h
    );

    // Per-row identity gate: every fused score must reproduce the
    // per-pair engine path bit for bit before anything is timed.
    let req = RankRequest::new(cfg)
        .with_seed(seed)
        .with_threads(1)
        .with_pairs(pairs.clone());
    let report = rank_pairs(&engine, &req);
    assert_eq!(report.ranked.len(), pairs.len(), "all pairs rankable");
    for e in &report.ranked {
        let p = &pairs[e.index];
        let direct = engine
            .test(
                &p.a,
                &p.b,
                &cfg,
                &mut StdRng::seed_from_u64(content_seed(seed, &p.a, &p.b)),
            )
            .expect("per-pair reference run");
        assert_eq!(
            direct.z().to_bits(),
            e.result.z().to_bits(),
            "{}: fused z diverged from the per-pair engine path",
            e.label
        );
    }
    eprintln!(
        "identity: {} ranked pairs bit-identical to the per-pair engine path",
        report.ranked.len()
    );
    eprintln!(
        "fused plan: {} BFS for {} sampled refs over {} distinct nodes ({:.1}x shared)",
        report.fused_bfs,
        report.sampled_refs,
        report.distinct_refs,
        report.sampled_refs as f64 / report.distinct_refs.max(1) as f64
    );

    // TESC-vs-baseline ranking agreement (recall@k) on this scenario.
    let raw: Vec<(Vec<u32>, Vec<u32>)> = pairs.iter().map(|p| (p.a.clone(), p.b.clone())).collect();
    let prox = proximity_order(g, &raw, cfg.h);
    let tesc_order: Vec<usize> = report.ranked.iter().map(|e| e.index).collect();
    for k in [5usize, 10] {
        println!(
            "recall@{k} (TESC top-{k} vs proximity-baseline top-{k}): {:.2}",
            recall_at_k(&tesc_order, &prox, k)
        );
    }

    // Timed rows. All paths run the same tests with the same seeds.
    let run_per_pair = |engine: &TescEngine<'_>| {
        let mut acc = 0.0f64;
        for p in &pairs {
            let r = engine
                .test(
                    &p.a,
                    &p.b,
                    &cfg,
                    &mut StdRng::seed_from_u64(content_seed(seed, &p.a, &p.b)),
                )
                .expect("pair testable");
            acc += r.z();
        }
        acc
    };
    let t_perpair = harness.bench("allpairs/perpair", || run_per_pair(&engine));
    // Serving shape: one cache outlives every batch of this graph
    // version (how a TescContext snapshot deploys it) — sample 1 pays
    // the cold fill, the median is the steady state.
    let persistent = std::sync::Arc::new(DensityCache::for_graph(g));
    let t_cached = harness.bench("allpairs/perpair+cache", || {
        let cached = TescEngine::new(g).with_density_cache(persistent.clone());
        run_per_pair(&cached)
    });
    // Worst case: the cache is rebuilt every iteration, so every run
    // is a pure cold fill (the probe governor bounds the lookup cost;
    // the fill inserts remain a real, once-per-version investment).
    let t_cold = harness.bench("allpairs/perpair+coldcache", || {
        let cached =
            TescEngine::new(g).with_density_cache(std::sync::Arc::new(DensityCache::for_graph(g)));
        run_per_pair(&cached)
    });
    let t_fused = harness.bench("allpairs/fused", || rank_pairs(&engine, &req));
    let req_top5 = req.clone().with_top_k(5);
    let t_top5 = harness.bench("allpairs/fused+top5", || rank_pairs(&engine, &req_top5));

    if t_fused.is_finite() && t_cached.is_finite() {
        println!(
            "\nrow                    speedup vs perpair   (identical statistics)\n\
             perpair+cache (warm)   {:<10.2}\n\
             perpair+cache (cold)   {:<10.2}\n\
             fused                  {:<10.2}\n\
             fused+top5             {:<10.2}",
            t_perpair / t_cached,
            t_perpair / t_cold,
            t_perpair / t_fused,
            t_perpair / t_top5,
        );
    }
}
