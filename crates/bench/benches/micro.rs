//! Criterion micro-benchmarks for the per-test hot paths (Fig. 10).
//!
//! * `bfs/h{1,2,3}` — one h-hop BFS on a Twitter-like graph (the
//!   density computation of Eq. 2).
//! * `zscore/exact_n{…}` and `zscore/merge_n{…}` — the Kendall test at
//!   reference sample sizes 300 and 900.
//! * `sampling/*` — one full reference-node sampling round per
//!   strategy at a fixed event-set size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tesc::sampler::{batch_bfs_sample, importance_sample, whole_graph_sample};
use tesc::{BfsScratch, NodeMask, VicinityIndex};
use tesc_datasets::twitter_like;
use tesc_graph::perturb::sample_nodes;
use tesc_stats::kendall::{kendall_tau, KendallMethod};

const GRAPH_NODES: usize = 100_000;
const EVENT_NODES: usize = 1_000;
const SAMPLE_SIZE: usize = 900;

fn bfs_benches(c: &mut Criterion) {
    let g = twitter_like(GRAPH_NODES, &mut StdRng::seed_from_u64(1));
    let mut scratch = BfsScratch::new(g.num_nodes());
    let sources = sample_nodes(&g, 256, &mut StdRng::seed_from_u64(2));
    let mut group = c.benchmark_group("bfs");
    for h in [1u32, 2, 3] {
        let mut i = 0usize;
        group.bench_function(format!("h{h}"), |b| {
            b.iter(|| {
                let s = sources[i % sources.len()];
                i += 1;
                black_box(scratch.visit_h_vicinity(&g, &[s], h, |_, _| {}))
            })
        });
    }
    group.finish();
}

fn zscore_benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("zscore");
    for n in [300usize, 900] {
        let sa: Vec<f64> = (0..n).map(|_| (rng.gen_range(0..40) as f64) / 40.0).collect();
        let sb: Vec<f64> = (0..n).map(|_| (rng.gen_range(0..40) as f64) / 40.0).collect();
        group.bench_function(format!("exact_n{n}"), |b| {
            b.iter(|| black_box(kendall_tau(&sa, &sb, KendallMethod::Exact)))
        });
        group.bench_function(format!("merge_n{n}"), |b| {
            b.iter(|| black_box(kendall_tau(&sa, &sb, KendallMethod::MergeSort)))
        });
    }
    group.finish();
}

fn sampling_benches(c: &mut Criterion) {
    let g = twitter_like(GRAPH_NODES, &mut StdRng::seed_from_u64(4));
    let mut scratch = BfsScratch::new(g.num_nodes());
    let events = sample_nodes(&g, EVENT_NODES, &mut StdRng::seed_from_u64(5));
    let union_mask = NodeMask::from_nodes(g.num_nodes(), &events);
    let h = 1u32;
    let idx = VicinityIndex::build_for_nodes(&g, &events, h);

    let mut group = c.benchmark_group("sampling");
    group.bench_function("batch_bfs", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(6),
            |mut rng| {
                black_box(batch_bfs_sample(
                    &g,
                    &mut scratch,
                    &events,
                    h,
                    SAMPLE_SIZE,
                    &mut rng,
                ))
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("importance", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| {
                black_box(importance_sample(
                    &g,
                    &mut scratch,
                    &events,
                    &idx,
                    h,
                    SAMPLE_SIZE,
                    1,
                    SAMPLE_SIZE * 64,
                    &mut rng,
                ))
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("whole_graph", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(8),
            |mut rng| {
                black_box(whole_graph_sample(
                    &g,
                    &mut scratch,
                    &union_mask,
                    h,
                    SAMPLE_SIZE,
                    &mut rng,
                ))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bfs_benches, zscore_benches, sampling_benches
}
criterion_main!(benches);
