//! Micro-benchmarks for the per-test hot paths (Fig. 10).
//!
//! * `bfs/h{1,2,3}` — one h-hop BFS on a Twitter-like graph (the
//!   density computation of Eq. 2).
//! * `zscore/{exact,merge}_n{300,900}` — the Kendall test at the
//!   paper's reference sample sizes.
//! * `sampling/*` — one full reference-node sampling round per
//!   strategy at a fixed event-set size.
//!
//! Runs on the in-repo [`tesc_bench::timing`] harness (criterion is
//! not vendorable offline): `cargo bench --bench micro [-- filter]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc::sampler::{batch_bfs_sample, importance_sample, whole_graph_sample};
use tesc::{BfsScratch, NodeMask, VicinityIndex};
use tesc_bench::timing::Harness;
use tesc_datasets::twitter_like;
use tesc_graph::perturb::sample_nodes;
use tesc_stats::kendall::{kendall_tau, KendallMethod};

const GRAPH_NODES: usize = 100_000;
const EVENT_NODES: usize = 1_000;
const SAMPLE_SIZE: usize = 900;

fn main() {
    let harness = Harness::new();

    // --- bfs/h{1,2,3} -------------------------------------------------
    let g = twitter_like(GRAPH_NODES, &mut StdRng::seed_from_u64(1));
    let mut scratch = BfsScratch::new(g.num_nodes());
    let sources = sample_nodes(&g, 256, &mut StdRng::seed_from_u64(2));
    for h in [1u32, 2, 3] {
        let mut i = 0usize;
        harness.bench(&format!("bfs/h{h}"), || {
            let s = sources[i % sources.len()];
            i += 1;
            scratch.visit_h_vicinity(&g, &[s], h, |_, _| {})
        });
    }

    // --- zscore/{exact,merge} ----------------------------------------
    let mut rng = StdRng::seed_from_u64(3);
    for n in [300usize, 900] {
        let sa: Vec<f64> = (0..n)
            .map(|_| (rng.gen_range(0..40) as f64) / 40.0)
            .collect();
        let sb: Vec<f64> = (0..n)
            .map(|_| (rng.gen_range(0..40) as f64) / 40.0)
            .collect();
        harness.bench(&format!("zscore/exact_n{n}"), || {
            kendall_tau(&sa, &sb, KendallMethod::Exact)
        });
        harness.bench(&format!("zscore/merge_n{n}"), || {
            kendall_tau(&sa, &sb, KendallMethod::MergeSort)
        });
    }

    // --- sampling/* ---------------------------------------------------
    let g = twitter_like(GRAPH_NODES, &mut StdRng::seed_from_u64(4));
    let mut scratch = BfsScratch::new(g.num_nodes());
    let events = sample_nodes(&g, EVENT_NODES, &mut StdRng::seed_from_u64(5));
    let union_mask = NodeMask::from_nodes(g.num_nodes(), &events);
    let h = 1u32;
    let idx = VicinityIndex::build_for_nodes(&g, &events, h);

    harness.bench("sampling/batch_bfs", || {
        let mut rng = StdRng::seed_from_u64(6);
        batch_bfs_sample(&g, &mut scratch, &events, h, SAMPLE_SIZE, &mut rng)
    });
    harness.bench("sampling/importance", || {
        let mut rng = StdRng::seed_from_u64(7);
        importance_sample(
            &g,
            &mut scratch,
            &events,
            &idx,
            h,
            SAMPLE_SIZE,
            1,
            SAMPLE_SIZE * 64,
            &mut rng,
        )
    });
    harness.bench("sampling/whole_graph", || {
        let mut rng = StdRng::seed_from_u64(8);
        whole_graph_sample(&g, &mut scratch, &union_mask, h, SAMPLE_SIZE, &mut rng)
    });
}
