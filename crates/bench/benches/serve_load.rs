//! Closed-loop load generator for the `tesc::serve` daemon: spawn an
//! in-process [`Server`], fire concurrent keep-alive HTTP clients at
//! `POST /test`, and report request-latency percentiles and
//! throughput per (client count × cache budget) cell.
//!
//! Rows (`TESC_BENCH_JSON` records carry `p50_us`, `p99_us`, `rps`
//! and `requests` instead of `ns_per_iter`):
//!
//! * `test/c{N}/budget=inf` — N closed-loop clients against an
//!   unbounded density cache (the append-only baseline).
//! * `test/c{N}/budget=48K` — the same request stream against a
//!   48 KiB second-chance budget small enough that the workload's
//!   eight distinct event pairs cannot all stay resident.
//!
//! **Identity gate** (like `density_kernel` / `rank_events`): every
//! request is replayed with the same `(a, b, h, n, seed)` body in
//! both budget cells, and each response's `z_bits` must match its
//! unbounded twin exactly — eviction may change hit rates, never
//! bits. The run also asserts zero 5xx responses and, for the
//! bounded cell, that evictions actually happened (otherwise the
//! budget row would silently measure the unbounded path).
//!
//! The request count scales with `TESC_BENCH_SAMPLES`, so the CI
//! smoke run (`TESC_BENCH_SAMPLES=1`) exercises the full
//! client/server/identity machinery in seconds. Run:
//! `cargo bench --bench serve_load`. The committed `BENCH_serve.json`
//! is this bench's output on the reference container.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use tesc::context::TescContext;
use tesc::serve::json::Json;
use tesc::serve::{Server, ServerConfig};
use tesc_bench::timing::Harness;
use tesc_events::EventStore;
use tesc_graph::generators::grid;
use tesc_graph::NodeId;

/// Closed-loop client counts; each client owns one keep-alive
/// connection (so `workers` must cover the largest count).
const CLIENT_COUNTS: [usize; 2] = [1, 4];

/// Distinct event pairs cycled through by the request stream. Eight
/// pairs × (two ~200-byte content slabs + up to 80 sampled reference
/// slots × 64 bytes each) ≈ 90 KiB of steady-state cache demand.
const PAIRS: usize = 8;

/// Byte budget for the bounded cell: well under the workload's
/// steady-state demand, so the second-chance policy must evict.
const TINY_BUDGET: usize = 48 * 1024;

/// One `POST /test` body, deterministic in `(client, request index)`
/// — identical across budget cells, so responses must be bit-equal.
fn request_body(client: usize, req: usize) -> String {
    let p = (client * 31 + req) % PAIRS;
    let a: Vec<NodeId> = (p as NodeId * 13..p as NodeId * 13 + 28).collect();
    let b: Vec<NodeId> = (p as NodeId * 13 + 14..p as NodeId * 13 + 42).collect();
    let fmt = |nodes: &[NodeId]| {
        let items: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
        items.join(",")
    };
    format!(
        "{{\"a\":[{}],\"b\":[{}],\"h\":2,\"n\":80,\"seed\":{}}}",
        fmt(&a),
        fmt(&b),
        client * 100_000 + req,
    )
}

/// Send one request on a keep-alive connection and parse the
/// response. Returns (status, body).
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Json) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).expect("body");
    let text = String::from_utf8(buf).expect("utf-8 body");
    (status, Json::parse(&text).expect("json body"))
}

/// Latencies (µs) and `z_bits` of one client's request stream.
struct ClientTrace {
    latencies_us: Vec<f64>,
    z_bits: Vec<(usize, usize, String)>,
}

/// Spawn a server over a fresh context with `budget`, run
/// `clients × requests_per_client` closed-loop `POST /test`s, and
/// return (per-request traces, wall seconds, evictions reported by
/// `/stats`). Panics on any non-200 response or 5xx counter.
fn run_cell(
    budget: Option<usize>,
    clients: usize,
    requests_per_client: usize,
) -> (Vec<ClientTrace>, f64, i64) {
    let mut events = EventStore::new();
    events.add_event("probe", (0..40).collect());
    let ctx = TescContext::new(grid(24, 24), events, 2).with_cache_budget(budget);
    let server = Server::spawn(
        ctx,
        ServerConfig {
            workers: *CLIENT_COUNTS.iter().max().unwrap(),
            ..ServerConfig::default()
        },
    )
    .expect("spawn server");
    let addr = server.addr();

    let start = Instant::now();
    let traces: Vec<ClientTrace> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut trace = ClientTrace {
                        latencies_us: Vec::with_capacity(requests_per_client),
                        z_bits: Vec::with_capacity(requests_per_client),
                    };
                    for q in 0..requests_per_client {
                        let body = request_body(c, q);
                        let sent = Instant::now();
                        let (status, json) =
                            roundtrip(&mut stream, &mut reader, "POST", "/test", &body);
                        trace.latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(status, 200, "client {c} request {q}: {json:?}");
                        let bits = json
                            .get("result")
                            .and_then(|r| r.get("z_bits"))
                            .and_then(Json::as_str)
                            .expect("z_bits in response")
                            .to_string();
                        trace.z_bits.push((c, q, bits));
                    }
                    trace
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();

    // Quiescent now: reconcile the server's own books before shutdown.
    let mut stream = TcpStream::connect(addr).expect("connect stats");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let (status, stats) = roundtrip(&mut stream, &mut reader, "GET", "/stats", "");
    assert_eq!(status, 200);
    for (endpoint, counters) in match stats.get("endpoints") {
        Some(Json::Obj(members)) => members.clone(),
        other => panic!("stats.endpoints missing: {other:?}"),
    } {
        let fives = counters.get("server_errors").and_then(Json::as_i64);
        assert_eq!(fives, Some(0), "{endpoint}: 5xx under load");
    }
    let evictions = stats
        .get("cache")
        .and_then(|c| c.get("evictions"))
        .and_then(Json::as_i64)
        .expect("cache.evictions in stats");
    let (_, _) = roundtrip(&mut stream, &mut reader, "POST", "/shutdown", "");
    drop((stream, reader));
    server.join();
    (traces, wall, evictions)
}

fn main() {
    let harness = Harness::new().with_samples(10);
    // 4 requests per client per configured sample: samples=10 → 40
    // requests per client; the CI smoke run (samples=1) sends 4.
    let requests_per_client = 4 * harness.samples();
    println!(
        "closed-loop load: grid 24×24, h = 2, n = 80, {PAIRS} event pairs, \
         {requests_per_client} requests/client, clients ∈ {CLIENT_COUNTS:?}"
    );

    for &clients in &CLIENT_COUNTS {
        // The unbounded cell is the identity reference for this
        // client count; the bounded cell must reproduce it bit-wise.
        let mut reference: BTreeMap<(usize, usize), String> = BTreeMap::new();
        for budget in [None, Some(TINY_BUDGET)] {
            let (traces, wall, evictions) = run_cell(budget, clients, requests_per_client);
            let label = match budget {
                None => "inf".to_string(),
                Some(b) => format!("{}K", b / 1024),
            };

            for t in &traces {
                for (c, q, bits) in &t.z_bits {
                    match budget {
                        None => {
                            reference.insert((*c, *q), bits.clone());
                        }
                        Some(_) => assert_eq!(
                            Some(bits),
                            reference.get(&(*c, *q)),
                            "client {c} request {q}: eviction changed z bits"
                        ),
                    }
                }
            }
            if budget.is_some() {
                assert!(
                    evictions > 0,
                    "budget={label}: tiny budget must evict (cell measured nothing new)"
                );
            }

            let mut lat: Vec<f64> = traces.iter().flat_map(|t| t.latencies_us.clone()).collect();
            lat.sort_by(|a, b| a.total_cmp(b));
            let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
            let (p50, p99) = (pct(0.50), pct(0.99));
            let requests = lat.len();
            let rps = requests as f64 / wall;
            let row = format!("test/c{clients}/budget={label}");
            println!(
                "{row:<26} p50 {p50:>9.1} µs   p99 {p99:>9.1} µs   {rps:>8.1} req/s   \
                 ({requests} requests, {evictions} evictions)"
            );
            harness.record_row(
                &row,
                &[
                    ("p50_us", p50),
                    ("p99_us", p99),
                    ("rps", rps),
                    ("requests", requests as f64),
                ],
            );
        }
        println!(
            "identity: {} responses bit-identical across budget=inf and budget=48K",
            reference.len()
        );
    }
}
