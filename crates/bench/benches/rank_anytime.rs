//! Anytime vs exact top-K ranking: what does confidence-interval
//! pruning buy, and what does it cost in ranking quality?
//!
//! Two all-pairs workloads, chosen to bracket the anytime executor's
//! economics (see `docs/PERFORMANCE.md`):
//!
//! * `dblp` — the `rank_events` shoot-out workload: 8 planted DBLP-like
//!   keyword events, all 28 pairs, heavily shared reference
//!   populations, **clustered** scores. The adversarial case: when
//!   many pairs straddle the K-th score, intervals keep overlapping,
//!   most pairs escalate to full n, and the progressive tiers are pure
//!   overhead.
//! * `twitter` — the scenario the tier is built for: a few strongly
//!   correlated pairs planted in a sea of independent background pairs
//!   on a heavy-tailed Barabási–Albert graph. **Skewed** scores: the
//!   background is separable from the planted top-K at a fraction of
//!   the full sample size, so most pairs are pruned at the first tier.
//!
//! Rows: `<workload>/exact` and `<workload>/anytime:EPS` for three eps
//! values (timed, `ns_per_iter`), plus one
//! `<workload>/anytime:EPS/quality` record per eps reporting
//! `recall_at_10` against the exact top-10, `mean_samples_per_pair`,
//! `rounds` and `speedup_vs_exact`.
//!
//! **Identity gate**: before anything is timed, `anytime:0` is
//! asserted bit-identical (label, score bits, z bits) to the exact
//! ranking on both workloads — a divergence aborts the bench, so the
//! CI smoke run doubles as a correctness gate for the eps = 0
//! contract.
//!
//! Run: `cargo bench --bench rank_anytime`. Set `TESC_BENCH_JSON=<path>`
//! to append machine-readable records (the committed
//! `BENCH_rank_anytime.json` is this bench's output on the reference
//! container).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::batch::EventPair;
use tesc::rank::{rank_pairs, RankMode, RankRequest};
use tesc::{RankReport, Tail, TescConfig, TescEngine};
use tesc_bench::timing::Harness;
use tesc_bench::{dblp_scenario, Scale};
use tesc_datasets::{TwitterConfig, TwitterScenario};
use tesc_graph::{CsrGraph, NodeId};

const K: usize = 10;
const EPS_GRID: [f64; 3] = [0.05, 0.2, 0.4];

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// (label, score bits, z bits) fingerprint of a ranking.
fn fingerprint(report: &RankReport) -> Vec<(String, u64, u64)> {
    report
        .ranked
        .iter()
        .map(|e| (e.label.clone(), e.score.to_bits(), e.result.z().to_bits()))
        .collect()
}

/// Recall@K of `candidate`'s top-K labels against `exact`'s.
fn recall_at_k(exact: &RankReport, candidate: &RankReport, k: usize) -> f64 {
    let top: Vec<&str> = exact
        .ranked
        .iter()
        .take(k)
        .map(|e| e.label.as_str())
        .collect();
    let hit = candidate
        .ranked
        .iter()
        .take(k)
        .filter(|e| top.contains(&e.label.as_str()))
        .count();
    hit as f64 / top.len().max(1) as f64
}

/// The `rank_events` workload: 8 planted keyword events, all 28 pairs.
fn dblp_workload() -> (tesc_datasets::DblpScenario, Vec<EventPair>, TescConfig) {
    let dblp = dblp_scenario(Scale::Small, 42);
    let mut events: Vec<(String, Vec<NodeId>)> = Vec::new();
    for i in 0..4u64 {
        let (va, vb) = dblp.plant_positive_keyword_pair(12, 10, 0.25, &mut rng(100 + i));
        events.push((format!("kw{i}a"), va));
        events.push((format!("kw{i}b"), vb));
    }
    let mut pairs: Vec<EventPair> = Vec::new();
    for i in 0..events.len() {
        for j in i + 1..events.len() {
            pairs.push(EventPair::new(
                format!("{}×{}", events[i].0, events[j].0),
                events[i].1.clone(),
                events[j].1.clone(),
            ));
        }
    }
    let cfg = TescConfig::new(2)
        .with_sample_size(300)
        .with_tail(Tail::Upper);
    (dblp, pairs, cfg)
}

/// The skewed workload: 10 planted correlated pairs + 90 background
/// pairs on a Twitter-like graph.
fn twitter_workload() -> (TwitterScenario, Vec<EventPair>, TescConfig) {
    let s = TwitterScenario::build(
        TwitterConfig {
            num_nodes: 8_000,
            ..Default::default()
        },
        &mut rng(42),
    );
    let mut pairs = Vec::new();
    for i in 0..10u64 {
        let (a, b) = s.plant_correlated_pair(40, 1, &mut rng(200 + i));
        pairs.push(EventPair::new(format!("hot{i}"), a, b));
    }
    for i in 0..90u64 {
        let (a, b) = s.plant_background_pair(40, &mut rng(300 + i));
        pairs.push(EventPair::new(format!("bg{i:02}"), a, b));
    }
    let cfg = TescConfig::new(1)
        .with_sample_size(400)
        .with_tail(Tail::Upper);
    (s, pairs, cfg)
}

fn run_workload(
    harness: &Harness,
    name: &str,
    g: &CsrGraph,
    pairs: Vec<EventPair>,
    cfg: TescConfig,
) {
    let engine = TescEngine::new(g);
    let req = RankRequest::new(cfg)
        .with_seed(7)
        .with_threads(1)
        .with_top_k(K)
        .with_pairs(pairs);
    eprintln!(
        "{name}: {} nodes, {} edges; {} candidate pairs, n = {}, h = {}, k = {K}",
        g.num_nodes(),
        g.num_edges(),
        req.pairs.len(),
        cfg.sample_size,
        cfg.h
    );

    // Identity gate: anytime at eps = 0 must reproduce the exact
    // ranking bit for bit before anything is timed.
    let exact = rank_pairs(&engine, &req);
    assert_eq!(exact.ranked.len(), K.min(req.pairs.len()));
    let zero = rank_pairs(&engine, &req.clone().with_mode(RankMode::anytime(0.0)));
    assert_eq!(
        fingerprint(&exact),
        fingerprint(&zero),
        "{name}: anytime(0) diverged from the exact ranking"
    );
    eprintln!(
        "{name}: identity gate passed — anytime(0) bit-identical over {} tiers",
        zero.rounds
    );

    let t_exact = harness.bench(&format!("{name}/exact"), || rank_pairs(&engine, &req));
    let exact_spp = exact.mean_samples_per_pair();
    for eps in EPS_GRID {
        let areq = req.clone().with_mode(RankMode::anytime(eps));
        let report = rank_pairs(&engine, &areq);
        let recall = recall_at_k(&exact, &report, K);
        let spp = report.mean_samples_per_pair();
        let t = harness.bench(&format!("{name}/anytime:{eps}"), || {
            rank_pairs(&engine, &areq)
        });
        let speedup = t_exact / t;
        println!(
            "{name}/anytime:{eps:<5} recall@{K} {recall:.2}   {spp:>6.0} samples/pair \
             (exact {exact_spp:.0})   speedup {speedup:.2}x   {} rounds",
            report.rounds
        );
        harness.record_row(
            &format!("{name}/anytime:{eps}/quality"),
            &[
                ("recall_at_10", recall),
                ("mean_samples_per_pair", spp),
                ("exact_samples_per_pair", exact_spp),
                ("rounds", report.rounds as f64),
                ("speedup_vs_exact", speedup),
            ],
        );
    }
}

fn main() {
    let harness = Harness::new().with_samples(10);
    let (dblp, pairs, cfg) = dblp_workload();
    run_workload(&harness, "dblp", &dblp.graph, pairs, cfg);
    let (twitter, pairs, cfg) = twitter_workload();
    run_workload(&harness, "twitter", &twitter.graph, pairs, cfg);
}
