//! Ablation benches for the design choices called out in DESIGN.md §7.
//!
//! * `tau/{exact,merge}_n*` — the O(n²) pair enumeration against
//!   Knight's O(n log n) algorithm across sample sizes (identical
//!   output, cross-checked in tests).
//! * `variance/*` — the tie-corrected Eq. 6 against the naive Eq. 5
//!   (cost of the correction is negligible; correctness is what the
//!   engine pays for).
//! * `bfs_marks/*` — epoch-stamped visited marks against a
//!   clear-the-bitmap-per-search baseline, the reason BfsScratch
//!   exists.
//! * `density/*` — Eq. 2 BFS density against the hitting-time
//!   affinity (the Sec. 5.3 cost claim).
//!
//! Runs on the in-repo [`tesc_bench::timing`] harness (criterion is
//! not vendorable offline): `cargo bench --bench ablations [-- filter]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc::density::density_counts;
use tesc::{BfsScratch, NodeMask};
use tesc_baselines::hitting_time::truncated_hitting_time;
use tesc_bench::timing::Harness;
use tesc_datasets::twitter_like;
use tesc_graph::csr::CsrGraph;
use tesc_graph::perturb::sample_nodes;
use tesc_stats::kendall::{
    pair_counts_exact, pair_counts_merge, var_s_no_ties, var_s_tie_corrected,
};

/// Clearing baseline: a fresh visited bitmap per BFS.
fn bfs_with_clearing(
    g: &CsrGraph,
    visited: &mut [bool],
    queue: &mut Vec<u32>,
    src: u32,
    h: u32,
) -> usize {
    visited.iter_mut().for_each(|b| *b = false);
    queue.clear();
    visited[src as usize] = true;
    queue.push(src);
    let mut count = 1usize;
    let mut level_start = 0usize;
    for _ in 0..h {
        let level_end = queue.len();
        for qi in level_start..level_end {
            let u = queue[qi];
            for &v in g.neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push(v);
                    count += 1;
                }
            }
        }
        level_start = level_end;
    }
    count
}

fn main() {
    let harness = Harness::new().with_samples(15);

    // --- tau ----------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(1);
    for n in [100usize, 300, 900] {
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        harness.bench(&format!("tau/exact_n{n}"), || pair_counts_exact(&x, &y));
        harness.bench(&format!("tau/merge_n{n}"), || pair_counts_merge(&x, &y));
    }

    // --- variance -----------------------------------------------------
    let u: Vec<usize> = (2..100).collect();
    let v: Vec<usize> = (2..80).collect();
    harness.bench("variance/naive_eq5", || var_s_no_ties(900));
    harness.bench("variance/tie_corrected_eq6", || {
        var_s_tie_corrected(900, &u, &v)
    });

    // --- bfs_marks ----------------------------------------------------
    let g = twitter_like(100_000, &mut StdRng::seed_from_u64(2));
    let sources = sample_nodes(&g, 128, &mut StdRng::seed_from_u64(3));
    let h = 2u32;
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut i = 0usize;
    harness.bench("bfs_marks/epoch_stamped", || {
        let s = sources[i % sources.len()];
        i += 1;
        scratch.visit_h_vicinity(&g, &[s], h, |_, _| {})
    });
    let mut visited = vec![false; g.num_nodes()];
    let mut queue = Vec::new();
    let mut j = 0usize;
    harness.bench("bfs_marks/clear_per_search", || {
        let s = sources[j % sources.len()];
        j += 1;
        bfs_with_clearing(&g, &mut visited, &mut queue, s, h)
    });

    // --- density ------------------------------------------------------
    let g = twitter_like(100_000, &mut StdRng::seed_from_u64(4));
    let events = sample_nodes(&g, 1000, &mut StdRng::seed_from_u64(5));
    let mask = NodeMask::from_nodes(g.num_nodes(), &events);
    let sources = sample_nodes(&g, 64, &mut StdRng::seed_from_u64(6));
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut rng = StdRng::seed_from_u64(7);
    let mut i = 0usize;
    harness.bench("density/bfs_density_h2", || {
        let s = sources[i % sources.len()];
        i += 1;
        density_counts(&g, &mut scratch, s, 2, &mask, &mask)
    });
    let mut j = 0usize;
    harness.bench("density/hitting_time_t10_w1000", || {
        let s = sources[j % sources.len()];
        j += 1;
        truncated_hitting_time(&g, s, &mask, 10, 1000, &mut rng)
    });
}
