//! Ablation benches for the design choices called out in DESIGN.md §7.
//!
//! * `tau/exact_vs_merge` — the O(n²) pair enumeration against
//!   Knight's O(n log n) algorithm across sample sizes (identical
//!   output, cross-checked in tests).
//! * `variance/ties` — the tie-corrected Eq. 6 against the naive
//!   Eq. 5 (cost of the correction is negligible; correctness is what
//!   the engine pays for).
//! * `bfs/epoch_vs_clear` — epoch-stamped visited marks against a
//!   clear-the-bitmap-per-search baseline, the reason BfsScratch
//!   exists.
//! * `density/bfs_vs_hitting` — Eq. 2 BFS density against the
//!   hitting-time affinity (the Sec. 5.3 cost claim).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tesc::density::density_counts;
use tesc::{BfsScratch, NodeMask};
use tesc_baselines::hitting_time::truncated_hitting_time;
use tesc_datasets::twitter_like;
use tesc_graph::csr::CsrGraph;
use tesc_graph::perturb::sample_nodes;
use tesc_stats::kendall::{
    pair_counts_exact, pair_counts_merge, var_s_no_ties, var_s_tie_corrected,
};

fn tau_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("tau");
    for n in [100usize, 300, 900] {
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_function(format!("exact_n{n}"), |b| {
            b.iter(|| black_box(pair_counts_exact(&x, &y)))
        });
        group.bench_function(format!("merge_n{n}"), |b| {
            b.iter(|| black_box(pair_counts_merge(&x, &y)))
        });
    }
    group.finish();
}

fn variance_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("variance");
    let u: Vec<usize> = (2..100).collect();
    let v: Vec<usize> = (2..80).collect();
    group.bench_function("naive_eq5", |b| b.iter(|| black_box(var_s_no_ties(900))));
    group.bench_function("tie_corrected_eq6", |b| {
        b.iter(|| black_box(var_s_tie_corrected(900, &u, &v)))
    });
    group.finish();
}

/// Clearing baseline: a fresh visited bitmap per BFS.
fn bfs_with_clearing(g: &CsrGraph, visited: &mut [bool], queue: &mut Vec<u32>, src: u32, h: u32) -> usize {
    visited.iter_mut().for_each(|b| *b = false);
    queue.clear();
    visited[src as usize] = true;
    queue.push(src);
    let mut count = 1usize;
    let mut level_start = 0usize;
    for _ in 0..h {
        let level_end = queue.len();
        for qi in level_start..level_end {
            let u = queue[qi];
            for &v in g.neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push(v);
                    count += 1;
                }
            }
        }
        level_start = level_end;
    }
    count
}

fn bfs_epoch_ablation(c: &mut Criterion) {
    let g = twitter_like(100_000, &mut StdRng::seed_from_u64(2));
    let sources = sample_nodes(&g, 128, &mut StdRng::seed_from_u64(3));
    let mut group = c.benchmark_group("bfs_marks");
    let h = 2u32;

    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut i = 0usize;
    group.bench_function("epoch_stamped", |b| {
        b.iter(|| {
            let s = sources[i % sources.len()];
            i += 1;
            black_box(scratch.visit_h_vicinity(&g, &[s], h, |_, _| {}))
        })
    });

    let mut visited = vec![false; g.num_nodes()];
    let mut queue = Vec::new();
    let mut j = 0usize;
    group.bench_function("clear_per_search", |b| {
        b.iter(|| {
            let s = sources[j % sources.len()];
            j += 1;
            black_box(bfs_with_clearing(&g, &mut visited, &mut queue, s, h))
        })
    });
    group.finish();
}

fn density_vs_hitting(c: &mut Criterion) {
    let g = twitter_like(100_000, &mut StdRng::seed_from_u64(4));
    let events = sample_nodes(&g, 1000, &mut StdRng::seed_from_u64(5));
    let mask = NodeMask::from_nodes(g.num_nodes(), &events);
    let sources = sample_nodes(&g, 64, &mut StdRng::seed_from_u64(6));
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut rng = StdRng::seed_from_u64(7);

    let mut group = c.benchmark_group("density");
    let mut i = 0usize;
    group.bench_function("bfs_density_h2", |b| {
        b.iter(|| {
            let s = sources[i % sources.len()];
            i += 1;
            black_box(density_counts(&g, &mut scratch, s, 2, &mask, &mask))
        })
    });
    let mut j = 0usize;
    group.bench_function("hitting_time_t10_w1000", |b| {
        b.iter(|| {
            let s = sources[j % sources.len()];
            j += 1;
            black_box(truncated_hitting_time(&g, s, &mask, 10, 1000, &mut rng))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = tau_ablation, variance_ablation, bfs_epoch_ablation, density_vs_hitting
}
criterion_main!(benches);
