//! Thread-scaling bench for the parallel batch engine (`tesc::batch`).
//!
//! Measures the fig8-style density workload — a batch of planted DBLP
//! keyword pairs, Batch BFS sampling, n = 300 — at 1/2/4/8 worker
//! threads, for three batch-engine axes:
//!
//! * `batch/threads{T}` — across-test fan-out via `run_batch`.
//! * `density/threads{T}` — within-test density fan-out via
//!   `TescEngine::with_density_threads` on a single big test.
//! * `cache/{off,cold,warm}` — the cross-pair density cache on a
//!   shared-event pair list (one event × many partners): `off` is the
//!   plain engine, `cold` pays first-run memoization, `warm` rides a
//!   pre-populated cache. Results are bit-identical across all three
//!   (asserted here each iteration via the verdict sequence).
//!
//! Speedup is relative to the 1-thread row; on a single-core machine
//! all rows are expected to be flat. Runs on the in-repo
//! [`tesc_bench::timing`] harness (criterion is not vendorable
//! offline): `cargo bench --bench batch_scaling`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tesc::batch::{run_batch, BatchRequest, EventPair};
use tesc::{BfsScratch, DensityCache, TescConfig, TescEngine};
use tesc_bench::timing::Harness;
use tesc_bench::{dblp_scenario, Scale};
use tesc_events::simulate::positive_pair;
use tesc_stats::Tail;

fn main() {
    let harness = Harness::new().with_samples(10);
    let scale = Scale::Small;
    let s = dblp_scenario(scale, 42);
    let g = &s.graph;
    let mut scratch = BfsScratch::new(g.num_nodes());

    let pairs: Vec<EventPair> = (0..16)
        .filter_map(|t| {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            positive_pair(g, &mut scratch, scale.event_size(), 2, &mut rng)
                .ok()
                .map(|lp| {
                    let p = lp.to_pair();
                    EventPair::new(format!("pair{t}"), p.a, p.b)
                })
        })
        .collect();
    let cfg = TescConfig::new(2)
        .with_sample_size(300)
        .with_tail(Tail::Upper);

    let engine = TescEngine::new(g);
    for threads in [1usize, 2, 4, 8] {
        let req = BatchRequest::new(cfg)
            .with_seed(7)
            .with_threads(threads)
            .with_pairs(pairs.clone());
        harness.bench(&format!("batch/threads{threads}"), || {
            run_batch(&engine, &req)
        });
    }

    let single = &pairs[0];
    for threads in [1usize, 2, 4, 8] {
        let engine = TescEngine::new(g).with_density_threads(threads);
        harness.bench(&format!("density/threads{threads}"), || {
            let mut rng = StdRng::seed_from_u64(7);
            engine.test(&single.a, &single.b, &cfg, &mut rng).unwrap()
        });
    }

    // Cross-pair density cache on its target workload: one shared
    // event tested against every other planted event (the Sec. 5.3
    // "one keyword × many partners" shape).
    let shared: Vec<EventPair> = pairs
        .iter()
        .skip(1)
        .enumerate()
        .map(|(i, p)| EventPair::new(format!("shared×{i}"), pairs[0].a.clone(), p.b.clone()))
        .collect();
    let shared_req = BatchRequest::new(cfg)
        .with_seed(7)
        .with_threads(1)
        .with_pairs(shared);
    let verdicts = |report: &tesc::BatchReport| -> Vec<_> {
        report.outcomes.iter().map(|o| o.verdict()).collect()
    };
    let plain = TescEngine::new(g);
    let baseline = verdicts(&run_batch(&plain, &shared_req));
    harness.bench("cache/off", || run_batch(&plain, &shared_req));
    harness.bench("cache/cold", || {
        let engine = TescEngine::new(g).with_density_cache(Arc::new(DensityCache::for_graph(g)));
        let report = run_batch(&engine, &shared_req);
        assert_eq!(verdicts(&report), baseline, "cache changed a verdict");
        report
    });
    let warm_engine = TescEngine::new(g).with_density_cache(Arc::new(DensityCache::for_graph(g)));
    run_batch(&warm_engine, &shared_req); // populate
    harness.bench("cache/warm", || {
        let report = run_batch(&warm_engine, &shared_req);
        assert_eq!(verdicts(&report), baseline, "cache changed a verdict");
        report
    });
}
