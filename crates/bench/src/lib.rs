//! Shared harness for the figure/table regeneration binaries.
//!
//! Every table and figure of the paper's evaluation (Sec. 5) has a
//! binary under `src/bin/` that prints the same rows/series the paper
//! reports. This library holds what they share: experiment scales, the
//! noise grids of Figs. 5–6, a tiny CLI-flag parser, timing helpers and
//! recall bookkeeping.
//!
//! Absolute numbers differ from the paper (synthetic substrate, one
//! core); the *shape* — who wins, by what rough factor, where the
//! crossovers sit — is the reproduction target (see EXPERIMENTS.md).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod recall;
pub mod timing;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use tesc_datasets::{DblpConfig, DblpScenario};

/// Experiment scale, selectable with `--scale small|medium|large`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ≈ 2k-node graphs; smoke-test the harness in seconds.
    Small,
    /// ≈ 10k-node graphs; the default.
    Medium,
    /// ≈ 50k-node graphs; closest to the paper's regime, minutes.
    Large,
}

impl Scale {
    /// Parse from flag text.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// DBLP-like generator configuration for this scale.
    pub fn dblp_config(self) -> DblpConfig {
        match self {
            Scale::Small => DblpConfig {
                num_communities: 40,
                community_size: 50,
                papers_per_community: 100,
                ..Default::default()
            },
            Scale::Medium => DblpConfig {
                num_communities: 200,
                community_size: 50,
                papers_per_community: 120,
                ..Default::default()
            },
            Scale::Large => DblpConfig {
                num_communities: 1000,
                community_size: 50,
                papers_per_community: 120,
                ..Default::default()
            },
        }
    }

    /// Planted event size for the recall experiments: the paper plants
    /// 5000-occurrence events on 965k nodes (≈ 0.5%); at our scales a
    /// 2% plant keeps the per-pair signal in the same detectability
    /// regime the paper reports (recall 1.0 at zero noise).
    pub fn event_size(self) -> usize {
        self.dblp_config().num_nodes() / 50
    }
}

/// Build the DBLP-like test bed for a scale, seeded deterministically.
pub fn dblp_scenario(scale: Scale, seed: u64) -> DblpScenario {
    DblpScenario::build(scale.dblp_config(), &mut StdRng::seed_from_u64(seed))
}

/// Noise grid for the positive-correlation recall experiment
/// (x-axes of Fig. 5a–c).
pub fn positive_noise_grid(h: u32) -> &'static [f64] {
    match h {
        1 | 2 => &[0.0, 0.1, 0.2, 0.3],
        _ => &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
    }
}

/// Noise grid for the negative-correlation recall experiment
/// (x-axes of Fig. 6a–c).
pub fn negative_noise_grid(h: u32) -> &'static [f64] {
    match h {
        1 | 2 => &[0.0, 0.2, 0.4, 0.6, 0.8, 0.9],
        _ => &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
    }
}

/// Importance-sampling batch size per vicinity level (Sec. 5.2.2: "we
/// set this number to 3 and 6 for h = 2 and h = 3 respectively").
pub fn importance_batch_size(h: u32) -> usize {
    match h {
        1 => 1,
        2 => 3,
        _ => 6,
    }
}

/// Minimal `--flag value` parser (no external deps offline).
///
/// Flags must come in pairs; bare `--help` prints `usage` and exits.
pub fn parse_flags(usage: &str) -> HashMap<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--help" || a == "-h" {
            println!("{usage}");
            std::process::exit(0);
        }
        let Some(name) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a:?}\n{usage}");
            std::process::exit(2);
        };
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag --{name} needs a value\n{usage}");
            std::process::exit(2);
        };
        map.insert(name.to_string(), value.clone());
        i += 2;
    }
    map
}

/// Fetch a parsed flag with a default.
pub fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    match flags.get(name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("could not parse --{name} {v:?}");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// Scale flag with default Medium.
pub fn scale_flag(flags: &HashMap<String, String>) -> Scale {
    match flags.get("scale") {
        Some(s) => Scale::parse(s).unwrap_or_else(|| {
            eprintln!("--scale must be small|medium|large, got {s:?}");
            std::process::exit(2);
        }),
        None => Scale::Medium,
    }
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Mean duration in milliseconds.
pub fn mean_ms(ds: &[Duration]) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    ds.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / ds.len() as f64
}

/// Recall: fraction of trials flagged significant.
pub fn recall(hits: usize, trials: usize) -> f64 {
    if trials == 0 {
        0.0
    } else {
        hits as f64 / trials as f64
    }
}

/// Render a recall value the way the paper's plots read (0.00–1.00).
pub fn fmt_recall(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("x"), None);
    }

    #[test]
    fn noise_grids_match_paper_axes() {
        assert_eq!(positive_noise_grid(1).last(), Some(&0.3));
        assert_eq!(positive_noise_grid(3).last(), Some(&0.7));
        assert_eq!(negative_noise_grid(2).last(), Some(&0.9));
        assert_eq!(negative_noise_grid(3).last(), Some(&0.5));
        for h in 1..=3 {
            assert_eq!(positive_noise_grid(h)[0], 0.0);
            assert_eq!(negative_noise_grid(h)[0], 0.0);
        }
    }

    #[test]
    fn batch_sizes_match_sec_5_2_2() {
        assert_eq!(importance_batch_size(1), 1);
        assert_eq!(importance_batch_size(2), 3);
        assert_eq!(importance_batch_size(3), 6);
    }

    #[test]
    fn recall_math() {
        assert_eq!(recall(3, 4), 0.75);
        assert_eq!(recall(0, 0), 0.0);
        assert_eq!(fmt_recall(0.5), "0.50");
    }

    #[test]
    fn event_sizes_scale() {
        assert_eq!(Scale::Small.event_size(), 40);
        assert_eq!(Scale::Medium.event_size(), 200);
        assert_eq!(Scale::Large.event_size(), 1000);
    }

    #[test]
    fn mean_ms_works() {
        let ds = [Duration::from_millis(2), Duration::from_millis(4)];
        assert!((mean_ms(&ds) - 3.0).abs() < 1e-9);
        assert_eq!(mean_ms(&[]), 0.0);
    }
}
