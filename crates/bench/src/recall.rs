//! Recall-sweep machinery shared by the Fig. 5/6/7/8 binaries.
//!
//! One *trial* = plant a correlated pair (Sec. 5.2), inject noise, run
//! the one-tailed TESC test at `α = 0.05`, record whether the planted
//! correlation was recovered. Recall = recovered fraction over many
//! trials. Each trial is generated once and tested with every sampler
//! under comparison, mirroring the paper's per-pair comparisons.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{SamplerKind, Tail, TescConfig, TescEngine};
use tesc_baselines::proximity::ProximityMiner;
use tesc_events::simulate::{
    apply_negative_noise, apply_positive_noise, negative_pair, positive_pair, EventPair,
};
use tesc_graph::bfs::BfsScratch;
use tesc_graph::csr::CsrGraph;
use tesc_graph::VicinityIndex;
use tesc_stats::rank::rank_indices_desc;

/// Outcome of a sweep cell: one (h, noise, sampler) combination.
#[derive(Debug, Clone, Copy)]
pub struct RecallCell {
    /// Sampler under test.
    pub sampler: SamplerKind,
    /// Fraction of planted pairs recovered.
    pub recall: f64,
    /// Mean z-score over the trials (diagnostic).
    pub mean_z: f64,
}

/// Which correlation direction a sweep plants and tests for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Linked-pair positives, upper-tail test (Fig. 5).
    Positive,
    /// Separated negatives, lower-tail test (Fig. 6).
    Negative,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Vicinity level.
    pub h: u32,
    /// Noise level `p`.
    pub noise: f64,
    /// Planted event size (`|V_a|`, and `|V_b|` for negatives).
    pub event_size: usize,
    /// Reference sample size `n`.
    pub sample_size: usize,
    /// Number of planted pairs per cell.
    pub pairs: usize,
    /// Base RNG seed (trial `t` uses `seed + t`).
    pub seed: u64,
    /// Samplers to compare on each pair.
    pub samplers: Vec<SamplerKind>,
}

/// Run one sweep cell. The vicinity index is only required when the
/// sampler list contains rejection/importance sampling.
pub fn run_cell(
    g: &CsrGraph,
    idx: Option<&VicinityIndex>,
    dir: Direction,
    spec: &SweepSpec,
) -> Vec<RecallCell> {
    let engine = match idx {
        Some(idx) => TescEngine::with_vicinity_index(g, idx),
        None => TescEngine::new(g),
    };
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut hits = vec![0usize; spec.samplers.len()];
    let mut z_sum = vec![0.0f64; spec.samplers.len()];
    let mut completed = vec![0usize; spec.samplers.len()];

    for t in 0..spec.pairs {
        let pair_seed = spec.seed.wrapping_add(t as u64);
        let Some(pair) = plant(g, &mut scratch, dir, spec, pair_seed) else {
            continue; // graph couldn't host this plant; skip the trial
        };
        for (si, &sampler) in spec.samplers.iter().enumerate() {
            let tail = match dir {
                Direction::Positive => Tail::Upper,
                Direction::Negative => Tail::Lower,
            };
            let cfg = TescConfig::new(spec.h)
                .with_sample_size(spec.sample_size)
                .with_tail(tail)
                .with_sampler(sampler);
            let mut rng = StdRng::seed_from_u64(pair_seed ^ 0x9E37_79B9_7F4A_7C15);
            match engine.test(&pair.a, &pair.b, &cfg, &mut rng) {
                Ok(res) => {
                    completed[si] += 1;
                    z_sum[si] += res.z();
                    if res.outcome.is_significant() {
                        hits[si] += 1;
                    }
                }
                Err(e) => {
                    eprintln!("warn: trial {t} sampler {sampler} failed: {e}");
                }
            }
        }
    }

    spec.samplers
        .iter()
        .enumerate()
        .map(|(si, &sampler)| RecallCell {
            sampler,
            recall: crate::recall(hits[si], completed[si].max(1)),
            mean_z: z_sum[si] / completed[si].max(1) as f64,
        })
        .collect()
}

/// Rank a candidate pair list by the **proximity-pattern baseline**
/// (Khan et al., the paper's \[16\]; `tesc_baselines::proximity`):
/// each pair's score is its neighborhood-transaction support — the
/// fraction of nodes seeing both events within `h` hops — and the
/// returned indices are best-first with the shared deterministic
/// tie-break ([`rank_indices_desc`]). This is the reference ordering
/// the ranking bench compares TESC's top-K against.
pub fn proximity_order(g: &CsrGraph, pairs: &[(Vec<u32>, Vec<u32>)], h: u32) -> Vec<usize> {
    let miner = ProximityMiner::new(h, 0.0);
    let mut scratch = BfsScratch::new(g.num_nodes());
    let supports: Vec<f64> = pairs
        .iter()
        .map(|(a, b)| miner.pair_support(g, &mut scratch, a, b))
        .collect();
    rank_indices_desc(&supports)
}

/// recall@k between two best-first index orderings: the fraction of
/// `reference`'s top k that `candidate`'s top k recovers. `k` is
/// clamped to the shorter ordering; empty orderings score 0.
pub fn recall_at_k(reference: &[usize], candidate: &[usize], k: usize) -> f64 {
    let k = k.min(reference.len()).min(candidate.len());
    if k == 0 {
        return 0.0;
    }
    let top: Vec<usize> = reference[..k].to_vec();
    let hits = candidate[..k].iter().filter(|i| top.contains(i)).count();
    hits as f64 / k as f64
}

/// Plant one noised pair.
fn plant(
    g: &CsrGraph,
    scratch: &mut BfsScratch,
    dir: Direction,
    spec: &SweepSpec,
    seed: u64,
) -> Option<EventPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    match dir {
        Direction::Positive => {
            let lp = positive_pair(g, scratch, spec.event_size, spec.h, &mut rng).ok()?;
            apply_positive_noise(g, scratch, &lp, spec.noise, &mut rng).ok()
        }
        Direction::Negative => {
            let pair = negative_pair(
                g,
                scratch,
                spec.event_size,
                spec.event_size,
                spec.h,
                &mut rng,
            )
            .ok()?;
            Some(apply_negative_noise(
                g, scratch, &pair, spec.h, spec.noise, &mut rng,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesc_datasets::{DblpConfig, DblpScenario};

    #[test]
    fn zero_noise_positive_recall_is_high() {
        let s = DblpScenario::build(DblpConfig::small(), &mut StdRng::seed_from_u64(1));
        let spec = SweepSpec {
            h: 2,
            noise: 0.0,
            event_size: 40,
            sample_size: 300,
            pairs: 5,
            seed: 7,
            samplers: vec![SamplerKind::BatchBfs],
        };
        let cells = run_cell(&s.graph, None, Direction::Positive, &spec);
        assert_eq!(cells.len(), 1);
        assert!(cells[0].recall >= 0.8, "recall = {}", cells[0].recall);
        assert!(cells[0].mean_z > 0.0);
    }

    #[test]
    fn recall_at_k_counts_top_set_overlap() {
        let a = [0usize, 1, 2, 3, 4];
        let b = [1usize, 0, 4, 2, 3];
        assert_eq!(recall_at_k(&a, &b, 2), 1.0, "same top-2 set, any order");
        assert_eq!(recall_at_k(&a, &b, 3), 2.0 / 3.0, "{{0,1}} of {{0,1,2}}");
        assert_eq!(recall_at_k(&a, &b, 5), 1.0);
        assert_eq!(recall_at_k(&a, &b, 99), 1.0, "k clamps to length");
        assert_eq!(recall_at_k(&[], &[], 3), 0.0);
        assert_eq!(recall_at_k(&[0, 1], &[2, 3], 2), 0.0, "disjoint tops");
    }

    #[test]
    fn proximity_order_ranks_co_located_pairs_first() {
        // Grid with one tightly co-located pair, one mid, one disjoint:
        // baseline support must order them co-located > mid > disjoint.
        let g = tesc_graph::generators::grid(10, 10);
        let pairs: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![0, 1], vec![90, 91]),              // far corners: no co-seeing nodes
            ((0..30).collect(), (10..40).collect()), // overlapping stripes
            (vec![44, 45], vec![54, 55]),            // adjacent block
        ];
        let order = proximity_order(&g, &pairs, 1);
        assert_eq!(order[0], 1, "widest co-location first");
        assert_eq!(order[2], 0, "disjoint pair last");
    }

    #[test]
    fn zero_noise_negative_recall_is_high() {
        let s = DblpScenario::build(DblpConfig::small(), &mut StdRng::seed_from_u64(2));
        let spec = SweepSpec {
            h: 1,
            noise: 0.0,
            event_size: 40,
            sample_size: 300,
            pairs: 5,
            seed: 9,
            samplers: vec![SamplerKind::BatchBfs],
        };
        let cells = run_cell(&s.graph, None, Direction::Negative, &spec);
        assert!(cells[0].recall >= 0.8, "recall = {}", cells[0].recall);
        assert!(cells[0].mean_z < 0.0);
    }
}
