//! Minimal timing harness standing in for criterion.
//!
//! The build environment is fully offline, so criterion cannot be
//! vendored; the bench targets under `benches/` are plain
//! `harness = false` binaries driven by this module instead. It keeps
//! the parts of criterion's protocol the repository relies on —
//! warm-up, multiple timed samples, median-of-samples reporting — and
//! drops everything else (plots, statistical regression detection).
//!
//! Output format (one line per benchmark, parse-friendly):
//!
//! ```text
//! group/name                    median   12.345 µs   (min 11.9 µs, max 13.1 µs, 20 samples)
//! ```
//!
//! With `TESC_BENCH_JSON=<path>` set (or [`Harness::with_json_path`]),
//! every benchmark additionally **appends** one machine-readable
//! JSON-lines record to that file:
//!
//! ```text
//! {"bench":"density_kernel","row":"dblp/h2/bitset","ns_per_iter":12345.0,"samples":20}
//! ```
//!
//! `bench` is the bench binary's name, `row` the benchmark name,
//! `ns_per_iter` the median. Appending (rather than truncating) lets
//! one CI job accumulate every bench's records into a single artifact;
//! see `docs/PERFORMANCE.md` for how to read them.
//!
//! Before its first data record, each bench run appends **one header
//! record** identifying the environment, so committed `BENCH_*.json`
//! files are comparable across containers:
//!
//! ```text
//! {"bench":"density_kernel","header":true,"commit":"826e296","cpus":1,"samples":10,"min_sample_ms":10}
//! ```
//!
//! Headers carry `"header":true` and no `"row"` key; consumers joining
//! on `(bench, row)` skip them naturally. `commit` is `git rev-parse
//! --short HEAD` (`"unknown"` outside a git checkout), `cpus` the
//! machine's available parallelism, and `samples`/`min_sample_ms` the
//! harness configuration the run used.

use std::cell::Cell;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Benchmark runner for one bench binary.
pub struct Harness {
    samples: usize,
    min_sample_time: Duration,
    filter: Option<String>,
    json: Option<PathBuf>,
    bench_name: String,
    /// One header record per run, written lazily before the first data
    /// record (so a fully filtered-out run appends nothing).
    header_written: Cell<bool>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Harness with 20 samples of ≥ 10 ms each; a CLI argument (from
    /// `cargo bench --bench NAME -- <substring>`) filters benchmarks
    /// by name.
    ///
    /// Three environment variables override the defaults — and win over
    /// later [`Harness::with_samples`] calls — so CI can smoke-run
    /// every bench binary in seconds without patching them:
    ///
    /// * `TESC_BENCH_SAMPLES` — timed samples per benchmark (≥ 1).
    /// * `TESC_BENCH_MIN_SAMPLE_MS` — calibration floor per sample in
    ///   milliseconds (0 = a single iteration per sample).
    /// * `TESC_BENCH_JSON` — append a machine-readable record per
    ///   benchmark to this path (see the module docs).
    pub fn new() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Harness {
            samples: env_override("TESC_BENCH_SAMPLES").map_or(20, |s: usize| s.max(1)),
            min_sample_time: env_override("TESC_BENCH_MIN_SAMPLE_MS")
                .map_or(Duration::from_millis(10), Duration::from_millis),
            filter,
            json: std::env::var_os("TESC_BENCH_JSON").map(PathBuf::from),
            bench_name: bench_name_from_argv0(std::env::args().next().as_deref()),
            header_written: Cell::new(false),
        }
    }

    /// Number of timed samples per benchmark (the `TESC_BENCH_SAMPLES`
    /// environment override, if set, wins).
    pub fn with_samples(mut self, samples: usize) -> Self {
        if std::env::var_os("TESC_BENCH_SAMPLES").is_none() {
            self.samples = samples.max(1);
        }
        self
    }

    /// Drop the CLI-argument name filter picked up by [`Harness::new`].
    ///
    /// The filter heuristic treats any bare (non-`--`) argument as a
    /// benchmark-name substring, which is right for `cargo bench -- foo`
    /// but wrong for binaries taking `--flag value` pairs: the *value*
    /// would silently filter out every row. Flag-style bins call this.
    pub fn without_cli_filter(mut self) -> Self {
        self.filter = None;
        self
    }

    /// Append JSON-lines records to `path` (the `TESC_BENCH_JSON`
    /// environment override, if set, wins).
    pub fn with_json_path(mut self, path: impl Into<PathBuf>) -> Self {
        if std::env::var_os("TESC_BENCH_JSON").is_none() {
            self.json = Some(path.into());
        }
        self
    }

    /// Configured timed samples per benchmark. Load-generator benches
    /// that measure whole request streams (rather than one closure)
    /// scale their request counts off this, so `TESC_BENCH_SAMPLES=1`
    /// keeps CI smoke runs fast without a dedicated knob.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Append one custom data record —
    /// `{"bench":NAME,"row":row,"k1":v1,...}` — to the JSON-lines
    /// path, writing the run's header record first when needed.
    ///
    /// This is the escape hatch for benches whose unit of measurement
    /// is not "median seconds of one closure": a closed-loop load
    /// generator reports `p50_us`/`p99_us`/`rps` per row instead of
    /// `ns_per_iter`, but should still share the header/append
    /// protocol so one artifact file holds every bench's records.
    /// No-op when no JSON path is configured.
    pub fn record_row(&self, row: &str, fields: &[(&str, f64)]) {
        let Some(path) = &self.json else { return };
        self.write_header_once(path);
        let mut record = format!(
            "{{\"bench\":\"{}\",\"row\":\"{}\"",
            json_escape(&self.bench_name),
            json_escape(row),
        );
        for (key, value) in fields {
            use std::fmt::Write as _;
            let _ = write!(record, ",\"{}\":{:.1}", json_escape(key), value);
        }
        record.push_str("}\n");
        if let Err(e) = append_record(path, &record) {
            eprintln!("TESC_BENCH_JSON: cannot append to {}: {e}", path.display());
        }
    }

    /// Append the run's header record if this run has not written one
    /// yet (one header per bench-binary invocation).
    fn write_header_once(&self, path: &Path) {
        if self.header_written.replace(true) {
            return;
        }
        let header = format!(
            "{{\"bench\":\"{}\",\"header\":true,\"commit\":\"{}\",\"cpus\":{},\"samples\":{},\"min_sample_ms\":{}}}\n",
            json_escape(&self.bench_name),
            json_escape(&git_short_commit()),
            std::thread::available_parallelism().map_or(1, |n| n.get()),
            self.samples,
            self.min_sample_time.as_millis(),
        );
        if let Err(e) = append_record(path, &header) {
            eprintln!("TESC_BENCH_JSON: cannot append to {}: {e}", path.display());
        }
    }

    /// Time `f`, printing one report line and returning the median
    /// seconds per iteration (`NAN` when filtered out). The closure's
    /// return value is passed through [`std::hint::black_box`] so the
    /// optimizer cannot elide the work.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> f64 {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return f64::NAN;
            }
        }
        // Warm-up + calibration: how many iterations fill one sample?
        let mut iters = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_sample_time {
                break;
            }
            iters = iters.saturating_mul(2).max(iters + 1);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
        println!(
            "{name:<34} median {:>12}   (min {}, max {}, {} samples × {iters} iters)",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
            self.samples,
        );
        if let Some(path) = &self.json {
            self.write_header_once(path);
            let record = format!(
                "{{\"bench\":\"{}\",\"row\":\"{}\",\"ns_per_iter\":{:.1},\"samples\":{}}}\n",
                json_escape(&self.bench_name),
                json_escape(name),
                median * 1e9,
                self.samples,
            );
            if let Err(e) = append_record(path, &record) {
                eprintln!("TESC_BENCH_JSON: cannot append to {}: {e}", path.display());
            }
        }
        median
    }
}

/// `git rev-parse --short HEAD` of the working directory, or
/// `"unknown"` when git or the checkout is unavailable (the records
/// must still be writable from an exported tarball).
fn git_short_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Parse an environment-variable override, ignoring unset or
/// malformed values.
fn env_override<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok()?.parse().ok()
}

/// Bench-binary name from `argv[0]`: the file stem with cargo's
/// `-<16 hex digits>` disambiguation hash stripped.
fn bench_name_from_argv0(argv0: Option<&str>) -> String {
    let stem = argv0
        .and_then(|p| Path::new(p).file_stem())
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((base, hash))
            if !base.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem.to_string(),
    }
}

/// Escape a string for embedding in a JSON string literal (bench/row
/// names are ASCII identifiers; quotes and backslashes for safety).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn append_record(path: &Path, record: &str) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(record.as_bytes())
}

/// Render seconds in the unit a human would pick.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_picks_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }

    #[test]
    fn bench_runs_the_closure() {
        let harness = Harness::new().with_samples(2);
        let mut calls = 0u64;
        let median = harness.bench("smoke/increment", || {
            calls += 1;
            calls
        });
        assert!(calls > 0, "closure executed at least once");
        assert!(median >= 0.0, "median is a time");
    }

    #[test]
    fn bench_name_strips_cargo_hash() {
        assert_eq!(
            bench_name_from_argv0(Some("/t/release/deps/density_kernel-0123456789abcdef")),
            "density_kernel"
        );
        assert_eq!(bench_name_from_argv0(Some("micro")), "micro");
        assert_eq!(
            bench_name_from_argv0(Some("my-bench")),
            "my-bench",
            "non-hash suffix kept"
        );
        assert_eq!(bench_name_from_argv0(None), "bench");
    }

    #[test]
    fn json_records_append() {
        let path = std::env::temp_dir().join(format!(
            "tesc_bench_json_test_{}_{}.jsonl",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let _ = std::fs::remove_file(&path);
        // Set the fields directly so an ambient TESC_BENCH_* env
        // cannot redirect this test.
        let mut harness = Harness::new();
        harness.samples = 1;
        harness.json = Some(path.clone());
        harness.min_sample_time = Duration::ZERO;
        harness.bench("grp/row1", || 1);
        harness.bench("grp/row2", || 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            3,
            "one header + one record per bench: {text:?}"
        );
        assert!(lines[0].contains("\"header\":true"), "{text}");
        assert!(lines[0].contains("\"commit\":\""), "{text}");
        assert!(lines[0].contains("\"cpus\":"), "{text}");
        assert!(!lines[0].contains("\"row\""), "headers carry no row key");
        assert!(lines[1].contains("\"row\":\"grp/row1\""), "{text}");
        assert!(lines[1].contains("\"samples\":1"));
        assert!(lines[1].contains("\"ns_per_iter\":"));
        assert!(lines[2].contains("\"row\":\"grp/row2\""));
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn custom_records_share_the_header_protocol() {
        let path = std::env::temp_dir().join(format!(
            "tesc_bench_custom_record_test_{}_{}.jsonl",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let _ = std::fs::remove_file(&path);
        let mut harness = Harness::new();
        harness.samples = 1;
        harness.json = Some(path.clone());
        harness.min_sample_time = Duration::ZERO;
        harness.record_row("test/c4/budget=inf", &[("p50_us", 123.45), ("rps", 9000.0)]);
        harness.bench("grp/row", || 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + custom + bench record: {text:?}");
        assert!(lines[0].contains("\"header\":true"), "{text}");
        assert!(
            lines[1].contains("\"row\":\"test/c4/budget=inf\""),
            "{text}"
        );
        assert!(lines[1].contains("\"p50_us\":123.5"), "{text}");
        assert!(lines[1].contains("\"rps\":9000.0"), "{text}");
        assert!(
            lines[2].contains("\"ns_per_iter\":"),
            "bench() must not repeat the header: {text}"
        );
    }
}
