//! Minimal timing harness standing in for criterion.
//!
//! The build environment is fully offline, so criterion cannot be
//! vendored; the bench targets under `benches/` are plain
//! `harness = false` binaries driven by this module instead. It keeps
//! the parts of criterion's protocol the repository relies on —
//! warm-up, multiple timed samples, median-of-samples reporting — and
//! drops everything else (plots, statistical regression detection).
//!
//! Output format (one line per benchmark, parse-friendly):
//!
//! ```text
//! group/name                    median   12.345 µs   (min 11.9 µs, max 13.1 µs, 20 samples)
//! ```

use std::time::{Duration, Instant};

/// Benchmark runner for one bench binary.
pub struct Harness {
    samples: usize,
    min_sample_time: Duration,
    filter: Option<String>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Harness with 20 samples of ≥ 10 ms each; a CLI argument (from
    /// `cargo bench --bench NAME -- <substring>`) filters benchmarks
    /// by name.
    ///
    /// Two environment variables override the defaults — and win over
    /// later [`Harness::with_samples`] calls — so CI can smoke-run
    /// every bench binary in seconds without patching them:
    ///
    /// * `TESC_BENCH_SAMPLES` — timed samples per benchmark (≥ 1).
    /// * `TESC_BENCH_MIN_SAMPLE_MS` — calibration floor per sample in
    ///   milliseconds (0 = a single iteration per sample).
    pub fn new() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Harness {
            samples: env_override("TESC_BENCH_SAMPLES").map_or(20, |s: usize| s.max(1)),
            min_sample_time: env_override("TESC_BENCH_MIN_SAMPLE_MS")
                .map_or(Duration::from_millis(10), Duration::from_millis),
            filter,
        }
    }

    /// Number of timed samples per benchmark (the `TESC_BENCH_SAMPLES`
    /// environment override, if set, wins).
    pub fn with_samples(mut self, samples: usize) -> Self {
        if std::env::var_os("TESC_BENCH_SAMPLES").is_none() {
            self.samples = samples.max(1);
        }
        self
    }

    /// Time `f`, printing one report line. The closure's return value
    /// is passed through [`std::hint::black_box`] so the optimizer
    /// cannot elide the work.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up + calibration: how many iterations fill one sample?
        let mut iters = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_sample_time {
                break;
            }
            iters = iters.saturating_mul(2).max(iters + 1);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
        println!(
            "{name:<34} median {:>12}   (min {}, max {}, {} samples × {iters} iters)",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
            self.samples,
        );
    }
}

/// Parse an environment-variable override, ignoring unset or
/// malformed values.
fn env_override<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok()?.parse().ok()
}

/// Render seconds in the unit a human would pick.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_picks_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }

    #[test]
    fn bench_runs_the_closure() {
        let harness = Harness::new().with_samples(2);
        let mut calls = 0u64;
        harness.bench("smoke/increment", || {
            calls += 1;
            calls
        });
        assert!(calls > 0, "closure executed at least once");
    }
}
