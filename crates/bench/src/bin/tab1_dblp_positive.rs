//! **Table 1** — five keyword pairs exhibiting high 1-hop positive
//! TESC on the DBLP(-like) graph, with their TESC z-scores at
//! h = 1, 2, 3 and the Transaction Correlation z-score.
//!
//! Paper shape to reproduce: all pairs strongly positive at every
//! level (z grows with h), and positive under TC too — co-topic
//! keywords are used together by some authors *and* cluster in the
//! same communities.
//!
//! Output: `# `-prefixed provenance lines, then one row per keyword
//! pair: `pair h=1 h=2 h=3 TC` (all z-scores).
//!
//! Run: `cargo run --release -p tesc_bench --bin tab1_dblp_positive`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{Tail, TescConfig, TescEngine};
use tesc_baselines::transaction_correlation;
use tesc_bench::{dblp_scenario, flag, parse_flags, scale_flag};

const USAGE: &str = "tab1_dblp_positive — Table 1: 1-hop positive keyword pairs (DBLP-like)
  --scale small|medium|large   graph scale (default medium)
  --sample-size N              reference nodes per test (default 900)
  --seed N                     base seed (default 42)";

/// The keyword pairs of Table 1, with planting parameters
/// (#shared communities, occurrences per community, co-author
/// fraction) chosen to mirror the reported ordering.
const PAIRS: [(&str, usize, usize, f64); 5] = [
    ("Texture vs. Image", 16, 12, 0.25),
    ("Wireless vs. Sensor", 15, 12, 0.30),
    ("Multicast vs. Network", 13, 11, 0.20),
    ("Wireless vs. Network", 11, 10, 0.25),
    ("Semantic vs. RDF", 10, 10, 0.20),
];

fn main() {
    let flags = parse_flags(USAGE);
    let scale = scale_flag(&flags);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building DBLP-like scenario ({scale:?})...");
    let s = dblp_scenario(scale, seed);
    let engine = TescEngine::new(&s.graph);

    println!("# Table 1: keyword pairs with high 1-hop positive correlation (DBLP-like)");
    println!("# all scores are z-scores; TESC via Batch BFS, n = {sample_size}");
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>9}",
        "pair", "h=1", "h=2", "h=3", "TC"
    );
    for (i, (name, comms, per_comm, co_frac)) in PAIRS.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed + i as u64 + 1);
        let (va, vb) = s.plant_positive_keyword_pair(*comms, *per_comm, *co_frac, &mut rng);
        let mut zs = [0.0f64; 3];
        for h in [1u32, 2, 3] {
            let cfg = TescConfig::new(h)
                .with_sample_size(sample_size)
                .with_tail(Tail::Upper);
            let mut trng = StdRng::seed_from_u64(seed + 100 + i as u64 * 3 + h as u64);
            zs[h as usize - 1] = engine
                .test(&va, &vb, &cfg, &mut trng)
                .map(|r| r.z())
                .unwrap_or(f64::NAN);
        }
        let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
        println!(
            "{:<26} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            name, zs[0], zs[1], zs[2], tc.z
        );
    }
}
