//! **Figure 13** (beyond the paper) — crash-recovery restart vs.
//! from-scratch rebuild, time to first query.
//!
//! The persistence tier (`tesc::persist`) exists so a serving daemon
//! can come back from a crash without replaying its life story. This
//! binary quantifies the payoff. Starting from a DBLP-like scenario
//! with planted keyword events, it applies `--commits` random
//! ingestion deltas durably (snapshots + WAL in a scratch directory),
//! then times two ways of getting back to an answering state:
//!
//! * `restart` — [`TescContext::open_dir`]: newest valid snapshot +
//!   WAL tail replay + vicinity rebuild, then one fixed-seed query;
//! * `rebuild` — reconstruct the initial state, re-apply all deltas
//!   through the writer API (each one re-publishing a version, exactly
//!   what a log-less daemon would redo), then the same query.
//!
//! Both paths are identity-gated before timing: they must land on the
//! never-crashed context's snapshot fingerprint *and* return the
//! bit-identical z-score for the fixed-seed query, otherwise the run
//! fails. With `TESC_BENCH_JSON` set, rows land in the shared
//! JSON-lines artifact (`restart_ms`, `rebuild_ms`, `speedup`).
//!
//! Run: `cargo run --release -p tesc_bench --bin fig13_recovery`
//! Flags: `--scale small|medium|large`, `--h H`, `--commits N`,
//! `--snapshot-every N`, `--seed N`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc::context::TescContext;
use tesc::persist::StoreOptions;
use tesc::TescConfig;
use tesc_bench::timing::Harness;
use tesc_bench::{dblp_scenario, flag, parse_flags, scale_flag};
use tesc_events::{EventId, EventStore};
use tesc_graph::NodeId;

const USAGE: &str = "fig13_recovery — restart-from-disk vs rebuild-from-deltas, to first query
  --scale small|medium|large   graph scale (default small)
  --h H                        vicinity level (default 2)
  --commits N                  durable ingestion deltas to apply (default 64)
  --snapshot-every N           checkpoint period in WAL records (default 32)
  --seed N                     base seed (default 42)";

/// One pre-generated ingestion delta (shared verbatim by the durable
/// run and the rebuild path, so both replay the same history).
enum Delta {
    Edges(Vec<(NodeId, NodeId)>),
    Occurrences(EventId, Vec<NodeId>),
}

fn main() {
    let flags = parse_flags(USAGE);
    let scale = match flags.get("scale") {
        Some(_) => scale_flag(&flags),
        None => tesc_bench::Scale::Small,
    };
    let h = flag(&flags, "h", 2u32);
    let commits = flag(&flags, "commits", 64usize).max(1);
    let snapshot_every = flag(&flags, "snapshot-every", 32u64).max(1);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building DBLP-like scenario ({scale:?}, h = {h})...");
    let s = dblp_scenario(scale, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let (wireless, sensor) = s.plant_positive_keyword_pair(6, 10, 0.3, &mut rng);
    let base_graph = s.graph.clone();
    let mut base_events = EventStore::new();
    let wireless_id = base_events.add_event("wireless", wireless);
    base_events.add_event("sensor", sensor);
    let n = base_graph.num_nodes() as NodeId;

    // Pre-generate the delta history both paths share.
    let deltas: Vec<Delta> = (0..commits)
        .map(|_| {
            if rng.gen_bool(0.5) {
                let edges = (0..4)
                    .map(|_| {
                        let u = rng.gen_range(0..n - 1);
                        (u, rng.gen_range(u + 1..n))
                    })
                    .filter(|&(u, v)| u != v)
                    .collect();
                Delta::Edges(edges)
            } else {
                let nodes = (0..3).map(|_| rng.gen_range(0..n)).collect();
                Delta::Occurrences(wireless_id, nodes)
            }
        })
        .collect();

    let apply = |ctx: &TescContext, delta: &Delta| match delta {
        Delta::Edges(edges) => {
            ctx.add_edges(edges).expect("edge delta");
        }
        Delta::Occurrences(event, nodes) => {
            ctx.add_event_occurrences(*event, nodes)
                .expect("occurrence delta");
        }
    };

    // The fixed-seed first query both paths must answer identically.
    let query = |ctx: &TescContext| {
        let snap = ctx.snapshot();
        let events = snap.events();
        let cfg = TescConfig::new(h).with_sample_size(200);
        let result = snap
            .engine()
            .test(
                events.nodes(events.id_by_name("wireless").expect("planted")),
                events.nodes(events.id_by_name("sensor").expect("planted")),
                &cfg,
                &mut StdRng::seed_from_u64(seed ^ 0x51),
            )
            .expect("first query");
        (snap.fingerprint(), result.z().to_bits())
    };

    // Durable history: commit every delta into a scratch data dir.
    let dir = std::env::temp_dir().join(format!(
        "tesc-fig13-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let options = StoreOptions {
        snapshot_every,
        ..StoreOptions::default()
    };
    eprintln!("committing {commits} durable deltas (snapshot every {snapshot_every} records)...");
    let ctx = TescContext::try_with_threads(base_graph.clone(), base_events.clone(), h, 1)
        .expect("initial context")
        .with_durability(&dir, options)
        .expect("attach durability");
    for delta in &deltas {
        apply(&ctx, delta);
    }
    let golden = query(&ctx);
    drop(ctx);

    // Identity gates before any timing: both recovery paths must land
    // on the never-crashed state and answer bit-identically.
    let restarted = TescContext::open_dir(&dir, h, 1, options)
        .expect("recovery")
        .expect("directory holds data");
    let restart_answer = query(&restarted);
    drop(restarted);
    let rebuild = || {
        let ctx = TescContext::try_with_threads(base_graph.clone(), base_events.clone(), h, 1)
            .expect("initial context");
        for delta in &deltas {
            apply(&ctx, delta);
        }
        ctx
    };
    let rebuild_answer = query(&rebuild());
    let identical = restart_answer == golden && rebuild_answer == golden;
    println!(
        "identity gate: restart {} rebuild {} (fingerprint + fixed-seed z bits)",
        if restart_answer == golden {
            "ok"
        } else {
            "FAIL"
        },
        if rebuild_answer == golden {
            "ok"
        } else {
            "FAIL"
        },
    );

    let harness = Harness::new().without_cli_filter().with_samples(5);
    let restart_s = harness.bench("recovery/restart_to_first_query", || {
        let ctx = TescContext::open_dir(&dir, h, 1, options)
            .expect("recovery")
            .expect("directory holds data");
        query(&ctx)
    });
    let rebuild_s = harness.bench("recovery/rebuild_to_first_query", || query(&rebuild()));
    let speedup = rebuild_s / restart_s.max(1e-12);
    println!(
        "commits  restart_ms  rebuild_ms  speedup\n{commits}  {:<10.1}  {:<10.1}  {speedup:.1}",
        restart_s * 1e3,
        rebuild_s * 1e3,
    );
    harness.record_row(
        &format!("recovery/commits={commits}"),
        &[
            ("restart_ms", restart_s * 1e3),
            ("rebuild_ms", rebuild_s * 1e3),
            ("speedup", speedup),
        ],
    );
    std::fs::remove_dir_all(&dir).ok();
    if !identical {
        eprintln!("FAIL: a recovery path diverged from the never-crashed context");
        std::process::exit(1);
    }
}
