//! **Table 5** — rare alert pairs with significant positive 1-hop TESC
//! that frequency-based proximity pattern mining does **not** discover.
//!
//! Paper shape to reproduce: pairs with only tens of occurrences reach
//! p < 0.01 under TESC, yet fall below the proximity miner's support
//! threshold (the paper uses minsup = 10/|V| for pFP and still finds
//! these pairs absent); a frequent control pair is found by both.
//!
//! Output: `# `-prefixed provenance lines, then one row per pair:
//! `pair z p-value support mined?` — `mined?` says whether the
//! proximity miner's support threshold admitted the pair.
//!
//! Run: `cargo run --release -p tesc_bench --bin tab5_rare_pairs`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{BfsScratch, Tail, TescConfig, TescEngine};
use tesc_baselines::ProximityMiner;
use tesc_bench::{flag, parse_flags};
use tesc_datasets::{IntrusionConfig, IntrusionScenario};

const USAGE: &str = "tab5_rare_pairs — Table 5: rare pairs TESC finds, proximity mining misses
  --sample-size N   reference nodes per test (default 900)
  --minsup-count N  support threshold as a node count (default 5% of |V|)
  --seed N          base seed (default 42)";

/// Table 5's two rare pairs with their occurrence counts, plus a
/// frequent control pair.
const RARE: [(&str, usize, usize); 2] = [
    (
        "HTTP IE Script HRAlign Overflow (16) vs. HTTP DotDotDot (29)",
        16,
        29,
    ),
    (
        "HTTP ISA Rules Engine Bypass (81) vs. HTTP Script Bypass (12)",
        81,
        12,
    ),
];

fn main() {
    let flags = parse_flags(USAGE);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building Intrusion-like scenario...");
    let s = IntrusionScenario::build(IntrusionConfig::default(), &mut StdRng::seed_from_u64(seed));
    let n_nodes = s.graph.num_nodes();
    // The paper's minsup (10/|V| for pFP's propagated transactions) is
    // not directly portable to plain neighborhood transactions; 5% of
    // nodes separates the frequent control (which blankets a third of
    // the subnets) from the rare plants by an order of magnitude.
    let minsup_count = flag(&flags, "minsup-count", n_nodes / 20);
    let minsup = minsup_count as f64 / n_nodes as f64;
    let miner = ProximityMiner::new(1, minsup);
    let engine = TescEngine::new(&s.graph);
    let mut scratch = BfsScratch::new(n_nodes);

    println!("# Table 5: rare positive pairs — TESC vs proximity pattern mining");
    println!("# minsup = {minsup_count}/{n_nodes} = {minsup:.2e}, n = {sample_size}");
    println!(
        "{:<62} {:>8} {:>10} {:>9} {:>8}",
        "pair", "z", "p-value", "support", "mined?"
    );
    for (i, (name, ca, cb)) in RARE.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed + i as u64 + 1);
        let (va, vb) = s.plant_rare_pair(*ca, *cb, &mut rng);
        let cfg = TescConfig::new(1)
            .with_sample_size(sample_size)
            .with_tail(Tail::Upper);
        let mut trng = StdRng::seed_from_u64(seed + 500 + i as u64);
        let res = engine
            .test(&va, &vb, &cfg, &mut trng)
            .expect("rare pair test");
        let support = miner.pair_support(&s.graph, &mut scratch, &va, &vb);
        println!(
            "{:<62} {:>8.2} {:>10.4} {:>9.2e} {:>8}",
            name,
            res.z(),
            res.outcome.p_value,
            support,
            if support >= minsup { "yes" } else { "NO" }
        );
    }

    // Control: a frequent positively correlated pair is found by both.
    let mut rng = StdRng::seed_from_u64(seed + 99);
    let (va, vb) = s.plant_alternating_alert_pair(40, 12, &mut rng);
    let cfg = TescConfig::new(1)
        .with_sample_size(sample_size)
        .with_tail(Tail::Upper);
    let mut trng = StdRng::seed_from_u64(seed + 600);
    let res = engine
        .test(&va, &vb, &cfg, &mut trng)
        .expect("control pair test");
    let support = miner.pair_support(&s.graph, &mut scratch, &va, &vb);
    println!(
        "{:<62} {:>8.2} {:>10.4} {:>9.2e} {:>8}",
        "control: Ping Sweep vs. SMB Service Sweep (frequent)",
        res.z(),
        res.outcome.p_value,
        support,
        if support >= minsup { "yes" } else { "NO" }
    );
}
