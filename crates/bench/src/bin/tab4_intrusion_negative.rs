//! **Table 4** — five alert pairs exhibiting high 2-hop *negative*
//! TESC on the Intrusion(-like) graph.
//!
//! Paper shape to reproduce: strongly negative TESC (the paper reports
//! z ≈ −31 … −27) with only moderate negative TC — techniques bound to
//! different platforms live in different regions of the network. The
//! paper uses h = 2 here because the hub structure makes 2-vicinities
//! already cover much of the graph.
//!
//! Output: `# `-prefixed provenance lines, then one row per alert
//! pair: `pair TESC_h2 TC` (z-scores).
//!
//! Run: `cargo run --release -p tesc_bench --bin tab4_intrusion_negative`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{Tail, TescConfig, TescEngine};
use tesc_baselines::transaction_correlation;
use tesc_bench::{flag, parse_flags};
use tesc_datasets::{IntrusionConfig, IntrusionScenario};

const USAGE: &str = "tab4_intrusion_negative — Table 4: 2-hop negative alert pairs (Intrusion-like)
  --sample-size N   reference nodes per test (default 900)
  --seed N          base seed (default 42)";

/// Table 4 alert pairs with planting intensity (#subnets per side,
/// hosts per subnet).
const PAIRS: [(&str, usize, usize); 5] = [
    ("Audit TFTP Get Filename vs. LDAP Auth Failed", 26, 12),
    ("LDAP Auth Failed vs. TFTP Put", 25, 12),
    ("DPS Magic Number DoS vs. HTTP Auth TooLong", 24, 11),
    ("LDAP BER Sequence DoS vs. TFTP Put", 23, 11),
    ("Email Executable Extension vs. UDP Service Sweep", 20, 10),
];

fn main() {
    let flags = parse_flags(USAGE);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building Intrusion-like scenario...");
    let s = IntrusionScenario::build(IntrusionConfig::default(), &mut StdRng::seed_from_u64(seed));
    let engine = TescEngine::new(&s.graph);

    println!("# Table 4: alert pairs with high 2-hop negative correlation (Intrusion-like)");
    println!("# all scores are z-scores; TESC via Batch BFS, n = {sample_size}");
    println!("{:<50} {:>12} {:>9}", "pair", "TESC (h=2)", "TC");
    for (i, (name, subnets, hosts)) in PAIRS.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed + i as u64 + 1);
        let (va, vb) = s.plant_separated_alert_pair(*subnets, *hosts, &mut rng);
        let cfg = TescConfig::new(2)
            .with_sample_size(sample_size)
            .with_tail(Tail::Lower);
        let mut trng = StdRng::seed_from_u64(seed + 400 + i as u64);
        let z = engine
            .test(&va, &vb, &cfg, &mut trng)
            .map(|r| r.z())
            .unwrap_or(f64::NAN);
        let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
        println!("{:<50} {:>12.2} {:>9.2}", name, z, tc.z);
    }
}
