//! **Figure 14** (beyond the paper) — plain vs compressed CSR at
//! scale: the compression-vs-decode trade-off, measured.
//!
//! At the ROADMAP's million-node tier the h-hop vicinity BFS is
//! memory-bandwidth-bound: the adjacency no longer fits in cache, so
//! what matters is bytes streamed per vicinity, not instructions per
//! neighbor. The delta/varint rows of [`CompressedCsr`] cut those
//! bytes roughly in half at the cost of a decode loop; this binary
//! times the whole TESC test (sampling + density BFS + statistic) on
//! Twitter-like graphs at `n ∈ {100k, 1M} × h ∈ {1, 2}` across all
//! three kernels, on both substrates, and reports bytes-resident and
//! bytes-streamed next to ns/iter so the regimes where compression
//! wins (large n, h = 2) and loses (cache-resident n, h = 1) are
//! visible in the same table.
//!
//! Every row is identity-gated: each kernel × substrate combination
//! must reproduce the plain-CSR scalar reference bit-for-bit
//! (statistic and z-score bits), and the compressed substrate must
//! carry the plain graph's fingerprint. With `--gate-speedup X` the
//! run additionally fails unless compressed beats plain by ≥ X at the
//! largest n × largest h row (the bandwidth-bound regime); with
//! `--gate-disk Y` the `.tgraph` container must be ≥ Y× smaller than
//! the text edge list. With `TESC_BENCH_JSON` set, rows land in the
//! shared JSON-lines artifact.
//!
//! Run: `cargo run --release -p tesc_bench --bin fig14_scale`
//! Flags: `--nodes N1,N2,...`, `--h H1,H2,...`, `--n REFS`,
//! `--seed N`, `--gate-speedup X`, `--gate-disk Y`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{BfsKernel, Tail, TescConfig, TescEngine, TescResult};
use tesc_bench::timing::Harness;
use tesc_bench::{flag, parse_flags};
use tesc_datasets::twitter_like::{TwitterConfig, TwitterScenario};
use tesc_graph::{Adjacency, BfsScratch, CompressedCsr, CsrGraph, NodeId};

const USAGE: &str = "fig14_scale — plain vs compressed CSR at scale, all kernels
  --nodes LIST    comma-separated node counts      (default 100000,1000000)
  --h LIST        comma-separated vicinity levels  (default 1,2)
  --n REFS        reference-sample size per test   (default 400)
  --seed N        base seed                        (default 42)
  --gate-speedup X  fail unless compressed/plain speedup ≥ X at the
                    largest nodes × largest h row  (default 0: report only)
  --gate-disk Y     fail unless text/.tgraph size ratio ≥ Y (default 0)";

fn parse_list(
    flags: &std::collections::HashMap<String, String>,
    name: &str,
    default: &str,
) -> Vec<usize> {
    flags
        .get(name)
        .map(String::as_str)
        .unwrap_or(default)
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad --{name} entry {t:?}"))
        })
        .collect()
}

/// `Write` sink that only counts, for sizing the text encoding
/// without touching the filesystem.
struct CountingSink(u64);

impl std::io::Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Total adjacency bytes the kernels stream while expanding the
/// `h`-vicinities of `probes` — 4 B/neighbor on plain CSR, the actual
/// packed row bytes on the compressed substrate.
fn streamed_bytes(
    graph: &CsrGraph,
    compressed: &CompressedCsr,
    probes: &[NodeId],
    h: u32,
) -> (u64, u64) {
    let mut scratch = BfsScratch::new(graph.num_nodes());
    let (mut plain, mut comp) = (0u64, 0u64);
    for &p in probes {
        scratch.visit_h_vicinity(graph, &[p], h, |v, _| {
            plain += 4 * graph.degree(v) as u64;
            comp += compressed.row_bytes(v) as u64;
        });
    }
    (plain, comp)
}

fn main() {
    let flags = parse_flags(USAGE);
    let nodes_list = parse_list(&flags, "nodes", "100000,1000000");
    let h_list: Vec<u32> = parse_list(&flags, "h", "1,2")
        .iter()
        .map(|&h| h as u32)
        .collect();
    let refs = flag(&flags, "n", 400usize);
    let seed = flag(&flags, "seed", 42u64);
    let gate_speedup = flag(&flags, "gate-speedup", 0.0f64);
    let gate_disk = flag(&flags, "gate-disk", 0.0f64);
    let harness = Harness::new().without_cli_filter().with_samples(5);

    let n_max = nodes_list
        .iter()
        .copied()
        .max()
        .expect("--nodes is nonempty");
    let h_max = h_list.iter().copied().max().expect("--h is nonempty");
    let mut identity_ok = true;
    let mut disk_ok = true;
    let mut gated_speedup = f64::NAN;

    for &n in &nodes_list {
        eprintln!("building Twitter-like graph (n = {n})...");
        let cfg = TwitterConfig {
            num_nodes: n,
            ..TwitterConfig::default()
        };
        let scenario = TwitterScenario::build(cfg, &mut StdRng::seed_from_u64(seed));
        let graph = &scenario.graph;
        let compressed = CompressedCsr::from_graph(graph);
        assert_eq!(
            compressed.fingerprint(),
            graph.fingerprint(),
            "compressed substrate must carry the plain fingerprint"
        );

        // On-disk economics: text edge list vs `.tgraph` container.
        let mut sink = CountingSink(0);
        tesc_graph::io::write_edge_list(graph, &mut sink).expect("counting sink");
        let text_bytes = sink.0;
        let tgraph_bytes = tesc_graph::encode_tgraph(&compressed, None).len() as u64;
        let disk_ratio = text_bytes as f64 / tgraph_bytes as f64;
        if gate_disk > 0.0 && disk_ratio < gate_disk {
            disk_ok = false;
        }
        println!(
            "n={n}: text {text_bytes} B, .tgraph {tgraph_bytes} B ({disk_ratio:.2}x smaller); \
             resident plain {} B, compressed {} B",
            graph.resident_bytes(),
            compressed.resident_bytes(),
        );
        harness.record_row(
            &format!("scale/n={n}/disk"),
            &[
                ("text_bytes", text_bytes as f64),
                ("tgraph_bytes", tgraph_bytes as f64),
                ("disk_ratio", disk_ratio),
                ("plain_resident_bytes", graph.resident_bytes() as f64),
                (
                    "compressed_resident_bytes",
                    compressed.resident_bytes() as f64,
                ),
            ],
        );

        let (va, vb) = scenario.plant_correlated_pair(64, 2, &mut StdRng::seed_from_u64(seed ^ 1));
        let probes: Vec<NodeId> = {
            use rand::Rng;
            let mut r = StdRng::seed_from_u64(seed ^ 2);
            (0..64).map(|_| r.gen_range(0..n as NodeId)).collect()
        };

        for &h in &h_list {
            let cfg = TescConfig::new(h)
                .with_sample_size(refs)
                .with_tail(Tail::Upper);
            let query_seed = seed ^ (h as u64) << 8;
            fn run_one<G: Adjacency>(
                engine: &TescEngine<'_, G>,
                va: &[NodeId],
                vb: &[NodeId],
                cfg: &TescConfig,
                query_seed: u64,
            ) -> TescResult {
                engine
                    .test(va, vb, cfg, &mut StdRng::seed_from_u64(query_seed))
                    .expect("scale test")
            }
            let run =
                |engine: &TescEngine<'_, CsrGraph>| run_one(engine, &va, &vb, &cfg, query_seed);
            let run_c = |engine: &TescEngine<'_, CompressedCsr>| {
                run_one(engine, &va, &vb, &cfg, query_seed)
            };
            let reference = run(&TescEngine::new(graph).with_density_kernel(BfsKernel::Scalar));
            let (plain_streamed, comp_streamed) = streamed_bytes(graph, &compressed, &probes, h);

            for kernel in [BfsKernel::Scalar, BfsKernel::Bitset, BfsKernel::Multi] {
                let plain_engine = TescEngine::new(graph).with_density_kernel(kernel);
                let comp_engine = TescEngine::new(&compressed).with_density_kernel(kernel);
                for (result, substrate) in [
                    (run(&plain_engine), "plain"),
                    (run_c(&comp_engine), "compressed"),
                ] {
                    let same = result == reference
                        && result.z().to_bits() == reference.z().to_bits()
                        && result.statistic().to_bits() == reference.statistic().to_bits();
                    if !same {
                        identity_ok = false;
                        eprintln!(
                            "IDENTITY FAIL: n={n} h={h} kernel={kernel} {substrate} diverges \
                             from the plain scalar reference"
                        );
                    }
                }
                let plain_s = harness.bench(&format!("scale/n={n}/h={h}/{kernel}/plain"), || {
                    run(&plain_engine)
                });
                let comp_s = harness
                    .bench(&format!("scale/n={n}/h={h}/{kernel}/compressed"), || {
                        run_c(&comp_engine)
                    });
                let speedup = plain_s / comp_s.max(1e-12);
                println!(
                    "n={n} h={h} {kernel:<6}  plain {:>10.1} us  compressed {:>10.1} us  \
                     speedup {speedup:.2}x  streamed {plain_streamed} -> {comp_streamed} B",
                    plain_s * 1e6,
                    comp_s * 1e6,
                );
                harness.record_row(
                    &format!("scale/n={n}/h={h}/{kernel}"),
                    &[
                        ("plain_ns", plain_s * 1e9),
                        ("compressed_ns", comp_s * 1e9),
                        ("speedup", speedup),
                        ("plain_streamed_bytes", plain_streamed as f64),
                        ("compressed_streamed_bytes", comp_streamed as f64),
                    ],
                );
                if n == n_max && h == h_max {
                    // Best kernel's ratio at the bandwidth-bound row
                    // (NaN-poisoned start, so the first row always wins).
                    gated_speedup = if gated_speedup.is_nan() {
                        speedup
                    } else {
                        gated_speedup.max(speedup)
                    };
                }
            }
        }
    }

    println!("identity gate: {}", if identity_ok { "ok" } else { "FAIL" });
    let mut failed = !identity_ok;
    if !disk_ok {
        eprintln!("FAIL: .tgraph on-disk ratio under the --gate-disk floor of {gate_disk}");
        failed = true;
    }
    if gate_speedup > 0.0 && (gated_speedup.is_nan() || gated_speedup < gate_speedup) {
        eprintln!(
            "FAIL: best compressed speedup {gated_speedup:.2}x at n={n_max}/h={h_max} \
             is under the --gate-speedup floor of {gate_speedup}"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
