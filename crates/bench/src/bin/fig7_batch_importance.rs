//! **Figure 7** — batched importance sampling: recall as a function of
//! the number of reference nodes drawn per peeked vicinity (`k`), for
//! the four scenarios the paper plots:
//!
//! * positive, h = 3, noise 0.1
//! * positive, h = 2, noise 0
//! * negative, h = 3, noise 0
//! * negative, h = 2, noise 0.5
//!
//! Paper shape to reproduce: recall stays high for a long range of `k`
//! at h = 3 (bigger vicinities tolerate more draws before the sample
//! gets trapped in local correlations) and degrades sooner at h = 2.
//!
//! Output: `# `-prefixed provenance lines, then one row per cell:
//! `direction h noise k recall mean_z`.
//!
//! Run: `cargo run --release -p tesc_bench --bin fig7_batch_importance`

use tesc::{SamplerKind, VicinityIndex};
use tesc_bench::recall::{run_cell, Direction, SweepSpec};
use tesc_bench::{dblp_scenario, flag, fmt_recall, parse_flags, scale_flag};

const USAGE: &str = "fig7_batch_importance — recall vs per-vicinity batch size (Fig. 7)
  --scale small|medium|large   graph scale (default medium)
  --pairs N                    planted pairs per cell (default 20)
  --sample-size N              reference nodes per test (default 900)
  --seed N                     base seed (default 42)";

fn main() {
    let flags = parse_flags(USAGE);
    let scale = scale_flag(&flags);
    let pairs = flag(&flags, "pairs", 20usize);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building DBLP-like scenario ({scale:?})...");
    let s = dblp_scenario(scale, seed);
    eprintln!("building vicinity index (h ≤ 3)...");
    let idx = VicinityIndex::build(&s.graph, 3);

    let curves: [(Direction, u32, f64); 4] = [
        (Direction::Positive, 3, 0.1),
        (Direction::Positive, 2, 0.0),
        (Direction::Negative, 3, 0.0),
        (Direction::Negative, 2, 0.5),
    ];
    let ks = [1usize, 3, 5, 10, 15, 20];

    println!("# Figure 7: batched importance sampling, recall vs k");
    println!(
        "# event size = {}, n = {sample_size}, pairs = {pairs}",
        scale.event_size()
    );
    println!(
        "{:<10} {:<4} {:<6} {:<4} {:>7} {:>9}",
        "direction", "h", "noise", "k", "recall", "mean_z"
    );
    for (dir, h, noise) in curves {
        for &k in &ks {
            let spec = SweepSpec {
                h,
                noise,
                event_size: scale.event_size(),
                sample_size,
                pairs,
                seed: seed
                    .wrapping_add((h as u64) << 32)
                    .wrapping_add((noise * 1000.0) as u64)
                    .wrapping_add((k as u64) << 16),
                samplers: vec![SamplerKind::Importance { batch_size: k }],
            };
            let cell = &run_cell(&s.graph, Some(&idx), dir, &spec)[0];
            println!(
                "{:<10} {:<4} {:<6} {:<4} {:>7} {:>9.2}",
                format!("{dir:?}"),
                h,
                noise,
                k,
                fmt_recall(cell.recall),
                cell.mean_z
            );
        }
    }
}
