//! **Figure 10** — micro-benchmarks of the two per-test hot phases:
//!
//! * (a) one `h`-hop BFS search vs graph size (the event-density
//!   computation of Eq. 2), h = 1, 2, 3 — the paper reports 5.2 ms for
//!   a 3-hop BFS on 20M nodes, vs 170 ms for the hitting-time
//!   alternative (which we also measure for the comparison claim);
//! * (b) z-score computation vs number of reference nodes
//!   (the `O(n²)` pair enumeration + tie-corrected variance) — the
//!   paper reports 4 ms at n = 1000.
//!
//! Output: two `# `-headed blocks — (a) mean BFS milliseconds per
//! `h graph_nodes` cell, (b) mean z-score-computation milliseconds per
//! reference-sample size `n` for the exact and merge-sort counters.
//!
//! Run: `cargo run --release -p tesc_bench --bin fig10_micro`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc::{BfsScratch, NodeMask};
use tesc_baselines::hitting_time::truncated_hitting_time;
use tesc_bench::{flag, mean_ms, parse_flags, time};
use tesc_datasets::twitter_like;
use tesc_graph::perturb::sample_nodes;
use tesc_stats::kendall::{kendall_tau, KendallMethod};

const USAGE: &str = "fig10_micro — h-hop BFS and z-score timing (Fig. 10)
  --max-nodes N  largest Twitter-like graph (default 400000)
  --sources N    BFS sources sampled per point (default 100)
  --seed N       base seed (default 42)";

fn main() {
    let flags = parse_flags(USAGE);
    let max_nodes = flag(&flags, "max-nodes", 400_000usize);
    let sources = flag(&flags, "sources", 100usize);
    let seed = flag(&flags, "seed", 42u64);

    // ---- (a) h-hop BFS time vs graph size -------------------------
    let sizes: Vec<usize> = [1usize, 2, 4, 8]
        .iter()
        .map(|d| max_nodes / 8 * d)
        .collect();
    println!("# Figure 10(a): mean time (ms) of one h-hop BFS vs graph size");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>16}",
        "nodes", "h=1", "h=2", "h=3", "hitting_time"
    );
    for &n in &sizes {
        eprintln!("building Twitter-like graph ({n} nodes)...");
        let g = twitter_like(n, &mut StdRng::seed_from_u64(seed));
        let mut scratch = BfsScratch::new(g.num_nodes());
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let srcs = sample_nodes(&g, sources, &mut rng);
        let mut per_h = [0.0f64; 3];
        for h in [1u32, 2, 3] {
            let mut ts = Vec::with_capacity(srcs.len());
            for &s in &srcs {
                let ((), d) = time(|| {
                    scratch.visit_h_vicinity(&g, &[s], h, |_, _| {});
                });
                ts.push(d);
            }
            per_h[h as usize - 1] = mean_ms(&ts);
        }
        // Hitting-time comparison (Sec. 5.3 claim): one source, walk
        // budget typical of truncated-hitting-time approximations.
        let targets = NodeMask::from_nodes(g.num_nodes(), &sample_nodes(&g, 100, &mut rng));
        let mut ts = Vec::with_capacity(srcs.len().min(20));
        for &s in srcs.iter().take(20) {
            let ((), d) = time(|| {
                let _ = truncated_hitting_time(&g, s, &targets, 10, 1000, &mut rng);
            });
            ts.push(d);
        }
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>16.3}",
            n,
            per_h[0],
            per_h[1],
            per_h[2],
            mean_ms(&ts)
        );
    }

    // ---- (b) z-score computation time vs n ------------------------
    println!("# Figure 10(b): z-score computation time (ms) vs number of reference nodes");
    println!("{:<8} {:>12} {:>14}", "n", "exact_O(n^2)", "merge_O(nlogn)");
    let mut rng = StdRng::seed_from_u64(seed + 2);
    for n in (100..=1000).step_by(100) {
        // Density-like vectors with plenty of ties (quantized ratios).
        let sa: Vec<f64> = (0..n)
            .map(|_| (rng.gen_range(0..40) as f64) / 40.0)
            .collect();
        let sb: Vec<f64> = (0..n)
            .map(|_| (rng.gen_range(0..40) as f64) / 40.0)
            .collect();
        let reps = 20;
        let mut t_exact = Vec::with_capacity(reps);
        let mut t_merge = Vec::with_capacity(reps);
        for _ in 0..reps {
            let ((), d) = time(|| {
                let _ = kendall_tau(&sa, &sb, KendallMethod::Exact);
            });
            t_exact.push(d);
            let ((), d) = time(|| {
                let _ = kendall_tau(&sa, &sb, KendallMethod::MergeSort);
            });
            t_merge.push(d);
        }
        println!(
            "{:<8} {:>12.3} {:>14.3}",
            n,
            mean_ms(&t_exact),
            mean_ms(&t_merge)
        );
    }
}
