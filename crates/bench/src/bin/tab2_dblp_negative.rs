//! **Table 2** — five keyword pairs exhibiting high 3-hop *negative*
//! TESC on the DBLP(-like) graph, most of them with **positive** TC.
//!
//! Paper shape to reproduce: strongly negative TESC at every level
//! (|z| shrinking as h grows, since larger vicinities blur the
//! separation), while the TC column is positive for most pairs —
//! "although some authors have used both two keywords, they are far
//! away in the graph space".
//!
//! Output: `# `-prefixed provenance lines, then one row per keyword
//! pair: `pair h=1 h=2 h=3 TC` (all z-scores).
//!
//! Run: `cargo run --release -p tesc_bench --bin tab2_dblp_negative`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{Tail, TescConfig, TescEngine};
use tesc_baselines::transaction_correlation;
use tesc_bench::{dblp_scenario, flag, parse_flags, scale_flag};

const USAGE: &str = "tab2_dblp_negative — Table 2: 3-hop negative keyword pairs (DBLP-like)
  --scale small|medium|large   graph scale (default medium)
  --sample-size N              reference nodes per test (default 900)
  --seed N                     base seed (default 42)";

/// Table 2 pairs with planting parameters (#communities per side,
/// occurrences per community, generalist authors carrying both).
const PAIRS: [(&str, usize, usize, usize); 5] = [
    ("Texture vs. Java", 12, 12, 24),
    ("GPU vs. RDF", 12, 11, 18),
    ("SQL vs. Calibration", 11, 11, 8),
    ("Hardware vs. Ontology", 10, 11, 22),
    ("Transaction vs. Camera", 10, 10, 25),
];

fn main() {
    let flags = parse_flags(USAGE);
    let scale = scale_flag(&flags);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building DBLP-like scenario ({scale:?})...");
    let s = dblp_scenario(scale, seed);
    let engine = TescEngine::new(&s.graph);

    println!("# Table 2: keyword pairs with high 3-hop negative correlation (DBLP-like)");
    println!("# all scores are z-scores; TESC via Batch BFS, n = {sample_size}");
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>9}",
        "pair", "h=1", "h=2", "h=3", "TC"
    );
    for (i, (name, comms, per_comm, shared)) in PAIRS.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed + i as u64 + 1);
        let (va, vb) = s.plant_negative_keyword_pair(*comms, *per_comm, *shared, &mut rng);
        let mut zs = [0.0f64; 3];
        for h in [1u32, 2, 3] {
            let cfg = TescConfig::new(h)
                .with_sample_size(sample_size)
                .with_tail(Tail::Lower);
            let mut trng = StdRng::seed_from_u64(seed + 200 + i as u64 * 3 + h as u64);
            zs[h as usize - 1] = engine
                .test(&va, &vb, &cfg, &mut trng)
                .map(|r| r.z())
                .unwrap_or(f64::NAN);
        }
        let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
        println!(
            "{:<26} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            name, zs[0], zs[1], zs[2], tc.z
        );
    }
}
