//! **Figure 5** — recall of the three reference-node sampling
//! algorithms on simulated *positively* correlated event pairs, for
//! vicinity levels h = 1, 2, 3 and increasing noise.
//!
//! Paper shape to reproduce: curves start at 1.00 and fall with noise;
//! Batch BFS is the most accurate, Importance sampling close behind
//! (especially h = 1, 2), Whole-graph sampling good but noisier; h = 3
//! positives are harder to break than h = 1 (the right-hand subfigure
//! needs noise 0.7 to collapse, the left-hand one 0.3).
//!
//! Output: `# `-prefixed provenance lines, then one whitespace-aligned
//! row per cell: `h noise sampler recall mean_z` (recall in 0.00-1.00).
//!
//! Run: `cargo run --release -p tesc_bench --bin fig5_recall_positive`

use tesc::{SamplerKind, VicinityIndex};
use tesc_bench::recall::{run_cell, Direction, SweepSpec};
use tesc_bench::{
    dblp_scenario, flag, fmt_recall, importance_batch_size, parse_flags, positive_noise_grid,
    scale_flag,
};

const USAGE: &str = "fig5_recall_positive — recall vs noise, positive pairs (Fig. 5)
  --scale small|medium|large   graph scale (default medium)
  --pairs N                    planted pairs per cell (default 20; paper uses 100)
  --sample-size N              reference nodes per test (default 900)
  --seed N                     base seed (default 42)";

fn main() {
    let flags = parse_flags(USAGE);
    let scale = scale_flag(&flags);
    let pairs = flag(&flags, "pairs", 20usize);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building DBLP-like scenario ({scale:?})...");
    let s = dblp_scenario(scale, seed);
    eprintln!(
        "graph: {} nodes, {} edges, avg degree {:.1}",
        s.graph.num_nodes(),
        s.graph.num_edges(),
        s.graph.average_degree()
    );
    eprintln!("building vicinity index (h ≤ 3)...");
    let idx = VicinityIndex::build(&s.graph, 3);

    println!("# Figure 5: recall vs noise, positive pairs, alpha=0.05 one-tailed");
    println!(
        "# event size = {}, n = {sample_size}, pairs = {pairs}",
        scale.event_size()
    );
    println!(
        "{:<4} {:<6} {:<18} {:>7} {:>9}",
        "h", "noise", "sampler", "recall", "mean_z"
    );
    for h in [1u32, 2, 3] {
        for &noise in positive_noise_grid(h) {
            let spec = SweepSpec {
                h,
                noise,
                event_size: scale.event_size(),
                sample_size,
                pairs,
                seed: seed
                    .wrapping_add((h as u64) << 32)
                    .wrapping_add((noise * 1000.0) as u64),
                samplers: vec![
                    SamplerKind::BatchBfs,
                    SamplerKind::Importance {
                        batch_size: importance_batch_size(h),
                    },
                    SamplerKind::WholeGraph,
                ],
            };
            for cell in run_cell(&s.graph, Some(&idx), Direction::Positive, &spec) {
                println!(
                    "{:<4} {:<6} {:<18} {:>7} {:>9.2}",
                    h,
                    noise,
                    cell.sampler.to_string(),
                    fmt_recall(cell.recall),
                    cell.mean_z
                );
            }
        }
    }
}
