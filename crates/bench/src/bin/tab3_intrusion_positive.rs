//! **Table 3** — five alert pairs exhibiting high 1-hop positive TESC
//! on the Intrusion(-like) graph, contrasted with their TC scores.
//!
//! Paper shape to reproduce: all pairs strongly positive under TESC
//! while TC is small or even negative — "attacks consume bandwidth",
//! so attackers alternate related techniques across the hosts of a
//! subnet and the node sets barely overlap.
//!
//! Output: `# `-prefixed provenance lines, then one row per alert
//! pair: `pair TESC_h1 TC` (z-scores).
//!
//! Run: `cargo run --release -p tesc_bench --bin tab3_intrusion_positive`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{Tail, TescConfig, TescEngine};
use tesc_baselines::transaction_correlation;
use tesc_bench::{flag, parse_flags};
use tesc_datasets::{IntrusionConfig, IntrusionScenario};

const USAGE: &str = "tab3_intrusion_positive — Table 3: 1-hop positive alert pairs (Intrusion-like)
  --sample-size N   reference nodes per test (default 900)
  --seed N          base seed (default 42)";

/// Table 3 alert pairs with planting intensity (#shared subnets,
/// max hosts per subnet per alert).
const PAIRS: [(&str, usize, usize); 5] = [
    ("Ping Sweep vs. SMB Service Sweep", 30, 12),
    ("Ping Flood vs. ICMP Flood", 28, 11),
    ("Email Command Overflow vs. Email Pipe", 26, 10),
    ("HTML Hostname Overflow vs. HTML NullChar Evasion", 22, 9),
    ("Email Error vs. Email Pipe", 14, 8),
];

fn main() {
    let flags = parse_flags(USAGE);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building Intrusion-like scenario...");
    let s = IntrusionScenario::build(IntrusionConfig::default(), &mut StdRng::seed_from_u64(seed));
    eprintln!(
        "graph: {} nodes, {} edges, max degree {}",
        s.graph.num_nodes(),
        s.graph.num_edges(),
        s.graph.max_degree()
    );
    let engine = TescEngine::new(&s.graph);

    println!("# Table 3: alert pairs with high 1-hop positive correlation (Intrusion-like)");
    println!("# all scores are z-scores; TESC via Batch BFS, n = {sample_size}");
    println!("{:<50} {:>12} {:>9}", "pair", "TESC (h=1)", "TC");
    for (i, (name, subnets, max_hosts)) in PAIRS.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed + i as u64 + 1);
        let (va, vb) = s.plant_alternating_alert_pair(*subnets, *max_hosts, &mut rng);
        let cfg = TescConfig::new(1)
            .with_sample_size(sample_size)
            .with_tail(Tail::Upper);
        let mut trng = StdRng::seed_from_u64(seed + 300 + i as u64);
        let z = engine
            .test(&va, &vb, &cfg, &mut trng)
            .map(|r| r.z())
            .unwrap_or(f64::NAN);
        let tc = transaction_correlation(s.graph.num_nodes(), &va, &vb);
        println!("{:<50} {:>12.2} {:>9.2}", name, z, tc.z);
    }
}
