//! **Figure 9** — running time of the reference-node sampling
//! algorithms as `|V_{a∪b}|` grows, on the Twitter-like graph, for
//! h = 1, 2, 3.
//!
//! Paper shape to reproduce (Sec. 5.3): Batch BFS cost climbs steeply
//! with the number of event nodes while Importance sampling stays
//! nearly flat; Importance wins outright at h = 1; at h = 2, 3 Batch
//! BFS is preferable for small `|V_{a∪b}|` and Importance for large;
//! Whole-graph sampling is competitive only at h = 3 with very large
//! event sets ("we can process V_{a∪b} with 500K nodes on a graph with
//! 20M nodes in 1.5 s" — scaled down here).
//!
//! Only the sampling phase is timed, matching the paper's phase
//! accounting (Sec. 4.4); the `|V^h_v|` index is the offline input of
//! Sec. 4.2 and is built per event set with `build_for_nodes`.
//!
//! Output: `# `-prefixed provenance line, then one row per event-set
//! size: `h |Va∪b| Batch_BFS Importance WholeGraph index_build`, all
//! times mean milliseconds per sampling round.
//!
//! Run: `cargo run --release -p tesc_bench --bin fig9_sampler_scaling`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::sampler::{batch_bfs_sample, importance_sample, whole_graph_sample};
use tesc::{BfsScratch, NodeMask, VicinityIndex};
use tesc_bench::{flag, importance_batch_size, mean_ms, parse_flags, time};
use tesc_datasets::twitter_like;
use tesc_graph::perturb::sample_nodes;

const USAGE: &str = "fig9_sampler_scaling — sampler running time vs |Va∪b| (Fig. 9)
  --nodes N        Twitter-like graph size (default 200000; paper: 20M)
  --reps N         repetitions per point (default 3; paper: 50)
  --sample-size N  reference nodes per run (default 900)
  --seed N         base seed (default 42)";

fn main() {
    let flags = parse_flags(USAGE);
    let nodes = flag(&flags, "nodes", 200_000usize);
    let reps = flag(&flags, "reps", 3usize);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building Twitter-like graph ({nodes} nodes)...");
    let g = twitter_like(nodes, &mut StdRng::seed_from_u64(seed));
    eprintln!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());
    let mut scratch = BfsScratch::new(g.num_nodes());

    // Event-set sizes: the paper sweeps 1k..500k on 20M nodes. A 200k
    // graph cannot host reference populations of `n = 900` at the
    // paper's smallest *fractions*, so we sweep 0.5%..25% instead —
    // the regime where the Batch-BFS-vs-Importance crossover lives.
    let fracs = [0.005, 0.01, 0.025, 0.05, 0.125, 0.25];
    let sizes: Vec<usize> = fracs
        .iter()
        .map(|f| ((nodes as f64 * f) as usize).max(1000))
        .collect();

    println!("# Figure 9: sampler running time (ms) vs |Va∪b|, n = {sample_size}, {reps} reps");
    println!(
        "{:<4} {:>10} {:>14} {:>14} {:>14} {:>16}",
        "h", "|Va∪b|", "Batch_BFS", "Importance", "WholeGraph", "index_build"
    );
    for h in [1u32, 2, 3] {
        for &size in &sizes {
            let mut t_batch = Vec::new();
            let mut t_imp = Vec::new();
            let mut t_whole = Vec::new();
            let mut t_index = Vec::new();
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(
                    seed + rep as u64 + ((size as u64) << 20) + ((h as u64) << 50),
                );
                let events = sample_nodes(&g, size, &mut rng);
                let union_mask = NodeMask::from_nodes(g.num_nodes(), &events);

                let ((), d) = time(|| {
                    let _ = batch_bfs_sample(&g, &mut scratch, &events, h, sample_size, &mut rng);
                });
                t_batch.push(d);

                // Offline index (reported separately, not part of the
                // sampling phase — Sec. 4.2).
                let (idx, d) = time(|| VicinityIndex::build_for_nodes(&g, &events, h));
                t_index.push(d);

                let ((), d) = time(|| {
                    let _ = importance_sample(
                        &g,
                        &mut scratch,
                        &events,
                        &idx,
                        h,
                        sample_size,
                        importance_batch_size(h),
                        sample_size * 64,
                        &mut rng,
                    );
                });
                t_imp.push(d);

                let ((), d) = time(|| {
                    let _ =
                        whole_graph_sample(&g, &mut scratch, &union_mask, h, sample_size, &mut rng);
                });
                t_whole.push(d);
            }
            println!(
                "{:<4} {:>10} {:>14.2} {:>14.2} {:>14.2} {:>16.2}",
                h,
                size,
                mean_ms(&t_batch),
                mean_ms(&t_imp),
                mean_ms(&t_whole),
                mean_ms(&t_index)
            );
        }
    }
}
