//! **Figure 12** (beyond the paper) — incremental vicinity-index
//! maintenance vs. from-scratch rebuild under edge ingestion.
//!
//! The paper remarks that the offline `|V^h_v|` index "can be
//! efficiently updated as the graph changes" (Sec. 4.2); the versioned
//! `TescContext` is built on exactly that path. This binary quantifies
//! the claim: starting from a DBLP-like graph, ingest batches of
//! random new edges and time
//!
//! * `ingest` — `TescContext::add_edges` (CSR rebuild + per-node
//!   refresh of the dirty region only), and
//! * `rebuild` — a full `VicinityIndex::build` over the new graph,
//!
//! verifying after every batch that both routes produce identical
//! indexes. Output format (TSV-ish, one row per batch size):
//!
//! ```text
//! h  batch_edges  ingest_ms  rebuild_ms  speedup  identical
//! 2  16           3.1        412.7       133.1    yes
//! ```
//!
//! `speedup` > 1 means incremental ingestion beats rebuilding; the gap
//! narrows as the batch grows (the dirty region approaches the whole
//! graph) — the crossover is the interesting part of the chart.
//!
//! Run: `cargo run --release -p tesc_bench --bin fig12_ingest_vs_rebuild`
//! Flags: `--scale small|medium|large`, `--h H`, `--rounds N`,
//! `--seed N`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesc::context::TescContext;
use tesc::EventStore;
use tesc_bench::{dblp_scenario, flag, mean_ms, parse_flags, scale_flag, time};
use tesc_graph::{NodeId, VicinityIndex};

const USAGE: &str = "fig12_ingest_vs_rebuild — incremental index update vs full rebuild
  --scale small|medium|large   graph scale (default small)
  --h H                        vicinity level of the index (default 2)
  --rounds N                   ingest rounds averaged per batch size (default 3)
  --seed N                     base seed (default 42)";

fn main() {
    let flags = parse_flags(USAGE);
    let scale = match flags.get("scale") {
        Some(_) => scale_flag(&flags),
        None => tesc_bench::Scale::Small,
    };
    let h = flag(&flags, "h", 2u32);
    let rounds = flag(&flags, "rounds", 3usize).max(1);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building DBLP-like scenario ({scale:?}) and its |V^h_v| index (h = {h})...");
    let s = dblp_scenario(scale, seed);
    let n = s.graph.num_nodes();

    println!("h  batch_edges  ingest_ms  rebuild_ms  speedup  identical");
    let mut all_identical = true;
    for batch_edges in [1usize, 4, 16, 64, 256] {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(batch_edges as u64));
        let mut ingest_times = Vec::with_capacity(rounds);
        let mut rebuild_times = Vec::with_capacity(rounds);
        let mut identical = true;
        for _ in 0..rounds {
            // Fresh context per round so every measurement ingests into
            // the same baseline graph.
            let ctx = TescContext::new(s.graph.clone(), EventStore::new(), h);
            let delta: Vec<(NodeId, NodeId)> = std::iter::repeat_with(|| {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                (u, v)
            })
            .filter(|&(u, v)| u != v)
            .take(batch_edges)
            .collect();
            let (snap, ingest) = time(|| ctx.add_edges(&delta).expect("valid delta"));
            let (full, rebuild) = time(|| VicinityIndex::build(snap.graph(), h));
            identical &= *snap.vicinity() == full;
            ingest_times.push(ingest);
            rebuild_times.push(rebuild);
        }
        let (im, rm) = (mean_ms(&ingest_times), mean_ms(&rebuild_times));
        println!(
            "{h}  {batch_edges:<11}  {im:<9.1}  {rm:<10.1}  {:<7.1}  {}",
            rm / im.max(1e-9),
            if identical { "yes" } else { "NO" }
        );
        all_identical &= identical;
    }
    if !all_identical {
        eprintln!("FAIL: incremental index diverged from the from-scratch rebuild");
        std::process::exit(1);
    }
}
