//! **Figure 11** (beyond the paper) — thread scaling of the parallel
//! batch engine on the Fig. 8 density workload.
//!
//! The paper's evaluation is single-threaded; this binary charts what
//! the batch layer adds: plant a set of positive DBLP keyword pairs,
//! run the whole batch at 1/2/4/8 worker threads, and report wall
//! time, throughput and speedup versus the serial run. It also
//! verifies the engine's core determinism contract on every row: the
//! z-scores at T threads are bit-identical to the 1-thread run.
//!
//! Output format (one row per thread count, TSV-ish):
//!
//! ```text
//! threads  wall_ms  tests_per_s  speedup  identical
//! 1        812.4    19.7         1.00     yes
//! 4        221.9    72.1         3.66     yes
//! ```
//!
//! Run: `cargo run --release -p tesc_bench --bin fig11_batch_scaling`
//! Flags: `--scale small|medium|large`, `--pairs N`, `--sample-size N`,
//! `--h H`, `--seed N`, `--max-threads T`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::batch::{run_batch, BatchRequest, EventPair};
use tesc::{BfsScratch, TescConfig, TescEngine};
use tesc_bench::{dblp_scenario, flag, parse_flags, scale_flag};
use tesc_events::simulate::positive_pair;
use tesc_stats::Tail;

const USAGE: &str = "fig11_batch_scaling — batch-engine thread scaling (beyond the paper)
  --scale small|medium|large   graph scale (default medium)
  --pairs N                    planted pairs in the batch (default 32)
  --sample-size N              reference nodes per test (default 300)
  --h H                        vicinity level (default 2)
  --seed N                     base seed (default 42)
  --max-threads T              highest thread count to sweep (default 8)";

fn main() {
    let flags = parse_flags(USAGE);
    let scale = scale_flag(&flags);
    let num_pairs = flag(&flags, "pairs", 32usize);
    let sample_size = flag(&flags, "sample-size", 300usize);
    let h = flag(&flags, "h", 2u32);
    let seed = flag(&flags, "seed", 42u64);
    let max_threads = flag(&flags, "max-threads", 8usize);

    eprintln!("building DBLP-like scenario ({scale:?})...");
    let s = dblp_scenario(scale, seed);
    let g = &s.graph;
    let mut scratch = BfsScratch::new(g.num_nodes());

    eprintln!("planting {num_pairs} positive pairs at h = {h}...");
    let pairs: Vec<EventPair> = (0..num_pairs)
        .filter_map(|t| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1000 + t as u64));
            positive_pair(g, &mut scratch, scale.event_size(), h, &mut rng)
                .ok()
                .map(|lp| {
                    let p = lp.to_pair();
                    EventPair::new(format!("pair{t}"), p.a, p.b)
                })
        })
        .collect();

    let cfg = TescConfig::new(h)
        .with_sample_size(sample_size)
        .with_tail(Tail::Upper);
    let engine = TescEngine::new(g);
    let base_req = BatchRequest::new(cfg).with_seed(seed).with_pairs(pairs);

    println!(
        "# Figure 11: batch thread scaling — {} pairs, n = {sample_size}, h = {h}, |V| = {}, cores = {}",
        base_req.pairs.len(),
        g.num_nodes(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    println!(
        "{:<8} {:>9} {:>12} {:>8} {:>10}",
        "threads", "wall_ms", "tests_per_s", "speedup", "identical"
    );

    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        thread_counts.push(t);
        t *= 2;
    }

    let mut baseline: Option<(f64, Vec<f64>)> = None;
    for &threads in &thread_counts {
        let report = run_batch(&engine, &base_req.clone().with_threads(threads));
        let wall_ms = report.wall.as_secs_f64() * 1e3;
        let zs: Vec<f64> = report
            .outcomes
            .iter()
            .map(|o| o.result.as_ref().map(|r| r.z()).unwrap_or(f64::NAN))
            .collect();
        let (base_ms, identical) = match &baseline {
            None => {
                baseline = Some((wall_ms, zs));
                (wall_ms, true)
            }
            Some((base_ms, base_zs)) => {
                let same = base_zs
                    .iter()
                    .zip(&zs)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                (*base_ms, same)
            }
        };
        println!(
            "{:<8} {:>9.1} {:>12.1} {:>8.2} {:>10}",
            threads,
            wall_ms,
            report.tests_per_sec(),
            base_ms / wall_ms,
            if identical { "yes" } else { "NO" },
        );
    }
}
