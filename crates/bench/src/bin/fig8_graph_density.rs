//! **Figure 8** — impact of graph density on the correlation results:
//! plant noiseless pairs on the original graph, then randomly remove
//! (a) or add (b) edges and re-run the Batch BFS test.
//!
//! Paper shape to reproduce: removing edges breaks *positive* pairs
//! (distances stretch) while negative recall stays at 1; adding edges
//! breaks *negative* pairs (everything moves closer) while positive
//! recall stays at 1. 1-hop positives resist removal longest (linked
//! pairs at distance 0 survive any removal).
//!
//! Output: `# `-prefixed provenance lines, then two column blocks
//! (removal sweep, addition sweep), one row per cell:
//! `direction h edges_removed|edges_added recall`.
//!
//! Run: `cargo run --release -p tesc_bench --bin fig8_graph_density`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesc::{BfsScratch, Tail, TescConfig, TescEngine};
use tesc_bench::{dblp_scenario, flag, fmt_recall, parse_flags, scale_flag};
use tesc_events::simulate::{negative_pair, positive_pair, EventPair};
use tesc_graph::perturb::{add_random_edges, remove_random_edges};

const USAGE: &str = "fig8_graph_density — recall vs edges removed/added (Fig. 8)
  --scale small|medium|large   graph scale (default medium)
  --pairs N                    planted pairs per cell (default 20)
  --sample-size N              reference nodes per test (default 900)
  --seed N                     base seed (default 42)";

fn main() {
    let flags = parse_flags(USAGE);
    let scale = scale_flag(&flags);
    let pairs = flag(&flags, "pairs", 20usize);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building DBLP-like scenario ({scale:?})...");
    let s = dblp_scenario(scale, seed);
    let g0 = &s.graph;
    let m = g0.num_edges();
    let mut scratch = BfsScratch::new(g0.num_nodes());

    // Plant the six noiseless pair sets on the ORIGINAL graph.
    let mut sets: Vec<(bool, u32, Vec<EventPair>)> = Vec::new();
    for h in [1u32, 2, 3] {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for t in 0..pairs {
            let ps = seed.wrapping_add((h as u64) << 24).wrapping_add(t as u64);
            let mut rng = StdRng::seed_from_u64(ps);
            if let Ok(lp) = positive_pair(g0, &mut scratch, scale.event_size(), h, &mut rng) {
                pos.push(lp.to_pair());
            }
            if let Ok(p) = negative_pair(
                g0,
                &mut scratch,
                scale.event_size(),
                scale.event_size(),
                h,
                &mut rng,
            ) {
                neg.push(p);
            }
        }
        sets.push((true, h, pos));
        sets.push((false, h, neg));
    }

    println!("# Figure 8: recall under random edge removal (a) / addition (b), Batch BFS");
    println!(
        "# |E| = {m}, event size = {}, n = {sample_size}, pairs = {pairs}",
        scale.event_size()
    );

    // (a) Removal sweep — paper removes up to all edges of DBLP.
    println!(
        "{:<10} {:<4} {:<14} {:>7}",
        "direction", "h", "edges_removed", "recall"
    );
    for frac in [0.0, 0.3, 0.6, 0.9] {
        let count = (m as f64 * frac) as usize;
        let g = if count == 0 {
            g0.clone()
        } else {
            remove_random_edges(g0, count, &mut StdRng::seed_from_u64(seed ^ 0xAAAA)).0
        };
        let engine = TescEngine::new(&g);
        for (is_pos, h, set) in &sets {
            let (tail, label) = if *is_pos {
                (Tail::Upper, "Positive")
            } else {
                (Tail::Lower, "Negative")
            };
            let mut hits = 0usize;
            let mut done = 0usize;
            for (t, pair) in set.iter().enumerate() {
                let cfg = TescConfig::new(*h)
                    .with_sample_size(sample_size)
                    .with_tail(tail);
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64) ^ 0x5555);
                if let Ok(res) = engine.test(&pair.a, &pair.b, &cfg, &mut rng) {
                    done += 1;
                    hits += res.outcome.is_significant() as usize;
                }
            }
            println!(
                "{:<10} {:<4} {:<14} {:>7}",
                label,
                h,
                count,
                fmt_recall(hits as f64 / done.max(1) as f64)
            );
        }
    }

    // (b) Addition sweep — paper adds up to ~14× the original edges.
    println!(
        "{:<10} {:<4} {:<14} {:>7}",
        "direction", "h", "edges_added", "recall"
    );
    for mult in [0.0, 2.0, 5.0, 14.0] {
        let count = (m as f64 * mult) as usize;
        let g = if count == 0 {
            g0.clone()
        } else {
            add_random_edges(g0, count, &mut StdRng::seed_from_u64(seed ^ 0xBBBB)).0
        };
        let engine = TescEngine::new(&g);
        for (is_pos, h, set) in &sets {
            let (tail, label) = if *is_pos {
                (Tail::Upper, "Positive")
            } else {
                (Tail::Lower, "Negative")
            };
            let mut hits = 0usize;
            let mut done = 0usize;
            for (t, pair) in set.iter().enumerate() {
                let cfg = TescConfig::new(*h)
                    .with_sample_size(sample_size)
                    .with_tail(tail);
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64) ^ 0x7777);
                if let Ok(res) = engine.test(&pair.a, &pair.b, &cfg, &mut rng) {
                    done += 1;
                    hits += res.outcome.is_significant() as usize;
                }
            }
            println!(
                "{:<10} {:<4} {:<14} {:>7}",
                label,
                h,
                count,
                fmt_recall(hits as f64 / done.max(1) as f64)
            );
        }
    }
}
