//! **Figure 6** — recall of the three sampling algorithms on simulated
//! *negatively* correlated event pairs, h = 1, 2, 3, increasing noise.
//!
//! Paper shape to reproduce: the mirror image of Fig. 5 — *low* level
//! negatives are the robust ones (h = 1 holds to noise 0.9 while h = 3
//! collapses by 0.5), because escaping `V^3_a` is nearly impossible
//! when it covers most of the graph.
//!
//! Output: `# `-prefixed provenance lines, then one whitespace-aligned
//! row per cell: `h noise sampler recall mean_z` (recall in 0.00-1.00).
//!
//! Run: `cargo run --release -p tesc_bench --bin fig6_recall_negative`

use tesc::{SamplerKind, VicinityIndex};
use tesc_bench::recall::{run_cell, Direction, SweepSpec};
use tesc_bench::{
    dblp_scenario, flag, fmt_recall, importance_batch_size, negative_noise_grid, parse_flags,
    scale_flag,
};

const USAGE: &str = "fig6_recall_negative — recall vs noise, negative pairs (Fig. 6)
  --scale small|medium|large   graph scale (default medium)
  --pairs N                    planted pairs per cell (default 20; paper uses 100)
  --sample-size N              reference nodes per test (default 900)
  --seed N                     base seed (default 42)";

fn main() {
    let flags = parse_flags(USAGE);
    let scale = scale_flag(&flags);
    let pairs = flag(&flags, "pairs", 20usize);
    let sample_size = flag(&flags, "sample-size", 900usize);
    let seed = flag(&flags, "seed", 42u64);

    eprintln!("building DBLP-like scenario ({scale:?})...");
    let s = dblp_scenario(scale, seed);
    eprintln!("building vicinity index (h ≤ 3)...");
    let idx = VicinityIndex::build(&s.graph, 3);

    println!("# Figure 6: recall vs noise, negative pairs, alpha=0.05 one-tailed");
    println!(
        "# event size = {}, n = {sample_size}, pairs = {pairs}",
        scale.event_size()
    );
    println!(
        "{:<4} {:<6} {:<18} {:>7} {:>9}",
        "h", "noise", "sampler", "recall", "mean_z"
    );
    for h in [1u32, 2, 3] {
        for &noise in negative_noise_grid(h) {
            let spec = SweepSpec {
                h,
                noise,
                event_size: scale.event_size(),
                sample_size,
                pairs,
                seed: seed
                    .wrapping_add((h as u64) << 32)
                    .wrapping_add((noise * 1000.0) as u64),
                samplers: vec![
                    SamplerKind::BatchBfs,
                    SamplerKind::Importance {
                        batch_size: importance_batch_size(h),
                    },
                    SamplerKind::WholeGraph,
                ],
            };
            for cell in run_cell(&s.graph, Some(&idx), Direction::Negative, &spec) {
                println!(
                    "{:<4} {:<6} {:<18} {:>7} {:>9.2}",
                    h,
                    noise,
                    cell.sampler.to_string(),
                    fmt_recall(cell.recall),
                    cell.mean_z
                );
            }
        }
    }
}
