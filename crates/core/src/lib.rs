//! # TESC — Two-Event Structural Correlation on graphs
//!
//! A from-scratch Rust implementation of
//! *Measuring Two-Event Structural Correlations on Graphs*
//! (Ziyu Guan, Xifeng Yan, Lance M. Kaplan; PVLDB 5(11), VLDB 2012).
//!
//! Given two events `a` and `b` occurring on the nodes of a graph, the
//! TESC test decides whether the events **attract** or **repulse** each
//! other within `h`-hop neighborhoods:
//!
//! 1. Sample `n` *reference nodes* uniformly from `V^h_{a∪b}` — the set
//!    of nodes that can "see" at least one occurrence within `h` hops.
//! 2. For each reference node `r`, measure the densities
//!    `s^h_a(r) = |V_a ∩ V^h_r| / |V^h_r|` and likewise for `b` (Eq. 2).
//! 3. Compute Kendall's τ over all reference-node pairs (Eq. 4) and the
//!    z-score from τ's asymptotic normality under independence
//!    (Eq. 5–7, tie-corrected).
//!
//! # Quick start
//!
//! ```
//! use tesc::{TescConfig, TescEngine, SamplerKind};
//! use tesc_graph::generators::grid;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = grid(30, 30);
//! let engine = TescEngine::new(&g);
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // Two events occupying the same corner of the grid: attraction.
//! let va: Vec<u32> = (0..40).collect();
//! let vb: Vec<u32> = (10..50).collect();
//!
//! let cfg = TescConfig::new(1).with_sample_size(200);
//! let result = engine.test(&va, &vb, &cfg, &mut rng).unwrap();
//! assert!(result.outcome.z > 0.0);
//! ```
//!
//! # Modules
//!
//! * [`density`] — Eq. 2 event densities, one BFS per reference node,
//!   with a pooled parallel fan-out for the per-test hot loop.
//! * [`sampler`] — the reference-node samplers of Sec. 4: Batch BFS
//!   (Alg. 1), rejection sampling, importance sampling (Alg. 2, with
//!   the batched variant of Sec. 5.2.2) and whole-graph sampling
//!   (Alg. 3).
//! * [`engine`] — the end-to-end statistical test (Sec. 3).
//! * [`batch`] — the parallel batch engine: run many tests against one
//!   shared graph/vicinity index with deterministic per-test RNG
//!   streams (bit-identical to serial execution).
//! * [`planner`] — the pair-set query planner: stage many tests as
//!   plan → sample → **fused multi-event density** → scatter →
//!   correlate, so a pair set sharing events runs ONE density BFS per
//!   distinct reference node instead of one per (pair, node).
//! * [`rank`] — top-K event-pair ranking over the planner:
//!   content-seeded (permutation-invariant) scoring with a sound
//!   significance-budget early exit for `--top-k` runs.
//! * [`anytime`] — the progressive ranking executor behind
//!   `RankMode::Anytime`: score pairs on a small sample prefix,
//!   confidence-interval the projected full-sample score, and only
//!   escalate (geometric doubling, re-entering the planner per round)
//!   while the interval straddles the top-K cutoff; `eps = 0` is
//!   bit-identical to exact.
//! * [`cache`] — the cross-pair density cache: memoized
//!   `(event, node, h)` vicinity counts so batches over pair lists
//!   sharing an event do the shared BFS work once.
//! * [`context`] — the versioned [`context::TescContext`]: immutable
//!   `Arc` snapshots of graph + vicinity index + event store with
//!   incremental ingestion (`add_edges`, `add_event_occurrences`) —
//!   readers pin a consistent version while writers publish the next.
//! * [`serve`] — the `tesc-serve` daemon: a std-only HTTP/1.1 server
//!   over a [`context::TescContext`] (bounded worker pool, admission
//!   control, concurrent snapshot-pinned queries, serialized
//!   ingestion, per-endpoint metrics).
//! * [`persist`] — crash-safe persistence for the context: versioned
//!   checksummed snapshots + a CRC-framed ingestion WAL, fsync'd
//!   before publish, with snapshot-fallback recovery and fault
//!   injection for testing it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anytime;
pub mod batch;
pub mod cache;
pub mod context;
pub mod density;
pub mod engine;
pub mod intensity;
pub mod persist;
pub mod planner;
pub mod rank;
pub mod sampler;
pub mod serve;

pub use anytime::{escalation_schedule, ANYTIME_FLOOR};
pub use batch::{run_batch, run_batch_budgeted, BatchReport, BatchRequest, EventPair};
pub use cache::{DensityCache, EventKey};
pub use context::{IngestError, MemoryStats, Snapshot, TescContext};
pub use engine::{Statistic, TescConfig, TescEngine, TescError, TescResult};
pub use persist::{PersistError, StoreOptions};
pub use planner::{FusedDensities, PairSetPlan};
pub use rank::{
    content_seed, direction_score, rank_pairs, rank_pairs_budgeted, RankEntry, RankMode,
    RankReport, RankRequest,
};
pub use sampler::SamplerKind;

// Re-export the pieces of the public API that come from substrates so
// downstream users need only depend on `tesc`.
pub use tesc_events::{simulate, EventId, EventStore, EventStoreError, NodeMask};
pub use tesc_graph::{
    BfsKernel, BfsScratch, Budget, CsrGraph, EdgeError, GraphBuilder, Interrupted, NodeId,
    RelabeledGraph, Relabeling, VicinityIndex,
};
pub use tesc_stats::{SignificanceLevel, Tail, TestOutcome};
