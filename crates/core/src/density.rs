//! Event densities in reference-node vicinities (Eq. 2 of the paper).
//!
//! `s^h_a(r) = |V_a ∩ V^h_r| / |V^h_r|` — the occurrence count
//! normalized by the vicinity's node count, the graph analogue of
//! density per unit area. One `h`-hop BFS per reference node collects
//! every count the test needs (size, `a` hits, `b` hits, union hits),
//! so the density phase costs exactly `n` BFS searches.
//!
//! The `n` searches are independent, which makes this the test's
//! embarrassingly parallel hot path: [`density_vectors_pooled`] fans
//! the reference nodes out over scoped worker threads, each with its
//! own [`BfsScratch`] checked out of a shared [`ScratchPool`], and is
//! bit-identical to the serial [`density_vectors`] (no RNG is involved
//! and every output slot is written by exactly one worker).

use crate::cache::{CachedCount, DensityCache, EventKey, ProbeGovernor};
use tesc_events::NodeMask;
use tesc_graph::bfs::{BfsScratch, MsBfsScratch};
use tesc_graph::budget::{Budget, Interrupted};
use tesc_graph::csr::CsrGraph;
use tesc_graph::relabel::Relabeling;
use tesc_graph::{Adjacency, NodeId, ScratchPool};

/// All per-reference-node counts gathered in a single BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DensityCounts {
    /// `|V^h_r|` (includes `r` itself).
    pub vicinity_size: usize,
    /// `|V_a ∩ V^h_r|`.
    pub count_a: usize,
    /// `|V_b ∩ V^h_r|`.
    pub count_b: usize,
    /// `|V_{a∪b} ∩ V^h_r|` — the `c` of Procedure RejectSamp step 3.
    pub count_union: usize,
}

impl DensityCounts {
    /// `s^h_a(r)`.
    #[inline]
    pub fn density_a(&self) -> f64 {
        self.count_a as f64 / self.vicinity_size as f64
    }

    /// `s^h_b(r)`.
    #[inline]
    pub fn density_b(&self) -> f64 {
        self.count_b as f64 / self.vicinity_size as f64
    }

    /// Is `r` an eligible reference node (Def. 3) — can it see any
    /// occurrence of `a` or `b` within `h` hops?
    #[inline]
    pub fn is_reference(&self) -> bool {
        self.count_union > 0
    }
}

/// Gather [`DensityCounts`] for reference node `r` with one `h`-hop BFS.
pub fn density_counts<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    r: NodeId,
    h: u32,
    mask_a: &NodeMask,
    mask_b: &NodeMask,
) -> DensityCounts {
    let mut count_a = 0usize;
    let mut count_b = 0usize;
    let mut count_union = 0usize;
    let vicinity_size = scratch.visit_h_vicinity(g, &[r], h, |v, _| {
        let in_a = mask_a.contains(v);
        let in_b = mask_b.contains(v);
        count_a += in_a as usize;
        count_b += in_b as usize;
        count_union += (in_a || in_b) as usize;
    });
    DensityCounts {
        vicinity_size,
        count_a,
        count_b,
        count_union,
    }
}

/// Gather [`DensityCounts`] with the **bitset kernel**: one hybrid
/// top-down/bottom-up bitmap BFS
/// ([`BfsScratch::visit_h_vicinity_bitset`]), then all three counts in
/// a single word-wise sweep — `visited & a`, `visited & b` and the
/// `a | b` union fast path, AND + popcount 64 nodes at a time instead
/// of three probes per visited node.
///
/// Both kernels visit the identical node set, so the returned integers
/// (and every density derived from them) are bit-identical to
/// [`density_counts`].
pub fn density_counts_bitset<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    r: NodeId,
    h: u32,
    mask_a: &NodeMask,
    mask_b: &NodeMask,
) -> DensityCounts {
    let vicinity_size = scratch.visit_h_vicinity_bitset(g, &[r], h);
    let (aw, bw) = (mask_a.words(), mask_b.words());
    let mut count_a = 0usize;
    let mut count_b = 0usize;
    let mut count_union = 0usize;
    for (i, &vw) in scratch.visited_words().iter().enumerate() {
        if vw == 0 {
            continue;
        }
        let (a, b) = (aw[i], bw[i]);
        count_a += (vw & a).count_ones() as usize;
        count_b += (vw & b).count_ones() as usize;
        count_union += (vw & (a | b)).count_ones() as usize;
    }
    DensityCounts {
        vicinity_size,
        count_a,
        count_b,
        count_union,
    }
}

/// One test's resolved density execution plan: which substrate graph
/// the per-reference-node BFS runs on, the event masks in that
/// substrate's id space, the original→substrate translation (present
/// when the substrate is a locality-relabeled graph) and whether the
/// bitset kernel is engaged.
///
/// Reference nodes are always given in **original** id space —
/// [`KernelPlan::counts`] translates at the boundary — so samplers,
/// caches and reported ids never see substrate ids, and every count is
/// bit-identical across all plan configurations (permutations preserve
/// set cardinalities; kernels visit identical sets).
#[derive(Debug, Clone, Copy)]
pub struct KernelPlan<'a, G = CsrGraph> {
    /// The BFS substrate (the original graph, or its relabeled twin).
    pub graph: &'a G,
    /// `V_a` membership in substrate id space.
    pub mask_a: &'a NodeMask,
    /// `V_b` membership in substrate id space.
    pub mask_b: &'a NodeMask,
    /// Original→substrate permutation; `None` when the substrate *is*
    /// the original graph.
    pub translate: Option<&'a Relabeling>,
    /// Engage [`density_counts_bitset`] instead of the scalar kernel.
    pub use_bitset: bool,
    /// Vicinity level `h`.
    pub h: u32,
}

impl<'a, G: Adjacency> KernelPlan<'a, G> {
    /// The scalar plan on the original graph — the reference
    /// configuration every other plan must match bit-for-bit.
    pub fn scalar(g: &'a G, mask_a: &'a NodeMask, mask_b: &'a NodeMask, h: u32) -> Self {
        KernelPlan {
            graph: g,
            mask_a,
            mask_b,
            translate: None,
            use_bitset: false,
            h,
        }
    }

    /// [`DensityCounts`] for the original-space reference node `r`.
    pub fn counts(&self, scratch: &mut BfsScratch, r: NodeId) -> DensityCounts {
        self.counts_budgeted(scratch, r, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// [`KernelPlan::counts`] under a [`Budget`]: the BFS checks the
    /// budget per frontier level and an interrupted search returns the
    /// typed error instead of partial counts.
    pub fn counts_budgeted(
        &self,
        scratch: &mut BfsScratch,
        r: NodeId,
        budget: &Budget,
    ) -> Result<DensityCounts, Interrupted> {
        let rr = self.translate.map_or(r, |m| m.to_new(r));
        if self.use_bitset {
            let vicinity_size =
                scratch.visit_h_vicinity_bitset_budgeted(self.graph, &[rr], self.h, budget)?;
            let (aw, bw) = (self.mask_a.words(), self.mask_b.words());
            let mut count_a = 0usize;
            let mut count_b = 0usize;
            let mut count_union = 0usize;
            for (i, &vw) in scratch.visited_words().iter().enumerate() {
                if vw == 0 {
                    continue;
                }
                let (a, b) = (aw[i], bw[i]);
                count_a += (vw & a).count_ones() as usize;
                count_b += (vw & b).count_ones() as usize;
                count_union += (vw & (a | b)).count_ones() as usize;
            }
            Ok(DensityCounts {
                vicinity_size,
                count_a,
                count_b,
                count_union,
            })
        } else {
            let mut count_a = 0usize;
            let mut count_b = 0usize;
            let mut count_union = 0usize;
            let vicinity_size =
                scratch.visit_h_vicinity_budgeted(self.graph, &[rr], self.h, budget, |v, _| {
                    let in_a = self.mask_a.contains(v);
                    let in_b = self.mask_b.contains(v);
                    count_a += in_a as usize;
                    count_b += in_b as usize;
                    count_union += (in_a || in_b) as usize;
                })?;
            Ok(DensityCounts {
                vicinity_size,
                count_a,
                count_b,
                count_union,
            })
        }
    }
}

/// The fused multi-event generalization of [`KernelPlan`]: one density
/// execution plan over **M** event masks instead of two, so a single
/// `h`-hop BFS per reference node can be scored against every event
/// that touches that node (the pair-set planner's stage-(b) kernel —
/// see `tesc::planner`).
///
/// Composition mirrors [`KernelPlan`] exactly: the substrate may be
/// the original graph or its locality-relabeled twin (masks then live
/// in substrate id space, reference nodes are translated at the
/// boundary), and the kernel may be scalar (per-node membership
/// probes) or bitset (one hybrid bitmap BFS + one word-major
/// multi-mask sweep via [`tesc_graph::multi_mask_counts`]). Every
/// configuration produces the identical integers as M separate
/// [`density_counts`] calls — permutations preserve cardinalities,
/// kernels visit identical sets — so fused densities are bit-identical
/// to the per-pair engine path.
#[derive(Debug, Clone, Copy)]
pub struct MultiKernelPlan<'a, G = CsrGraph> {
    /// The BFS substrate (the original graph, or its relabeled twin).
    pub graph: &'a G,
    /// Every registered event mask, in substrate id space; a
    /// per-reference-node *slot list* selects which of these one BFS
    /// scores.
    pub masks: &'a [NodeMask],
    /// Original→substrate permutation; `None` when the substrate *is*
    /// the original graph.
    pub translate: Option<&'a Relabeling>,
    /// Engage the bitset kernel + word-level multi-mask sweep.
    pub use_bitset: bool,
    /// Vicinity level `h`.
    pub h: u32,
}

impl<G: Adjacency> MultiKernelPlan<'_, G> {
    /// Count `|V_e ∩ V^h_r|` for every event slot in `slots` with one
    /// BFS from the original-space reference node `r`. `counts` is
    /// cleared and receives one count per slot, in slot order; the
    /// return value is `|V^h_r|`.
    pub fn counts_for(
        &self,
        scratch: &mut BfsScratch,
        r: NodeId,
        slots: &[u32],
        counts: &mut Vec<u32>,
    ) -> usize {
        self.counts_for_budgeted(scratch, r, slots, counts, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// [`MultiKernelPlan::counts_for`] under a [`Budget`]: the BFS
    /// checks the budget per frontier level; an interrupted search
    /// returns the typed error and `counts` must be discarded.
    pub fn counts_for_budgeted(
        &self,
        scratch: &mut BfsScratch,
        r: NodeId,
        slots: &[u32],
        counts: &mut Vec<u32>,
        budget: &Budget,
    ) -> Result<usize, Interrupted> {
        counts.clear();
        counts.resize(slots.len(), 0);
        let rr = self.translate.map_or(r, |m| m.to_new(r));
        if self.use_bitset {
            let size =
                scratch.visit_h_vicinity_bitset_budgeted(self.graph, &[rr], self.h, budget)?;
            let mask_words: Vec<&[u64]> = slots
                .iter()
                .map(|&s| self.masks[s as usize].words())
                .collect();
            scratch.visited_multi_mask_counts(&mask_words, counts);
            Ok(size)
        } else {
            scratch.visit_h_vicinity_budgeted(self.graph, &[rr], self.h, budget, |v, _| {
                for (i, &s) in slots.iter().enumerate() {
                    counts[i] += self.masks[s as usize].contains(v) as u32;
                }
            })
        }
    }
}

/// The **source-grouped** generalization of [`MultiKernelPlan`]: one
/// density execution plan that batches up to
/// [`tesc_graph::MAX_GROUP_SOURCES`] reference nodes into a single
/// multi-source traversal ([`MsBfsScratch::visit_h_vicinity_multi`]),
/// one bit-lane per node, so one edge scan serves every grouped
/// source — the data-movement lever the per-source kernels cannot
/// reach (see `docs/PERFORMANCE.md`).
///
/// Composition mirrors the other plans exactly: the substrate may be
/// the original graph or its locality-relabeled twin (slot node lists
/// then live in substrate id space; reference nodes are translated at
/// the group boundary). Events are carried as **occurrence node
/// lists** rather than masks, because per-lane scoring reads only the
/// event's members ([`MsBfsScratch::lane_member_counts`]) — `O(|V_e|)`
/// per (event, group), independent of vicinity size. Every recovered
/// integer equals what independent single-source searches produce, so
/// grouped densities are bit-identical to every other configuration.
#[derive(Debug, Clone, Copy)]
pub struct GroupKernelPlan<'a, G = CsrGraph> {
    /// The BFS substrate (the original graph, or its relabeled twin).
    pub graph: &'a G,
    /// Substrate-space occurrence node lists, one per event slot
    /// (duplicate-free; any order).
    pub slot_nodes: &'a [Vec<NodeId>],
    /// Original→substrate permutation; `None` when the substrate *is*
    /// the original graph.
    pub translate: Option<&'a Relabeling>,
    /// Vicinity level `h`.
    pub h: u32,
}

impl<G: Adjacency> GroupKernelPlan<'_, G> {
    /// Score one group of up to 64 original-space reference nodes with
    /// a single multi-source traversal. `slot_lists[i]` names the
    /// event slots node `nodes[i]` must be scored against (**sorted
    /// ascending**); on return `sizes[i]` holds `|V^h_{nodes[i]}|` and
    /// `counts[i][j]` holds `|V_{slot_lists[i][j]} ∩ V^h_{nodes[i]}|`.
    ///
    /// Each distinct slot of the group is scored **once** against all
    /// lanes and scattered to the members that asked for it.
    pub fn counts_for_group(
        &self,
        scratch: &mut MsBfsScratch,
        nodes: &[NodeId],
        slot_lists: &[&[u32]],
        sizes: &mut [u32],
        counts: &mut [Vec<u32>],
    ) {
        self.counts_for_group_budgeted(
            scratch,
            nodes,
            slot_lists,
            sizes,
            counts,
            &Budget::unlimited(),
        )
        .expect("unlimited budget cannot exhaust")
    }

    /// [`GroupKernelPlan::counts_for_group`] under a [`Budget`]: the
    /// traversal checks the budget per frontier level; an interrupted
    /// group returns the typed error and its outputs must be
    /// discarded.
    pub fn counts_for_group_budgeted(
        &self,
        scratch: &mut MsBfsScratch,
        nodes: &[NodeId],
        slot_lists: &[&[u32]],
        sizes: &mut [u32],
        counts: &mut [Vec<u32>],
        budget: &Budget,
    ) -> Result<(), Interrupted> {
        debug_assert_eq!(nodes.len(), slot_lists.len());
        debug_assert_eq!(nodes.len(), sizes.len());
        debug_assert_eq!(nodes.len(), counts.len());
        let substrate: Vec<NodeId> = match self.translate {
            Some(m) => nodes.iter().map(|&r| m.to_new(r)).collect(),
            None => nodes.to_vec(),
        };
        scratch.visit_h_vicinity_multi_budgeted(self.graph, &substrate, self.h, budget)?;
        scratch.lane_sizes(sizes);
        for (slots, c) in slot_lists.iter().zip(counts.iter_mut()) {
            c.clear();
            c.resize(slots.len(), 0);
        }
        // Distinct slots of the whole group, each scored once.
        let mut group_slots: Vec<u32> = slot_lists.iter().flat_map(|s| s.iter().copied()).collect();
        group_slots.sort_unstable();
        group_slots.dedup();
        let mut lane_counts = vec![0u32; nodes.len()];
        for &slot in &group_slots {
            scratch.lane_member_counts(&self.slot_nodes[slot as usize], &mut lane_counts);
            for (lane, slots) in slot_lists.iter().enumerate() {
                if let Ok(j) = slots.binary_search(&slot) {
                    counts[lane][j] = lane_counts[lane];
                }
            }
        }
        Ok(())
    }
}

/// Per-node slot assignments for a grouped density run: every node
/// scored against the same slots (the per-pair engine path) or each
/// node carrying its own sorted list (the planner's fused workset).
pub(crate) enum GroupSlots<'a> {
    /// Every node uses this one sorted slot list.
    Same(&'a [u32]),
    /// `lists[i]` is node `i`'s sorted slot list.
    PerNode(&'a [&'a [u32]]),
}

impl GroupSlots<'_> {
    #[inline]
    fn get(&self, i: usize) -> &[u32] {
        match self {
            GroupSlots::Same(s) => s,
            GroupSlots::PerNode(lists) => lists[i],
        }
    }
}

/// Apply `f(scratch, group_index)` to every source group, fanned out
/// over `threads` scoped workers with indexed output slots — the
/// multi-source sibling of [`map_refs_pooled`] (same determinism
/// contract, [`MsBfsScratch`] instead of [`BfsScratch`]).
fn map_groups_pooled<T, F>(
    pool: &ScratchPool,
    num_groups: usize,
    threads: usize,
    default: T,
    f: F,
) -> Vec<T>
where
    T: Clone + Send,
    F: Fn(&mut MsBfsScratch, usize) -> T + Sync,
{
    let threads = threads.max(1).min(num_groups.max(1));
    let mut out = vec![default; num_groups];
    // Note the guard is `< 2` groups, not `< 2 × threads` items like
    // [`map_refs_pooled`]: one group already holds up to 64 sources'
    // worth of BFS work, so even two groups are worth a second worker.
    if threads == 1 || num_groups < 2 {
        let mut scratch = pool.acquire_multi();
        for (gi, slot) in out.iter_mut().enumerate() {
            *slot = f(&mut scratch, gi);
        }
        return out;
    }
    let chunk = num_groups.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, out_c) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let mut scratch = pool.acquire_multi();
                for (off, slot) in out_c.iter_mut().enumerate() {
                    *slot = f(&mut scratch, ci * chunk + off);
                }
            });
        }
    });
    out
}

/// Apply `f(i)` for every index in `0..count`, fanned out over
/// `threads` scoped workers with indexed output slots — the
/// scratch-free sibling of [`map_refs_pooled`] used by the cache-probe
/// stages of the grouped executors (a probe takes locks, not a BFS
/// scratch, and a warm pass is *nothing but* probes, so it must not
/// serialize).
pub(crate) fn map_indexed<T, F>(count: usize, threads: usize, default: T, f: F) -> Vec<T>
where
    T: Clone + Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(count.max(1));
    let mut out = vec![default; count];
    if threads == 1 || count < 2 * threads {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return out;
    }
    let chunk = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, out_c) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, slot) in out_c.iter_mut().enumerate() {
                    *slot = f(ci * chunk + off);
                }
            });
        }
    });
    out
}

/// Grouped density executor: partition `nodes` into source groups of
/// at most `group_size`, run one multi-source traversal per group
/// (parallel over groups), and return the per-node
/// `(|V^h_r|, per-slot counts)` — positionally aligned with `nodes`
/// and deterministic at any thread count.
///
/// Nodes are grouped in **substrate-id order** (a stable argsort; the
/// output order is unchanged): nearby ids share vicinities — by
/// construction under locality relabeling, and strongly in practice on
/// generated and real graphs — so sorting maximizes the per-group lane
/// overlap the shared edge scan amortizes over. Grouping order cannot
/// affect any count (each lane is an independent traversal), so this
/// is purely a locality optimization.
pub(crate) fn run_grouped<G: Adjacency>(
    plan: &GroupKernelPlan<'_, G>,
    pool: &ScratchPool,
    nodes: &[NodeId],
    slots: &GroupSlots<'_>,
    threads: usize,
    group_size: usize,
    budget: &Budget,
) -> Result<(Vec<u32>, Vec<Vec<u32>>), Interrupted> {
    if nodes.is_empty() {
        return Ok((Vec::new(), Vec::new()));
    }
    let group_size = group_size.clamp(1, tesc_graph::MAX_GROUP_SOURCES);
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    match plan.translate {
        Some(m) => order.sort_by_key(|&i| m.to_new(nodes[i])),
        None => order.sort_by_key(|&i| nodes[i]),
    }
    let num_groups = nodes.len().div_ceil(group_size);
    let per_group = map_groups_pooled(
        pool,
        num_groups,
        threads,
        (Vec::new(), Vec::new()),
        |scratch, gi| {
            // Exhaustion is sticky: skipped groups leave empty sentinel
            // results, and the post-map check below is then guaranteed
            // to discard the whole pass.
            if budget.is_exhausted() {
                return (Vec::new(), Vec::new());
            }
            let start = gi * group_size;
            let end = (start + group_size).min(nodes.len());
            let idx = &order[start..end];
            let group: Vec<NodeId> = idx.iter().map(|&i| nodes[i]).collect();
            let slot_lists: Vec<&[u32]> = idx.iter().map(|&i| slots.get(i)).collect();
            let mut sizes = vec![0u32; group.len()];
            let mut counts: Vec<Vec<u32>> = vec![Vec::new(); group.len()];
            match plan.counts_for_group_budgeted(
                scratch,
                &group,
                &slot_lists,
                &mut sizes,
                &mut counts,
                budget,
            ) {
                Ok(()) => (sizes, counts),
                Err(_) => (Vec::new(), Vec::new()),
            }
        },
    );
    budget.check()?;
    let mut sizes = vec![0u32; nodes.len()];
    let mut counts: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
    for (gi, (group_sizes, group_counts)) in per_group.into_iter().enumerate() {
        for (off, (s, c)) in group_sizes.into_iter().zip(group_counts).enumerate() {
            let i = order[gi * group_size + off];
            sizes[i] = s;
            counts[i] = c;
        }
    }
    Ok((sizes, counts))
}

/// Parallel density vectors through the **source-grouped multi-source
/// kernel**: `plan.slot_nodes` must hold exactly `[V_a, V_b]`, and the
/// returned vectors are bit-identical to [`density_vectors_plan`] on
/// the corresponding two-mask plan (same integers, same `count as f64
/// / size as f64` arithmetic) — asserted in `tests/kernels.rs` and per
/// `density_kernel` bench row.
pub fn density_vectors_group_plan<G: Adjacency>(
    plan: &GroupKernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    threads: usize,
    group_size: usize,
) -> (Vec<f64>, Vec<f64>) {
    density_vectors_group_plan_budgeted(plan, pool, refs, threads, group_size, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`density_vectors_group_plan`] under a [`Budget`]: interrupted
/// passes return the typed error with no partial output.
pub fn density_vectors_group_plan_budgeted<G: Adjacency>(
    plan: &GroupKernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    threads: usize,
    group_size: usize,
    budget: &Budget,
) -> Result<(Vec<f64>, Vec<f64>), Interrupted> {
    assert_eq!(plan.slot_nodes.len(), 2, "expects the [a, b] slot pair");
    let (sizes, counts) = run_grouped(
        plan,
        pool,
        refs,
        &GroupSlots::Same(&[0, 1]),
        threads,
        group_size,
        budget,
    )?;
    Ok(sizes
        .iter()
        .zip(&counts)
        .map(|(&size, c)| (c[0] as f64 / size as f64, c[1] as f64 / size as f64))
        .unzip())
}

/// Grouped [`DensityCounts`] (including the `a∪b` union count) for the
/// importance-sampling path: `plan.slot_nodes` must hold exactly
/// `[V_a, V_b, V_{a∪b}]`.
pub fn density_counts_group_plan<G: Adjacency>(
    plan: &GroupKernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    threads: usize,
    group_size: usize,
) -> Vec<DensityCounts> {
    density_counts_group_plan_budgeted(plan, pool, refs, threads, group_size, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`density_counts_group_plan`] under a [`Budget`]: interrupted
/// passes return the typed error with no partial output.
pub fn density_counts_group_plan_budgeted<G: Adjacency>(
    plan: &GroupKernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    threads: usize,
    group_size: usize,
    budget: &Budget,
) -> Result<Vec<DensityCounts>, Interrupted> {
    assert_eq!(plan.slot_nodes.len(), 3, "expects [a, b, union] slots");
    let (sizes, counts) = run_grouped(
        plan,
        pool,
        refs,
        &GroupSlots::Same(&[0, 1, 2]),
        threads,
        group_size,
        budget,
    )?;
    Ok(sizes
        .iter()
        .zip(&counts)
        .map(|(&size, c)| DensityCounts {
            vicinity_size: size as usize,
            count_a: c[0] as usize,
            count_b: c[1] as usize,
            count_union: c[2] as usize,
        })
        .collect())
}

/// [`density_vectors_group_plan`] through a cross-pair
/// [`DensityCache`]: every reference node's two slots are probed first
/// under one shard lock ([`DensityCache::lookup_pair`]); only nodes
/// with at least one miss join the grouped traversals, and their fresh
/// integers fill the missing slots ([`DensityCache::insert_many`]).
/// Bit-identical to every other cached/uncached configuration; the
/// BFS counter advances once per *lane* measured, so cache accounting
/// is executor-independent.
#[allow(clippy::too_many_arguments)] // mirrors density_vectors_cached_plan + group knob
pub fn density_vectors_cached_group_plan<G: Adjacency>(
    plan: &GroupKernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    key_a: &EventKey,
    key_b: &EventKey,
    threads: usize,
    group_size: usize,
    cache: &DensityCache,
) -> (Vec<f64>, Vec<f64>) {
    density_vectors_cached_group_plan_budgeted(
        plan,
        pool,
        refs,
        key_a,
        key_b,
        threads,
        group_size,
        cache,
        &Budget::unlimited(),
    )
    .expect("unlimited budget cannot exhaust")
}

/// [`density_vectors_cached_group_plan`] under a [`Budget`]. The
/// budget is re-checked *before* the scatter/insert stage, so the
/// cache only ever absorbs counts from fully completed traversals —
/// an interrupted pass leaves it untouched (completed counts are exact
/// content-addressed integers, so successful warming stays
/// semantically invisible either way).
#[allow(clippy::too_many_arguments)] // mirrors the unbudgeted variant + budget
pub fn density_vectors_cached_group_plan_budgeted<G: Adjacency>(
    plan: &GroupKernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    key_a: &EventKey,
    key_b: &EventKey,
    threads: usize,
    group_size: usize,
    cache: &DensityCache,
    budget: &Budget,
) -> Result<(Vec<f64>, Vec<f64>), Interrupted> {
    assert_eq!(plan.slot_nodes.len(), 2, "expects the [a, b] slot pair");
    let h = plan.h;
    let governor = ProbeGovernor::new();
    // Probe stage, parallel: a warm pass is nothing but probes, so it
    // must fan out like the BFS stage does. Probe outcomes are
    // (None, None) when the pass's governor dropped the probe — the
    // node is then simply treated as a full miss; its fresh counts
    // still warm the cache.
    let probes = map_indexed(refs.len(), threads, (None, None), |i| {
        if !governor.engaged() {
            return (None, None);
        }
        let probe = cache.lookup_pair(key_a, key_b, refs[i], h);
        governor.record(probe.0.is_some() && probe.1.is_some());
        probe
    });
    let mut sa = vec![0.0f64; refs.len()];
    let mut sb = vec![0.0f64; refs.len()];
    let mut pending: Vec<usize> = Vec::new();
    let mut hits: Vec<(Option<CachedCount>, Option<CachedCount>)> = Vec::new();
    for (i, &(hit_a, hit_b)) in probes.iter().enumerate() {
        if let (Some(a), Some(b)) = (hit_a, hit_b) {
            debug_assert_eq!(a.vicinity_size, b.vicinity_size, "inconsistent cache");
            sa[i] = a.density();
            sb[i] = b.density();
        } else {
            pending.push(i);
            hits.push((hit_a, hit_b));
        }
    }
    let nodes: Vec<NodeId> = pending.iter().map(|&i| refs[i]).collect();
    let (sizes, counts) = run_grouped(
        plan,
        pool,
        &nodes,
        &GroupSlots::Same(&[0, 1]),
        threads,
        group_size,
        budget,
    )?;
    // Scatter, collecting the missing slots for one bulk insertion
    // (one lock per shard for the whole pass, not one per node).
    let mut bulk: Vec<(NodeId, &EventKey, CachedCount)> = Vec::new();
    for (((&i, &r), (&size, c)), &(hit_a, hit_b)) in pending
        .iter()
        .zip(&nodes)
        .zip(sizes.iter().zip(&counts))
        .zip(&hits)
    {
        let fresh_a = CachedCount {
            vicinity_size: size,
            count: c[0],
        };
        let fresh_b = CachedCount {
            vicinity_size: size,
            count: c[1],
        };
        if hit_a.is_none() {
            bulk.push((r, key_a, fresh_a));
        }
        if hit_b.is_none() {
            bulk.push((r, key_b, fresh_b));
        }
        // Same policy as the per-node cached path: prefer the memoized
        // integer where a slot hit (identical value either way).
        let a = hit_a.unwrap_or(fresh_a);
        let b = hit_b.unwrap_or(fresh_b);
        debug_assert_eq!(a.vicinity_size, size, "inconsistent cache");
        debug_assert_eq!(b.vicinity_size, size, "inconsistent cache");
        sa[i] = a.density();
        sb[i] = b.density();
    }
    cache.record_bfs_n(pending.len() as u64);
    cache.insert_bulk(h, bulk);
    Ok((sa, sb))
}

/// Rebuild an event mask in a relabeled substrate's id space: every
/// member is permuted through `map`, cardinality (and therefore every
/// intersection count) is preserved.
pub fn translate_mask(map: &Relabeling, m: &NodeMask) -> NodeMask {
    NodeMask::from_nodes(m.num_nodes(), &map.map_to_new(&m.to_nodes()))
}

/// Densities of both events at every reference node, as the two paired
/// vectors (`s^h_a`, `s^h_b`) the Kendall machinery consumes.
pub fn density_vectors<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    refs: &[NodeId],
    h: u32,
    mask_a: &NodeMask,
    mask_b: &NodeMask,
) -> (Vec<f64>, Vec<f64>) {
    let mut sa = Vec::with_capacity(refs.len());
    let mut sb = Vec::with_capacity(refs.len());
    for &r in refs {
        let c = density_counts(g, scratch, r, h, mask_a, mask_b);
        sa.push(c.density_a());
        sb.push(c.density_b());
    }
    (sa, sb)
}

/// Apply `f(scratch, r)` to every reference node, fanned out over
/// `threads` scoped worker threads, each with its own scratch checked
/// out of `pool`. Output slot `i` always holds `f`'s result for
/// `refs[i]` — positionally identical to a serial map at any thread
/// count (the per-node work must not consume shared randomness, which
/// holds for every density/count computation in this crate).
///
/// `threads ≤ 1` (or fewer than 2 reference nodes per worker) falls
/// back to a serial loop on a single pooled scratch. This is the
/// engine's `density_threads` primitive, shared by the presence,
/// importance and intensity density loops.
pub fn map_refs_pooled<T, F>(
    pool: &ScratchPool,
    refs: &[NodeId],
    threads: usize,
    default: T,
    f: F,
) -> Vec<T>
where
    T: Clone + Send,
    F: Fn(&mut BfsScratch, NodeId) -> T + Sync,
{
    let threads = threads.max(1).min(refs.len().max(1));
    let mut out = vec![default; refs.len()];
    if threads == 1 || refs.len() < 2 * threads {
        let mut scratch = pool.acquire();
        for (slot, &r) in out.iter_mut().zip(refs) {
            *slot = f(&mut scratch, r);
        }
        return out;
    }
    let chunk = refs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (refs_c, out_c) in refs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                let mut scratch = pool.acquire();
                for (slot, &r) in out_c.iter_mut().zip(refs_c) {
                    *slot = f(&mut scratch, r);
                }
            });
        }
    });
    out
}

/// Parallel density vectors for an arbitrary [`KernelPlan`] via
/// [`map_refs_pooled`]. Output is positionally identical to the serial
/// scalar path at any thread count, for every plan configuration.
pub fn density_vectors_plan<G: Adjacency>(
    plan: &KernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    threads: usize,
) -> (Vec<f64>, Vec<f64>) {
    density_vectors_plan_budgeted(plan, pool, refs, threads, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`density_vectors_plan`] under a [`Budget`]: the per-node closure
/// skips work once the budget exhausts (leaving zero sentinels), and
/// the post-map check discards the whole pass — no partial vectors
/// escape.
pub fn density_vectors_plan_budgeted<G: Adjacency>(
    plan: &KernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    threads: usize,
    budget: &Budget,
) -> Result<(Vec<f64>, Vec<f64>), Interrupted> {
    let zero = DensityCounts {
        vicinity_size: 0,
        count_a: 0,
        count_b: 0,
        count_union: 0,
    };
    let counts = map_refs_pooled(pool, refs, threads, zero, |scratch, r| {
        if budget.is_exhausted() {
            return zero;
        }
        plan.counts_budgeted(scratch, r, budget).unwrap_or(zero)
    });
    budget.check()?;
    Ok(counts
        .iter()
        .map(|c| (c.density_a(), c.density_b()))
        .unzip())
}

/// Parallel [`density_vectors`] via [`map_refs_pooled`] (the scalar
/// plan). Output is positionally identical to the serial function at
/// any thread count.
pub fn density_vectors_pooled<G: Adjacency>(
    g: &G,
    pool: &ScratchPool,
    refs: &[NodeId],
    h: u32,
    mask_a: &NodeMask,
    mask_b: &NodeMask,
    threads: usize,
) -> (Vec<f64>, Vec<f64>) {
    density_vectors_plan(
        &KernelPlan::scalar(g, mask_a, mask_b, h),
        pool,
        refs,
        threads,
    )
}

/// [`density_vectors_pooled`] through a cross-pair [`DensityCache`]:
/// per reference node, the two `(event, node, h)` slots are looked up
/// first and a single BFS runs only if either misses, filling both
/// missing slots. Results are **bit-identical** to the uncached path —
/// cached slots hold the exact integer counts the BFS would have
/// produced, and densities are derived with the same
/// `count as f64 / size as f64` arithmetic.
///
/// With `k` pairs sharing an event over overlapping reference sets,
/// the shared event's counts are measured once per distinct reference
/// node instead of once per pair (asserted via
/// [`DensityCache::fresh_computes`] in `tests/pipeline.rs`).
#[allow(clippy::too_many_arguments)] // mirrors density_vectors_pooled + cache keys
pub fn density_vectors_cached<G: Adjacency>(
    g: &G,
    pool: &ScratchPool,
    refs: &[NodeId],
    h: u32,
    key_a: &EventKey,
    mask_a: &NodeMask,
    key_b: &EventKey,
    mask_b: &NodeMask,
    threads: usize,
    cache: &DensityCache,
) -> (Vec<f64>, Vec<f64>) {
    let plan = KernelPlan::scalar(g, mask_a, mask_b, h);
    density_vectors_cached_plan(&plan, pool, refs, key_a, key_b, threads, cache)
}

/// [`density_vectors_cached`] for an arbitrary [`KernelPlan`]: cache
/// keys and reference nodes stay in **original** id space (memoized
/// counts are substrate-independent integers, so a cache can be shared
/// between relabeled and plain engines over the same graph version),
/// while the miss-path BFS runs on the plan's substrate with the
/// plan's kernel.
pub fn density_vectors_cached_plan<G: Adjacency>(
    plan: &KernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    key_a: &EventKey,
    key_b: &EventKey,
    threads: usize,
    cache: &DensityCache,
) -> (Vec<f64>, Vec<f64>) {
    density_vectors_cached_plan_budgeted(
        plan,
        pool,
        refs,
        key_a,
        key_b,
        threads,
        cache,
        &Budget::unlimited(),
    )
    .expect("unlimited budget cannot exhaust")
}

/// [`density_vectors_cached_plan`] under a [`Budget`]. Cache lookups
/// stay budget-free (they are cheap and their hits are exact), but
/// fresh counts are inserted only when their BFS ran to completion —
/// an interrupted node contributes nothing, and the post-map check
/// discards the pass.
#[allow(clippy::too_many_arguments)] // mirrors the unbudgeted variant + budget
pub fn density_vectors_cached_plan_budgeted<G: Adjacency>(
    plan: &KernelPlan<'_, G>,
    pool: &ScratchPool,
    refs: &[NodeId],
    key_a: &EventKey,
    key_b: &EventKey,
    threads: usize,
    cache: &DensityCache,
    budget: &Budget,
) -> Result<(Vec<f64>, Vec<f64>), Interrupted> {
    let h = plan.h;
    let governor = ProbeGovernor::new();
    let densities = map_refs_pooled(pool, refs, threads, (0.0f64, 0.0f64), |scratch, r| {
        if budget.is_exhausted() {
            return (0.0, 0.0);
        }
        // Both of a pair's slots live in r's shard — resolve them
        // under one lock acquisition (lookup_pair), and fill the
        // missing ones the same way (insert_many): per-node lock
        // traffic, not per-slot. The pass's governor drops the probe
        // (treating the node as all-miss; inserts still warm the
        // cache) once measured sharing stops paying for the lookups.
        let (hit_a, hit_b) = if governor.engaged() {
            let hits = cache.lookup_pair(key_a, key_b, r, h);
            governor.record(hits.0.is_some() && hits.1.is_some());
            hits
        } else {
            (None, None)
        };
        if let (Some(a), Some(b)) = (hit_a, hit_b) {
            debug_assert_eq!(a.vicinity_size, b.vicinity_size, "inconsistent cache");
            return (a.density(), b.density());
        }
        // Only a completed BFS may warm the cache: an interrupted
        // traversal's counts are partial and must never be memoized.
        let Ok(c) = plan.counts_budgeted(scratch, r, budget) else {
            return (0.0, 0.0);
        };
        cache.record_bfs();
        let size = c.vicinity_size as u32;
        let mut fresh: [Option<(&EventKey, CachedCount)>; 2] = [None, None];
        if hit_a.is_none() {
            fresh[0] = Some((
                key_a,
                CachedCount {
                    vicinity_size: size,
                    count: c.count_a as u32,
                },
            ));
        }
        if hit_b.is_none() {
            fresh[1] = Some((
                key_b,
                CachedCount {
                    vicinity_size: size,
                    count: c.count_b as u32,
                },
            ));
        }
        cache.insert_many(fresh.into_iter().flatten(), r, h);
        // Prefer the cached slot when one side hit: same integers,
        // same arithmetic, so the choice is observationally moot — but
        // using it exercises the consistency debug-assert above.
        (
            hit_a.map_or_else(|| c.density_a(), |a| a.density()),
            hit_b.map_or_else(|| c.density_b(), |b| b.density()),
        )
    });
    budget.check()?;
    Ok(densities.into_iter().unzip())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesc_graph::csr::from_edges;
    use tesc_graph::generators::{path, star};

    fn masks(n: usize, a: &[NodeId], b: &[NodeId]) -> (NodeMask, NodeMask) {
        (NodeMask::from_nodes(n, a), NodeMask::from_nodes(n, b))
    }

    #[test]
    fn counts_on_path() {
        // 0-1-2-3-4 ; a on {0,1}, b on {3}.
        let g = path(5);
        let (ma, mb) = masks(5, &[0, 1], &[3]);
        let mut s = BfsScratch::new(5);
        let c = density_counts(&g, &mut s, 2, 1, &ma, &mb);
        // V^1_2 = {1,2,3}: a-hits {1}, b-hits {3}.
        assert_eq!(c.vicinity_size, 3);
        assert_eq!(c.count_a, 1);
        assert_eq!(c.count_b, 1);
        assert_eq!(c.count_union, 2);
        assert!((c.density_a() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.density_b() - 1.0 / 3.0).abs() < 1e-12);
        assert!(c.is_reference());
    }

    #[test]
    fn out_of_sight_node_detected() {
        let g = path(7);
        let (ma, mb) = masks(7, &[0], &[1]);
        let mut s = BfsScratch::new(7);
        let c = density_counts(&g, &mut s, 6, 2, &ma, &mb);
        assert_eq!(c.count_union, 0);
        assert!(!c.is_reference());
        assert_eq!(c.density_a(), 0.0);
    }

    #[test]
    fn node_with_both_events_counts_once_in_union() {
        let g = path(3);
        let (ma, mb) = masks(3, &[1], &[1]);
        let mut s = BfsScratch::new(3);
        let c = density_counts(&g, &mut s, 0, 1, &ma, &mb);
        assert_eq!(c.count_a, 1);
        assert_eq!(c.count_b, 1);
        assert_eq!(c.count_union, 1, "a∪b membership must not double count");
    }

    #[test]
    fn normalization_compensates_vicinity_size() {
        // Hub vs leaf on a star: the hub sees everything (big vicinity),
        // a leaf sees only itself and the hub.
        let g = star(11); // hub 0, leaves 1..=10
        let (ma, mb) = masks(11, &[1, 2, 3], &[4]);
        let mut s = BfsScratch::new(11);
        let hub = density_counts(&g, &mut s, 0, 1, &ma, &mb);
        assert_eq!(hub.vicinity_size, 11);
        assert!((hub.density_a() - 3.0 / 11.0).abs() < 1e-12);
        let leaf = density_counts(&g, &mut s, 1, 1, &ma, &mb);
        // V^1_1 = {1, 0}: only the leaf itself carries a.
        assert_eq!(leaf.vicinity_size, 2);
        assert!((leaf.density_a() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_vectors_align_with_refs() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let (ma, mb) = masks(6, &[0], &[5]);
        let mut s = BfsScratch::new(6);
        let refs = [0u32, 2, 5];
        let (sa, sb) = density_vectors(&g, &mut s, &refs, 1, &ma, &mb);
        assert_eq!(sa.len(), 3);
        // ref 0: V^1 = {0,1}, a-hit 1 → 0.5 ; b-hit 0.
        assert!((sa[0] - 0.5).abs() < 1e-12);
        assert_eq!(sb[0], 0.0);
        // ref 2: V^1 = {1,2,3}: neither event.
        assert_eq!(sa[1], 0.0);
        assert_eq!(sb[1], 0.0);
        // ref 5: V^1 = {4,5}: b-hit 1 → 0.5.
        assert_eq!(sa[2], 0.0);
        assert!((sb[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pooled_density_vectors_match_serial_exactly() {
        let g = from_edges(
            12,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (0, 6),
                (3, 9),
            ],
        );
        let (ma, mb) = masks(12, &[0, 4, 8], &[2, 9]);
        let refs: Vec<NodeId> = (0..12).collect();
        let mut s = BfsScratch::new(12);
        let serial = density_vectors(&g, &mut s, &refs, 2, &ma, &mb);
        let pool = ScratchPool::for_graph(&g);
        for threads in [1, 2, 3, 5, 16] {
            let pooled = density_vectors_pooled(&g, &pool, &refs, 2, &ma, &mb, threads);
            assert_eq!(serial, pooled, "threads = {threads}");
        }
    }

    #[test]
    fn cached_density_vectors_bit_identical_and_save_bfs() {
        let g = from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (0, 5),
            ],
        );
        let a = [0u32, 4, 8];
        let b1 = [2u32, 9];
        let b2 = [3u32, 7];
        let (ma, mb1) = masks(10, &a, &b1);
        let mb2 = NodeMask::from_nodes(10, &b2);
        let (ka, kb1, kb2) = (EventKey::new(&a), EventKey::new(&b1), EventKey::new(&b2));
        let refs: Vec<NodeId> = (0..10).collect();
        let pool = ScratchPool::for_graph(&g);
        let cache = DensityCache::for_graph(&g);

        let mut s = BfsScratch::new(10);
        let serial1 = density_vectors(&g, &mut s, &refs, 2, &ma, &mb1);
        let serial2 = density_vectors(&g, &mut s, &refs, 2, &ma, &mb2);
        for threads in [1, 3] {
            let c1 =
                density_vectors_cached(&g, &pool, &refs, 2, &ka, &ma, &kb1, &mb1, threads, &cache);
            let c2 =
                density_vectors_cached(&g, &pool, &refs, 2, &ka, &ma, &kb2, &mb2, threads, &cache);
            assert_eq!(serial1, c1, "threads = {threads}");
            assert_eq!(serial2, c2, "threads = {threads}");
        }
        // Pair 1 measured every slot (10 BFS); pair 2 hit event a
        // everywhere but had to re-BFS each node for b2; the repeat
        // rounds were pure hits. Event a was never measured twice.
        assert_eq!(cache.fresh_computes(&ka), 10);
        assert_eq!(cache.fresh_computes(&kb1), 10);
        assert_eq!(cache.fresh_computes(&kb2), 10);
        assert_eq!(cache.bfs_invocations(), 20);
    }

    #[test]
    fn h_zero_density_is_indicator() {
        let g = path(4);
        let (ma, mb) = masks(4, &[2], &[0]);
        let mut s = BfsScratch::new(4);
        let c = density_counts(&g, &mut s, 2, 0, &ma, &mb);
        assert_eq!(c.vicinity_size, 1);
        assert_eq!(c.density_a(), 1.0);
        assert_eq!(c.density_b(), 0.0);
    }

    #[test]
    fn bitset_counts_equal_scalar_counts() {
        let g = from_edges(
            140,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 64),
                (64, 65),
                (65, 129),
                (129, 139),
                (0, 70),
            ],
        );
        let (ma, mb) = masks(140, &[0, 64, 129, 139], &[2, 65, 70]);
        let mut s = BfsScratch::new(140);
        for r in [0u32, 3, 65, 100, 139] {
            for h in 0..5 {
                let scalar = density_counts(&g, &mut s, r, h, &ma, &mb);
                let bitset = density_counts_bitset(&g, &mut s, r, h, &ma, &mb);
                assert_eq!(scalar, bitset, "r = {r}, h = {h}");
            }
        }
    }

    #[test]
    fn plan_vectors_identical_across_kernel_and_relabeling() {
        use tesc_graph::relabel::RelabeledGraph;
        let g = from_edges(
            12,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (0, 6),
                (3, 9),
            ],
        );
        let (ma, mb) = masks(12, &[0, 4, 8], &[2, 9]);
        let refs: Vec<NodeId> = (0..12).collect();
        let pool = ScratchPool::for_graph(&g);
        let reference = density_vectors_plan(&KernelPlan::scalar(&g, &ma, &mb, 2), &pool, &refs, 1);
        let bitset_plan = KernelPlan {
            use_bitset: true,
            ..KernelPlan::scalar(&g, &ma, &mb, 2)
        };
        let rel = RelabeledGraph::build(&g);
        let (ta, tb) = (
            translate_mask(rel.map(), &ma),
            translate_mask(rel.map(), &mb),
        );
        let rel_plan = KernelPlan {
            graph: rel.graph(),
            mask_a: &ta,
            mask_b: &tb,
            translate: Some(rel.map()),
            use_bitset: true,
            h: 2,
        };
        for threads in [1usize, 3] {
            for (label, plan) in [("bitset", &bitset_plan), ("bitset+relabel", &rel_plan)] {
                let got = density_vectors_plan(plan, &pool, &refs, threads);
                assert_eq!(reference, got, "{label} at {threads} threads");
            }
        }
    }

    #[test]
    fn cached_plan_bit_identical_and_shares_entries_with_scalar() {
        use tesc_graph::relabel::RelabeledGraph;
        let g = from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (0, 5),
            ],
        );
        let a = [0u32, 4, 8];
        let b = [2u32, 9];
        let (ma, mb) = masks(10, &a, &b);
        let (ka, kb) = (EventKey::new(&a), EventKey::new(&b));
        let refs: Vec<NodeId> = (0..10).collect();
        let pool = ScratchPool::for_graph(&g);
        let cache = DensityCache::for_graph(&g);
        let rel = RelabeledGraph::build(&g);
        let (ta, tb) = (
            translate_mask(rel.map(), &ma),
            translate_mask(rel.map(), &mb),
        );
        let rel_plan = KernelPlan {
            graph: rel.graph(),
            mask_a: &ta,
            mask_b: &tb,
            translate: Some(rel.map()),
            use_bitset: true,
            h: 2,
        };
        let mut s = BfsScratch::new(10);
        let serial = density_vectors(&g, &mut s, &refs, 2, &ma, &mb);
        // Cold pass through the relabeled bitset plan fills the cache…
        let cold = density_vectors_cached_plan(&rel_plan, &pool, &refs, &ka, &kb, 1, &cache);
        assert_eq!(serial, cold);
        assert_eq!(cache.bfs_invocations(), 10);
        // …and a scalar-plan pass over the same cache is pure hits:
        // entries are substrate-independent integers in original ids.
        let scalar_plan = KernelPlan::scalar(&g, &ma, &mb, 2);
        let warm = density_vectors_cached_plan(&scalar_plan, &pool, &refs, &ka, &kb, 1, &cache);
        assert_eq!(serial, warm);
        assert_eq!(cache.bfs_invocations(), 10, "warm pass ran no BFS");
    }

    #[test]
    fn multi_kernel_plan_matches_pairwise_counts_across_configs() {
        use tesc_graph::relabel::RelabeledGraph;
        let g = from_edges(
            140,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 64),
                (64, 65),
                (65, 129),
                (129, 139),
                (0, 70),
                (70, 100),
            ],
        );
        let event_sets: Vec<Vec<NodeId>> = vec![
            vec![0, 64, 129, 139],
            vec![2, 65, 70],
            vec![1, 3, 100],
            vec![],
        ];
        let masks: Vec<NodeMask> = event_sets
            .iter()
            .map(|e| NodeMask::from_nodes(140, e))
            .collect();
        let rel = RelabeledGraph::build(&g);
        let translated: Vec<NodeMask> =
            masks.iter().map(|m| translate_mask(rel.map(), m)).collect();
        let scalar = MultiKernelPlan {
            graph: &g,
            masks: &masks,
            translate: None,
            use_bitset: false,
            h: 2,
        };
        let bitset = MultiKernelPlan {
            use_bitset: true,
            ..scalar
        };
        let relabeled = MultiKernelPlan {
            graph: rel.graph(),
            masks: &translated,
            translate: Some(rel.map()),
            use_bitset: true,
            h: 2,
        };
        let mut s = BfsScratch::new(140);
        let mut counts = Vec::new();
        for r in [0u32, 3, 65, 100, 139] {
            for slots in [&[0u32, 1, 2, 3][..], &[2, 0], &[3]] {
                // Reference: one pairwise BFS per slot pair.
                let expect: Vec<u32> = slots
                    .iter()
                    .map(|&sl| {
                        density_counts(&g, &mut s, r, 2, &masks[sl as usize], &masks[0]).count_a
                            as u32
                    })
                    .collect();
                let mut sizes = Vec::new();
                for (label, plan) in [
                    ("scalar", &scalar),
                    ("bitset", &bitset),
                    ("bitset+relabel", &relabeled),
                ] {
                    let size = plan.counts_for(&mut s, r, slots, &mut counts);
                    assert_eq!(counts, expect, "r={r} slots={slots:?} {label}");
                    sizes.push(size);
                }
                assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes agree");
            }
        }
    }

    #[test]
    fn grouped_vectors_bit_identical_to_scalar_for_every_group_size() {
        use tesc_graph::relabel::RelabeledGraph;
        let g = from_edges(
            140,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 64),
                (64, 65),
                (65, 129),
                (129, 139),
                (0, 70),
                (70, 100),
            ],
        );
        let a = vec![0u32, 64, 129, 139];
        let b = vec![2u32, 65, 70];
        let (ma, mb) = masks(140, &a, &b);
        let refs: Vec<NodeId> = (0..140).collect();
        let pool = ScratchPool::for_graph(&g);
        let mut s = BfsScratch::new(140);
        let reference = density_vectors(&g, &mut s, &refs, 2, &ma, &mb);
        let slot_nodes = vec![a.clone(), b.clone()];
        let plain = GroupKernelPlan {
            graph: &g,
            slot_nodes: &slot_nodes,
            translate: None,
            h: 2,
        };
        let rel = RelabeledGraph::build(&g);
        let translated = vec![rel.map().map_to_new(&a), rel.map().map_to_new(&b)];
        let relabeled = GroupKernelPlan {
            graph: rel.graph(),
            slot_nodes: &translated,
            translate: Some(rel.map()),
            h: 2,
        };
        for group_size in [1usize, 7, 63, 64, 200] {
            for threads in [1usize, 3] {
                for (label, plan) in [("plain", &plain), ("relabeled", &relabeled)] {
                    let got = density_vectors_group_plan(plan, &pool, &refs, threads, group_size);
                    assert_eq!(
                        reference, got,
                        "{label}: group_size={group_size} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn grouped_counts_include_union_for_importance() {
        let g = from_edges(10, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let a = vec![0u32, 4];
        let b = vec![2u32, 4];
        let union = vec![0u32, 2, 4];
        let (ma, mb) = masks(10, &a, &b);
        let refs: Vec<NodeId> = (0..10).collect();
        let pool = ScratchPool::for_graph(&g);
        let mut s = BfsScratch::new(10);
        let slot_nodes = vec![a, b, union];
        let plan = GroupKernelPlan {
            graph: &g,
            slot_nodes: &slot_nodes,
            translate: None,
            h: 2,
        };
        let grouped = density_counts_group_plan(&plan, &pool, &refs, 1, 4);
        for (&r, got) in refs.iter().zip(&grouped) {
            let want = density_counts(&g, &mut s, r, 2, &ma, &mb);
            assert_eq!(&want, got, "r = {r}");
        }
    }

    #[test]
    fn cached_grouped_vectors_bit_identical_with_partial_memoization() {
        let g = from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (0, 5),
            ],
        );
        let a = vec![0u32, 4, 8];
        let b = vec![2u32, 9];
        let (ma, mb) = masks(10, &a, &b);
        let (ka, kb) = (EventKey::new(&a), EventKey::new(&b));
        let refs: Vec<NodeId> = (0..10).collect();
        let pool = ScratchPool::for_graph(&g);
        let cache = DensityCache::for_graph(&g);
        let mut s = BfsScratch::new(10);
        let serial = density_vectors(&g, &mut s, &refs, 2, &ma, &mb);
        let slot_nodes = vec![a.clone(), b.clone()];
        let plan = GroupKernelPlan {
            graph: &g,
            slot_nodes: &slot_nodes,
            translate: None,
            h: 2,
        };
        // Pre-memoize event a at a few nodes (partially-memoized
        // group: some lanes hit one slot, none hit both).
        let kplan = KernelPlan::scalar(&g, &ma, &mb, 2);
        let mut scratch = pool.acquire();
        for &r in &refs[0..4] {
            let c = kplan.counts(&mut scratch, r);
            cache.insert(
                &ka,
                r,
                2,
                CachedCount {
                    vicinity_size: c.vicinity_size as u32,
                    count: c.count_a as u32,
                },
            );
        }
        drop(scratch);
        let cold = density_vectors_cached_group_plan(&plan, &pool, &refs, &ka, &kb, 1, 4, &cache);
        assert_eq!(serial, cold, "partially-memoized grouped pass");
        assert_eq!(cache.bfs_invocations(), 10, "every node still BFSed once");
        // Warm pass: every slot memoized, zero BFS, identical bits.
        let warm = density_vectors_cached_group_plan(&plan, &pool, &refs, &ka, &kb, 2, 4, &cache);
        assert_eq!(serial, warm);
        assert_eq!(cache.bfs_invocations(), 10, "warm grouped pass ran no BFS");
    }

    #[test]
    fn translate_mask_permutes_members() {
        use tesc_graph::relabel::Relabeling;
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let map = Relabeling::locality_order(&g);
        let m = NodeMask::from_nodes(5, &[0, 3]);
        let t = translate_mask(&map, &m);
        assert_eq!(t.len(), 2);
        assert!(t.contains(map.to_new(0)) && t.contains(map.to_new(3)));
    }
}
