//! The pair-set query planner — staged execution for many TESC tests
//! over one graph, with a **fused multi-event density pass**.
//!
//! [`crate::batch`] made many tests *parallel*; this module makes them
//! *shared*. A realistic request ("rank every keyword pair of this
//! scenario") names far fewer distinct events than pairs, and the
//! per-pair engine path re-walks the same reference vicinities once
//! per pair — the cross-pair [`DensityCache`] recovers some of that
//! after the fact, but a cache can only skip a BFS when *every* slot
//! of a pair already hit. A planner can do better by looking at the
//! whole pair set before executing anything, the way a database
//! planner shares scans across queries:
//!
//! ```text
//!  pairs ──► plan ──► sample ──► fused density ──► scatter ──► correlate
//!            (a)        (a)          (b)             (c)          (c)
//! ```
//!
//! * **plan + sample (stage a).** Normalize every pair's occurrence
//!   sets, draw each pair's reference sample with its own seeded RNG
//!   stream (bit-identical to [`TescEngine::test`] — the planner calls
//!   the *same* sampler code with the *same* stream), deduplicate the
//!   distinct events into a content-addressed registry
//!   ([`EventKey`]-keyed, so two pairs naming the same node set share
//!   one slot), and derive the deduplicated reference-node **workset**:
//!   each distinct node, tagged with the event slots that touch it.
//! * **fused density (stage b).** ONE `h`-hop BFS per distinct
//!   reference node, scored against *all* its events in a single
//!   word sweep over the visited bitmap
//!   ([`crate::density::MultiKernelPlan`], the M-event generalization
//!   of `density_counts_bitset`). Kernel × relabeling × cache all
//!   compose exactly as in the per-pair path: the BFS runs on the
//!   engine's substrate with the engine's kernel, and an attached
//!   [`DensityCache`] is consulted first via its multi-event probe
//!   ([`DensityCache::lookup_many`]) — a node whose every slot is
//!   memoized skips its BFS entirely.
//! * **scatter + correlate (stage c).** The per-(event, node) counts
//!   are scattered back into each pair's density vectors (in that
//!   pair's own sample order) and the existing correlate/significance
//!   stages run unchanged ([`TescEngine`]'s `finish_uniform` /
//!   `finish_weighted` — literally the same functions).
//!
//! **Bit-identity.** Every number the planner produces is bit-identical
//! to independent [`TescEngine::test`] calls with the same per-pair
//! seeds: sampling shares the engine's code and RNG streams, fused
//! counts are the same integers a per-pair BFS measures (set
//! cardinalities are kernel- and permutation-independent), and
//! densities/statistics are derived with the identical arithmetic.
//! Asserted in `tests/ranking.rs` for all five samplers, at 1 and 4
//! threads, across kernel/relabel/cache configurations.
//!
//! **Why it is faster.** With `P` pairs sharing events, the per-pair
//! path (even fully cached) runs one BFS per *(pair, reference node)*
//! whose slots are not both memoized; the planner runs one BFS per
//! *distinct* reference node of the whole set. The
//! `fused/allpairs` rows of the `rank_events` bench measure the ratio
//! (`Σ_i n_i` sampled vs [`PairSetPlan::distinct_refs`] distinct).
//!
//! The planner backs [`crate::batch::run_batch`]'s parallel path and
//! the [`crate::rank`] top-K subsystem.

use crate::batch::{EventPair, PairOutcome};
use crate::cache::{CachedCount, DensityCache, EventKey, ProbeGovernor};
use crate::density::{map_refs_pooled, run_grouped, translate_mask, GroupSlots, MultiKernelPlan};
use crate::engine::{normalize, Statistic, TescConfig, TescEngine, TescError, TescResult};
use crate::sampler::{importance_sample, SamplerKind, UniformSample, WeightedSample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use tesc_events::{store::merge_union, NodeMask};
use tesc_graph::{Adjacency, Budget, CsrGraph, Interrupted, NodeId};

/// Sampling outcome of one pair, before event registration.
struct Sampled {
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    union: Vec<NodeId>,
    kind: Result<SampledKind, TescError>,
}

enum SampledKind {
    Uniform(UniformSample),
    Weighted(WeightedSample),
}

/// One pair after the plan/sample stages: its reference sample plus
/// the registry slots of the events its densities need.
#[derive(Debug, Clone)]
enum PlannedState {
    /// Uniform-sampler pair: densities of `a` and `b` only.
    Uniform {
        sample: UniformSample,
        slot_a: u32,
        slot_b: u32,
    },
    /// Importance-sampler pair: additionally needs
    /// `|V_{a∪b} ∩ V^h_r|` for the ω weights, carried as a third
    /// content-addressed "event" (the union set) so it fuses like any
    /// other slot.
    Weighted {
        sample: WeightedSample,
        slot_a: u32,
        slot_b: u32,
        slot_union: u32,
    },
}

#[derive(Debug, Clone)]
struct PlannedPair {
    label: String,
    state: Result<PlannedState, TescError>,
}

/// Per-distinct-node result of the fused density pass.
#[derive(Debug, Clone)]
struct NodeDensity {
    size: u32,
    counts: Vec<u32>,
    did_bfs: bool,
}

/// The materialized output of [`PairSetPlan::run_density`]: per
/// distinct reference node, `|V^h_r|` and one intersection count per
/// event slot touching that node (aligned with the plan's slot lists).
#[derive(Debug, Clone)]
pub struct FusedDensities {
    sizes: Vec<u32>,
    counts: Vec<Vec<u32>>,
    bfs_run: u64,
    traversals: u64,
}

impl FusedDensities {
    /// How many reference nodes the fused pass actually measured by
    /// BFS (nodes whose every slot hit an attached cache are skipped).
    /// Counted per **node**, not per traversal, so cache accounting is
    /// identical whether those nodes ran one single-source search each
    /// or were batched 64 to a multi-source traversal — see
    /// [`FusedDensities::traversals`] for the physical count.
    #[inline]
    pub fn bfs_run(&self) -> u64 {
        self.bfs_run
    }

    /// How many graph traversals the fused pass physically executed:
    /// equals [`FusedDensities::bfs_run`] on the per-node path, and the
    /// number of source groups (`⌈bfs_run / group_size⌉`) when the
    /// engine's kernel engaged multi-source batching —
    /// `bfs_run / traversals` is the edge-scan amortization factor.
    #[inline]
    pub fn traversals(&self) -> u64 {
        self.traversals
    }
}

/// A planned pair set: stage (a) complete, ready for the fused density
/// pass and per-pair finish. See the module docs for the stage
/// diagram and the bit-identity contract.
pub struct PairSetPlan<'e, 'g, G = CsrGraph> {
    engine: &'e TescEngine<'g, G>,
    cfg: TescConfig,
    pairs: Vec<PlannedPair>,
    /// Content-addressed registry of distinct events (+ importance
    /// unions); `keys[s]` and `masks[s]` describe slot `s`.
    keys: Vec<EventKey>,
    masks: Vec<NodeMask>,
    /// Registry masks translated into the relabeled substrate's id
    /// space, present iff the engine carries a relabeled substrate —
    /// translated once per distinct event, not once per pair.
    substrate_masks: Option<Vec<NodeMask>>,
    /// Distinct reference-node workset, ascending.
    nodes: Vec<NodeId>,
    /// `slot_lists[i]` = sorted distinct event slots node `nodes[i]`
    /// must be scored against.
    slot_lists: Vec<Vec<u32>>,
    sampled_refs: usize,
}

impl<'e, 'g, G: Adjacency> PairSetPlan<'e, 'g, G> {
    /// Stage (a): sample every pair (pair `i` draws from
    /// `StdRng::seed_from_u64(seeds[i])`, exactly like
    /// [`TescEngine::test`] would with that RNG), register the
    /// distinct events, and derive the deduplicated reference
    /// workset. Sampling fans out over `threads` scoped workers with
    /// indexed output slots, so the plan is independent of thread
    /// count and schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `seeds.len() == pairs.len()`.
    pub fn build(
        engine: &'e TescEngine<'g, G>,
        pairs: &[EventPair],
        cfg: &TescConfig,
        seeds: &[u64],
        threads: usize,
    ) -> Self {
        assert_eq!(pairs.len(), seeds.len(), "one seed per pair");
        let sampled = sample_stage(engine, cfg, pairs, seeds, threads);

        // Content-addressed event registration (serial: deterministic
        // slot numbering in first-appearance order).
        let num_nodes = engine.graph().num_nodes();
        let mut keys: Vec<EventKey> = Vec::new();
        let mut masks: Vec<NodeMask> = Vec::new();
        let mut slot_of: HashMap<EventKey, u32> = HashMap::new();
        let mut register = |nodes: Vec<NodeId>| -> u32 {
            let key = EventKey::from_normalized(nodes);
            *slot_of.entry(key.clone()).or_insert_with(|| {
                let slot = keys.len() as u32;
                masks.push(NodeMask::from_nodes(num_nodes, key.nodes()));
                keys.push(key);
                slot
            })
        };
        let mut planned = Vec::with_capacity(pairs.len());
        for (pair, s) in pairs.iter().zip(sampled) {
            let state = match s.kind {
                Err(e) => Err(e),
                Ok(SampledKind::Uniform(sample)) => Ok(PlannedState::Uniform {
                    sample,
                    slot_a: register(s.a),
                    slot_b: register(s.b),
                }),
                Ok(SampledKind::Weighted(sample)) => Ok(PlannedState::Weighted {
                    sample,
                    slot_a: register(s.a),
                    slot_b: register(s.b),
                    slot_union: register(s.union),
                }),
            };
            planned.push(PlannedPair {
                label: pair.label.clone(),
                state,
            });
        }

        // Deduplicated reference workset: distinct node → slots.
        let mut node_slots: HashMap<NodeId, Vec<u32>> = HashMap::new();
        let mut sampled_refs = 0usize;
        for p in &planned {
            let (nodes, slots): (&[NodeId], Vec<u32>) = match &p.state {
                Err(_) => continue,
                Ok(PlannedState::Uniform {
                    sample,
                    slot_a,
                    slot_b,
                }) => (&sample.nodes, vec![*slot_a, *slot_b]),
                Ok(PlannedState::Weighted {
                    sample,
                    slot_a,
                    slot_b,
                    slot_union,
                }) => (&sample.nodes, vec![*slot_a, *slot_b, *slot_union]),
            };
            sampled_refs += nodes.len();
            for &r in nodes {
                node_slots.entry(r).or_default().extend_from_slice(&slots);
            }
        }
        let mut nodes: Vec<NodeId> = node_slots.keys().copied().collect();
        nodes.sort_unstable();
        let slot_lists: Vec<Vec<u32>> = nodes
            .iter()
            .map(|r| {
                let mut v = node_slots.remove(r).expect("workset node");
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();

        let substrate_masks = engine
            .relabeled()
            .map(|rel| masks.iter().map(|m| translate_mask(rel.map(), m)).collect());

        PairSetPlan {
            engine,
            cfg: *cfg,
            pairs: planned,
            keys,
            masks,
            substrate_masks,
            nodes,
            slot_lists,
            sampled_refs,
        }
    }

    /// Number of pairs in the plan (request order is preserved
    /// throughout).
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of distinct events (+ importance union sets) registered
    /// across the pair set.
    #[inline]
    pub fn num_events(&self) -> usize {
        self.keys.len()
    }

    /// Size of the deduplicated reference workset — the number of
    /// density BFS searches stage (b) runs at most (an attached cache
    /// can skip some).
    #[inline]
    pub fn distinct_refs(&self) -> usize {
        self.nodes.len()
    }

    /// Total sampled reference nodes across all pairs (`Σ_i n_i`) —
    /// what the per-pair path would BFS. `sampled_refs() /
    /// distinct_refs()` is the fused pass's work-sharing factor.
    #[inline]
    pub fn sampled_refs(&self) -> usize {
        self.sampled_refs
    }

    /// Resolve the fused density execution plan on the engine's
    /// substrate/kernel, mirroring the per-pair `density_plan`.
    fn multi_plan(&self) -> MultiKernelPlan<'_, G> {
        let h = self.cfg.h;
        match (self.engine.relabeled(), &self.substrate_masks) {
            (Some(rel), Some(tm)) => MultiKernelPlan {
                graph: rel.graph(),
                masks: tm,
                translate: Some(rel.map()),
                use_bitset: self.engine.density_kernel().use_bitset(rel.graph(), h),
                h,
            },
            _ => MultiKernelPlan {
                graph: self.engine.graph(),
                masks: &self.masks,
                translate: None,
                use_bitset: self
                    .engine
                    .density_kernel()
                    .use_bitset(self.engine.graph(), h),
                h,
            },
        }
    }

    /// Stage (b): the fused density pass, scored against all of each
    /// node's event slots. With an attached [`DensityCache`], every
    /// slot is probed first ([`DensityCache::lookup_many`] — all slots
    /// of one node under one shard lock) and cache-pending nodes only
    /// proceed to BFS; fresh counts fill the missing slots per lane.
    /// Output is positionally deterministic at any thread count.
    ///
    /// Two executors, chosen by the engine's kernel policy
    /// ([`BfsKernel::use_multi_source`](tesc_graph::BfsKernel::use_multi_source)),
    /// both bit-identical:
    ///
    /// * **per-node** — one `h`-hop BFS per pending node
    ///   ([`MultiKernelPlan`], a single visited-bitmap word sweep per
    ///   node);
    /// * **source-grouped** — pending nodes batched up to 64 per
    ///   multi-source traversal ([`crate::density::GroupKernelPlan`]), one bit-lane
    ///   each, so adjacent workset nodes stop re-streaming the same
    ///   edge lists (the `fused` rows of the `rank_events` bench
    ///   measure the effect).
    pub fn run_density(&self, threads: usize) -> FusedDensities {
        self.run_density_budgeted(threads, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// [`PairSetPlan::run_density`] under a [`Budget`] (checked per
    /// BFS frontier level and per source group): an interrupted pass
    /// returns the typed error, publishes nothing, and leaves any
    /// attached cache holding only counts from completed traversals.
    pub fn run_density_budgeted(
        &self,
        threads: usize,
        budget: &Budget,
    ) -> Result<FusedDensities, Interrupted> {
        match self.group_size() {
            Some(group_size) => self.run_density_grouped(threads, group_size, budget),
            None => self.run_density_per_node(threads, budget),
        }
    }

    /// Group size for stage (b), when the engine's kernel policy
    /// engages multi-source batching for this workset.
    fn group_size(&self) -> Option<usize> {
        self.engine
            .density_kernel()
            .use_multi_source(self.engine.graph(), self.cfg.h, self.nodes.len())
            .then(|| self.engine.source_group_size())
    }

    /// Stage (b), grouped executor: cache probe per node, then the
    /// pending workset partitioned into consecutive source groups.
    fn run_density_grouped(
        &self,
        threads: usize,
        group_size: usize,
        budget: &Budget,
    ) -> Result<FusedDensities, Interrupted> {
        let h = self.cfg.h;
        // Substrate-space occurrence lists, translated once per
        // distinct event — via the engine's own grouped-plan helpers,
        // so substrate resolution cannot drift between the per-pair
        // and fused paths.
        let key_sets: Vec<&[NodeId]> = self.keys.iter().map(|k| k.nodes()).collect();
        let slot_nodes = self.engine.group_slot_nodes(&key_sets);
        let gplan = self.engine.group_plan(&slot_nodes, h);
        let cache: Option<&DensityCache> = self.engine.density_cache().map(|c| c.as_ref());
        let n = self.nodes.len();
        let mut sizes = vec![0u32; n];
        let mut counts: Vec<Vec<u32>> = vec![Vec::new(); n];

        // Cache-probe stage: fully-memoized nodes resolve without a
        // BFS; the rest join the grouped traversals with their hit
        // vectors kept for the per-lane fill.
        let mut pending: Vec<usize> = Vec::new();
        // Per pending node: its probe outcome (all-`None` when the
        // pass's governor dropped the probe — the node is treated as a
        // full miss and its fresh counts still warm the cache).
        let mut pending_hits: Vec<Vec<Option<CachedCount>>> = Vec::new();
        if let Some(cache) = cache {
            // Probe stage, parallel (crate::density::map_indexed): on a
            // warm cache the whole pass is nothing but probes, so they
            // fan out like the BFS stage does.
            let governor = ProbeGovernor::new();
            let probes = crate::density::map_indexed(n, threads, Vec::new(), |i| {
                let mut hits: Vec<Option<CachedCount>> = Vec::new();
                if governor.engaged() {
                    let all = cache.lookup_many(
                        self.slot_lists[i].iter().map(|&s| &self.keys[s as usize]),
                        self.nodes[i],
                        h,
                        &mut hits,
                    );
                    governor.record(all);
                } else {
                    hits.resize(self.slot_lists[i].len(), None);
                }
                hits
            });
            for (i, hits) in probes.into_iter().enumerate() {
                if hits.iter().all(Option::is_some) {
                    let size = hits[0].expect("all slots hit").vicinity_size;
                    debug_assert!(
                        hits.iter().all(|c| c.expect("hit").vicinity_size == size),
                        "inconsistent cache"
                    );
                    sizes[i] = size;
                    counts[i] = hits.iter().map(|c| c.expect("hit").count).collect();
                } else {
                    pending.push(i);
                    pending_hits.push(hits);
                }
            }
        } else {
            pending = (0..n).collect();
        }

        let nodes: Vec<NodeId> = pending.iter().map(|&i| self.nodes[i]).collect();
        let slot_refs: Vec<&[u32]> = pending
            .iter()
            .map(|&i| self.slot_lists[i].as_slice())
            .collect();
        let group_size = group_size.clamp(1, tesc_graph::MAX_GROUP_SOURCES);
        // `run_grouped` re-checks the budget after the traversals, so
        // reaching the scatter below means every fresh count is from a
        // completed search — the bulk cache insertion stays safe.
        let (fresh_sizes, fresh_counts) = run_grouped(
            &gplan,
            self.engine.pool(),
            &nodes,
            &GroupSlots::PerNode(&slot_refs),
            threads,
            group_size,
            budget,
        )?;

        // Scatter + cache fill, per lane: prefer the memoized integer
        // where a slot hit (same value, same policy as the per-node
        // path); the fresh ones accumulate into one bulk insertion —
        // one lock per shard for the whole pass, not one per node.
        let mut bulk: Vec<(NodeId, &EventKey, CachedCount)> = Vec::new();
        for (k, (&i, fresh)) in pending.iter().zip(fresh_counts).enumerate() {
            let r = self.nodes[i];
            let size = fresh_sizes[k];
            sizes[i] = size;
            if cache.is_some() {
                let slots = &self.slot_lists[i];
                let hits = &pending_hits[k];
                counts[i] = slots
                    .iter()
                    .enumerate()
                    .map(|(j, &s)| match hits[j] {
                        Some(c) => {
                            debug_assert_eq!(c.vicinity_size, size, "inconsistent cache");
                            c.count
                        }
                        None => {
                            bulk.push((
                                r,
                                &self.keys[s as usize],
                                CachedCount {
                                    vicinity_size: size,
                                    count: fresh[j],
                                },
                            ));
                            fresh[j]
                        }
                    })
                    .collect();
            } else {
                counts[i] = fresh;
            }
        }
        if let Some(cache) = cache {
            cache.record_bfs_n(pending.len() as u64);
            cache.insert_bulk(h, bulk);
        }
        Ok(FusedDensities {
            sizes,
            counts,
            bfs_run: pending.len() as u64,
            traversals: nodes.len().div_ceil(group_size) as u64,
        })
    }

    /// Stage (b), per-node executor: one BFS per pending reference
    /// node (fanned out over `threads` pooled workers), scored against
    /// all of that node's event slots in a single visited-bitmap
    /// sweep.
    fn run_density_per_node(
        &self,
        threads: usize,
        budget: &Budget,
    ) -> Result<FusedDensities, Interrupted> {
        let mplan = self.multi_plan();
        let cache: Option<&DensityCache> = self.engine.density_cache().map(|c| c.as_ref());
        let h = self.cfg.h;
        let default = NodeDensity {
            size: 0,
            counts: Vec::new(),
            did_bfs: false,
        };
        let skipped = || NodeDensity {
            size: 0,
            counts: Vec::new(),
            did_bfs: false,
        };
        let governor = ProbeGovernor::new();
        let per_node = map_refs_pooled(
            self.engine.pool(),
            &self.nodes,
            threads,
            default,
            |scratch, r| {
                // Exhaustion is sticky, so skipped/interrupted nodes
                // leave sentinel slots that the post-map check below is
                // guaranteed to discard wholesale.
                if budget.is_exhausted() {
                    return skipped();
                }
                let i = self.nodes.binary_search(&r).expect("workset node");
                let slots = &self.slot_lists[i];
                let Some(cache) = cache else {
                    let mut counts = Vec::new();
                    let Ok(size) =
                        mplan.counts_for_budgeted(scratch, r, slots, &mut counts, budget)
                    else {
                        return skipped();
                    };
                    return NodeDensity {
                        size: size as u32,
                        counts,
                        did_bfs: true,
                    };
                };
                let mut hits: Vec<Option<CachedCount>> = Vec::with_capacity(slots.len());
                // The pass's governor drops the probe — but never the
                // insert — once measured sharing stops paying for it.
                let all = if governor.engaged() {
                    let all = cache.lookup_many(
                        slots.iter().map(|&s| &self.keys[s as usize]),
                        r,
                        h,
                        &mut hits,
                    );
                    governor.record(all);
                    all
                } else {
                    hits.clear();
                    hits.resize(slots.len(), None);
                    false
                };
                if all {
                    let size = hits[0].expect("all slots hit").vicinity_size;
                    debug_assert!(
                        hits.iter().all(|c| c.expect("hit").vicinity_size == size),
                        "inconsistent cache"
                    );
                    return NodeDensity {
                        size,
                        counts: hits.iter().map(|c| c.expect("hit").count).collect(),
                        did_bfs: false,
                    };
                }
                let mut fresh = Vec::new();
                // Only a completed BFS may warm the cache: partial
                // counts from an interrupted traversal are never
                // memoized.
                let Ok(size) = mplan.counts_for_budgeted(scratch, r, slots, &mut fresh, budget)
                else {
                    return skipped();
                };
                let size = size as u32;
                cache.record_bfs();
                // Prefer the memoized integer where a slot hit (same
                // value, same policy as the per-pair cached path);
                // insert the fresh ones.
                let counts: Vec<u32> = slots
                    .iter()
                    .enumerate()
                    .map(|(j, &s)| match hits[j] {
                        Some(c) => {
                            debug_assert_eq!(c.vicinity_size, size, "inconsistent cache");
                            c.count
                        }
                        None => {
                            cache.insert(
                                &self.keys[s as usize],
                                r,
                                h,
                                CachedCount {
                                    vicinity_size: size,
                                    count: fresh[j],
                                },
                            );
                            fresh[j]
                        }
                    })
                    .collect();
                NodeDensity {
                    size,
                    counts,
                    did_bfs: true,
                }
            },
        );
        budget.check()?;
        let bfs_run = per_node.iter().filter(|d| d.did_bfs).count() as u64;
        let (sizes, counts) = per_node.into_iter().map(|d| (d.size, d.counts)).unzip();
        Ok(FusedDensities {
            sizes,
            counts,
            bfs_run,
            traversals: bfs_run,
        })
    }

    /// Stage (c) for the whole set: scatter + correlate every pair, in
    /// request order. Per-pair failures (empty events, too few
    /// reference nodes, …) are reported in place, exactly like
    /// [`crate::batch::run_batch`].
    pub fn finish(&self, fused: &FusedDensities) -> Vec<PairOutcome> {
        (0..self.pairs.len())
            .map(|i| self.finish_pair(i, fused))
            .collect()
    }

    /// Stage (c) for one pair: scatter its density vectors out of the
    /// fused counts and run the unchanged correlate/significance
    /// stage.
    pub fn finish_pair(&self, index: usize, fused: &FusedDensities) -> PairOutcome {
        PairOutcome {
            index,
            label: self.pairs[index].label.clone(),
            result: self.pair_result(index, fused),
        }
    }

    fn pair_result(&self, index: usize, fused: &FusedDensities) -> Result<TescResult, TescError> {
        let vectors = self.vectors(index, fused)?;
        Ok(self.result_from_vectors(index, &vectors))
    }

    /// Correlate stage for one pair whose vectors were already
    /// scattered (the rank subsystem computes its significance-budget
    /// bound on the vectors first, then finishes only the survivors).
    pub(crate) fn result_from_vectors(&self, index: usize, vectors: &PairVectors) -> TescResult {
        match (vectors, &self.pairs[index].state) {
            (PairVectors::Uniform { sa, sb }, Ok(PlannedState::Uniform { sample, .. })) => {
                TescEngine::<CsrGraph>::finish_uniform(sa, sb, sample, &self.cfg)
            }
            (
                PairVectors::Weighted { sa, sb, omega },
                Ok(PlannedState::Weighted { sample, .. }),
            ) => TescEngine::<CsrGraph>::finish_weighted(sa, sb, omega, sample, &self.cfg),
            _ => unreachable!("vectors() and state agree by construction"),
        }
    }

    /// Fused count for `(slot, r)`: `(|V^h_r|, |V_slot ∩ V^h_r|)`.
    fn count_at(&self, fused: &FusedDensities, r: NodeId, slot: u32) -> (u32, u32) {
        let i = self
            .nodes
            .binary_search(&r)
            .expect("sampled node in workset");
        let j = self.slot_lists[i]
            .binary_search(&slot)
            .expect("pair slot registered for node");
        (fused.sizes[i], fused.counts[i][j])
    }

    /// Scatter one pair's density vectors (and ω weights for
    /// importance pairs) out of the fused counts, in the pair's own
    /// sample order — the input of the correlate stage and of the
    /// top-K significance-budget bound in [`crate::rank`].
    pub(crate) fn vectors(
        &self,
        index: usize,
        fused: &FusedDensities,
    ) -> Result<PairVectors, TescError> {
        match &self.pairs[index].state {
            Err(e) => Err(e.clone()),
            Ok(PlannedState::Uniform {
                sample,
                slot_a,
                slot_b,
            }) => {
                let n = sample.nodes.len();
                let (mut sa, mut sb) = (Vec::with_capacity(n), Vec::with_capacity(n));
                for &r in &sample.nodes {
                    let (size, ca) = self.count_at(fused, r, *slot_a);
                    let (_, cb) = self.count_at(fused, r, *slot_b);
                    sa.push(ca as f64 / size as f64);
                    sb.push(cb as f64 / size as f64);
                }
                Ok(PairVectors::Uniform { sa, sb })
            }
            Ok(PlannedState::Weighted {
                sample,
                slot_a,
                slot_b,
                slot_union,
            }) => {
                let n = sample.nodes.len();
                let (mut sa, mut sb) = (Vec::with_capacity(n), Vec::with_capacity(n));
                let mut omega = Vec::with_capacity(n);
                for (i, &r) in sample.nodes.iter().enumerate() {
                    let (size, ca) = self.count_at(fused, r, *slot_a);
                    let (_, cb) = self.count_at(fused, r, *slot_b);
                    let (_, cu) = self.count_at(fused, r, *slot_union);
                    debug_assert!(cu > 0, "sampled node must see an event");
                    sa.push(ca as f64 / size as f64);
                    sb.push(cb as f64 / size as f64);
                    omega.push(sample.multiplicities[i] as f64 / cu as f64);
                }
                Ok(PairVectors::Weighted { sa, sb, omega })
            }
        }
    }
}

/// One pair's scattered density vectors.
pub(crate) enum PairVectors {
    Uniform {
        sa: Vec<f64>,
        sb: Vec<f64>,
    },
    Weighted {
        sa: Vec<f64>,
        sb: Vec<f64>,
        omega: Vec<f64>,
    },
}

/// Stage (a) fan-out: sample every pair into indexed slots.
fn sample_stage<G: Adjacency>(
    engine: &TescEngine<'_, G>,
    cfg: &TescConfig,
    pairs: &[EventPair],
    seeds: &[u64],
    threads: usize,
) -> Vec<Sampled> {
    let threads = threads.max(1).min(pairs.len().max(1));
    let mut out: Vec<Option<Sampled>> = (0..pairs.len()).map(|_| None).collect();
    if threads == 1 || pairs.len() < 2 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Some(sample_one(engine, cfg, &pairs[i], seeds[i]));
        }
    } else {
        let chunk = pairs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for ((pair_c, seed_c), out_c) in pairs
                .chunks(chunk)
                .zip(seeds.chunks(chunk))
                .zip(out.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for ((pair, &seed), slot) in pair_c.iter().zip(seed_c).zip(out_c.iter_mut()) {
                        *slot = Some(sample_one(engine, cfg, pair, seed));
                    }
                });
            }
        });
    }
    out.into_iter()
        .map(|s| s.expect("every pair sampled exactly once"))
        .collect()
}

/// Sample one pair, replicating [`TescEngine::test`]'s normalization,
/// validation and RNG consumption exactly (same sampler code, same
/// stream ⇒ same sample, bit for bit).
fn sample_one<G: Adjacency>(
    engine: &TescEngine<'_, G>,
    cfg: &TescConfig,
    pair: &EventPair,
    seed: u64,
) -> Sampled {
    // Per-pair budget check: once the engine's budget exhausts, the
    // remaining pairs sample nothing. The caller's own sticky check
    // then fails the whole request, so these per-pair sentinels never
    // surface as outcomes.
    if let Err(e) = engine.budget().check() {
        return Sampled {
            a: Vec::new(),
            b: Vec::new(),
            union: Vec::new(),
            kind: Err(e.into()),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let a = normalize(&pair.a);
    let b = normalize(&pair.b);
    let union = merge_union(&a, &b);
    if union.is_empty() {
        return Sampled {
            a,
            b,
            union,
            kind: Err(TescError::NoEventNodes),
        };
    }
    let kind = match cfg.sampler {
        SamplerKind::Importance { batch_size } => {
            if cfg.statistic != Statistic::KendallTau {
                Err(TescError::StatisticUnsupportedBySampler)
            } else {
                match engine.require_vicinity(cfg.h) {
                    Err(e) => Err(e),
                    Ok(vic) => {
                        let max_draws = cfg.max_draw_factor.saturating_mul(cfg.sample_size).max(1);
                        let mut scratch = engine.pool().acquire();
                        let sample = importance_sample(
                            engine.graph(),
                            &mut scratch,
                            &union,
                            vic,
                            cfg.h,
                            cfg.sample_size,
                            batch_size,
                            max_draws,
                            &mut rng,
                        );
                        if sample.nodes.len() < 3 {
                            Err(TescError::TooFewReferenceNodes {
                                found: sample.nodes.len(),
                            })
                        } else {
                            Ok(SampledKind::Weighted(sample))
                        }
                    }
                }
            }
        }
        _ => {
            let mut scratch = engine.pool().acquire();
            engine
                .draw_uniform_sample(&mut scratch, &union, cfg, &mut rng)
                .map(SampledKind::Uniform)
        }
    };
    Sampled { a, b, union, kind }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::pair_seed;
    use rand::Rng;
    use tesc_graph::bfs::BfsKernel;
    use tesc_graph::generators::{barabasi_albert, grid};
    use tesc_graph::VicinityIndex;

    fn pairs_sharing_events(num_nodes: usize, seed: u64) -> Vec<EventPair> {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared: Vec<NodeId> = (0..40).collect();
        let mut pairs = Vec::new();
        for i in 0..5 {
            let base = rng.gen_range(0..num_nodes as NodeId - 40);
            let partner: Vec<NodeId> = (base..base + 40).collect();
            pairs.push(EventPair::new(
                format!("shared×{i}"),
                shared.clone(),
                partner,
            ));
        }
        pairs.push(EventPair::new("empty", vec![], vec![])); // fails in place
        pairs.push(EventPair::new("repeat", shared.clone(), pairs[0].b.clone()));
        pairs
    }

    fn assert_plan_matches_engine(
        engine: &TescEngine<'_>,
        reference: &TescEngine<'_>,
        pairs: &[EventPair],
        cfg: &TescConfig,
        threads: usize,
        context: &str,
    ) {
        let seeds: Vec<u64> = (0..pairs.len()).map(|i| pair_seed(99, i)).collect();
        let plan = PairSetPlan::build(engine, pairs, cfg, &seeds, threads);
        let fused = plan.run_density(threads);
        let outcomes = plan.finish(&fused);
        assert_eq!(outcomes.len(), pairs.len());
        for (i, pair) in pairs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seeds[i]);
            let direct = reference.test(&pair.a, &pair.b, cfg, &mut rng);
            assert_eq!(outcomes[i].result, direct, "{context}: pair {i}");
            if let (Ok(a), Ok(b)) = (&outcomes[i].result, &direct) {
                assert_eq!(a.z().to_bits(), b.z().to_bits(), "{context}: pair {i} z");
            }
        }
    }

    #[test]
    fn plan_bit_identical_to_engine_for_every_sampler() {
        let g = barabasi_albert(1500, 3, &mut StdRng::seed_from_u64(1));
        let idx = VicinityIndex::build(&g, 2);
        let engine = TescEngine::with_vicinity_index(&g, &idx);
        let pairs = pairs_sharing_events(1500, 2);
        for sampler in [
            SamplerKind::BatchBfs,
            SamplerKind::Rejection,
            SamplerKind::Importance { batch_size: 1 },
            SamplerKind::Importance { batch_size: 3 },
            SamplerKind::WholeGraph,
        ] {
            let cfg = TescConfig::new(2)
                .with_sample_size(120)
                .with_sampler(sampler);
            for threads in [1usize, 4] {
                assert_plan_matches_engine(
                    &engine,
                    &engine,
                    &pairs,
                    &cfg,
                    threads,
                    &format!("{sampler} @ {threads}t"),
                );
            }
        }
    }

    #[test]
    fn plan_composes_with_kernel_relabel_and_cache() {
        let g = barabasi_albert(1500, 3, &mut StdRng::seed_from_u64(3));
        let pairs = pairs_sharing_events(1500, 4);
        let cfg = TescConfig::new(2).with_sample_size(120);
        let reference = TescEngine::new(&g);
        let cache = std::sync::Arc::new(DensityCache::for_graph(&g));
        let configured = TescEngine::new(&g)
            .with_density_kernel(BfsKernel::Bitset)
            .with_relabeling(true)
            .with_density_cache(cache.clone());
        assert_plan_matches_engine(
            &configured,
            &reference,
            &pairs,
            &cfg,
            4,
            "bitset+relabel+cache (cold)",
        );
        // Note: a *single* fused pass probes each distinct node once,
        // so a cold run has no hits — cross-pair sharing shows up as
        // fewer BFS, and hits appear on warm re-runs.
        let cold_bfs = cache.bfs_invocations();
        assert!(cold_bfs > 0);
        // Warm re-run: the whole workset is memoized, so the fused
        // pass skips every BFS.
        let seeds: Vec<u64> = (0..pairs.len()).map(|i| pair_seed(99, i)).collect();
        let plan = PairSetPlan::build(&configured, &pairs, &cfg, &seeds, 1);
        let fused = plan.run_density(1);
        assert_eq!(fused.bfs_run(), 0, "warm cache skips all fused BFS");
        assert_eq!(cache.bfs_invocations(), cold_bfs);
        assert!(cache.hits() > 0, "warm pass is answered from memory");
        assert_plan_matches_engine(&configured, &reference, &pairs, &cfg, 1, "warm cache");
    }

    #[test]
    fn fused_pass_shares_work_across_pairs() {
        // k pairs sharing an event over overlapping reference
        // populations: the fused pass runs one BFS per *distinct*
        // node; the per-pair path would run Σ n_i.
        let g = grid(30, 30);
        let pairs = pairs_sharing_events(900, 5);
        let cfg = TescConfig::new(1).with_sample_size(100_000); // exhaustive
        let engine = TescEngine::new(&g);
        let seeds: Vec<u64> = (0..pairs.len()).map(|i| pair_seed(7, i)).collect();
        let plan = PairSetPlan::build(&engine, &pairs, &cfg, &seeds, 1);
        assert!(plan.distinct_refs() < plan.sampled_refs());
        let fused = plan.run_density(1);
        assert_eq!(fused.bfs_run(), plan.distinct_refs() as u64);
        // The repeat pair registered no new event: content addressing
        // deduplicates the registry.
        assert_eq!(plan.num_events(), 6, "shared + 5 partners, repeat deduped");
        assert_eq!(plan.num_pairs(), pairs.len());
    }

    #[test]
    fn grouped_fused_pass_bit_identical_and_counts_traversals() {
        let g = barabasi_albert(1500, 3, &mut StdRng::seed_from_u64(9));
        let pairs = pairs_sharing_events(1500, 10);
        let cfg = TescConfig::new(2).with_sample_size(120);
        let seeds: Vec<u64> = (0..pairs.len()).map(|i| pair_seed(99, i)).collect();
        let per_node_engine = TescEngine::new(&g).with_density_kernel(BfsKernel::Bitset);
        let per_node_plan = PairSetPlan::build(&per_node_engine, &pairs, &cfg, &seeds, 1);
        let reference = per_node_plan.run_density(1);
        let ref_outcomes = per_node_plan.finish(&reference);
        assert_eq!(reference.bfs_run(), reference.traversals());
        for group_size in [1usize, 63, 64] {
            let engine = TescEngine::new(&g)
                .with_density_kernel(BfsKernel::Multi)
                .with_source_group_size(group_size);
            let plan = PairSetPlan::build(&engine, &pairs, &cfg, &seeds, 1);
            for threads in [1usize, 4] {
                let fused = plan.run_density(threads);
                assert_eq!(
                    fused.bfs_run(),
                    plan.distinct_refs() as u64,
                    "lane accounting is group-size independent"
                );
                assert_eq!(
                    fused.traversals(),
                    (plan.distinct_refs().div_ceil(group_size)) as u64,
                    "group size {group_size}"
                );
                let outcomes = plan.finish(&fused);
                assert_eq!(
                    ref_outcomes, outcomes,
                    "group size {group_size} at {threads} threads"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one seed per pair")]
    fn mismatched_seed_list_rejected() {
        let g = grid(4, 4);
        let engine = TescEngine::new(&g);
        let pairs = vec![EventPair::new("p", vec![0], vec![1])];
        let _ = PairSetPlan::build(&engine, &pairs, &TescConfig::new(1), &[], 1);
    }
}
